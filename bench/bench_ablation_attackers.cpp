// Ablation: attacker-set size vs chosen-victim success.
//
// The paper stresses (Theorems 1-2) that what matters is path coverage, not
// the raw attacker count — but coverage grows with the count, so success
// probability rises with the number of colluding nodes. This bench sweeps
// |V_m| on both evaluation topologies.
//
//   ./bench_ablation_attackers [trials_per_setting]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;

  std::cout << "Ablation — number of colluding attackers vs chosen-victim "
               "success\n\n";
  for (TopologyKind kind :
       {TopologyKind::kWireline, TopologyKind::kWireless}) {
    Rng rng(96 + static_cast<int>(kind));
    auto sc = make_scenario(kind, rng);
    if (!sc) continue;
    Table t({"attackers", "trials", "success_prob", "mean_presence_ratio"});
    for (std::size_t na : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{6}, std::size_t{10}}) {
      std::size_t successes = 0, done = 0;
      std::vector<double> ratios;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        sc->resample_metrics(rng);
        const auto att =
            rng.sample_without_replacement(sc->graph().num_nodes(), na);
        AttackContext ctx =
            sc->context(std::vector<NodeId>(att.begin(), att.end()));
        const auto lm = ctx.controlled_links();
        const LinkId victim = rng.index(sc->graph().num_links());
        if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
        ++done;
        ratios.push_back(attack_presence_ratio(sc->estimator().paths(),
                                               ctx.attackers, {victim})
                             .ratio());
        if (chosen_victim_attack(ctx, {victim}).success) ++successes;
      }
      t.add_row({std::to_string(na), std::to_string(done),
                 Table::num(ratio(successes, done), 3),
                 Table::num(summarize(ratios).mean, 3)});
    }
    std::cout << to_string(kind) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
