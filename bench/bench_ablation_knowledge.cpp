// Ablation: partial path knowledge — §VI's first line of defense.
//
// "To launch scapegoating attacks, the attackers must have the information
// of the measurement paths, which the network operator can definitely
// attempt to hide." Here the attacker only knows a fraction f of the
// measurement paths: the paths it sits on (it observes those probes) plus a
// random sample of the rest. It solves the chosen-victim LP against the
// tomography system *it believes in* (the known paths), then the real
// estimator — using ALL paths — judges the outcome. Success requires the
// victim to read abnormal and every attacker link normal under the REAL
// estimate.
//
//   ./bench_ablation_knowledge [trials_per_setting]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

namespace {

using namespace scapegoat;

// Builds the belief path-index set: all attacker paths + a fraction of the
// others. Returns indices into the full path list.
std::vector<std::size_t> belief_paths(const Scenario& sc,
                                      const std::vector<std::size_t>& own,
                                      double fraction, Rng& rng) {
  std::vector<bool> known(sc.estimator().num_paths(), false);
  for (std::size_t i : own) known[i] = true;
  std::vector<std::size_t> others;
  for (std::size_t i = 0; i < sc.estimator().num_paths(); ++i)
    if (!known[i]) others.push_back(i);
  rng.shuffle(others);
  const auto keep = static_cast<std::size_t>(fraction * others.size());
  for (std::size_t k = 0; k < keep; ++k) known[others[k]] = true;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < known.size(); ++i)
    if (known[i]) out.push_back(i);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;

  Rng rng(99);
  // Extra redundancy so subsampled belief systems can stay identifiable.
  auto sc = make_scenario(TopologyKind::kWireline, rng, ScenarioConfig{},
                          /*redundant_paths=*/50);
  if (!sc) {
    std::cout << "scenario failed\n";
    return 1;
  }
  const auto& paths = sc->estimator().paths();

  std::cout << "Ablation — attacker path knowledge vs chosen-victim success "
               "(§VI defense)\n"
               "(wireline, 3 attackers; attacker always knows the paths it "
               "sits on)\n\n";
  Table t({"known_fraction_of_other_paths", "attempts", "belief_identifiable",
           "naive_success", "overshoot_success"});
  for (double fraction : {0.5, 0.8, 0.9, 0.95, 0.98, 1.0}) {
    std::size_t attempts = 0, identifiable = 0, success = 0,
                overshoot_success = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      sc->resample_metrics(rng);
      const auto att =
          rng.sample_without_replacement(sc->graph().num_nodes(), 3);
      AttackContext real_ctx =
          sc->context(std::vector<NodeId>(att.begin(), att.end()));
      const auto lm = real_ctx.controlled_links();
      const LinkId victim = rng.index(sc->graph().num_links());
      if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
      ++attempts;

      // Build the attacker's belief system.
      const auto own = real_ctx.attacker_path_indices();
      const auto known = belief_paths(*sc, own, fraction, rng);
      std::vector<Path> known_paths;
      for (std::size_t i : known) known_paths.push_back(paths[i]);
      TomographyEstimator belief(sc->graph(), known_paths);
      if (!belief.ok()) continue;  // can't even form an attack plan
      ++identifiable;

      AttackContext belief_ctx = real_ctx;
      belief_ctx.estimator = &belief;

      // Deploy a plan: embed the belief-indexed m into the real system and
      // judge with the full estimator.
      auto deploy_lands = [&](const AttackResult& planned) {
        if (!planned.success) return false;
        Vector m(paths.size(), 0.0);
        for (std::size_t k = 0; k < known.size(); ++k)
          m[known[k]] = planned.m[k];
        const Vector y_real = real_ctx.true_measurements() + m;
        const Vector x_real = sc->estimator().estimate(y_real);
        bool landed = classify(x_real[victim], real_ctx.thresholds) ==
                      LinkState::kAbnormal;
        for (LinkId l : lm)
          landed = landed && classify(x_real[l], real_ctx.thresholds) ==
                                 LinkState::kNormal;
        return landed;
      };

      if (deploy_lands(chosen_victim_attack(belief_ctx, {victim})))
        ++success;
      // A mismatch-aware attacker overshoots: demand x̂_victim ≥ 1400 ms and
      // keep own links with extra headroom, so residual pull-back from the
      // unknown rows doesn't drop it below b_u.
      AttackContext robust = belief_ctx;
      robust.thresholds.upper += 600.0;
      robust.thresholds.lower -= 50.0;
      if (deploy_lands(chosen_victim_attack(robust, {victim})))
        ++overshoot_success;
    }
    t.add_row({Table::num(fraction, 2), std::to_string(attempts),
               Table::num(ratio(identifiable, attempts), 2),
               Table::num(ratio(success, attempts), 3),
               Table::num(ratio(overshoot_success, attempts), 3)});
  }
  t.print(std::cout);
  std::cout
      << "\nHidden paths act as trusted anchors: the clean rows the attacker "
         "doesn't model\npull the least-squares fit back toward the truth, "
         "and below ~90% knowledge the\nattacker usually cannot even invert "
         "its belief system to plan. Even an\novershooting attacker fails "
         "with 2% of paths hidden. Keeping a few secret\nmeasurement paths "
         "is a cheap, effective §VI mitigation.\n";
  return 0;
}
