// Ablation: Remark 4 — the detector threshold α under measurement noise.
//
// Honest measurements carry delivery jitter; Eq. 23's exact equality is
// replaced by ‖R x̂ − y′‖₁ > α. This bench sweeps the per-path jitter
// amplitude and reports the false-alarm ratio of α = 200 ms on honest runs
// and the detection ratio on imperfect-cut chosen-victim attacks, showing
// the operating region where the paper's threshold separates the two.
//
//   ./bench_ablation_noise [trials_per_setting]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;

  Rng rng(95);
  auto sc = make_scenario(TopologyKind::kWireline, rng);
  if (!sc) {
    std::cout << "scenario failed\n";
    return 1;
  }

  std::cout << "Ablation — measurement noise vs the α = 200 ms detector "
               "(Remark 4)\n\n";
  Table t({"noise_amplitude_ms", "false_alarm_ratio", "attack_detect_ratio",
           "mean_honest_residual_ms"});
  for (double amplitude : {0.0, 2.0, 10.0, 30.0, 80.0, 200.0}) {
    std::size_t false_alarms = 0, honest_runs = 0;
    std::size_t detected = 0, attacks = 0;
    std::vector<double> residuals;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      sc->resample_metrics(rng);
      // Honest run.
      const Vector y = sc->noisy_measurements(amplitude, rng);
      const DetectionOutcome honest = detect_scapegoating(sc->estimator(), y);
      ++honest_runs;
      residuals.push_back(honest.residual_norm1);
      if (honest.detected) ++false_alarms;

      // Imperfect-cut attack run on the same draw (noise rides on top).
      const auto att =
          rng.sample_without_replacement(sc->graph().num_nodes(), 3);
      AttackContext ctx =
          sc->context(std::vector<NodeId>(att.begin(), att.end()));
      const auto lm = ctx.controlled_links();
      const LinkId victim = rng.index(sc->graph().num_links());
      if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
      if (is_perfect_cut(sc->estimator().paths(), ctx.attackers, {victim}))
        continue;
      const AttackResult r = chosen_victim_attack(ctx, {victim});
      if (!r.success) continue;
      Vector y_attacked = r.y_observed;
      for (auto& yi : y_attacked) yi += rng.uniform(0.0, amplitude);
      ++attacks;
      if (detect_scapegoating(sc->estimator(), y_attacked).detected)
        ++detected;
    }
    t.add_row({Table::num(amplitude, 0),
               Table::num(ratio(false_alarms, honest_runs), 3),
               Table::num(ratio(detected, attacks), 3),
               Table::num(summarize(residuals).mean)});
  }
  t.print(std::cout);
  std::cout << "\nα = 200 ms tolerates realistic jitter with no false alarms "
               "while imperfect-cut\nattacks stay detected; only extreme "
               "noise (≳ the threshold itself) floods it.\n";
  return 0;
}
