// Ablation: the cost of *acting* on manipulated tomography — the paper's
// introduction warns that "failure recovery or mitigation procedures may
// further exacerbate the damage". For sampled successful attacks we compare
// demand-averaged true delays under no-recovery, misled recovery (drain the
// scapegoat, trust forged metrics) and oracle recovery (tax-aware routing
// around the real attackers).
//
//   ./bench_ablation_recovery [attacks_per_topology]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/recovery.hpp"
#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t wanted_attacks =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 25;

  std::cout << "Ablation — misdirected failure recovery (attacker tax "
               "300 ms per malicious hop)\n\n";
  for (TopologyKind kind :
       {TopologyKind::kWireline, TopologyKind::kWireless}) {
    Rng rng(98 + static_cast<int>(kind));
    auto sc = make_scenario(kind, rng);
    if (!sc) continue;

    std::vector<double> baseline, misled, informed;
    std::size_t unroutable_total = 0, drained_total = 0, attacks = 0;
    for (std::size_t trial = 0; trial < 40 * wanted_attacks; ++trial) {
      if (attacks >= wanted_attacks) break;
      sc->resample_metrics(rng);
      const auto att =
          rng.sample_without_replacement(sc->graph().num_nodes(), 2);
      AttackContext ctx =
          sc->context(std::vector<NodeId>(att.begin(), att.end()));
      const auto lm = ctx.controlled_links();
      const LinkId victim = rng.index(sc->graph().num_links());
      if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
      const AttackResult r =
          chosen_victim_attack(ctx, {victim}, ManipulationMode::kUnrestricted,
                               CollateralPolicy::kAvoidAbnormal);
      if (!r.success) continue;
      ++attacks;

      RecoveryOptions opt;
      opt.demand_pairs = 150;
      const RecoveryAssessment a = assess_recovery(*sc, ctx, r, opt, rng);
      baseline.push_back(a.baseline_delay_ms);
      misled.push_back(a.misled_delay_ms);
      informed.push_back(a.informed_delay_ms);
      unroutable_total += a.unroutable;
      drained_total += a.drained_links;
    }

    std::cout << to_string(kind) << " (" << attacks
              << " successful attacks):\n";
    Table t({"policy", "mean_demand_delay_ms"});
    t.add_row({"no recovery (baseline)", Table::num(summarize(baseline).mean)});
    t.add_row({"misled recovery", Table::num(summarize(misled).mean)});
    t.add_row({"oracle recovery", Table::num(summarize(informed).mean)});
    t.print(std::cout);
    std::cout << "drained links total: " << drained_total
              << "   demands made unroutable by draining: "
              << unroutable_total << "\n\n";
  }
  std::cout
      << "Misled recovery drains a healthy link — partitioning some demands "
         "outright —\nwhile leaving the real attackers in the forwarding "
         "plane; the oracle shows how\nmuch of the damage correct blame "
         "would have removed. (Delay averages can move\neither way: the "
         "forged high estimates sometimes steer traffic away from the\n"
         "attackers by accident, but the unroutable demands and the gap to "
         "the oracle are\nthe systematic costs.)\n";
  return 0;
}
