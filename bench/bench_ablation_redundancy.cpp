// Ablation: measurement redundancy as a scapegoating hardening knob.
//
// DESIGN.md / §VI of the paper: Theorem 3 needs a non-square R for the
// detector to exist at all, and extra redundant paths further constrain the
// attacker (the manipulated estimate must stay consistent with more
// equations). This bench sweeps the number of redundant paths on the
// wireline topology and reports how chosen-victim success (random 3-node
// attacker sets, random victims) and attack damage respond.
//
//   ./bench_ablation_redundancy [trials_per_setting]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;

  Table t({"redundant_paths", "total_paths", "success_prob", "mean_damage_ms",
           "detect_ratio"});
  for (std::size_t redundant : {std::size_t{2}, std::size_t{8},
                                std::size_t{20}, std::size_t{40},
                                std::size_t{80}}) {
    Rng rng(90);  // same topology stream per setting
    auto sc = make_scenario(TopologyKind::kWireline, rng, ScenarioConfig{},
                            redundant);
    if (!sc) continue;
    std::size_t successes = 0, detected = 0, done = 0;
    std::vector<double> damages;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      sc->resample_metrics(rng);
      const auto att =
          rng.sample_without_replacement(sc->graph().num_nodes(), 3);
      AttackContext ctx =
          sc->context(std::vector<NodeId>(att.begin(), att.end()));
      const auto lm = ctx.controlled_links();
      const LinkId victim = rng.index(sc->graph().num_links());
      if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
      ++done;
      const AttackResult r = chosen_victim_attack(ctx, {victim});
      if (!r.success) continue;
      ++successes;
      damages.push_back(r.damage);
      if (detect_scapegoating(sc->estimator(), r.y_observed).detected)
        ++detected;
    }
    const Summary dmg = summarize(damages);
    t.add_row({std::to_string(redundant),
               std::to_string(sc->estimator().num_paths()),
               Table::num(ratio(successes, done), 3), Table::num(dmg.mean),
               Table::num(ratio(detected, successes), 3)});
  }
  std::cout << "Ablation — redundant measurement paths vs chosen-victim "
               "attack success\n(wireline topology, 3 random attackers, "
               "random victim, α = 200 ms)\n\n";
  t.print(std::cout);
  std::cout << "\nMore redundancy ⇒ more consistency equations the attacker "
               "must respect:\nsuccess falls and (imperfect-cut) attacks stay "
               "detectable.\n";
  return 0;
}
