// Ablation: Tikhonov regularization as a scapegoating countermeasure.
//
// The operator estimates with (RᵀR + λI)⁻¹(Rᵀy + λ·prior) instead of Eq. 2.
// Attacks are computed against the plain estimator (the attacker doesn't
// know λ); the sweep reports, per λ: how often the attack still *lands*
// (victim reads abnormal AND all attacker links normal under the
// regularized read-out) and the honest-case estimation bias the operator
// pays. Prior = the midpoint of the routine-delay range (10.5 ms).
//
//   ./bench_ablation_regularization [trials_per_setting]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"
#include "tomography/regularized.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;

  Rng rng(97);
  auto sc = make_scenario(TopologyKind::kWireline, rng);
  if (!sc) {
    std::cout << "scenario failed\n";
    return 1;
  }
  const StateThresholds t = sc->config().thresholds;

  std::cout << "Ablation — Tikhonov regularization vs scapegoating "
               "(wireline, prior = 10.5 ms)\n"
               "naive attacker: targets x̂_victim ≥ 801 ms exactly; "
               "overshooting attacker: ≥ 1400 ms\n\n";
  Table table({"lambda", "naive_lands", "overshoot_lands",
               "honest_max_err_ms", "victim_estimate_drop_ms"});
  for (double lambda : {0.0, 0.5, 2.0, 8.0, 32.0, 128.0}) {
    RegularizedEstimator reg(sc->estimator().r(), lambda,
                             Vector(sc->graph().num_links(), 10.5));
    if (!reg.ok()) continue;

    std::size_t naive_lands = 0, overshoot_lands = 0, attacks = 0;
    std::vector<double> honest_errs, drops;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      sc->resample_metrics(rng);
      honest_errs.push_back(
          (reg.estimate(sc->clean_measurements()) - sc->x_true())
              .norm_inf());

      const auto att =
          rng.sample_without_replacement(sc->graph().num_nodes(), 3);
      AttackContext ctx =
          sc->context(std::vector<NodeId>(att.begin(), att.end()));
      const auto lm = ctx.controlled_links();
      const LinkId victim = rng.index(sc->graph().num_links());
      if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;

      const AttackResult naive = chosen_victim_attack(ctx, {victim});
      AttackContext hard = ctx;
      // Demand x̂_victim ≥ 1400 ms (raising `upper` tightens only the
      // victim's abnormality constraint, not the attackers' normality one).
      hard.thresholds.upper = t.upper + 600.0;
      const AttackResult overshoot = chosen_victim_attack(hard, {victim});
      if (!naive.success) continue;
      ++attacks;

      auto lands = [&](const AttackResult& r) {
        if (!r.success) return false;
        const Vector x_reg = reg.estimate(r.y_observed);
        bool ok = classify(x_reg[victim], t) == LinkState::kAbnormal;
        for (LinkId l : lm)
          ok = ok && classify(x_reg[l], t) == LinkState::kNormal;
        return ok;
      };
      if (lands(naive)) ++naive_lands;
      if (lands(overshoot)) ++overshoot_lands;
      drops.push_back(naive.x_estimated[victim] -
                      reg.estimate(naive.y_observed)[victim]);
    }
    table.add_row({Table::num(lambda, 1),
                   Table::num(ratio(naive_lands, attacks), 3),
                   Table::num(ratio(overshoot_lands, attacks), 3),
                   Table::num(summarize(honest_errs).mean),
                   Table::num(summarize(drops).mean)});
  }
  table.print(std::cout);
  std::cout << "\nEven tiny λ wrecks attacks tailored to the plain Eq. 2 "
               "read-out: the damage-\nmaximizing manipulation is brittle "
               "under estimator mismatch, and shrinkage\ncosts the operator "
               "only a few ms of honest bias. An attacker who KNOWS λ can\n"
               "re-tailor the LP against (RᵀR+λI)⁻¹Rᵀ, so this is a "
               "raise-the-bar defense, not\na proof of security.\n";
  return 0;
}
