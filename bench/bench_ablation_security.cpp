// Ablation: §VI's security-aware path selection.
//
// Same topology and monitor set, two path-selection policies:
//   baseline — rank-greedy (select_paths),
//   secure   — rank-greedy with per-step minimization of the maximum node
//              presence ratio (secure_select_paths).
// Reported: max/mean node presence ratio, and single-attacker maximum-damage
// success probability over random attacker placements.
//
//   ./bench_ablation_security [trials]

#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"
#include "tomography/secure_placement.hpp"

namespace {

using namespace scapegoat;

struct PolicyResult {
  std::string name;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  double success = 0.0;
  std::size_t paths = 0;
  bool ok = false;
};

PolicyResult evaluate(const Graph& g, const std::vector<Path>& paths,
                      std::string name, std::size_t trials, Rng& rng) {
  PolicyResult out;
  out.name = std::move(name);
  out.paths = paths.size();
  TomographyEstimator est(g, paths);
  if (!est.ok()) return out;
  out.ok = true;

  const auto ratios = node_presence_ratios(g, paths);
  Summary s = summarize(ratios);
  out.mean_ratio = s.mean;
  out.max_ratio = s.max;

  ScenarioConfig cfg;
  std::size_t successes = 0;
  Vector x(g.num_links());
  for (std::size_t trial = 0; trial < trials; ++trial) {
    for (auto& xi : x) xi = rng.uniform(cfg.delay_min_ms, cfg.delay_max_ms);
    AttackContext ctx;
    ctx.graph = &g;
    ctx.estimator = &est;
    ctx.x_true = x;
    ctx.attackers = {rng.index(g.num_nodes())};
    MaxDamageOptions opt;
    opt.max_candidates = 24;
    opt.max_victims = 3;
    if (max_damage_attack(ctx, opt).best.success) ++successes;
  }
  out.success = ratio(successes, trials);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;

  Rng rng(91);
  Graph g = isp_topology(IspParams{}, rng);
  MonitorPlacementOptions mp;
  mp.path_options.redundant_paths = 10;
  MonitorPlacementResult placement = place_monitors(g, mp, rng);
  if (!placement.identifiable) {
    std::cout << "placement failed\n";
    return 1;
  }

  // Baseline = the placement's own paths; secure = re-selection over the
  // same monitors with the exposure-aware policy.
  SecureSelectionOptions sopt;
  sopt.base.redundant_paths = 10;
  Rng rng_secure(92);
  PathSelectionResult secure =
      secure_select_paths(g, placement.monitors, sopt, rng_secure);

  Rng rng_eval_a(93), rng_eval_b(93);
  const PolicyResult base =
      evaluate(g, placement.paths, "baseline", trials, rng_eval_a);
  const PolicyResult sec = secure.identifiable
                               ? evaluate(g, secure.paths, "secure(§VI)",
                                          trials, rng_eval_b)
                               : PolicyResult{};

  std::cout << "Ablation — §VI security-aware path selection (wireline, "
            << placement.monitors.size() << " monitors)\n\n";
  Table t({"policy", "paths", "max_presence", "mean_presence",
           "1-attacker_success"});
  for (const PolicyResult* r : {&base, &sec}) {
    if (!r->ok) continue;
    t.add_row({r->name, std::to_string(r->paths), Table::num(r->max_ratio, 3),
               Table::num(r->mean_ratio, 3), Table::num(r->success, 3)});
  }
  t.print(std::cout);
  std::cout << "\nLower presence ratios shrink what any single compromised "
               "node can manipulate.\n";
  return 0;
}
