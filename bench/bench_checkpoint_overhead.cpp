// Checkpoint-journal overhead bench: the PR-4 acceptance gate.
//
// Runs the same Fig. 7 workload three ways —
//   none        resilience off (the default configuration),
//   journal     --checkpoint semantics: every trial framed, CRC'd and
//               appended, one fsync'd flush per topology block,
//   resume      a second pass over the journal written by `journal`: every
//               trial replays from disk, nothing is recomputed —
// and reports wall time per mode plus the journal overhead relative to
// none. The acceptance bar is journal overhead < 2%: checkpointing must be
// cheap enough to leave on for any long sweep. It also cross-checks that
// all three modes fold to the identical series (bitwise fingerprint).
//
//   bench_checkpoint_overhead [--quick] [--trials N] [--repeats N]
//                             [--out PATH]
//
// --out writes the machine-readable JSON consumed by scripts/bench_report.sh
// (checked in as BENCH_pr4.json).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>

#include "core/experiment.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

namespace {

// FNV-1a over the scientific fields of the series (bins + totals); the
// session-local bookkeeping (trials_replayed) is deliberately excluded.
std::uint64_t series_fingerprint(const scapegoat::PresenceRatioSeries& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(s.total_trials);
  mix(s.trials_quarantined);
  for (const scapegoat::PresenceRatioBin& b : s.bins) {
    mix(b.trials);
    mix(b.successes);
  }
  return h;
}

struct TimedRun {
  double seconds = 0.0;
  std::uint64_t fingerprint = 0;
};

TimedRun run_once(const scapegoat::PresenceRatioOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  const auto series = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  TimedRun out;
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  out.fingerprint = series_fingerprint(series);
  return out;
}

// Best-of-N to shave scheduler noise off a single-machine comparison.
TimedRun best_of(std::size_t repeats, const scapegoat::PresenceRatioOptions& opt) {
  TimedRun best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    const TimedRun run = run_once(opt);
    if (run.seconds < best.seconds) best.seconds = run.seconds;
    best.fingerprint = run.fingerprint;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 120));
  std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 3));
  if (args.get_bool("quick")) {
    opt.trials_per_topology = 40;
    repeats = 2;
  }
  const std::string out_path = args.get_string("out");
  args.apply_execution(opt);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  const std::string journal_path = "bench_checkpoint_overhead.ckpt";

  run_once(opt);  // warm-up, untimed

  const TimedRun none = best_of(repeats, opt);

  // Fresh journal each repeat (resume off → journal truncated on open), so
  // every timed run pays the full append + flush cost.
  opt.resilience.checkpoint_path = journal_path;
  opt.resilience.resume = false;
  const TimedRun journal = best_of(repeats, opt);

  // Resume over the populated journal: all trials replay from disk.
  opt.resilience.resume = true;
  const TimedRun resume = best_of(repeats, opt);

  std::remove(journal_path.c_str());
  std::remove((journal_path + ".manifest").c_str());

  const auto overhead = [&](double secs) {
    return none.seconds > 0.0
               ? (secs - none.seconds) / none.seconds * 100.0
               : 0.0;
  };

  scapegoat::Table table({"mode", "seconds", "overhead_pct"});
  table.add_row({"none", scapegoat::Table::num(none.seconds, 4), "0.0"});
  table.add_row({"journal", scapegoat::Table::num(journal.seconds, 4),
                 scapegoat::Table::num(overhead(journal.seconds), 1)});
  table.add_row({"resume", scapegoat::Table::num(resume.seconds, 4),
                 scapegoat::Table::num(overhead(resume.seconds), 1)});
  std::cout << "Fig. 7 workload, " << opt.trials_per_topology
            << " trials, best of " << repeats << '\n';
  table.print(std::cout);

  const bool identical = none.fingerprint == journal.fingerprint &&
                         none.fingerprint == resume.fingerprint;
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(none.fingerprint));
  std::cout << "series fingerprint: " << fp << " — none/journal/resume "
            << (identical ? "IDENTICAL" : "MISMATCH") << '\n';

  if (!out_path.empty()) {
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"bench\": \"bench_checkpoint_overhead\",\n"
        "  \"workload\": \"fig7_wireline\",\n"
        "  \"trials\": %zu,\n"
        "  \"repeats\": %zu,\n"
        "  \"none_seconds\": %.6f,\n"
        "  \"journal_seconds\": %.6f,\n"
        "  \"resume_seconds\": %.6f,\n"
        "  \"journal_overhead_pct\": %.2f,\n"
        "  \"resume_overhead_pct\": %.2f,\n"
        "  \"series_identical\": %s\n"
        "}\n",
        opt.trials_per_topology, repeats, none.seconds, journal.seconds,
        resume.seconds, overhead(journal.seconds), overhead(resume.seconds),
        identical ? "true" : "false");
    if (!scapegoat::write_file_atomic(out_path, buf).ok()) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return identical ? 0 : 1;
}
