// Fault-tolerance sweep harness: measurement-plane chaos vs pipeline health.
//
// Sweeps probe-loss rates (default 0, 0.01, 0.05, 0.2) over honest-network
// trials in the packet simulator with the full fault schedule installed
// (loss + duplication + reordering + clock jitter; monitor/link outages via
// flags), retries per the robustness policy, and reports per cell: how many
// trials solved full-rank / via the regularized fallback / not at all, the
// measured-path fraction, estimation error vs ground truth, and
// fault-induced false alarms from the degraded detector. A cross-cell
// checksum printed at the end makes the determinism contract visible, as in
// bench_parallel_scaling.
//
//   bench_fault_tolerance [--quick] [--rates 0,0.01,0.05,0.2(x1000 int ‰)]
//                         [--trials N] [--topologies N] [--retries N]
//                         [--monitor-outage PERMILLE] [--link-failure PERMILLE]
//                         [--seed N] [--threads N] [--wireless]
//
// Rates are integer permille (‰) so the flag stays on the integer-list
// parser: --rates 0,10,50,200 ≡ loss rates 0, 0.01, 0.05, 0.2.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/fault_experiment.hpp"
#include "core/resilience_flags.hpp"
#include "robust/watchdog.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

// FNV-1a over every cell aggregate, doubles hashed by bit pattern.
std::uint64_t sweep_checksum(const scapegoat::FaultSweepSeries& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  auto mixd = [&mix](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  mix(s.total_trials);
  for (const scapegoat::FaultSweepCell& c : s.cells) {
    mix(c.full_rank);
    mix(c.fallback);
    mix(c.unsolvable);
    mix(c.paths_measured);
    mix(c.alarms);
    mixd(c.mean_abs_error_ms);
    mixd(c.max_abs_error_ms);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::robust::install_graceful_shutdown();

  scapegoat::FaultSweepOptions opt;
  opt.topologies = static_cast<std::size_t>(args.get_int("topologies", 2));
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 40));
  args.apply_execution(opt);
  opt.retry.max_retries =
      static_cast<std::size_t>(args.get_int("retries", 2));
  opt.faults.duplicate_rate = 0.02;
  opt.faults.reorder_rate = 0.02;
  opt.faults.clock_jitter_ms = 0.5;
  opt.faults.monitor_outage_rate =
      args.get_int("monitor-outage", 0) / 1000.0;
  opt.faults.link_failure_rate = args.get_int("link-failure", 0) / 1000.0;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.trials_per_topology = 10;
  }
  const std::vector<long> permille = args.get_int_list("rates");
  if (!permille.empty()) {
    opt.loss_rates.clear();
    for (long r : permille) opt.loss_rates.push_back(r / 1000.0);
  }
  const scapegoat::TopologyKind kind = args.get_bool("wireless")
                                           ? scapegoat::TopologyKind::kWireless
                                           : scapegoat::TopologyKind::kWireline;
  scapegoat::apply_resilience_flags(args, opt.resilience);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  const scapegoat::FaultSweepSeries series =
      scapegoat::run_fault_sweep(kind, opt);

  scapegoat::Table table({"loss_rate", "trials", "full_rank", "fallback",
                          "unsolvable", "measured_frac", "mean_err_ms",
                          "max_err_ms", "alarms"});
  for (const scapegoat::FaultSweepCell& c : series.cells) {
    table.add_row({scapegoat::Table::num(c.loss_rate, 3),
                   std::to_string(c.trials), std::to_string(c.full_rank),
                   std::to_string(c.fallback), std::to_string(c.unsolvable),
                   scapegoat::Table::num(c.measured_fraction(), 3),
                   scapegoat::Table::num(c.mean_abs_error_ms, 3),
                   scapegoat::Table::num(c.max_abs_error_ms, 3),
                   std::to_string(c.alarms)});
  }
  std::cout << "Fault-tolerance sweep (" << scapegoat::to_string(kind) << "), "
            << opt.topologies << " topologies x " << opt.trials_per_topology
            << " trials per rate, " << opt.retry.attempts()
            << " probe attempts\n";
  table.print(std::cout);

  if (series.trials_quarantined > 0) {
    std::cout << "quarantined trials (excluded from all cells): "
              << series.trials_quarantined << '\n';
  }
  if (series.trials_replayed > 0) {
    std::cout << "trials replayed from checkpoint: " << series.trials_replayed
              << '\n';
  }

  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(sweep_checksum(series)));
  std::cout << "checksum: " << hex
            << " (bitwise reproducible at any --threads)\n";
  if (series.interrupted) {
    std::cerr << "interrupted — journal flushed, rerun with --resume\n";
    return 130;
  }
  return 0;
}
