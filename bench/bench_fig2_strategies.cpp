// Reproduces Fig. 2: qualitative per-link delay profiles of the three
// scapegoating strategies on the Fig. 1 network.

#include <iostream>

#include "core/figures.hpp"

int main() {
  scapegoat::print_fig2(scapegoat::run_fig2(), std::cout);
  return 0;
}
