// Reproduces Fig. 4: chosen-victim scapegoating of link 10 on the Fig. 1
// network (imperfect cut; paper reports avg path delay 820.87 ms).

#include <iostream>

#include "core/figures.hpp"

int main() {
  scapegoat::print_fig4(scapegoat::run_fig4(), std::cout);
  return 0;
}
