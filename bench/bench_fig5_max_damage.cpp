// Reproduces Fig. 5: maximum-damage scapegoating on the Fig. 1 network
// (paper: links 1 and 9 misidentified as abnormal; avg delay 1239.4 ms).

#include <iostream>

#include "core/figures.hpp"

int main() {
  scapegoat::print_fig5(scapegoat::run_fig5(), std::cout);
  return 0;
}
