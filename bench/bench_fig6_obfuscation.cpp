// Reproduces Fig. 6: obfuscation on the Fig. 1 network (paper: every link's
// estimate lands in the intermediate/uncertain band).

#include <iostream>

#include "core/figures.hpp"

int main() {
  scapegoat::print_fig6(scapegoat::run_fig6(), std::cout);
  return 0;
}
