// Reproduces Fig. 7: chosen-victim success probability vs attack presence
// ratio, on the wireline (synthetic AS1221-like) and wireless (RGG λ=5)
// topologies. Pass --quick for a reduced trial budget and --threads N to run
// the Monte-Carlo trials on N workers (0/absent = hardware concurrency);
// results are bitwise identical at every thread count.

#include <iostream>

#include "core/figures.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::PresenceRatioOptions opt;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.trials_per_topology = 80;
  }
  args.apply_execution(opt);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  const auto wireline = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  const auto wireless = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireless, opt);
  scapegoat::print_fig7(wireline, wireless, std::cout);
  return 0;
}
