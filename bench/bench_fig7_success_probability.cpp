// Reproduces Fig. 7: chosen-victim success probability vs attack presence
// ratio, on the wireline (synthetic AS1221-like) and wireless (RGG λ=5)
// topologies. Pass --quick for a reduced trial budget.

#include <cstring>
#include <iostream>

#include "core/figures.hpp"

int main(int argc, char** argv) {
  scapegoat::PresenceRatioOptions opt;
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    opt.topologies = 1;
    opt.trials_per_topology = 80;
  }
  const auto wireline = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  const auto wireless = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireless, opt);
  scapegoat::print_fig7(wireline, wireless, std::cout);
  return 0;
}
