// Reproduces Fig. 8: success probabilities of maximum-damage and obfuscation
// attacks launched by a single attacker. Pass --quick for fewer trials and
// --threads N to run trials on N workers (0/absent = hardware concurrency);
// results are bitwise identical at every thread count. Crash safety:
// --checkpoint PATH / --resume / --trial-budget-ms / --stop-after (each
// topology kind journals to PATH.wireline / PATH.wireless).

#include <iostream>

#include "core/figures.hpp"
#include "core/resilience_flags.hpp"
#include "robust/watchdog.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::robust::install_graceful_shutdown();
  scapegoat::SingleAttackerOptions opt;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.trials_per_topology = 20;
  }
  args.apply_execution(opt);
  scapegoat::apply_resilience_flags(args, opt.resilience);
  const std::string ckpt = opt.resilience.checkpoint_path;
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  if (!ckpt.empty()) opt.resilience.checkpoint_path = ckpt + ".wireline";
  const auto wireline = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  if (!ckpt.empty()) opt.resilience.checkpoint_path = ckpt + ".wireless";
  const auto wireless = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireless, opt);
  scapegoat::print_fig8(wireline, wireless, std::cout);
  if (wireline.interrupted || wireless.interrupted) {
    std::cerr << "interrupted — journal flushed, rerun with --resume\n";
    return 130;
  }
  return 0;
}
