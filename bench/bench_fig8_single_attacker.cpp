// Reproduces Fig. 8: success probabilities of maximum-damage and obfuscation
// attacks launched by a single attacker. Pass --quick for fewer trials.

#include <cstring>
#include <iostream>

#include "core/figures.hpp"

int main(int argc, char** argv) {
  scapegoat::SingleAttackerOptions opt;
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    opt.topologies = 1;
    opt.trials_per_topology = 20;
  }
  const auto wireline = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  const auto wireless = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireless, opt);
  scapegoat::print_fig8(wireline, wireless, std::cout);
  return 0;
}
