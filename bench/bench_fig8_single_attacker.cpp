// Reproduces Fig. 8: success probabilities of maximum-damage and obfuscation
// attacks launched by a single attacker. Pass --quick for fewer trials and
// --threads N to run trials on N workers (0/absent = hardware concurrency);
// results are bitwise identical at every thread count.

#include <iostream>

#include "core/figures.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::SingleAttackerOptions opt;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.trials_per_topology = 20;
  }
  args.apply_execution(opt);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  const auto wireline = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  const auto wireless = scapegoat::run_single_attacker_experiment(
      scapegoat::TopologyKind::kWireless, opt);
  scapegoat::print_fig8(wireline, wireless, std::cout);
  return 0;
}
