// Reproduces Fig. 9: detection ratios of the Eq. 23 consistency check for
// all three strategies under perfect and imperfect cuts, plus the no-attack
// false-alarm baseline. Pass --quick for fewer successful attacks per cell
// and --threads N to run trials on N workers (0/absent = hardware
// concurrency); results are bitwise identical at every thread count. Crash
// safety: --checkpoint PATH / --resume / --trial-budget-ms / --stop-after
// (each topology kind journals to PATH.wireline / PATH.wireless).

#include <iostream>

#include "core/figures.hpp"
#include "core/resilience_flags.hpp"
#include "robust/watchdog.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::robust::install_graceful_shutdown();
  scapegoat::DetectionOptionsExperiment opt;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.successful_attacks_per_cell = 10;
    opt.max_trials_per_cell = 400;
  }
  args.apply_execution(opt);
  scapegoat::apply_resilience_flags(args, opt.resilience);
  const std::string ckpt = opt.resilience.checkpoint_path;
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  bool interrupted = false;
  for (auto kind : {scapegoat::TopologyKind::kWireline,
                    scapegoat::TopologyKind::kWireless}) {
    if (!ckpt.empty())
      opt.resilience.checkpoint_path = ckpt + "." + scapegoat::to_string(kind);
    const auto series = scapegoat::run_detection_experiment(kind, opt);
    scapegoat::print_fig9(series, std::cout);
    interrupted = interrupted || series.interrupted;
  }
  if (interrupted) {
    std::cerr << "interrupted — journal flushed, rerun with --resume\n";
    return 130;
  }
  return 0;
}
