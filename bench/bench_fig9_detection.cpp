// Reproduces Fig. 9: detection ratios of the Eq. 23 consistency check for
// all three strategies under perfect and imperfect cuts, plus the no-attack
// false-alarm baseline. Pass --quick for fewer successful attacks per cell
// and --threads N to run trials on N workers (0/absent = hardware
// concurrency); results are bitwise identical at every thread count.

#include <iostream>

#include "core/figures.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::DetectionOptionsExperiment opt;
  if (args.get_bool("quick")) {
    opt.topologies = 1;
    opt.successful_attacks_per_cell = 10;
    opt.max_trials_per_cell = 400;
  }
  args.apply_execution(opt);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  for (auto kind : {scapegoat::TopologyKind::kWireline,
                    scapegoat::TopologyKind::kWireless}) {
    scapegoat::print_fig9(scapegoat::run_detection_experiment(kind, opt),
                          std::cout);
  }
  return 0;
}
