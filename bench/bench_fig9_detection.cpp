// Reproduces Fig. 9: detection ratios of the Eq. 23 consistency check for
// all three strategies under perfect and imperfect cuts, plus the no-attack
// false-alarm baseline. Pass --quick for fewer successful attacks per cell.

#include <cstring>
#include <iostream>

#include "core/figures.hpp"

int main(int argc, char** argv) {
  scapegoat::DetectionOptionsExperiment opt;
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    opt.topologies = 1;
    opt.successful_attacks_per_cell = 10;
    opt.max_trials_per_cell = 400;
  }
  for (auto kind : {scapegoat::TopologyKind::kWireline,
                    scapegoat::TopologyKind::kWireless}) {
    scapegoat::print_fig9(scapegoat::run_detection_experiment(kind, opt),
                          std::cout);
  }
  return 0;
}
