// Microbenchmarks for the attack LPs — the per-trial cost that dominates the
// Fig. 7-9 Monte-Carlo experiments.

#include <benchmark/benchmark.h>

#include "attack/chosen_victim.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "core/scenario.hpp"
#include "topology/example_networks.hpp"
#include "topology/isp.hpp"

namespace {

using namespace scapegoat;

void BM_ChosenVictimFig1(benchmark::State& state) {
  Rng rng(4);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);
  ctx.estimator->pseudo_inverse();  // pre-warm the cache
  for (auto _ : state) {
    AttackResult r = chosen_victim_attack(ctx, {9});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChosenVictimFig1)->Unit(benchmark::kMicrosecond);

void BM_ChosenVictimIsp(benchmark::State& state) {
  Rng rng(46);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  const NodeId attacker = 0;  // highest-degree backbone hub
  AttackContext ctx = sc->context({attacker});
  ctx.estimator->pseudo_inverse();
  // Any non-controlled link as victim.
  LinkId victim = 0;
  const auto lm = ctx.controlled_links();
  while (std::find(lm.begin(), lm.end(), victim) != lm.end()) ++victim;
  for (auto _ : state) {
    AttackResult r = chosen_victim_attack(ctx, {victim});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChosenVictimIsp)->Unit(benchmark::kMillisecond);

void BM_MaxDamageIsp(benchmark::State& state) {
  Rng rng(47);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  AttackContext ctx = sc->context({0});
  ctx.estimator->pseudo_inverse();
  MaxDamageOptions opt;
  opt.max_candidates = 32;
  for (auto _ : state) {
    MaxDamageResult r = max_damage_attack(ctx, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxDamageIsp)->Unit(benchmark::kMillisecond);

void BM_ObfuscationIsp(benchmark::State& state) {
  Rng rng(48);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  AttackContext ctx = sc->context({0});
  ctx.estimator->pseudo_inverse();
  ObfuscationOptions opt;
  opt.max_victims = 24;
  for (auto _ : state) {
    AttackResult r = obfuscation_attack(ctx, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ObfuscationIsp)->Unit(benchmark::kMillisecond);

}  // namespace
