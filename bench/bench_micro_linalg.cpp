// Microbenchmarks for the dense linear-algebra substrate.

#include <benchmark/benchmark.h>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/random.hpp"

namespace {

using scapegoat::Matrix;
using scapegoat::Rng;
using scapegoat::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    Matrix c = a * b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  Vector b(n, 1.0);
  for (auto _ : state) {
    scapegoat::LuDecomposition lu(a);
    Vector x = lu.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_LuSolve)->Arg(32)->Arg(64)->Arg(128);

void BM_QrLeastSquares(benchmark::State& state) {
  // Tall systems shaped like routing matrices (paths × links).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = random_matrix(2 * n, n, rng);
  Vector b(2 * n, 1.0);
  for (auto _ : state) {
    scapegoat::QrDecomposition qr(a);
    Vector x = qr.solve(b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(32)->Arg(64)->Arg(128);

void BM_PseudoInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_matrix(2 * n, n, rng);
  for (auto _ : state) {
    Matrix p = scapegoat::pseudo_inverse(a);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PseudoInverse)->Arg(32)->Arg(64);

void BM_RankPivotedQr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  // Sparse 0/1 rows like incidence matrices.
  Matrix a(2 * n, n);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      a(r, c) = rng.bernoulli(0.1) ? 1.0 : 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scapegoat::matrix_rank(a));
  }
}
BENCHMARK(BM_RankPivotedQr)->Arg(64)->Arg(128);

}  // namespace
