// Microbenchmarks for the two-phase simplex on attack-LP-shaped problems.

#include <benchmark/benchmark.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/random.hpp"

namespace {

using namespace scapegoat::lp;
using scapegoat::Rng;

// Box-bounded maximization with dense ≤ rows — the shape of the scapegoating
// LP (variables = attacker paths, rows = link-state constraints).
Model attack_shaped_lp(std::size_t vars, std::size_t rows, Rng& rng) {
  Model m(Sense::kMaximize);
  for (std::size_t j = 0; j < vars; ++j) m.add_variable(0.0, 2000.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < vars; ++j) {
      const double c = rng.uniform(-0.2, 0.6);
      if (std::abs(c) > 0.05) terms.push_back({j, c});
    }
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(50.0, 500.0));
  }
  return m;
}

void BM_SimplexAttackShaped(benchmark::State& state) {
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  const Model m = attack_shaped_lp(static_cast<std::size_t>(state.range(0)),
                                   static_cast<std::size_t>(state.range(1)),
                                   rng);
  for (auto _ : state) {
    Solution s = solve(m);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimplexAttackShaped)
    ->Args({20, 10})
    ->Args({60, 30})
    ->Args({120, 60})
    ->Args({200, 100});

void BM_SimplexPhase1Infeasible(benchmark::State& state) {
  // Infeasibility certificates must also be fast — the max-damage search
  // solves many infeasible candidate LPs.
  Model m(Sense::kMaximize);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t j = 0; j < n; ++j) m.add_variable(0.0, 1.0, 1.0);
  std::vector<Term> all;
  for (std::size_t j = 0; j < n; ++j) all.push_back({j, 1.0});
  m.add_constraint(all, RowType::kGreaterEqual, static_cast<double>(n + 5));
  for (auto _ : state) {
    Solution s = solve(m);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimplexPhase1Infeasible)->Arg(50)->Arg(200);

}  // namespace
