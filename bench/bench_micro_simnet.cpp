// Microbenchmarks for the packet-level simulator: event throughput and the
// cost of probe rounds at the sizes the figure experiments would use if
// they measured through packets instead of algebra.

#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "core/simulate.hpp"
#include "topology/isp.hpp"

namespace {

using namespace scapegoat;

void BM_ProbeRoundFig1(benchmark::State& state) {
  Rng rng(1);
  Scenario sc = Scenario::fig1(rng);
  simnet::NullAdversary nobody;
  Rng sim_rng(2);
  simnet::Simulator sim(sc.graph(), link_models(sc), nobody, sim_rng);
  simnet::ProbeOptions opt;
  opt.probes_per_path = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    auto run = sim.run_probes(sc.estimator().paths(), opt);
    events += sim.events_processed();
    benchmark::DoNotOptimize(run);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProbeRoundFig1)->Arg(1)->Arg(10)->Arg(100);

void BM_ProbeRoundIsp(benchmark::State& state) {
  Rng rng(3);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  simnet::NullAdversary nobody;
  Rng sim_rng(4);
  simnet::Simulator sim(sc->graph(), link_models(*sc), nobody, sim_rng);
  simnet::ProbeOptions opt;
  opt.probes_per_path = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = sim.run_probes(sc->estimator().paths(), opt);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ProbeRoundIsp)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ProbeRoundWithCrossTraffic(benchmark::State& state) {
  Rng rng(5);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  simnet::NullAdversary nobody;
  Rng sim_rng(6);
  simnet::Simulator sim(sc->graph(), link_models(*sc, 0.05), nobody, sim_rng);
  simnet::ProbeOptions opt;
  opt.probes_per_path = 5;
  opt.background_packets_per_link =
      static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = sim.run_probes(sc->estimator().paths(), opt);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ProbeRoundWithCrossTraffic)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
