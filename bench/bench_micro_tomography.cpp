// Microbenchmarks for the tomography pipeline: path selection, estimator
// solve, and pseudo-inverse construction on realistic topologies.

#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "tomography/estimator.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"

namespace {

using namespace scapegoat;

void BM_ScenarioFromIspTopology(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(42);
    auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
    benchmark::DoNotOptimize(sc);
  }
}
BENCHMARK(BM_ScenarioFromIspTopology)->Unit(benchmark::kMillisecond);

void BM_ScenarioFromGeometricTopology(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(43);
    auto g = random_geometric(GeometricParams{}, rng);
    auto sc = Scenario::from_graph(std::move(g.graph), rng);
    benchmark::DoNotOptimize(sc);
  }
}
BENCHMARK(BM_ScenarioFromGeometricTopology)->Unit(benchmark::kMillisecond);

void BM_EstimateFromMeasurements(benchmark::State& state) {
  Rng rng(44);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  const Vector y = sc->clean_measurements();
  for (auto _ : state) {
    Vector x = sc->estimator().estimate(y);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_EstimateFromMeasurements)->Unit(benchmark::kMicrosecond);

void BM_PseudoInverseConstruction(benchmark::State& state) {
  Rng rng(45);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!sc) return;
  for (auto _ : state) {
    // Rebuild a fresh estimator each time so the lazily cached G is recomputed.
    TomographyEstimator est(sc->graph(), sc->estimator().paths());
    benchmark::DoNotOptimize(est.pseudo_inverse());
  }
}
BENCHMARK(BM_PseudoInverseConstruction)->Unit(benchmark::kMillisecond);

}  // namespace
