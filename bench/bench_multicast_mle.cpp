// Multicast MLE bench: the PR-10 acceptance harness.
//
// Sweep over balanced binary multicast trees (depth 1..3 → 2/4/8 leaves)
// and probe budgets. Each trial draws honest per-link deliveries in
// [0.985, 1], plants ONE lossy link at 0.75 delivery (below the 0.90
// abnormal line), runs the probe simulator, and fits the gamma-recursion
// MLE. Reported per (depth, probes): mean per-link |α̂ − α| estimation
// error, exact-blame rate (the planted link — and only it — classified
// abnormal from the fitted loss metrics), and mean solve latency.
//
// Acceptance gate: on the 3-link shared-chain tree the recursive fit's
// exhaustive outcome log-likelihood must meet or beat a brute-force grid
// search over all rate vectors (testkit's independent oracle) on every
// unclamped trial — the recursion really is the maximizer — and the
// largest-tree, largest-budget cell must blame exactly the planted link in
// ≥ 80% of trials.
//
//   bench_multicast_mle [--quick] [--repeats N] [--out PATH]
//
// --out writes the JSON consumed by scripts/bench_report.sh
// --multicast-out (checked in as BENCH_pr10.json).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "simnet/multicast_probe.hpp"
#include "testkit/oracles.hpp"
#include "tomography/link_state.hpp"
#include "tomography/loss_metric.hpp"
#include "tomography/multicast_mle.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace scapegoat;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Balanced binary tree in heap order: node i's children are 2i+1, 2i+2;
// the last 2^depth nodes are the receivers.
struct BinaryTree {
  Graph g;
  MulticastTree tree;
};

BinaryTree make_binary_tree(std::size_t depth) {
  const std::size_t internal = (std::size_t{1} << depth) - 1;
  const std::size_t total = (std::size_t{1} << (depth + 1)) - 1;
  BinaryTree out{Graph(total), {}};
  for (std::size_t i = 0; i < internal; ++i) {
    out.g.add_link(static_cast<NodeId>(i), static_cast<NodeId>(2 * i + 1));
    out.g.add_link(static_cast<NodeId>(i), static_cast<NodeId>(2 * i + 2));
  }
  std::vector<NodeId> receivers;
  for (std::size_t i = internal; i < total; ++i)
    receivers.push_back(static_cast<NodeId>(i));
  auto built = build_multicast_tree(out.g, 0, receivers);
  if (!built.ok()) {
    std::cerr << "error: binary tree build failed: " << built.error_message()
              << '\n';
    std::exit(1);
  }
  out.tree = std::move(*built);
  return out;
}

struct Cell {
  std::size_t depth = 0;
  std::size_t probes = 0;
  std::size_t trials = 0;
  std::size_t exact_blame = 0;
  std::size_t refused = 0;  // dead-leaf refusals at tiny budgets
  double mean_err = 0.0;    // mean per-logical-link |α̂ − α|
  double mean_solve_s = 0.0;
  double blame_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(exact_blame) / trials;
  }
};

Cell run_cell(const BinaryTree& bt, std::size_t depth, std::size_t probes,
              std::size_t trials, std::uint64_t seed) {
  Cell cell;
  cell.depth = depth;
  cell.probes = probes;
  const std::size_t links = bt.g.num_links();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(derive_seed(seed + depth, trial * 7919 + probes));
    std::vector<double> delivery(links);
    for (double& d : delivery) d = rng.uniform(0.985, 1.0);
    const LinkId planted = rng.index(links);
    delivery[planted] = 0.75;

    simnet::MulticastProbeOptions popt;
    popt.probes = probes;
    popt.seed = derive_seed(seed ^ 0xb13cull, trial);
    popt.link_delivery = delivery;
    popt.histogram_max_leaves = 0;  // sweep cells never need the histogram
    const simnet::MulticastProbeRun run =
        simnet::run_multicast_probes(bt.tree, popt);

    const double start = now_seconds();
    const auto fit = solve_multicast_mle(links, bt.tree, run.obs);
    const double elapsed = now_seconds() - start;
    if (!fit.ok()) {
      ++cell.refused;
      continue;
    }
    ++cell.trials;
    cell.mean_solve_s += elapsed;

    // True logical rates are the chain products (chains are single links
    // here, but stay general).
    double err = 0.0;
    for (std::size_t k = 1; k < bt.tree.num_nodes(); ++k) {
      double alpha = 1.0;
      for (const LinkId l : bt.tree.nodes[k].chain) alpha *= delivery[l];
      err += std::abs(fit->link_success[k] - alpha);
    }
    cell.mean_err += err / static_cast<double>(bt.tree.num_nodes() - 1);

    const auto states = classify_all(fit->x, loss_thresholds());
    bool exact = states[planted] == LinkState::kAbnormal;
    for (std::size_t l = 0; l < links && exact; ++l)
      if (l != planted && states[l] == LinkState::kAbnormal) exact = false;
    if (exact) ++cell.exact_blame;
  }
  if (cell.trials > 0) {
    cell.mean_err /= static_cast<double>(cell.trials);
    cell.mean_solve_s /= static_cast<double>(cell.trials);
  }
  return cell;
}

// Brute-force agreement on the 3-link shared-chain tree: every unclamped
// finite-likelihood trial must score at least the grid optimum (up to grid
// resolution).
bool oracle_gate(std::size_t trials, std::size_t* checked) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  if (!tree.ok()) return false;
  *checked = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(derive_seed(0x09ac1eull, trial));
    simnet::MulticastProbeOptions popt;
    popt.probes = 500;
    popt.seed = derive_seed(0x09ac1e5eull, trial);
    popt.link_delivery = {rng.uniform(0.7, 1.0), rng.uniform(0.7, 1.0),
                          rng.uniform(0.7, 1.0)};
    const simnet::MulticastProbeRun run =
        simnet::run_multicast_probes(*tree, popt);
    const auto fit = solve_multicast_mle(g.num_links(), *tree, run.obs);
    if (!fit.ok() || fit->clamped > 0 || run.outcome_counts.empty()) continue;
    const double fit_ll = testkit::ref_multicast_outcome_loglik(
        *tree, fit->link_success, run.outcome_counts, run.probes_sent);
    if (!std::isfinite(fit_ll)) continue;
    const double best = testkit::ref_multicast_mle_grid(
        *tree, run.outcome_counts, run.probes_sent);
    const double slack =
        1e-3 * static_cast<double>(run.probes_sent) / 9.0 + 1e-6;
    ++*checked;
    if (fit_ll < best - slack) {
      std::cerr << "oracle gate: trial " << trial << " fit loglik " << fit_ll
                << " < grid best " << best << " - " << slack << '\n';
      return false;
    }
  }
  return *checked > 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::size_t trials =
      quick ? 10 : static_cast<std::size_t>(args.get_int("repeats", 40));
  const std::string out_path = args.get_string("out");
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  std::vector<Cell> cells;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}}) {
    const BinaryTree bt = make_binary_tree(depth);
    for (const std::size_t probes :
         {std::size_t{250}, std::size_t{1000}, std::size_t{4000}})
      cells.push_back(run_cell(bt, depth, probes, trials, 0x9b10ull));
  }

  Table table({"depth", "leaves", "probes", "trials", "exact_blame",
               "mean_abs_err", "solve_us", "refused"});
  for (const Cell& c : cells) {
    table.add_row({std::to_string(c.depth),
                   std::to_string(std::size_t{1} << c.depth),
                   std::to_string(c.probes), std::to_string(c.trials),
                   Table::num(c.blame_rate(), 3), Table::num(c.mean_err, 5),
                   Table::num(c.mean_solve_s * 1e6, 1),
                   std::to_string(c.refused)});
  }
  std::cout << "multicast MLE, " << trials << " trials per cell"
            << (quick ? " (quick)" : "") << '\n';
  table.print(std::cout);

  std::size_t oracle_checked = 0;
  const bool oracle_ok = oracle_gate(quick ? 10 : 25, &oracle_checked);
  bool blame_ok = false;
  for (const Cell& c : cells)
    if (c.depth == 3 && c.probes == 4000 && c.blame_rate() >= 0.8)
      blame_ok = true;
  const bool gate_met = oracle_ok && blame_ok;
  std::cout << "gate: brute-force-oracle agreement ("
            << oracle_checked << " trials) " << (oracle_ok ? "PASS" : "FAIL")
            << ", deep-tree exact blame " << (blame_ok ? "PASS" : "FAIL")
            << '\n';

  if (!out_path.empty()) {
    std::string json = "{\n  \"bench\": \"bench_multicast_mle\",\n";
    json += "  \"workload\": \"planted_lossy_link_binary_trees\",\n";
    json += "  \"trials_per_cell\": " + std::to_string(trials) + ",\n";
    json += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
    json += "  \"oracle_trials\": " + std::to_string(oracle_checked) + ",\n";
    json += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "    {\"depth\": %zu, \"leaves\": %zu, \"probes\": %zu, "
                    "\"trials\": %zu, \"exact_blame_rate\": %.3f, "
                    "\"mean_abs_err\": %.5f, \"mean_solve_seconds\": %.7f, "
                    "\"refused\": %zu}%s\n",
                    c.depth, std::size_t{1} << c.depth, c.probes, c.trials,
                    c.blame_rate(), c.mean_err, c.mean_solve_s, c.refused,
                    i + 1 < cells.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n";
    json += "  \"gate_met\": " + std::string(gate_met ? "true" : "false") +
            "\n}\n";
    if (!write_file_atomic(out_path, json).ok()) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return gate_met ? 0 : 1;
}
