// Observability overhead bench: the PR-3 acceptance gate.
//
// Runs the same Fig. 7 workload three ways —
//   disabled   no registry installed (the hot paths' permanent NullSink
//              configuration: one relaxed load + untaken branch per hook),
//   metrics    a MetricsRegistry installed, no trace sink,
//   tracing    registry + JSONL trace sink writing to a null stream —
// and reports wall time per mode plus the relative overhead of each enabled
// mode over disabled. The first (untimed) run warms the global pool and the
// page cache so the comparison measures the hooks, not cold-start effects.
//
//   bench_observability [--quick] [--trials N] [--repeats N] [--out PATH]
//
// --out writes the machine-readable JSON consumed by scripts/bench_report.sh
// (checked in as BENCH_pr3.json). Overhead is noisy on loaded machines;
// the acceptance bar (<2% disabled-mode regression vs the pre-obs baseline)
// is about the *disabled* hooks, which this bench cannot see directly — it
// shows disabled vs enabled instead, and the disabled wall time is the
// number to diff across commits.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

namespace {

double run_workload_secs(const scapegoat::PresenceRatioOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  const auto series = scapegoat::run_presence_ratio_experiment(
      scapegoat::TopologyKind::kWireline, opt);
  (void)series;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Best-of-N to shave scheduler noise off a single-machine comparison.
double best_of(std::size_t repeats,
               const scapegoat::PresenceRatioOptions& opt) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r)
    best = std::min(best, run_workload_secs(opt));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  scapegoat::PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 120));
  std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 3));
  if (args.get_bool("quick")) {
    opt.trials_per_topology = 40;
    repeats = 2;
  }
  const std::string out_path = args.get_string("out");
  args.apply_execution(opt);
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  run_workload_secs(opt);  // warm-up, untimed

  const double disabled_s = best_of(repeats, opt);

  scapegoat::obs::MetricsRegistry registry;
  double metrics_s = 0.0;
  {
    scapegoat::obs::ScopedInstrumentation inst(registry);
    metrics_s = best_of(repeats, opt);
  }

  scapegoat::obs::MetricsRegistry trace_registry;
  std::ostringstream trace_out;
  double tracing_s = 0.0;
  {
    scapegoat::obs::JsonlTraceSink sink(trace_out);
    scapegoat::obs::ScopedInstrumentation inst(trace_registry, &sink);
    tracing_s = best_of(repeats, opt);
  }

  const auto overhead = [&](double secs) {
    return disabled_s > 0.0 ? (secs - disabled_s) / disabled_s * 100.0 : 0.0;
  };

  scapegoat::Table table({"mode", "seconds", "overhead_pct"});
  table.add_row({"disabled", scapegoat::Table::num(disabled_s, 4), "0.0"});
  table.add_row({"metrics", scapegoat::Table::num(metrics_s, 4),
                 scapegoat::Table::num(overhead(metrics_s), 1)});
  table.add_row({"tracing", scapegoat::Table::num(tracing_s, 4),
                 scapegoat::Table::num(overhead(tracing_s), 1)});
  std::cout << "Fig. 7 workload, " << opt.trials_per_topology
            << " trials, best of " << repeats << '\n';
  table.print(std::cout);

  const auto snapshot = registry.snapshot();
  std::cout << "\nmetrics-mode registry:\n"
            << scapegoat::obs::to_table(snapshot);

  const std::size_t trace_lines = static_cast<std::size_t>(
      std::count(trace_out.str().begin(), trace_out.str().end(), '\n'));
  std::cout << "tracing mode emitted " << trace_lines << " span(s)\n";

  if (!out_path.empty()) {
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"bench\": \"bench_observability\",\n"
        "  \"workload\": \"fig7_wireline\",\n"
        "  \"trials\": %zu,\n"
        "  \"repeats\": %zu,\n"
        "  \"disabled_seconds\": %.6f,\n"
        "  \"metrics_seconds\": %.6f,\n"
        "  \"tracing_seconds\": %.6f,\n"
        "  \"metrics_overhead_pct\": %.2f,\n"
        "  \"tracing_overhead_pct\": %.2f,\n"
        "  \"trace_events\": %zu\n"
        "}\n",
        opt.trials_per_topology, repeats, disabled_s, metrics_s, tracing_s,
        overhead(metrics_s), overhead(tracing_s), trace_lines);
    // Atomic publish: report consumers (scripts/bench_report.sh) never see a
    // half-written JSON file.
    if (!scapegoat::write_file_atomic(out_path, buf).ok()) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return 0;
}
