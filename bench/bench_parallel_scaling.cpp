// Parallel-scaling bench for the Monte-Carlo experiment engine.
//
// Runs the Fig. 7 workload (chosen-victim success probability vs presence
// ratio) at 1/2/4/8 worker threads and reports trials/sec, speedup over the
// 1-thread run, and a checksum over the per-bin (trials, successes) counts —
// the checksum line makes the determinism guarantee visible: it must be the
// same at every thread count.
//
//   bench_parallel_scaling [--quick] [--threads a,b,c] [--trials N]
//                          [--topologies N] [--seed N]
//
// Note the engine's speedup is bounded by the cores the OS actually grants
// (nproc), not by the requested worker count; on a 1-core machine every row
// reports ~1× while the checksums still prove thread-count independence.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

// FNV-1a over the folded series so any drift in any bin shows up.
std::uint64_t series_checksum(const scapegoat::PresenceRatioSeries& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(s.total_trials);
  for (const scapegoat::PresenceRatioBin& b : s.bins) {
    mix(b.trials);
    mix(b.successes);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);

  scapegoat::PresenceRatioOptions opt;
  opt.topologies = static_cast<std::size_t>(args.get_int("topologies", 1));
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 200));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (args.get_bool("quick")) opt.trials_per_topology = 60;

  std::vector<long> thread_counts = args.get_int_list("threads");
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  scapegoat::Table table(
      {"threads", "trials", "seconds", "trials_per_sec", "speedup",
       "checksum"});
  double base_rate = 0.0;
  std::uint64_t base_checksum = 0;
  bool deterministic = true;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    opt.threads = static_cast<std::size_t>(thread_counts[i]);
    const auto start = std::chrono::steady_clock::now();
    const scapegoat::PresenceRatioSeries series =
        scapegoat::run_presence_ratio_experiment(
            scapegoat::TopologyKind::kWireline, opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate =
        secs > 0.0 ? static_cast<double>(series.total_trials) / secs : 0.0;
    const std::uint64_t checksum = series_checksum(series);
    if (i == 0) {
      base_rate = rate;
      base_checksum = checksum;
    } else if (checksum != base_checksum) {
      deterministic = false;
    }
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(checksum));
    table.add_row({std::to_string(opt.threads),
                   std::to_string(series.total_trials),
                   scapegoat::Table::num(secs, 3),
                   scapegoat::Table::num(rate, 1),
                   scapegoat::Table::num(base_rate > 0 ? rate / base_rate : 0.0,
                                         2),
                   hex});
  }
  std::cout << "Fig. 7 workload (wireline), " << opt.topologies
            << " topologies x " << opt.trials_per_topology << " trials\n";
  table.print(std::cout);
  std::cout << (deterministic
                    ? "determinism: OK — identical checksums at every "
                      "thread count\n"
                    : "determinism: FAILED — checksums differ across thread "
                      "counts\n");
  return deterministic ? 0 : 1;
}
