// Sparse-backend crossover bench: the PR-6 acceptance gate.
//
// Generates attack-sized synthetic tomography workloads — a routing matrix
// over `size` links (one direct-probe row per link plus size/5 random
// multi-hop paths, so the column rank is full by construction) and an
// attack-shaped LP over the same links (box-bounded manipulation variables,
// path-sum rows) — and times both numeric backends on each:
//
//   least squares   dense Householder QR  vs  CGLS over CSR storage
//   linear program  dense tableau simplex vs  factorized revised simplex
//
// The dense tableau pays one explicit bound row per box-bounded variable,
// which is exactly what the revised solver's bounded-variable ratio test
// avoids — the LP crossover is therefore structural, not a constant factor.
//
// Acceptance bar: at the largest size (≥5000 links in the default run) the
// sparse backend must beat dense by ≥5× on BOTH problems, with the answers
// in agreement (least-squares solutions elementwise, LP objectives to
// relative 1e-6). Exit code 1 on a miss. --quick runs reduced sizes below
// the 5k gate for smoke-testing and only enforces agreement.
//
//   bench_sparse [--quick] [--repeats N] [--out PATH]
//
// --out writes the machine-readable JSON consumed by scripts/bench_report.sh
// (checked in as BENCH_pr6.json).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "linalg/cgls.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using scapegoat::Matrix;
using scapegoat::Rng;
using scapegoat::SparseMatrix;
using scapegoat::Vector;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(std::size_t repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    const double start = now_seconds();
    fn();
    best = std::min(best, now_seconds() - start);
  }
  return best;
}

// Routing matrix over `links` links: identity block of direct probes (full
// column rank by construction, same trick as testkit's
// gen_full_rank_routing_matrix) plus links/5 random paths of 4..24 hops.
SparseMatrix make_routing_matrix(std::size_t links, Rng& rng) {
  std::vector<scapegoat::Triplet> t;
  const std::size_t extra = links / 5;
  t.reserve(links + extra * 24);
  for (std::size_t j = 0; j < links; ++j)
    t.push_back({j, j, 1.0});
  std::vector<char> used(links, 0);
  for (std::size_t i = 0; i < extra; ++i) {
    const std::size_t hops = 4 + rng.index(21);
    std::vector<std::size_t> picked;
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t l = rng.index(links);
      if (used[l]) continue;  // a path crosses a link at most once
      used[l] = 1;
      picked.push_back(l);
      t.push_back({links + i, l, 1.0});
    }
    for (std::size_t l : picked) used[l] = 0;
  }
  return SparseMatrix::from_triplets(links + extra, links, t);
}

// Attack-shaped LP: maximize total manipulation over box-bounded per-link
// variables subject to path-capacity rows. Only every 8th link is
// "attractive" (nonzero objective) — the rest stay parked at their lower
// bound under either solver, keeping the pivot count comparable across
// backends while the per-pivot cost difference (full tableau row ops vs
// factorized FTRAN/BTRAN) is what gets measured.
scapegoat::lp::Model make_attack_lp(std::size_t links, Rng& rng) {
  scapegoat::lp::Model m(scapegoat::lp::Sense::kMaximize);
  for (std::size_t j = 0; j < links; ++j)
    m.add_variable(0.0, rng.uniform(0.5, 2.0), j % 8 == 0 ? 1.0 : 0.0);
  const std::size_t rows = std::max<std::size_t>(30, links / 12);
  std::vector<char> used(links, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<scapegoat::lp::Term> terms;
    const std::size_t hops = 6 + rng.index(10);
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t l = rng.index(links);
      if (used[l]) continue;
      used[l] = 1;
      terms.push_back({l, 1.0});
    }
    for (const auto& term : terms) used[term.var] = 0;
    m.add_constraint(std::move(terms), scapegoat::lp::RowType::kLessEqual,
                     rng.uniform(1.0, 4.0));
  }
  return m;
}

struct SizeResult {
  std::size_t links = 0;
  double dense_ls_s = 0.0, sparse_ls_s = 0.0;
  double tableau_lp_s = 0.0, revised_lp_s = 0.0;
  bool agree = false;
  double ls_speedup() const {
    return sparse_ls_s > 0.0 ? dense_ls_s / sparse_ls_s : 0.0;
  }
  double lp_speedup() const {
    return revised_lp_s > 0.0 ? tableau_lp_s / revised_lp_s : 0.0;
  }
};

SizeResult run_size(std::size_t links, std::size_t repeats) {
  Rng rng(0x5eed5eedull + links);
  SizeResult out;
  out.links = links;

  // ---- least squares: dense QR vs CGLS over CSR -------------------------
  const SparseMatrix rs = make_routing_matrix(links, rng);
  const Matrix rd = rs.to_dense();
  Vector x_true(links);
  for (std::size_t j = 0; j < links; ++j) x_true[j] = rng.uniform(0.1, 1.0);
  const Vector b = rs * x_true;

  // Dense QR is O(m·n²): one timed repeat at large sizes keeps the bench
  // tractable; best-of elsewhere shaves scheduler noise.
  const std::size_t dense_repeats = links >= 2000 ? 1 : repeats;
  std::optional<Vector> x_qr;
  out.dense_ls_s = best_of(dense_repeats, [&] {
    x_qr = scapegoat::least_squares(rd, b, scapegoat::LeastSquaresMethod::kQr);
  });
  scapegoat::CglsResult cg;
  out.sparse_ls_s = best_of(repeats, [&] { cg = scapegoat::cgls_solve(rs, b); });

  bool ls_agree = x_qr.has_value() && cg.converged;
  if (ls_agree) {
    for (std::size_t j = 0; j < links; ++j)
      if (std::abs((*x_qr)[j] - cg.x[j]) > 1e-6) ls_agree = false;
  }

  // ---- LP: dense tableau vs revised simplex -----------------------------
  const scapegoat::lp::Model lp = make_attack_lp(links, rng);
  const std::size_t lp_repeats = links >= 2000 ? 1 : repeats;
  scapegoat::lp::SimplexOptions tab, rev;
  tab.backend = scapegoat::lp::LpBackend::kTableau;
  rev.backend = scapegoat::lp::LpBackend::kRevised;
  scapegoat::lp::Solution st, sr;
  out.tableau_lp_s = best_of(lp_repeats, [&] { st = scapegoat::lp::solve(lp, tab); });
  out.revised_lp_s = best_of(repeats, [&] { sr = scapegoat::lp::solve(lp, rev); });

  const bool lp_agree =
      st.status == scapegoat::lp::SolveStatus::kOptimal &&
      sr.status == scapegoat::lp::SolveStatus::kOptimal &&
      std::abs(st.objective - sr.objective) <=
          1e-6 * (1.0 + std::abs(st.objective)) &&
      lp.max_violation(sr.x) <= 1e-6;

  out.agree = ls_agree && lp_agree;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scapegoat::ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::size_t repeats =
      static_cast<std::size_t>(args.get_int("repeats", 3));
  const std::string out_path = args.get_string("out");
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{250, 500, 1000}
            : std::vector<std::size_t>{500, 1000, 2000, 5000};

  run_size(sizes.front(), 1);  // warm-up, untimed

  std::vector<SizeResult> results;
  scapegoat::Table table({"links", "dense_ls_ms", "sparse_ls_ms", "ls_speedup",
                          "tableau_lp_ms", "revised_lp_ms", "lp_speedup",
                          "agree"});
  for (std::size_t links : sizes) {
    const SizeResult r = run_size(links, repeats);
    results.push_back(r);
    table.add_row({std::to_string(r.links),
                   scapegoat::Table::num(r.dense_ls_s * 1e3, 2),
                   scapegoat::Table::num(r.sparse_ls_s * 1e3, 2),
                   scapegoat::Table::num(r.ls_speedup(), 1),
                   scapegoat::Table::num(r.tableau_lp_s * 1e3, 2),
                   scapegoat::Table::num(r.revised_lp_s * 1e3, 2),
                   scapegoat::Table::num(r.lp_speedup(), 1),
                   r.agree ? "yes" : "NO"});
    std::cerr << "done: " << r.links << " links\n";
  }
  std::cout << "dense vs sparse backend crossover, best of " << repeats
            << (quick ? " (quick sizes, 5x gate not enforced)" : "") << '\n';
  table.print(std::cout);

  const SizeResult& top = results.back();
  bool all_agree = true;
  for (const SizeResult& r : results) all_agree = all_agree && r.agree;
  const bool gate_met =
      quick || (top.links >= 5000 && top.ls_speedup() >= 5.0 &&
                top.lp_speedup() >= 5.0);
  std::cout << "gate at " << top.links << " links: least-squares "
            << scapegoat::Table::num(top.ls_speedup(), 1) << "x, lp "
            << scapegoat::Table::num(top.lp_speedup(), 1) << "x — "
            << (gate_met && all_agree ? "PASS" : "FAIL") << '\n';

  if (!out_path.empty()) {
    std::string json = "{\n  \"bench\": \"bench_sparse\",\n";
    json += "  \"workload\": \"synthetic_routing_attack\",\n";
    json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
    json += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
    json += "  \"sizes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SizeResult& r = results[i];
      char buf[384];
      std::snprintf(buf, sizeof buf,
                    "    {\"links\": %zu, \"dense_ls_seconds\": %.6f, "
                    "\"sparse_ls_seconds\": %.6f, \"ls_speedup\": %.2f, "
                    "\"tableau_lp_seconds\": %.6f, \"revised_lp_seconds\": "
                    "%.6f, \"lp_speedup\": %.2f, \"agree\": %s}%s\n",
                    r.links, r.dense_ls_s, r.sparse_ls_s, r.ls_speedup(),
                    r.tableau_lp_s, r.revised_lp_s, r.lp_speedup(),
                    r.agree ? "true" : "false",
                    i + 1 < results.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n";
    json += "  \"gate_links\": " + std::to_string(top.links) + ",\n";
    char gate[160];
    std::snprintf(gate, sizeof gate,
                  "  \"gate_ls_speedup\": %.2f,\n"
                  "  \"gate_lp_speedup\": %.2f,\n"
                  "  \"gate_met\": %s,\n  \"all_agree\": %s\n}\n",
                  top.ls_speedup(), top.lp_speedup(),
                  gate_met ? "true" : "false", all_agree ? "true" : "false");
    json += gate;
    if (!scapegoat::write_file_atomic(out_path, json).ok()) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return gate_met && all_agree ? 0 : 1;
}
