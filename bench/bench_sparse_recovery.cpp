// Sparse-recovery estimator bench: the PR-8 acceptance harness.
//
// Two regimes, both with a planted k-sparse anomaly (+900 ms on k random
// links over a U[1,20] ms prior — the abnormal band of §V-A):
//
//   identifiable    — a wireline scenario's routing matrix (m > n, full
//                     column rank). Both defenders apply; the equality-mode
//                     ℓ1 recovery must agree with least squares (the LP's
//                     feasible set is the singleton R⁺y) and both hit the
//                     planted support exactly.
//   underdetermined — a synthetic m = n/2 measurement matrix of random
//                     8-link paths. Least squares refuses (rank-deficient);
//                     the compressive-sensing LP still recovers, and for
//                     small k it must find the exact planted support most
//                     of the time — the regime this estimator exists for.
//
// Reported per (regime, k): support-exact rate, mean |x̂ − x|₁/n error, mean
// recover() wall time, mean LP iterations, relaxation count. Acceptance
// gate: identifiable equality recovery matches least squares elementwise
// (1e-6) on every trial, and the underdetermined support-exact rate is
// ≥ 0.8 for k ≤ 2. --quick shrinks trial counts; the gate still applies.
//
//   bench_sparse_recovery [--quick] [--repeats N] [--out PATH]
//
// --out writes the JSON consumed by scripts/bench_report.sh
// --sparse-recovery-out (checked in as BENCH_pr8.json).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "tomography/estimator.hpp"
#include "tomography/sparse_recovery.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace scapegoat;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic underdetermined system over a ring graph of `links` links. The
// Path rows are measurement index sets (only .links is consumed by the
// routing matrix), sampled as 8 random links each — an expander-style 0/1
// sensing matrix.
struct Underdetermined {
  Graph g;
  std::vector<Path> paths;
};

Underdetermined make_underdetermined(std::size_t links, std::size_t rows,
                                     Rng& rng) {
  Underdetermined out;
  for (std::size_t v = 0; v < links; ++v) out.g.add_node();
  for (NodeId v = 0; v < links; ++v)
    out.g.add_link(v, (v + 1) % static_cast<NodeId>(links));
  for (std::size_t i = 0; i < rows; ++i) {
    Path p;
    const auto picked = rng.sample_without_replacement(links, 8);
    p.links.assign(picked.begin(), picked.end());
    out.paths.push_back(std::move(p));
  }
  return out;
}

struct Cell {
  std::string regime;
  std::size_t k = 0;
  std::size_t trials = 0;
  std::size_t support_exact = 0;
  std::size_t relaxed = 0;
  std::size_t ls_matches = 0;  // identifiable regime only
  double mean_err_ms = 0.0;    // ‖x̂ − x_true‖₁ / n
  double mean_recover_s = 0.0;
  double mean_iterations = 0.0;
  double exact_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(support_exact) / trials;
  }
};

bool same_support(const std::vector<LinkId>& got,
                  const std::vector<LinkId>& want) {
  return got.size() == want.size() &&
         std::equal(got.begin(), got.end(), want.begin());
}

// One sweep cell: plant k anomalies over the prior, recover, score. `ls`
// is null in the underdetermined regime (least squares refuses there).
Cell run_cell(const std::string& regime, const SparseRecoveryEstimator& est,
              const TomographyEstimator* ls, std::size_t k,
              std::size_t trials, std::uint64_t seed) {
  Cell cell;
  cell.regime = regime;
  cell.k = k;
  const std::size_t n = est.num_links();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(derive_seed(seed + k, trial));
    Vector x = est.prior();
    std::vector<std::size_t> planted =
        rng.sample_without_replacement(n, std::min(k, n));
    std::sort(planted.begin(), planted.end());
    for (std::size_t l : planted) x[l] += 900.0;
    const Vector y = est.r() * x;

    const double start = now_seconds();
    const auto rec = est.recover(y);
    cell.mean_recover_s += now_seconds() - start;
    if (!rec.ok()) continue;
    ++cell.trials;
    cell.mean_iterations += static_cast<double>(rec->lp_iterations);
    if (rec->relaxed) ++cell.relaxed;
    const std::vector<LinkId> want(planted.begin(), planted.end());
    if (same_support(rec->support, want)) ++cell.support_exact;
    double err = 0.0;
    for (std::size_t j = 0; j < n; ++j) err += std::abs(rec->x[j] - x[j]);
    cell.mean_err_ms += err / static_cast<double>(n);

    if (ls != nullptr) {
      const Vector x_ls = ls->estimate(y);
      bool match = true;
      for (std::size_t j = 0; j < n; ++j)
        if (std::abs(x_ls[j] - rec->x[j]) > 1e-6) match = false;
      if (match) ++cell.ls_matches;
    }
  }
  if (cell.trials > 0) {
    cell.mean_err_ms /= static_cast<double>(cell.trials);
    cell.mean_recover_s /= static_cast<double>(cell.trials);
    cell.mean_iterations /= static_cast<double>(cell.trials);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::size_t trials =
      quick ? 8 : static_cast<std::size_t>(args.get_int("repeats", 25));
  const std::string out_path = args.get_string("out");
  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';

  std::vector<Cell> cells;

  // ---- identifiable regime: wireline scenario, equality-mode recovery ----
  {
    Rng rng(0xa5e11ull);
    std::optional<Scenario> sc = make_scenario(TopologyKind::kWireline, rng);
    if (!sc) {
      std::cerr << "error: could not draw an identifiable scenario\n";
      return 1;
    }
    SparseRecoveryOptions so;
    so.prior = sc->x_true();
    const SparseRecoveryEstimator sparse(sc->graph(), sc->estimator().paths(),
                                         so);
    const TomographyEstimator ls(sc->graph(), sc->estimator().paths());
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}})
      cells.push_back(
          run_cell("identifiable", sparse, &ls, k, trials, 0x1de9ull));
  }

  // ---- underdetermined regime: m = n/2 synthetic sensing matrix ---------
  {
    Rng rng(0xc5c5ull);
    const std::size_t links = 64;
    const Underdetermined ud = make_underdetermined(links, links / 2, rng);
    SparseRecoveryOptions so;
    Vector prior(links);
    for (std::size_t j = 0; j < links; ++j) prior[j] = rng.uniform(1.0, 20.0);
    so.prior = prior;
    const SparseRecoveryEstimator sparse(ud.g, ud.paths, so);
    const TomographyEstimator ls(ud.g, ud.paths);
    if (ls.ok()) {
      std::cerr << "error: underdetermined system is unexpectedly "
                   "identifiable\n";
      return 1;
    }
    for (std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}})
      cells.push_back(
          run_cell("underdetermined", sparse, nullptr, k, trials, 0xcde9ull));
  }

  Table table({"regime", "k", "trials", "exact_support", "ls_match",
               "mean_err_ms", "recover_ms", "lp_iters", "relaxed"});
  for (const Cell& c : cells) {
    table.add_row({c.regime, std::to_string(c.k), std::to_string(c.trials),
                   Table::num(c.exact_rate(), 3),
                   c.regime == "identifiable" ? std::to_string(c.ls_matches)
                                              : std::string("-"),
                   Table::num(c.mean_err_ms, 4),
                   Table::num(c.mean_recover_s * 1e3, 2),
                   Table::num(c.mean_iterations, 1),
                   std::to_string(c.relaxed)});
  }
  std::cout << "sparse-recovery estimator, " << trials << " trials per cell"
            << (quick ? " (quick)" : "") << '\n';
  table.print(std::cout);

  bool ls_gate = true;
  bool support_gate = true;
  for (const Cell& c : cells) {
    if (c.regime == "identifiable" && c.ls_matches != c.trials)
      ls_gate = false;
    if (c.regime == "underdetermined" && c.k <= 2 && c.exact_rate() < 0.8)
      support_gate = false;
  }
  const bool gate_met = ls_gate && support_gate;
  std::cout << "gate: equality-vs-LS agreement "
            << (ls_gate ? "PASS" : "FAIL") << ", underdetermined support "
            << (support_gate ? "PASS" : "FAIL") << '\n';

  if (!out_path.empty()) {
    std::string json = "{\n  \"bench\": \"bench_sparse_recovery\",\n";
    json += "  \"workload\": \"planted_k_sparse_anomaly\",\n";
    json += "  \"trials_per_cell\": " + std::to_string(trials) + ",\n";
    json += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
    json += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      char buf[384];
      std::snprintf(buf, sizeof buf,
                    "    {\"regime\": \"%s\", \"k\": %zu, \"trials\": %zu, "
                    "\"support_exact_rate\": %.3f, \"mean_err_ms\": %.4f, "
                    "\"mean_recover_seconds\": %.6f, \"mean_lp_iterations\": "
                    "%.1f, \"relaxed\": %zu, \"ls_matches\": %zu}%s\n",
                    c.regime.c_str(), c.k, c.trials, c.exact_rate(),
                    c.mean_err_ms, c.mean_recover_s, c.mean_iterations,
                    c.relaxed, c.ls_matches,
                    i + 1 < cells.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n";
    json += "  \"gate_met\": " + std::string(gate_met ? "true" : "false") +
            "\n}\n";
    if (!write_file_atomic(out_path, json).ok()) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "wrote " << out_path << '\n';
  }
  return gate_met ? 0 : 1;
}
