// Streaming-service overload soak: the PR-7 acceptance gate.
//
// Open-loop load (no producer retries — rejections are final, the overload
// shape) from 4 producer threads into the probe-ingest service, with small
// queues so the run spends most of its life saturated, and a PINNED shed
// policy so the deterministic-shedding contract is on the hook:
//
//   * bounded memory   — max observed queue depth never exceeds capacity
//                        (the queue admits under its own lock; this gate
//                        holds by construction, the soak witnesses it),
//   * zero crashes     — no shard restarts, no quarantined or lost batches
//                        across ≥10⁶ offered probe measurements,
//   * exact accounting — offered == admitted + rejected + shed + closed and
//                        every admitted batch is processed after the drain,
//   * replayable shed  — the realized shed set is IDENTICAL (FNV checksum
//                        over the sorted batch ids) at 1 shard and 2 shards,
//                        and equals the pure (seed, permille) candidate set.
//
// The overload ratio (offered/processed throughput while both ran) is
// reported but not gated — it depends on the host's core count.
//
//   bench_streaming [--quick] [--probes N] [--out PATH]
//
// --out writes the machine-readable JSON consumed by scripts/bench_report.sh
// --service-out (checked in as BENCH_pr7.json).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "service/session.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

using namespace scapegoat;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(const std::vector<std::uint64_t>& values) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t v : values) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

struct RunResult {
  std::size_t shards = 0;
  service::ServiceStats stats;
  std::uint64_t probes = 0;
  std::uint64_t shed_count = 0;
  std::uint64_t shed_checksum = 0;
  double wall_s = 0.0;
  bool accounted = false;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::uint64_t probes_floor = static_cast<std::uint64_t>(
      args.get_int("probes", quick ? 20'000 : 1'100'000));
  const std::string out_path = args.get_string("out");

  service::SessionWorkload workload;
  workload.kind = TopologyKind::kWireline;
  workload.topologies = 2;
  workload.scenario_seed = 7;
  workload.producers = 4;
  workload.closed_loop = false;  // open loop: the overload shape
  workload.load.seed = derive_seed(workload.scenario_seed, 0x10adull);
  workload.load.noise_ms = 1.0;

  // Size batches_per_topology so the run offers at least `probes_floor`
  // measurement entries (the catalog fixes the per-batch width).
  const std::vector<Scenario> catalog = service::make_session_catalog(
      workload.kind, workload.topologies, workload.scenario_seed);
  if (catalog.size() != workload.topologies) {
    std::cerr << "could not build the soak catalog\n";
    return 1;
  }
  std::uint64_t probes_per_round = 0;  // one batch from every topology
  for (const Scenario& s : catalog)
    probes_per_round += s.estimator().num_paths();
  workload.load.batches_per_topology =
      (probes_floor + probes_per_round - 1) / probes_per_round;

  service::ServiceOptions opt;
  opt.queue_capacity = 256;
  opt.high_water = 192;
  opt.retry_after_base_ms = 1.0;
  opt.shed.mode = service::ShedPolicy::Mode::kPinned;
  opt.shed.seed = workload.scenario_seed;
  opt.shed.permille = 125;
  opt.window = 8;
  opt.stride = 8;
  opt.alpha_ms = 200.0;
  opt.seed = workload.scenario_seed;

  // The pure candidate set every realized shed set must equal, bit for bit.
  std::vector<std::uint64_t> expected_shed;
  const std::uint64_t total_batches =
      workload.load.batches_per_topology * workload.topologies;
  for (std::uint64_t id = 0; id < total_batches; ++id) {
    if (service::is_shed_candidate(opt.shed.seed, id, opt.shed.permille))
      expected_shed.push_back(id);
  }
  const std::uint64_t expected_checksum = fnv1a(expected_shed);

  std::vector<RunResult> runs;
  bool pass = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    opt.shards = shards;
    const double t0 = now_seconds();
    auto report = service::run_service_session(workload, opt);
    const double wall = now_seconds() - t0;
    if (!report.ok()) {
      std::cerr << "session failed: " << report.error_message() << '\n';
      return 1;
    }
    const service::SessionReport& r = report.value();
    RunResult run;
    run.shards = shards;
    run.stats = r.stats;
    run.probes = r.probes_offered;
    run.shed_count = r.shed_ids.size();
    run.shed_checksum = fnv1a(r.shed_ids);
    run.wall_s = wall;
    run.accounted =
        r.stats.offered == r.stats.admitted + r.stats.rejected +
                               r.stats.shed + r.stats.closed &&
        r.stats.lost_in_flight() == 0;
    runs.push_back(run);

    pass = pass && run.accounted && run.stats.restarts == 0 &&
           run.stats.quarantined == 0 && run.stats.malformed == 0 &&
           run.stats.max_queue_depth <= opt.queue_capacity &&
           run.shed_checksum == expected_checksum &&
           run.shed_count == expected_shed.size();
    if (!quick) pass = pass && run.probes >= 1'000'000;
  }

  Table table({"shards", "probes", "offered", "admitted", "rejected", "shed",
               "processed", "max_depth", "overload", "Mprobe/s"});
  for (const RunResult& r : runs) {
    const double overload =
        r.stats.processed == 0
            ? 0.0
            : static_cast<double>(r.stats.offered) /
                  static_cast<double>(r.stats.processed);
    table.add_row({std::to_string(r.shards), std::to_string(r.probes),
                   std::to_string(r.stats.offered),
                   std::to_string(r.stats.admitted),
                   std::to_string(r.stats.rejected),
                   std::to_string(r.stats.shed),
                   std::to_string(r.stats.processed),
                   std::to_string(r.stats.max_queue_depth),
                   Table::num(overload, 2),
                   Table::num(r.probes / r.wall_s / 1e6, 3)});
  }
  std::cout << "streaming overload soak (open loop, pinned shed "
            << opt.shed.permille << "‰, capacity " << opt.queue_capacity
            << ", " << workload.producers << " producers"
            << (quick ? ", quick sizes, 1e6 floor not enforced" : "")
            << ")\n";
  table.print(std::cout);
  std::cout << "candidate shed set: " << expected_shed.size() << " of "
            << total_batches << " batches, checksum "
            << expected_checksum << '\n'
            << "shed-set replay across shard counts: "
            << (runs[0].shed_checksum == runs[1].shed_checksum ? "identical"
                                                               : "DIVERGED")
            << '\n'
            << (pass ? "PASS" : "FAIL") << '\n';

  if (!out_path.empty()) {
    std::string json = "{\n  \"bench\": \"bench_streaming\",\n";
    json += "  \"workload\": \"open_loop_overload_soak\",\n";
    json += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
    json += "  \"topologies\": " + std::to_string(workload.topologies) +
            ",\n";
    json += "  \"producers\": " + std::to_string(workload.producers) + ",\n";
    json += "  \"queue_capacity\": " + std::to_string(opt.queue_capacity) +
            ",\n";
    json += "  \"shed_permille\": " + std::to_string(opt.shed.permille) +
            ",\n";
    json += "  \"total_batches\": " + std::to_string(total_batches) + ",\n";
    json += "  \"candidate_shed\": " + std::to_string(expected_shed.size()) +
            ",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf, "  \"candidate_checksum\": \"%016" PRIx64
                                   "\",\n",
                  expected_checksum);
    json += buf;
    json += "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      std::snprintf(
          buf, sizeof buf,
          "    {\"shards\": %zu, \"probes\": %" PRIu64
          ", \"offered\": %" PRIu64 ", \"admitted\": %" PRIu64
          ", \"rejected\": %" PRIu64 ", \"shed\": %" PRIu64
          ", \"processed\": %" PRIu64 ", \"max_depth\": %zu, "
          "\"restarts\": %" PRIu64 ", \"shed_checksum\": \"%016" PRIx64
          "\", \"wall_s\": %.3f}%s\n",
          r.shards, r.probes, r.stats.offered, r.stats.admitted,
          r.stats.rejected, r.stats.shed, r.stats.processed,
          r.stats.max_queue_depth, r.stats.restarts, r.shed_checksum,
          r.wall_s, i + 1 < runs.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n";
    json += "  \"gate\": \"accounting+bounded_depth+zero_crashes+"
            "replayable_shed\",\n";
    json += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n}\n";
    if (!write_file_atomic(out_path, json).ok()) {
      std::cerr << "cannot write " << out_path << '\n';
      return 1;
    }
    std::cout << "report written to " << out_path << '\n';
  }
  return pass ? 0 : 1;
}
