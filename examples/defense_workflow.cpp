// Operator defense workflow: tomography → Eq. 23 detection → manipulation
// localization → cleaned re-estimate. Shows both the success case (minority
// path coverage: the attack is pinned to the attacker's paths and the truth
// recovered) and the documented failure mode (an attacker covering almost
// every path shifts the blame onto the honest rows).
//
//   ./defense_workflow [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 13;

  Rng rng(seed);
  auto scenario = Scenario::from_graph(isp_topology(IspParams{}, rng), rng,
                                       ScenarioConfig{}, /*redundant=*/25);
  if (!scenario) {
    std::cout << "placement failed\n";
    return 1;
  }
  const auto& paths = scenario->estimator().paths();
  std::cout << "deployment: " << scenario->graph().to_string() << ", "
            << paths.size() << " paths (rank "
            << scenario->estimator().num_links() << ")\n\n";

  // A single compromised mid-tier router (median degree) launches a
  // maximum-damage attack. A hub would cover too many paths for the
  // cleaning step — run with different seeds to see that failure mode too.
  std::vector<NodeId> by_degree(scenario->graph().num_nodes());
  for (NodeId v = 0; v < by_degree.size(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    return scenario->graph().degree(a) < scenario->graph().degree(b);
  });
  // Scan upward from the 75th degree percentile for the weakest router that
  // can actually scapegoat something.
  NodeId attacker = by_degree.back();
  MaxDamageResult attack;
  for (std::size_t i = by_degree.size() * 3 / 4; i < by_degree.size(); ++i) {
    AttackContext probe = scenario->context({by_degree[i]});
    MaxDamageOptions md;
    md.max_candidates = 16;
    attack = max_damage_attack(probe, md);
    if (attack.best.success) {
      attacker = by_degree[i];
      break;
    }
  }
  AttackContext ctx = scenario->context({attacker});
  if (!attack.best.success) {
    std::cout << "no single attacker found a scapegoat — rerun with another "
                 "seed\n";
    return 0;
  }
  const double coverage =
      static_cast<double>(ctx.attacker_path_indices().size()) / paths.size();
  std::cout << "attack: router " << attacker << " (on "
            << Table::num(100 * coverage, 1) << "% of paths) scapegoats link"
            << (attack.best.victims.size() > 1 ? "s" : "");
  for (LinkId v : attack.best.victims) std::cout << ' ' << v;
  std::cout << ", damage " << Table::num(attack.best.damage) << " ms\n\n";

  // Step 1: detection.
  const DetectionOutcome det =
      detect_scapegoating(scenario->estimator(), attack.best.y_observed);
  std::cout << "detector: residual " << Table::num(det.residual_norm1)
            << " ms vs α=200 → "
            << (det.detected ? "MANIPULATED" : "clean") << '\n';

  // Step 2: localization.
  LocalizationOptions lopt;
  lopt.max_removals = 20;
  const LocalizationResult loc = localize_manipulation(
      scenario->estimator(), attack.best.y_observed, lopt);
  std::cout << "localization: flagged " << loc.suspicious_paths.size()
            << " measurement paths"
            << (loc.clean ? " (consistency restored)" : " (budget exhausted)")
            << '\n';
  std::size_t attacker_paths_flagged = 0;
  for (std::size_t idx : loc.suspicious_paths)
    if (paths[idx].contains_node(attacker)) ++attacker_paths_flagged;
  std::cout << "  " << attacker_paths_flagged << "/"
            << loc.suspicious_paths.size()
            << " flagged paths actually traverse the attacker\n";
  if (!loc.suspect_nodes.empty()) {
    std::cout << "  suspect nodes (on every flagged path):";
    for (NodeId v : loc.suspect_nodes) std::cout << ' ' << v;
    std::cout << (std::find(loc.suspect_nodes.begin(), loc.suspect_nodes.end(),
                            attacker) != loc.suspect_nodes.end()
                      ? "   ← includes the real attacker"
                      : "");
    std::cout << '\n';
  }

  // Step 3: cleaned re-estimate vs the manipulated one.
  if (loc.clean) {
    const Vector manipulated =
        scenario->estimator().estimate(attack.best.y_observed);
    double worst_before = 0.0, worst_after = 0.0;
    for (LinkId l = 0; l < scenario->graph().num_links(); ++l) {
      worst_before = std::max(worst_before,
                              std::abs(manipulated[l] - scenario->x_true()[l]));
      worst_after = std::max(worst_after,
                             std::abs(loc.x_cleaned[l] - scenario->x_true()[l]));
    }
    std::cout << "\nmax per-link estimation error: "
              << Table::num(worst_before) << " ms (trusting y′)  →  "
              << Table::num(worst_after) << " ms (after cleaning)\n";
  } else {
    std::cout << "\nCould not restore consistency — with this much path "
                 "coverage the operator\nknows the system is compromised but "
                 "cannot trust any re-estimate (see\nREADME: localization "
                 "requires minority manipulation).\n";
  }
  return 0;
}
