// ISP-scale scapegoating: a single compromised backbone router in a
// synthetic AS1221-like topology (the paper's wireline setting) frames an
// innocent link while keeping its own links clean.
//
//   ./isp_scapegoating [seed]

#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  Rng rng(seed);
  Graph topo = isp_topology(IspParams{}, rng);
  std::cout << "synthetic AS1221-like topology: " << topo.to_string() << '\n';

  auto scenario = Scenario::from_graph(std::move(topo), rng);
  if (!scenario) {
    std::cout << "monitor placement failed to reach identifiability\n";
    return 1;
  }
  std::cout << "monitors: " << scenario->monitors().size()
            << ", measurement paths: " << scenario->estimator().num_paths()
            << " (rank " << scenario->estimator().num_links() << ")\n\n";

  // Compromise the best-connected backbone router.
  NodeId attacker = 0;
  for (NodeId v = 0; v < scenario->graph().num_nodes(); ++v)
    if (scenario->graph().degree(v) > scenario->graph().degree(attacker))
      attacker = v;
  AttackContext ctx = scenario->context({attacker});
  std::cout << "attacker: router " << attacker << " (degree "
            << scenario->graph().degree(attacker) << ", controls "
            << ctx.controlled_links().size() << " links, sits on "
            << ctx.attacker_path_indices().size() << "/"
            << scenario->estimator().num_paths() << " paths)\n\n";

  // Let the attacker pick its own victims for maximum damage.
  MaxDamageOptions opt;
  opt.max_candidates = 32;
  const MaxDamageResult md = max_damage_attack(ctx, opt);
  if (!md.best.success) {
    std::cout << "no feasible scapegoat found from this router\n";
    return 0;
  }
  std::cout << "maximum-damage attack succeeded: damage ‖m‖₁ = "
            << Table::num(md.best.damage) << " ms\nvictim links:";
  for (LinkId v : md.best.victims) {
    const Link& l = scenario->graph().link(v);
    std::cout << "  " << v << " (" << l.u << "-" << l.v << ")";
  }
  std::cout << "\n\ntop single-victim damages:\n";
  Table t({"victim_link", "damage_ms", "perfect_cut"});
  std::size_t shown = 0;
  for (const auto& [v, d] : md.single_victim_damages) {
    if (++shown > 5) break;
    t.add_row({std::to_string(v), Table::num(d),
               is_perfect_cut(scenario->estimator().paths(), ctx.attackers,
                              {v})
                   ? "yes"
                   : "no"});
  }
  t.print(std::cout);

  const DetectionOutcome det =
      detect_scapegoating(scenario->estimator(), md.best.y_observed);
  std::cout << "\nEq. 23 detector: residual = " << Table::num(det.residual_norm1)
            << " ms → " << (det.detected ? "DETECTED" : "not detected")
            << '\n';
  return 0;
}
