// Loss-rate tomography under a grey-hole attacker, end to end through the
// packet-level simulator: per-link delivery probabilities define the
// log-additive metric (§II-A), a malicious node selectively drops probes on
// the paths it wants to poison, and tomography misattributes the loss.
//
//   ./loss_tomography [seed]

#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"
#include "core/simulate.hpp"
#include "tomography/loss_metric.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  Rng rng(seed);
  Scenario scenario = Scenario::fig1(rng);
  const ExampleNetwork net = fig1_network();
  const auto& paths = scenario.estimator().paths();

  // Ground truth: every link delivers 99.5%.
  std::vector<double> delivery(scenario.graph().num_links(), 0.995);

  // The attacker (node B) drops 30% of probes on every path that carries
  // link 1 AND visits B — steering loss blame toward link 1.
  std::vector<double> drop(paths.size(), 0.0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].contains_link(0) && paths[i].contains_node(net.b))
      drop[i] = 0.30;
  }

  simnet::DropAdversary adversary({net.b}, drop);
  simnet::Simulator sim(scenario.graph(), link_models(scenario), adversary,
                        rng);
  simnet::ProbeOptions opt;
  opt.probes_per_path = 5000;
  opt.probe_spacing_ms = 0.0;
  opt.link_delivery_prob = delivery;

  std::cout << "sending " << opt.probes_per_path << " probes per path over "
            << paths.size() << " paths...\n\n";
  const simnet::ProbeRun run = sim.run_probes(paths, opt);

  // Loss tomography: invert the measured −log delivery ratios.
  const Vector x_hat = scenario.estimator().estimate(run.loss_metrics());
  const StateThresholds t = loss_thresholds(0.99, 0.90);

  Table table(
      {"link", "true_delivery", "estimated_delivery", "loss_state"});
  for (LinkId l = 0; l < scenario.graph().num_links(); ++l) {
    table.add_row({std::to_string(l + 1), Table::num(delivery[l], 3),
                   Table::num(delivery_from_loss_metric(
                                  std::max(0.0, x_hat[l])),
                              3),
                   to_string(classify(x_hat[l], t))});
  }
  table.print(std::cout);

  std::cout << "\nNode B drops probes only on link-1 paths it sits on: "
               "tomography sees link 1\nas lossy while B's own links look "
               "clean — scapegoating in the loss domain.\n";
  return 0;
}
