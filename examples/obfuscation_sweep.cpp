// Obfuscation sweep: how the attacker's position (router degree) affects how
// many links it can drag into the uncertain band, and the damage it can
// inflict — the "substantial amount of links beyond the normal status"
// strategy of §III-C3.
//
//   ./obfuscation_sweep [seed]

#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  Rng rng(seed);
  auto scenario = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  if (!scenario) {
    std::cout << "monitor placement failed\n";
    return 1;
  }
  std::cout << "topology: " << scenario->graph().to_string() << ", "
            << scenario->estimator().num_paths() << " paths\n\n";

  // Sweep attackers from the best-connected router downward.
  std::vector<NodeId> by_degree(scenario->graph().num_nodes());
  for (NodeId v = 0; v < by_degree.size(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    return scenario->graph().degree(a) > scenario->graph().degree(b);
  });

  Table t({"attacker", "degree", "paths_covered", "uncertain_links",
           "damage_ms", "feasible"});
  for (std::size_t i = 0; i < 8 && i < by_degree.size(); ++i) {
    const NodeId attacker = by_degree[i];
    scenario->resample_metrics(rng);
    AttackContext ctx = scenario->context({attacker});

    ObfuscationOptions opt;
    opt.min_victims = 5;
    opt.max_victims = 24;
    const AttackResult r = obfuscation_attack(ctx, opt);

    std::size_t uncertain = 0;
    if (r.success)
      for (LinkState s : r.states)
        if (s == LinkState::kUncertain) ++uncertain;

    t.add_row({std::to_string(attacker),
               std::to_string(scenario->graph().degree(attacker)),
               std::to_string(ctx.attacker_path_indices().size()),
               std::to_string(uncertain),
               r.success ? Table::num(r.damage) : "-",
               r.success ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "\nAn obfuscating attacker needs enough path coverage to drag "
               "≥5 foreign links\ninto the [100, 800] ms band while keeping "
               "its own links there too (§V-C2).\n";
  return 0;
}
