// Quickstart: the paper's story in ~60 lines.
//
// Builds the Fig. 1 network, runs honest tomography, then lets the malicious
// nodes B and C scapegoat the innocent link M1-A, and finally shows what the
// Eq. 23 detector can (and cannot) see.
//
//   ./quickstart

#include <iostream>

#include "core/scapegoat.hpp"

int main() {
  using namespace scapegoat;

  // 1. A tomography deployment: topology + monitors + 23 measurement paths,
  //    with routine per-link delays drawn from U[1, 20] ms.
  Rng rng(1);
  Scenario scenario = Scenario::fig1(rng);
  const ExampleNetwork net = fig1_network();
  std::cout << "network: " << scenario.graph().to_string() << ", "
            << scenario.estimator().num_paths() << " measurement paths\n\n";

  // 2. Honest operation: the estimator recovers the true link metrics.
  const Vector y = scenario.clean_measurements();
  const Vector x_hat = scenario.estimator().estimate(y);
  std::cout << "honest tomography, max |x̂ - x| = "
            << (x_hat - scenario.x_true()).norm_inf() << " ms\n\n";

  // 3. Attack: B and C delay packets to frame link 1 (M1-A), which they
  //    perfectly cut from every measurement path.
  AttackContext ctx = scenario.context(net.attackers);
  const AttackResult attack = chosen_victim_attack(ctx, {0});
  if (!attack.success) {
    std::cout << "attack infeasible?!\n";
    return 1;
  }
  std::cout << "scapegoating attack on link 1 succeeded, damage ‖m‖₁ = "
            << attack.damage << " ms\n";
  Table table({"link", "true_ms", "estimated_ms", "state"});
  for (LinkId l = 0; l < scenario.x_true().size(); ++l) {
    table.add_row({std::to_string(l + 1), Table::num(scenario.x_true()[l]),
                   Table::num(attack.x_estimated[l]),
                   to_string(attack.states[l])});
  }
  table.print(std::cout);
  std::cout << "\n→ link 1 looks abnormal; the attackers' links 2-8 look "
               "normal. Node A is the scapegoat.\n\n";

  // 4. Detection: the damage-maximizing attack leaves an inconsistency...
  const DetectionOutcome loud =
      detect_scapegoating(scenario.estimator(), attack.y_observed);
  std::cout << "Eq. 23 detector on the damage-maximizing attack: residual = "
            << loud.residual_norm1 << " ms → "
            << (loud.detected ? "DETECTED" : "not detected") << '\n';

  // ...but a consistency-preserving attacker under a perfect cut is
  // invisible (Theorem 3).
  const AttackResult stealthy =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  const DetectionOutcome quiet =
      detect_scapegoating(scenario.estimator(), stealthy.y_observed);
  std::cout << "same attack, consistent construction: residual = "
            << quiet.residual_norm1 << " ms → "
            << (quiet.detected ? "DETECTED" : "not detected (Theorem 3)")
            << '\n';
  return 0;
}
