// Wireless (RGG) scenario with attack + detection: reproduces the paper's
// detectability dichotomy (Theorem 3) on a 100-node random geometric graph:
// a perfectly-cut victim is framed invisibly, an imperfectly-cut victim
// leaves a residual the Eq. 23 detector flags.
//
//   ./wireless_detection [seed]

#include <cstdlib>
#include <iostream>

#include "core/scapegoat.hpp"

int main(int argc, char** argv) {
  using namespace scapegoat;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  Rng rng(seed);
  GeometricGraph rgg = random_geometric(GeometricParams{}, rng);
  std::cout << "wireless topology: " << rgg.graph.to_string() << " on ["
            << 0 << ", " << rgg.side << "]², radio range " << rgg.radius
            << "\n";

  auto scenario = Scenario::from_graph(std::move(rgg.graph), rng);
  if (!scenario) {
    std::cout << "monitor placement failed\n";
    return 1;
  }
  const auto& paths = scenario->estimator().paths();
  std::cout << "monitors: " << scenario->monitors().size()
            << ", paths: " << paths.size() << "\n\n";

  // Find a victim link both of whose endpoints are interior (non-monitor)
  // nodes, and use the endpoints' whole neighborhood as the attacker set —
  // a guaranteed perfect cut.
  for (LinkId victim = 0; victim < scenario->graph().num_links(); ++victim) {
    const Link& l = scenario->graph().link(victim);
    if (scenario->is_monitor(l.u) || scenario->is_monitor(l.v)) continue;
    std::vector<NodeId> attackers;
    for (const Adjacent& a : scenario->graph().neighbors(l.u))
      if (a.neighbor != l.v) attackers.push_back(a.neighbor);
    for (const Adjacent& a : scenario->graph().neighbors(l.v))
      if (a.neighbor != l.u) attackers.push_back(a.neighbor);
    if (attackers.empty()) continue;
    if (!is_perfect_cut(paths, attackers, {victim})) continue;

    AttackContext ctx = scenario->context(attackers);
    const AttackResult stealthy =
        chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    if (!stealthy.success) continue;

    std::cout << "perfect cut: " << attackers.size()
              << " colluding neighbors frame link " << victim << " (" << l.u
              << "-" << l.v << ")\n";
    const DetectionOutcome quiet =
        detect_scapegoating(scenario->estimator(), stealthy.y_observed);
    std::cout << "  damage " << Table::num(stealthy.damage)
              << " ms, estimated victim delay "
              << Table::num(stealthy.x_estimated[victim]) << " ms, residual "
              << Table::num(quiet.residual_norm1) << " ms → "
              << (quiet.detected ? "DETECTED" : "undetectable (Thm 3)")
              << "\n\n";
    break;
  }

  // Imperfect cut: a random small attacker group frames a random link.
  for (int attempt = 0; attempt < 200; ++attempt) {
    scenario->resample_metrics(rng);
    const auto attackers =
        rng.sample_without_replacement(scenario->graph().num_nodes(), 3);
    AttackContext ctx = scenario->context(
        std::vector<NodeId>(attackers.begin(), attackers.end()));
    const auto lm = ctx.controlled_links();
    LinkId victim = rng.index(scenario->graph().num_links());
    if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
    if (is_perfect_cut(paths, ctx.attackers, {victim})) continue;

    const AttackResult r = chosen_victim_attack(ctx, {victim});
    if (!r.success) continue;
    const DetectionOutcome loud =
        detect_scapegoating(scenario->estimator(), r.y_observed);
    std::cout << "imperfect cut: attackers {";
    for (NodeId a : ctx.attackers) std::cout << ' ' << a;
    std::cout << " } frame link " << victim << "\n  damage "
              << Table::num(r.damage) << " ms, residual "
              << Table::num(loud.residual_norm1) << " ms → "
              << (loud.detected ? "DETECTED (Thm 3)" : "not detected") << '\n';
    break;
  }
  return 0;
}
