#!/usr/bin/env bash
# Acceptance bench reports.
#
# Builds the default tree and runs the overhead gates, writing the
# machine-readable reports to the repo root:
#   BENCH_pr3.json  bench_observability — disabled vs metrics vs tracing
#                   wall times on the Fig. 7 workload (EXPERIMENTS.md
#                   "Observability")
#   BENCH_pr4.json  bench_checkpoint_overhead — resilience off vs journaling
#                   vs full replay, with the <2% journal-overhead bar and the
#                   cross-mode series fingerprint (EXPERIMENTS.md
#                   "Crash-safe runs")
#   BENCH_pr6.json  bench_sparse — dense-vs-sparse crossover table (QR vs
#                   CGLS, tableau vs revised simplex) up to 5k+ links, with
#                   the ≥5× speedup gate at the top size (EXPERIMENTS.md
#                   "Sparse backend")
#   BENCH_pr7.json  bench_streaming — open-loop overload soak of the
#                   probe-ingest service: bounded queue depth, exact batch
#                   accounting, zero crashes, shard-count-independent pinned
#                   shed set (EXPERIMENTS.md "Streaming service")
#   BENCH_pr8.json  bench_sparse_recovery — planted k-sparse anomalies
#                   through the ℓ1 estimator in the identifiable and
#                   underdetermined regimes, with the LS-agreement and
#                   support-recovery gates (EXPERIMENTS.md "Sparse-recovery
#                   estimator")
#   BENCH_pr10.json bench_multicast_mle — planted lossy links on balanced
#                   binary multicast trees: estimation error, exact-blame
#                   rate and solve latency vs probe budget and depth, with
#                   the brute-force-likelihood agreement gate
#                   (EXPERIMENTS.md "Multicast MLE")
# Re-run after touching the obs layer, the checkpoint journal, the sparse
# numerics, the LP solvers, the service layer, or any instrumented hot path.
#
#   scripts/bench_report.sh [--quick] [-j N] [--obs-out PATH] [--ckpt-out PATH]
#                           [--sparse-out PATH] [--service-out PATH]
#                           [--sparse-recovery-out PATH] [--multicast-out PATH]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
obs_out=BENCH_pr3.json
ckpt_out=BENCH_pr4.json
sparse_out=BENCH_pr6.json
service_out=BENCH_pr7.json
sparse_recovery_out=BENCH_pr8.json
multicast_out=BENCH_pr10.json
quick=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick="--quick" ;;
    --obs-out) obs_out=$2; shift ;;
    --ckpt-out) ckpt_out=$2; shift ;;
    --sparse-out) sparse_out=$2; shift ;;
    --service-out) service_out=$2; shift ;;
    --sparse-recovery-out) sparse_recovery_out=$2; shift ;;
    --multicast-out) multicast_out=$2; shift ;;
    -j) jobs=$2; shift ;;
    *) echo "usage: $0 [--quick] [-j N] [--obs-out PATH] [--ckpt-out PATH] [--sparse-out PATH] [--service-out PATH] [--sparse-recovery-out PATH] [--multicast-out PATH]" >&2; exit 2 ;;
  esac
  shift
done

# Property-testkit knobs must not leak into bench processes: an exported
# SCAPEGOAT_PROP_SEED/_ITERS (e.g. from a replay session) would silently
# change any test binary the bench build re-runs, and the reports are meant
# to be environment-independent.
unset SCAPEGOAT_PROP_ITERS SCAPEGOAT_PROP_SEED SCAPEGOAT_PROP_CORPUS

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_observability \
      bench_checkpoint_overhead bench_sparse bench_streaming \
      bench_sparse_recovery bench_multicast_mle

build/bench/bench_observability $quick --out "$obs_out"
echo "report: $obs_out"

build/bench/bench_checkpoint_overhead $quick --out "$ckpt_out"
echo "report: $ckpt_out"

build/bench/bench_sparse $quick --out "$sparse_out"
echo "report: $sparse_out"

build/bench/bench_streaming $quick --out "$service_out"
echo "report: $service_out"

build/bench/bench_sparse_recovery $quick --out "$sparse_recovery_out"
echo "report: $sparse_recovery_out"

build/bench/bench_multicast_mle $quick --out "$multicast_out"
echo "report: $multicast_out"
