#!/usr/bin/env bash
# Observability bench report.
#
# Builds the default tree, runs bench_observability (disabled vs metrics vs
# tracing wall times on the Fig. 7 workload) and writes the machine-readable
# report to BENCH_pr3.json at the repo root — the checked-in numbers quoted
# in EXPERIMENTS.md "Observability". Re-run after touching the obs layer or
# any instrumented hot path.
#
#   scripts/bench_report.sh [--quick] [-j N] [--out PATH]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
out=BENCH_pr3.json
quick=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick="--quick" ;;
    --out) out=$2; shift ;;
    -j) jobs=$2; shift ;;
    *) echo "usage: $0 [--quick] [-j N] [--out PATH]" >&2; exit 2 ;;
  esac
  shift
done

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_observability

build/bench/bench_observability $quick --out "$out"
echo "report: $out"
