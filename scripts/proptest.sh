#!/usr/bin/env bash
# Property-test driver: builds the default tree and runs every suite carrying
# the `prop` ctest label at a raised iteration budget (nightly default 2000
# vs the in-CI default of ~200 per property; expensive properties divide the
# budget by their registered iters_divisor).
#
#   scripts/proptest.sh [--iters N] [--seed 0xHEX] [-j N]
#
#   --iters N    iteration budget (SCAPEGOAT_PROP_ITERS); 0 skips cleanly
#   --seed S     replay exactly one case per property (SCAPEGOAT_PROP_SEED) —
#                paste the seed from a failure report or tests/corpus/*.seed
#
# Failing runs journal shrunk counterexamples as <property>.seed files into
# tests/corpus/ (SCAPEGOAT_PROP_CORPUS) — inspect, rename, and check them in
# to pin the regression.
set -euo pipefail

cd "$(dirname "$0")/.."

iters=2000
seed=""
jobs=$(nproc 2>/dev/null || echo 4)
while [ $# -gt 0 ]; do
  case "$1" in
    --iters) iters=$2; shift ;;
    --seed) seed=$2; shift ;;
    -j) jobs=$2; shift ;;
    *) echo "usage: $0 [--iters N] [--seed 0xHEX] [-j N]" >&2; exit 2 ;;
  esac
  shift
done

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

export SCAPEGOAT_PROP_ITERS="$iters"
export SCAPEGOAT_PROP_CORPUS="$PWD/tests/corpus"
[ -n "$seed" ] && export SCAPEGOAT_PROP_SEED="$seed"

ctest --test-dir build -L prop -j "$jobs" --output-on-failure
