#!/usr/bin/env bash
# Sanitizer gate for the robustness layer.
#
# Builds the tree under ASan+UBSan (or TSan with `--tsan`) and runs the
# suites most likely to trip memory/UB bugs under fault injection: the
# robust subsystem units, the chaos harness, and the loaders that digest
# corrupted files. Pass `--all` to run the full ctest suite instead.
#
#   scripts/sanitize.sh [--tsan] [--all] [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

preset=asan-ubsan
suites='test_robust test_fault_injection test_checkpoint test_rocketfuel test_scenario_io test_args test_lp test_simnet'
jobs=$(nproc 2>/dev/null || echo 4)
run_all=0
while [ $# -gt 0 ]; do
  case "$1" in
    --tsan) preset=tsan ;;
    --all) run_all=1 ;;
    -j) jobs=$2; shift ;;
    *) echo "usage: $0 [--tsan] [--all] [-j N]" >&2; exit 2 ;;
  esac
  shift
done

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"

builddir=build-$preset
[ "$preset" = default ] && builddir=build

if [ "$run_all" = 1 ]; then
  ctest --preset "$preset" -j "$jobs"
else
  # ctest registers individual gtest case names, so filter by running the
  # suite binaries directly.
  for suite in $suites; do
    echo "== $suite =="
    "$builddir/tests/$suite" --gtest_brief=1
  done
fi
