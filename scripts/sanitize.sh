#!/usr/bin/env bash
# Sanitizer gate for the robustness layer.
#
# Builds the tree under ASan+UBSan (or TSan with `--tsan`) and runs the
# suites most likely to trip memory/UB bugs under fault injection: the
# robust subsystem units, the chaos harness, the loaders that digest
# corrupted files, the streaming-service suite (queues + shard threads —
# the prime TSan target), and the `prop` generative suites at a reduced iteration
# budget (sanitizer builds are ~10x slower; override with
# SCAPEGOAT_PROP_ITERS, and SCAPEGOAT_PROP_ITERS=0 skips them cleanly).
# Pass `--all` to run the full ctest suite instead.
#
#   scripts/sanitize.sh [--tsan] [--all] [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

preset=asan-ubsan
suites='test_robust test_fault_injection test_checkpoint test_rocketfuel test_scenario_io test_args test_lp test_simnet test_sparse test_revised_simplex test_service test_estimator_interface test_sparse_recovery test_sparse_aware test_multicast_mle test_multicast_probe test_loss_scapegoat'
prop_suites='test_testkit test_prop_lp test_prop_linalg test_prop_attack test_prop_detect test_prop_checkpoint test_prop_tomography test_prop_corpus'
export SCAPEGOAT_PROP_ITERS="${SCAPEGOAT_PROP_ITERS:-25}"
jobs=$(nproc 2>/dev/null || echo 4)
run_all=0
while [ $# -gt 0 ]; do
  case "$1" in
    --tsan) preset=tsan ;;
    --all) run_all=1 ;;
    -j) jobs=$2; shift ;;
    *) echo "usage: $0 [--tsan] [--all] [-j N]" >&2; exit 2 ;;
  esac
  shift
done

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"

builddir=build-$preset
[ "$preset" = default ] && builddir=build

if [ "$run_all" = 1 ]; then
  ctest --preset "$preset" -j "$jobs"
else
  # ctest registers individual gtest case names, so filter by running the
  # suite binaries directly. The `prop` label is also registered with ctest
  # (`ctest -L prop`), which scripts/proptest.sh uses for nightly budgets.
  for suite in $suites $prop_suites; do
    echo "== $suite (SCAPEGOAT_PROP_ITERS=$SCAPEGOAT_PROP_ITERS) =="
    "$builddir/tests/$suite" --gtest_brief=1
  done
fi
