#include "attack/attack_lp.hpp"

#include <cassert>
#include <cmath>

#include "lp/model.hpp"

namespace scapegoat {

namespace {
constexpr double kCoeffTol = 1e-11;  // |G| entries below this are zero
}

AttackResult solve_attack_lp(const AttackContext& ctx,
                             const std::vector<LinkBand>& bands,
                             std::vector<LinkId> victims) {
  assert(ctx.estimator != nullptr && ctx.estimator->ok());
  AttackResult result;
  result.victims = std::move(victims);

  const std::vector<std::size_t> support = ctx.attacker_path_indices();
  const Matrix& g = ctx.estimator->pseudo_inverse();
  const std::size_t num_paths = ctx.estimator->num_paths();

  lp::Model model(lp::Sense::kMaximize);
  for (std::size_t k = 0; k < support.size(); ++k)
    model.add_variable(0.0, ctx.per_path_cap, 1.0);

  for (const LinkBand& band : bands) {
    assert(band.link < ctx.x_true.size());
    const double base = ctx.x_true[band.link];
    std::vector<lp::Term> terms;
    for (std::size_t k = 0; k < support.size(); ++k) {
      const double coeff = g(band.link, support[k]);
      if (std::abs(coeff) > kCoeffTol) terms.push_back({k, coeff});
    }
    if (terms.empty()) {
      // The attacker cannot move this link's estimate at all: the band is a
      // pure constant check on the true metric.
      if (base < band.lower - 1e-9 || base > band.upper + 1e-9) {
        result.status = lp::SolveStatus::kInfeasible;
        return result;
      }
      continue;
    }
    if (std::isfinite(band.upper))
      model.add_constraint(terms, lp::RowType::kLessEqual, band.upper - base);
    if (std::isfinite(band.lower))
      model.add_constraint(std::move(terms), lp::RowType::kGreaterEqual,
                           band.lower - base);
  }

  const lp::Solution sol = lp::solve(model, ctx.lp_options);
  result.status = sol.status;
  if (!sol.optimal()) return result;

  result.m = Vector(num_paths);
  for (std::size_t k = 0; k < support.size(); ++k)
    result.m[support[k]] = std::max(0.0, sol.x[k]);
  result.damage = result.m.norm1();
  result.y_observed = ctx.true_measurements() + result.m;
  result.x_estimated = ctx.estimator->estimate(result.y_observed);
  result.states = classify_all(result.x_estimated, ctx.thresholds);
  result.success = true;
  return result;
}

AttackResult solve_consistent_attack_lp(const AttackContext& ctx,
                                        const std::vector<LinkBand>& bands,
                                        std::vector<LinkId> victims) {
  assert(ctx.estimator != nullptr && ctx.estimator->ok());
  AttackResult result;
  result.victims = std::move(victims);

  const Matrix& r = ctx.estimator->r();
  const std::size_t num_paths = ctx.estimator->num_paths();

  // One Δx̂ variable per banded link; the band is a plain box bound since
  // x̂′_j = x_true_j + Δx̂_j here. Links outside the bands keep Δx̂ = 0.
  lp::Model model(lp::Sense::kMaximize);
  std::vector<LinkId> banded_links;
  for (const LinkBand& band : bands) {
    const double base = ctx.x_true[band.link];
    const double lb = std::isfinite(band.lower) ? band.lower - base
                                                : -lp::kInfinity;
    const double ub = std::isfinite(band.upper) ? band.upper - base
                                                : lp::kInfinity;
    if (lb > ub) {
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
    // Objective: Σᵢ (RΔx̂)ᵢ = Σⱼ (column-sum of R over paths) Δx̂ⱼ.
    double colsum = 0.0;
    for (std::size_t i = 0; i < num_paths; ++i) colsum += r(i, band.link);
    model.add_variable(lb, ub, colsum);
    banded_links.push_back(band.link);
  }

  // Constraint 1 on m = R Δx̂: attacker-free paths must see exactly 0;
  // every path must see 0 ≤ mᵢ ≤ cap.
  std::vector<bool> has_attacker(num_paths, false);
  for (std::size_t i : ctx.attacker_path_indices()) has_attacker[i] = true;
  for (std::size_t i = 0; i < num_paths; ++i) {
    std::vector<lp::Term> terms;
    for (std::size_t k = 0; k < banded_links.size(); ++k)
      if (r(i, banded_links[k]) != 0.0) terms.push_back({k, 1.0});
    if (terms.empty()) continue;  // mᵢ identically 0
    if (!has_attacker[i]) {
      model.add_constraint(std::move(terms), lp::RowType::kEqual, 0.0);
    } else {
      model.add_constraint(terms, lp::RowType::kGreaterEqual, 0.0);
      model.add_constraint(std::move(terms), lp::RowType::kLessEqual,
                           ctx.per_path_cap);
    }
  }

  const lp::Solution sol = lp::solve(model, ctx.lp_options);
  result.status = sol.status;
  if (!sol.optimal()) return result;

  // Materialize m = R Δx̂ and the rest of the result.
  result.m = Vector(num_paths);
  for (std::size_t i = 0; i < num_paths; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < banded_links.size(); ++k)
      acc += r(i, banded_links[k]) * sol.x[k];
    result.m[i] = std::max(0.0, acc);
  }
  result.damage = result.m.norm1();
  result.y_observed = ctx.true_measurements() + result.m;
  result.x_estimated = ctx.estimator->estimate(result.y_observed);
  result.states = classify_all(result.x_estimated, ctx.thresholds);
  result.success = true;
  return result;
}

double max_estimate_push(const AttackContext& ctx, LinkId link) {
  assert(ctx.estimator != nullptr && ctx.estimator->ok());
  const Matrix& g = ctx.estimator->pseudo_inverse();
  double acc = ctx.x_true[link];
  for (std::size_t i : ctx.attacker_path_indices()) {
    const double coeff = g(link, i);
    if (coeff > kCoeffTol) acc += coeff * ctx.per_path_cap;
  }
  return acc;
}

}  // namespace scapegoat
