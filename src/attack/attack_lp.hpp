// The generic scapegoating LP used by all three strategies (proof of
// Theorem 1 shows chosen-victim and obfuscation are instances of one box
// formulation s_l ⪯ x̂ ⪯ s_u; maximum-damage searches over victim sets and
// solves the same LP per candidate).
//
// With G = R⁺ and identifiability (G R = I), the manipulated estimate is
// linear in m:  x̂′ = x_true + G m  restricted to the attacker-present path
// support. The LP is
//   max Σ mᵢ   s.t.  0 ≤ mᵢ ≤ cap  (support paths only; others fixed 0),
//                    lowerⱼ ≤ (x_true + G m)ⱼ ≤ upperⱼ  for each band j.

#pragma once

#include <vector>

#include "attack/manipulation.hpp"

namespace scapegoat {

// One per-link interval constraint on the manipulated estimate. Use
// -infinity / +infinity for one-sided bands.
struct LinkBand {
  LinkId link;
  double lower;
  double upper;
};

// Solves the scapegoating LP. `victims` is recorded in the result (it does
// not alter the constraints — encode the victim requirement in `bands`).
AttackResult solve_attack_lp(const AttackContext& ctx,
                             const std::vector<LinkBand>& bands,
                             std::vector<LinkId> victims);

// The Theorem-1 *consistent* construction: the attacker picks a target
// estimate perturbation Δx̂ supported on L_m ∪ victims and plays
// m = R Δx̂, which keeps R x̂ = y′ exactly — invisible to the Eq. 23
// detector. Variables are Δx̂ per banded link; constraints are Constraint 1
// on m (0 ≤ (RΔx̂)ᵢ ≤ cap, and (RΔx̂)ᵢ = 0 on attacker-free paths, which a
// perfect cut satisfies structurally); the objective is still total damage.
// Infeasible whenever no consistent manipulation exists (e.g. the victim is
// not perfectly cut and the band demands it move).
AttackResult solve_consistent_attack_lp(const AttackContext& ctx,
                                        const std::vector<LinkBand>& bands,
                                        std::vector<LinkId> victims);

// Which manipulation family a strategy may use. kUnrestricted maximizes
// damage over all Constraint-1 vectors (detectable under imperfect cuts);
// kConsistent restricts to m = R Δx̂ (undetectable by Eq. 23, feasible
// essentially only under perfect cuts — Theorem 3).
enum class ManipulationMode { kUnrestricted, kConsistent };

// What the attack may do to *bystander* links (∉ L_m ∪ L_s). The paper's
// formulation leaves them unconstrained, but its figures show clean
// scapegoats (only the victims cross b_u), which requires bounding
// collateral estimates. Only meaningful for kUnrestricted manipulations —
// the consistent construction never moves a link outside L_m ∪ L_s.
enum class CollateralPolicy {
  kUnconstrained,  // Eq. (4)-(7) verbatim
  kAvoidAbnormal,  // bystanders must stay ≤ b_u (victims stand out alone)
  kKeepNormal,     // bystanders must stay < b_l (fully clean frame-up)
};

// Upper bound on how far the attacker can push link j's estimate upward:
// x_true[j] + cap · Σ_i max(G(j,i), 0) over attacker-present paths i. Used
// to prune hopeless victim candidates before solving LPs.
double max_estimate_push(const AttackContext& ctx, LinkId link);

}  // namespace scapegoat
