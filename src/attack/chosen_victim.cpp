#include "attack/chosen_victim.hpp"

#include <algorithm>
#include <limits>

#include "attack/attack_lp.hpp"

namespace scapegoat {

AttackResult chosen_victim_attack(const AttackContext& ctx,
                                  const std::vector<LinkId>& victims,
                                  ManipulationMode mode,
                                  CollateralPolicy collateral) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<LinkId> lm = ctx.controlled_links();

  // Eq. (7): L_m ∩ L_s = ∅ — a link can't be both hidden and scapegoated.
  for (LinkId v : victims) {
    if (std::find(lm.begin(), lm.end(), v) != lm.end()) {
      AttackResult r;
      r.victims = victims;
      r.status = lp::SolveStatus::kInfeasible;
      return r;
    }
  }

  std::vector<LinkBand> bands;
  // Eq. (5): attacker links must classify normal, x̂ < b_l.
  for (LinkId l : lm)
    bands.push_back({l, -kInf, ctx.thresholds.lower - ctx.margin});
  // Eq. (6): victim links must classify abnormal, x̂ > b_u.
  for (LinkId v : victims)
    bands.push_back({v, ctx.thresholds.upper + ctx.margin, kInf});

  // Bystander bounds: only the victims should stand out. The consistent
  // construction never moves a bystander's estimate, so the policy is
  // implicit there; adding the bands would instead grant it extra
  // manipulation freedom, so we only emit them in unrestricted mode.
  if (mode == ManipulationMode::kUnrestricted &&
      collateral != CollateralPolicy::kUnconstrained) {
    const double cap = collateral == CollateralPolicy::kAvoidAbnormal
                           ? ctx.thresholds.upper - ctx.margin
                           : ctx.thresholds.lower - ctx.margin;
    std::vector<bool> banded(ctx.estimator->num_links(), false);
    for (const LinkBand& b : bands) banded[b.link] = true;
    for (LinkId l = 0; l < ctx.estimator->num_links(); ++l)
      if (!banded[l]) bands.push_back({l, -kInf, cap});
  }

  return mode == ManipulationMode::kConsistent
             ? solve_consistent_attack_lp(ctx, bands, victims)
             : solve_attack_lp(ctx, bands, victims);
}

}  // namespace scapegoat
