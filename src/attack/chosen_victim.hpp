// Chosen-victim scapegoating — Eq. (4)-(7) of the paper.
//
// Given a target victim link set L_s (disjoint from the attacker links L_m),
// find the damage-maximizing manipulation vector such that tomography
// classifies every attacker link normal and every victim link abnormal.

#pragma once

#include <vector>

#include "attack/attack_lp.hpp"
#include "attack/manipulation.hpp"

namespace scapegoat {

// Solves Eq. (4)-(7). Returns an unsuccessful result (status kInfeasible)
// if L_s intersects L_m or the LP has no feasible manipulation. With
// ManipulationMode::kConsistent the attacker additionally keeps R x̂ = y′
// (the Theorem-1 construction — undetectable, requires a perfect cut in
// practice).
AttackResult chosen_victim_attack(
    const AttackContext& ctx, const std::vector<LinkId>& victims,
    ManipulationMode mode = ManipulationMode::kUnrestricted,
    CollateralPolicy collateral = CollateralPolicy::kUnconstrained);

}  // namespace scapegoat
