#include "attack/cut.hpp"

namespace scapegoat {

namespace {
bool contains_any_link(const Path& p, const std::vector<LinkId>& links) {
  for (LinkId l : links)
    if (p.contains_link(l)) return true;
  return false;
}
}  // namespace

bool is_perfect_cut(const std::vector<Path>& paths,
                    const std::vector<NodeId>& attackers,
                    const std::vector<LinkId>& victims) {
  for (const Path& p : paths) {
    if (!contains_any_link(p, victims)) continue;
    if (!p.contains_any_node(attackers)) return false;
  }
  return true;
}

PresenceRatio attack_presence_ratio(const std::vector<Path>& paths,
                                    const std::vector<NodeId>& attackers,
                                    const std::vector<LinkId>& victims) {
  PresenceRatio out;
  for (const Path& p : paths) {
    if (!contains_any_link(p, victims)) continue;
    ++out.victim_paths;
    if (p.contains_any_node(attackers)) ++out.covered_paths;
  }
  return out;
}

}  // namespace scapegoat
