// Perfect/imperfect-cut analysis — §IV-A of the paper.
//
// V_m perfectly cuts the victim set L_s when every measurement path that
// contains a victim link also contains an attacker node; Theorem 1 then
// guarantees feasibility and Theorem 3 undetectability. The attack presence
// ratio is the x-axis of Fig. 7: among paths containing a victim link, the
// fraction that also carry an attacker.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

// True iff every path in `paths` containing a link from `victims` also
// contains a node from `attackers` (perfect cut). Vacuously true when no
// path contains a victim link.
bool is_perfect_cut(const std::vector<Path>& paths,
                    const std::vector<NodeId>& attackers,
                    const std::vector<LinkId>& victims);

struct PresenceRatio {
  std::size_t victim_paths = 0;    // paths containing ≥ 1 victim link
  std::size_t covered_paths = 0;   // of those, paths also carrying an attacker
  double ratio() const {
    return victim_paths == 0
               ? 1.0  // vacuous cut: nothing to cover
               : static_cast<double>(covered_paths) /
                     static_cast<double>(victim_paths);
  }
};

PresenceRatio attack_presence_ratio(const std::vector<Path>& paths,
                                    const std::vector<NodeId>& attackers,
                                    const std::vector<LinkId>& victims);

}  // namespace scapegoat
