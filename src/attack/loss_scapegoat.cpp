#include "attack/loss_scapegoat.hpp"

#include <algorithm>
#include <ostream>

#include "obs/obs.hpp"
#include "util/random.hpp"

namespace scapegoat {

namespace {

using robust::Error;
using robust::ErrorCode;

// Disjoint seed streams: the rehearsal and the honest evaluation must never
// share a probe schedule, or the planner would be grading its own homework.
constexpr std::uint64_t kLossPlanSalt = 0x10556e1a11ull;
constexpr std::uint64_t kLossEvalSalt = 0x10553e7a1ull;

// Every link of the chain realizing logical link `node` is abnormal.
bool chain_all_abnormal(const MulticastTree& tree, std::size_t node,
                        const std::vector<LinkState>& states) {
  const MulticastTreeNode& n = tree.nodes[node];
  if (n.chain.empty()) return false;
  for (LinkId l : n.chain)
    if (states[l] != LinkState::kAbnormal) return false;
  return true;
}

// No link of the attacker's own incoming chain is blamed. A root attacker
// has no incoming chain and is vacuously clean.
bool chain_none_abnormal(const MulticastTree& tree, std::size_t node,
                         const std::vector<LinkState>& states) {
  for (LinkId l : tree.nodes[node].chain)
    if (states[l] == LinkState::kAbnormal) return false;
  return true;
}

robust::Status validate_setup(const Graph& g, const MulticastTree& tree,
                              std::size_t attacker, std::size_t victim_child,
                              LossAttackFamily family,
                              const LossScapegoatOptions& opt) {
  if (!tree.valid())
    return Error{ErrorCode::kInvalidInput, "invalid multicast tree"};
  if (attacker >= tree.num_nodes() || tree.nodes[attacker].is_leaf())
    return Error{ErrorCode::kInvalidInput,
                 "attacker must be an internal tree node"};
  const auto& kids = tree.nodes[attacker].children;
  if (std::find(kids.begin(), kids.end(), victim_child) == kids.end())
    return Error{ErrorCode::kInvalidInput,
                 "victim must be a child subtree of the attacker"};
  if (family == LossAttackFamily::kSplitFraming && kids.size() < 2)
    return Error{ErrorCode::kInvalidInput,
                 "split framing needs >= 2 child subtrees"};
  if (!opt.link_delivery.empty() &&
      opt.link_delivery.size() < g.num_links())
    return Error{ErrorCode::kInvalidInput,
                 "link_delivery shorter than the graph's links"};
  return robust::ok_status();
}

simnet::MulticastAdversary make_adversary(const MulticastTree& tree,
                                          std::size_t attacker,
                                          std::size_t victim_child,
                                          std::size_t split_sibling,
                                          LossAttackFamily family,
                                          double rate) {
  simnet::MulticastAdversary adv;
  adv.drop_rate = rate;
  adv.rules.push_back({attacker, victim_child});
  if (family == LossAttackFamily::kSplitFraming) {
    adv.rules.push_back({attacker, split_sibling});
    adv.exclusive = true;
  }
  (void)tree;
  return adv;
}

}  // namespace

std::string to_string(LossAttackFamily family) {
  switch (family) {
    case LossAttackFamily::kSubtreeFraming:
      return "subtree_framing";
    case LossAttackFamily::kSplitFraming:
      return "split_framing";
  }
  return "?";
}

std::optional<LossAttackFamily> loss_attack_family_from_string(
    std::string_view s) {
  if (s == "subtree_framing") return LossAttackFamily::kSubtreeFraming;
  if (s == "split_framing") return LossAttackFamily::kSplitFraming;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, LossAttackFamily family) {
  return os << to_string(family);
}

robust::Expected<LossScapegoatPlan> plan_loss_scapegoat(
    const Graph& g, const MulticastTree& tree, std::size_t attacker,
    std::size_t victim_child, LossAttackFamily family,
    const LossScapegoatOptions& opt) {
  obs::ScopedSpan span("attack.loss.plan");
  if (robust::Status st =
          validate_setup(g, tree, attacker, victim_child, family, opt);
      !st.ok())
    return st.error();
  if (opt.drop_rates.empty())
    return Error{ErrorCode::kEmptyInput, "no candidate drop rates"};
  for (double r : opt.drop_rates)
    if (!(r > 0.0) || r > 1.0)
      return Error{ErrorCode::kInvalidInput, "drop rates must be in (0, 1]"};

  LossScapegoatPlan plan;
  plan.family = family;
  plan.attacker = attacker;
  plan.victim_child = victim_child;
  if (family == LossAttackFamily::kSplitFraming) {
    // The sibling carrying the second rule: the first child that is not the
    // victim (deterministic — the plan must not depend on map order).
    for (std::size_t c : tree.nodes[attacker].children)
      if (c != victim_child) {
        plan.split_sibling = c;
        break;
      }
  }

  simnet::MulticastProbeOptions probe_opt;
  probe_opt.probes = opt.probes;
  probe_opt.seed = derive_seed(opt.seed, kLossPlanSalt);
  probe_opt.link_delivery = opt.link_delivery;
  // The planner never needs the joint histogram.
  probe_opt.histogram_max_leaves = 0;

  for (double rate : opt.drop_rates) {
    // Exclusive rules partition one uniform draw; keep the partition valid.
    if (family == LossAttackFamily::kSplitFraming && 2.0 * rate > 1.0) break;
    simnet::MulticastAdversary adv = make_adversary(
        tree, attacker, victim_child, plan.split_sibling, family, rate);
    probe_opt.adversary = &adv;
    const simnet::MulticastProbeRun run =
        simnet::run_multicast_probes(tree, probe_opt);
    auto fit = solve_multicast_mle(g.num_links(), tree, run.obs, opt.mle);
    if (!fit.ok()) continue;  // e.g. a dead leaf at extreme rates
    const std::vector<LinkState> states =
        classify_all(fit->x, opt.thresholds);
    if (!chain_all_abnormal(tree, victim_child, states)) continue;
    if (!chain_none_abnormal(tree, attacker, states)) continue;
    if (family == LossAttackFamily::kSubtreeFraming &&
        fit->residual > opt.stealth_alpha)
      continue;
    plan.feasible = true;
    plan.drop_rate = rate;
    plan.adversary = std::move(adv);
    plan.planned_residual = fit->residual;
    plan.planned_clamped = fit->clamped;
    obs::count("attack.loss.plan_feasible");
    return plan;
  }
  obs::count("attack.loss.plan_infeasible");
  return plan;  // feasible == false: no rate in the list frames the victim
}

robust::Expected<LossScapegoatOutcome> evaluate_loss_scapegoat(
    const Graph& g, const MulticastTree& tree, const LossScapegoatPlan& plan,
    const LossScapegoatOptions& opt) {
  obs::ScopedSpan span("attack.loss.evaluate");
  if (!plan.feasible)
    return Error{ErrorCode::kInvalidInput, "plan is infeasible"};
  if (robust::Status st = validate_setup(g, tree, plan.attacker,
                                         plan.victim_child, plan.family, opt);
      !st.ok())
    return st.error();

  simnet::MulticastProbeOptions probe_opt;
  probe_opt.probes = opt.probes;
  probe_opt.seed = derive_seed(opt.seed, kLossEvalSalt);
  probe_opt.link_delivery = opt.link_delivery;
  probe_opt.adversary = &plan.adversary;
  probe_opt.histogram_max_leaves = 0;
  const simnet::MulticastProbeRun run =
      simnet::run_multicast_probes(tree, probe_opt);

  // The honest defender: tree-native MLE with the joint OR counts attached —
  // estimate and statistic are exactly what a deployed defender computes.
  MulticastMleEstimator defender(g, tree, opt.mle);
  defender.ingest(run.obs);
  const Vector y = run.leaf_loss_metrics(opt.mle.pass_floor);

  LossScapegoatOutcome out;
  out.x_estimated = defender.estimate(y);
  out.states = classify_all(out.x_estimated, opt.thresholds);
  out.residual = defender.residual_statistic(y);
  out.detected = out.residual > opt.defender_alpha;
  out.victim_blamed = chain_all_abnormal(tree, plan.victim_child, out.states);
  out.attacker_clean = chain_none_abnormal(tree, plan.attacker, out.states);
  obs::count(out.detected ? "attack.loss.detected" : "attack.loss.undetected");
  return out;
}

}  // namespace scapegoat
