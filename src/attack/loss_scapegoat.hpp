// Loss-domain scapegoating — the grey-hole attack re-asked against the
// EstimatorKind::kMulticastMle defender (DESIGN.md §15).
//
// The adversary is a compromised router at an internal tree node. It cannot
// forge measurement reports (the multicast OR counts are taken at the
// leaves), but it forwards selectively: per probe it may drop the copy sent
// into a chosen child subtree. Two families:
//
//   * kSubtreeFraming — one rule {attacker → victim child}, independent
//     per-probe coin. The drops are statistically indistinguishable from
//     i.i.d. loss on the victim logical link, so the gamma-recursion MLE
//     blames the victim chain's physical links (innocent relays included),
//     the fit interpolates every OR statistic, and the loss residual stays
//     at sampling noise — the feasible-and-stealthy cell.
//   * kSplitFraming — rules on the victim child AND a sibling, driven by
//     ONE shared per-probe coin that fires at most one rule
//     (MulticastAdversary::exclusive). No per-link loss assignment
//     reproduces that anti-correlation: the closed-form fit needs a reach
//     probability Ã > 1 at the attacker, the clamp breaks interpolation and
//     the residual stays bounded away from zero — feasible for blame, but
//     detectable. The pair is the loss-domain restatement of the paper's
//     feasibility/detectability boundary.
//
// plan_loss_scapegoat searches the ascending drop-rate list for the
// smallest rate whose simulated attack (planning seed) makes the defender's
// own MLE classify every victim-chain link abnormal while the attacker's
// chain stays un-blamed — the attacker rehearsing against a copy of the
// defender, exactly like the delay-domain LPs optimize against G = R⁺. For
// kSubtreeFraming the planner additionally requires the rehearsal residual
// to stay under stealth_alpha (a split-framing plan is accepted loud).
//
// evaluate_loss_scapegoat replays the accepted plan on a FRESH probe seed
// through an honest MulticastMleEstimator defender (ingest → estimate →
// residual_statistic), so reported outcomes are what the defender actually
// computes, never the planner's rehearsal.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "robust/expected.hpp"
#include "simnet/multicast_probe.hpp"
#include "tomography/link_state.hpp"
#include "tomography/loss_metric.hpp"
#include "tomography/multicast_mle.hpp"

namespace scapegoat {

enum class LossAttackFamily {
  kSubtreeFraming,  // independent drops — consistent, MLE-invisible
  kSplitFraming,    // exclusive anti-correlated drops — infeasible fit
};

std::string to_string(LossAttackFamily family);
std::optional<LossAttackFamily> loss_attack_family_from_string(
    std::string_view s);
std::ostream& operator<<(std::ostream& os, LossAttackFamily family);

struct LossScapegoatOptions {
  // Ascending candidate drop rates; the planner takes the first that blames
  // the victim (smallest footprint wins, like the delay LPs' minimal Δ).
  std::vector<double> drop_rates = {0.02, 0.05, 0.08, 0.12,
                                    0.16, 0.20, 0.25, 0.30};
  std::size_t probes = 4000;
  std::uint64_t seed = 0;
  // Honest per-physical-link delivery probabilities (LinkId-indexed; empty
  // means lossless) — the background the attack must stand out against.
  std::vector<double> link_delivery;
  MulticastMleOptions mle;
  // Definition-1 thresholds in the loss-metric domain; defaults to
  // loss_thresholds(): ≥ 0.99 delivery normal, < 0.90 abnormal.
  StateThresholds thresholds = loss_thresholds();
  // Planner-side stealth cap on the rehearsal residual (probability units),
  // applied to kSubtreeFraming only.
  double stealth_alpha = 0.05;
  // The honest defender's detector threshold, same units.
  double defender_alpha = 0.05;
};

struct LossScapegoatPlan {
  bool feasible = false;
  LossAttackFamily family = LossAttackFamily::kSubtreeFraming;
  std::size_t attacker = 0;      // tree node hosting the grey hole
  std::size_t victim_child = 0;  // framed child subtree (tree index)
  std::size_t split_sibling = 0; // second rule's subtree (kSplitFraming)
  double drop_rate = 0.0;
  // Ready for run_multicast_probes; empty rules when infeasible.
  simnet::MulticastAdversary adversary;
  // Rehearsal diagnostics at the accepted rate.
  double planned_residual = 0.0;
  std::size_t planned_clamped = 0;
};

struct LossScapegoatOutcome {
  bool victim_blamed = false;   // every victim-chain link abnormal
  bool attacker_clean = false;  // no attacker-chain link abnormal
  bool detected = false;        // residual_statistic > defender_alpha
  double residual = 0.0;        // probability units
  Vector x_estimated;           // defender's per-physical-link loss metrics
  std::vector<LinkState> states;
};

// Searches opt.drop_rates (ascending) for the smallest feasible plan.
// Infeasible search is NOT an error ({feasible = false} comes back);
// errors are structural: kInvalidInput for an invalid tree, an attacker
// that is not an internal node, a victim that is not the attacker's child,
// a kSplitFraming attacker with < 2 children, or link_delivery shorter
// than the tree's physical links; kEmptyInput for an empty rate list.
robust::Expected<LossScapegoatPlan> plan_loss_scapegoat(
    const Graph& g, const MulticastTree& tree, std::size_t attacker,
    std::size_t victim_child, LossAttackFamily family,
    const LossScapegoatOptions& opt = {});

// Replays the plan on a fresh probe seed through an honest tree-native
// MulticastMleEstimator (joint OR counts ingested). kInvalidInput when the
// plan is infeasible or does not belong to this tree.
robust::Expected<LossScapegoatOutcome> evaluate_loss_scapegoat(
    const Graph& g, const MulticastTree& tree, const LossScapegoatPlan& plan,
    const LossScapegoatOptions& opt = {});

}  // namespace scapegoat
