#include "attack/manipulation.hpp"

#include <algorithm>
#include <cassert>

#include "tomography/routing_matrix.hpp"

namespace scapegoat {

std::vector<LinkId> AttackContext::controlled_links() const {
  assert(graph != nullptr);
  return graph->incident_links(attackers);
}

std::vector<std::size_t> AttackContext::attacker_path_indices() const {
  assert(estimator != nullptr);
  return paths_through_nodes(estimator->paths(), attackers);
}

Vector AttackContext::true_measurements() const {
  assert(estimator != nullptr);
  assert(x_true.size() == estimator->num_links());
  return path_metrics(estimator->paths(), x_true);
}

bool satisfies_constraint1(const AttackContext& ctx, const Vector& m,
                           double tol) {
  assert(ctx.estimator != nullptr);
  if (m.size() != ctx.estimator->num_paths()) return false;
  const std::vector<std::size_t> support = ctx.attacker_path_indices();
  std::vector<bool> allowed(m.size(), false);
  for (std::size_t i : support) allowed[i] = true;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] < -tol) return false;                 // (i) m ⪰ 0
    if (!allowed[i] && std::abs(m[i]) > tol) return false;  // (ii) support
  }
  return true;
}

bool verify_chosen_victim_result(const AttackContext& ctx,
                                 const AttackResult& result) {
  if (!result.success) return false;
  if (!satisfies_constraint1(ctx, result.m)) return false;

  // Re-run tomography from scratch on the observed measurements.
  const Vector y = ctx.true_measurements();
  const Vector y_prime = y + result.m;
  const Vector x_hat = ctx.estimator->estimate(y_prime);
  const std::vector<LinkState> states = classify_all(x_hat, ctx.thresholds);

  for (LinkId l : ctx.controlled_links())
    if (states[l] != LinkState::kNormal) return false;
  for (LinkId l : result.victims)
    if (states[l] != LinkState::kAbnormal) return false;

  // L_m ∩ L_s = ∅ (Eq. 7).
  const std::vector<LinkId> lm = ctx.controlled_links();
  for (LinkId l : result.victims)
    if (std::find(lm.begin(), lm.end(), l) != lm.end()) return false;

  // Per-path cap from §V-A.
  for (double mi : result.m)
    if (mi > ctx.per_path_cap + 1e-6) return false;
  return true;
}

}  // namespace scapegoat
