// Attack manipulation model — §III-B of the paper.
//
// An attacker set V_m can add non-negative delay to exactly the measurement
// paths it sits on: the manipulation vector m satisfies Constraint 1
//   (i)  m ⪰ 0,
//   (ii) m_i = 0 whenever no attacker node lies on path P_i,
// and the observed measurements become y′ = y + m. Damage is ‖m‖₁ (Def. 2).
// `AttackContext` bundles everything every strategy needs: the tomography
// system under attack, the ground-truth link metrics, the attacker set and
// its derived quantities, the link-state thresholds, and the practical
// per-path delay cap from §V-A.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "lp/simplex.hpp"
#include "tomography/estimator_interface.hpp"
#include "tomography/link_state.hpp"

namespace scapegoat {

struct AttackContext {
  const Graph* graph = nullptr;
  // The defender under attack — any Estimator family. The attack LPs model
  // the least-squares response through pseudo_inverse() (a property of R
  // shared by all families); AttackResult::x_estimated always reports what
  // THIS estimator answers, so a sparse-recovery defender's reaction is
  // evaluated faithfully.
  const Estimator* estimator = nullptr;
  Vector x_true;                  // real link metrics (no attack)
  std::vector<NodeId> attackers;  // V_m
  StateThresholds thresholds;     // b_l / b_u
  double per_path_cap = 2000.0;   // max delay added to one path (§V-A)
  double margin = 1.0;            // slack for strict </> state constraints, ms
  // LP solver options for every attack LP built from this context —
  // lp_options.backend is the per-caller tableau/revised override.
  lp::SimplexOptions lp_options;

  // L_m: all links incident to an attacker node.
  std::vector<LinkId> controlled_links() const;
  // Indices of measurement paths with at least one attacker on them — the
  // support Constraint 1 allows m to have.
  std::vector<std::size_t> attacker_path_indices() const;
  // True end-to-end measurements y = R x_true.
  Vector true_measurements() const;
};

// Constraint-1 check for a candidate manipulation vector.
bool satisfies_constraint1(const AttackContext& ctx, const Vector& m,
                           double tol = 1e-7);

struct AttackResult {
  bool success = false;
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  Vector m;                       // manipulation vector over all paths
  double damage = 0.0;            // ‖m‖₁
  Vector y_observed;              // y + m as seen by the monitors
  Vector x_estimated;             // what tomography reports under attack
  std::vector<LinkState> states;  // classification of x_estimated
  std::vector<LinkId> victims;    // L_s the attack used
};

// Verifies an AttackResult against its context: Constraint 1 holds, the
// attacker links classify normal (or as required), the victims classify as
// targeted. Used by tests and the experiment harness as an independent
// post-check on LP output.
bool verify_chosen_victim_result(const AttackContext& ctx,
                                 const AttackResult& result);

}  // namespace scapegoat
