#include "attack/max_damage.hpp"

#include <algorithm>

#include "attack/attack_lp.hpp"
#include "attack/chosen_victim.hpp"

namespace scapegoat {

MaxDamageResult max_damage_attack(const AttackContext& ctx,
                                  const MaxDamageOptions& opt) {
  MaxDamageResult out;
  const std::vector<LinkId> lm = ctx.controlled_links();
  auto is_controlled = [&](LinkId l) {
    return std::find(lm.begin(), lm.end(), l) != lm.end();
  };

  // Candidate victims: non-attacker links the attacker can conceivably push
  // past the abnormal threshold (LP relaxation bound).
  std::vector<LinkId> pool;
  if (opt.candidate_victims) {
    pool = *opt.candidate_victims;
  } else {
    pool.resize(ctx.estimator->num_links());
    for (LinkId l = 0; l < pool.size(); ++l) pool[l] = l;
  }
  std::vector<LinkId> candidates;
  for (LinkId l : pool) {
    if (is_controlled(l)) continue;
    if (max_estimate_push(ctx, l) <= ctx.thresholds.upper + ctx.margin)
      continue;
    candidates.push_back(l);
    if (candidates.size() >= opt.max_candidates) break;
  }

  // Single-victim LPs.
  std::vector<std::pair<LinkId, AttackResult>> feasible;
  for (LinkId v : candidates) {
    AttackResult r = chosen_victim_attack(ctx, {v}, opt.mode, opt.collateral);
    if (r.success) feasible.emplace_back(v, std::move(r));
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const auto& a, const auto& b) {
              return a.second.damage > b.second.damage;
            });
  for (const auto& [v, r] : feasible)
    out.single_victim_damages.emplace_back(v, r.damage);
  if (feasible.empty()) return out;

  out.best = feasible.front().second;
  if (!opt.joint_victims) return out;

  // Greedy victim-set growth: adding a victim adds an abnormality constraint
  // (never relaxes the LP), but can still *increase* optimal damage when the
  // paths that scapegoat it admit more manipulation than the single-victim
  // optimum used. Keep additions that stay feasible and improve damage.
  std::vector<LinkId> current = {feasible.front().first};
  for (std::size_t k = 1; k < feasible.size() && current.size() < opt.max_victims;
       ++k) {
    std::vector<LinkId> trial = current;
    trial.push_back(feasible[k].first);
    AttackResult r =
        chosen_victim_attack(ctx, trial, opt.mode, opt.collateral);
    if (r.success && r.damage >= out.best.damage) {
      out.best = std::move(r);
      current = std::move(trial);
    }
  }
  return out;
}

}  // namespace scapegoat
