// Maximum-damage scapegoating — Eq. (8) of the paper.
//
// The attacker is free to pick the victim set: maximize ‖m‖₁ over both m and
// L_s ⊂ L. Exhaustive search over victim subsets is exponential, so the
// implementation (a) prunes candidate victims the attacker cannot possibly
// push past b_u (max_estimate_push bound), (b) solves the chosen-victim LP
// for each surviving single-link victim, and (c) optionally grows a joint
// victim set greedily in decreasing single-victim damage order, keeping an
// addition only when the joint LP stays feasible and does not reduce damage.

#pragma once

#include <vector>

#include <optional>

#include "attack/attack_lp.hpp"
#include "attack/manipulation.hpp"

namespace scapegoat {

struct MaxDamageOptions {
  bool joint_victims = true;        // try multi-link victim sets (step c)
  std::size_t max_victims = 8;      // cap on |L_s| during greedy growth
  std::size_t max_candidates = 64;  // solve at most this many single-victim LPs
  ManipulationMode mode = ManipulationMode::kUnrestricted;
  CollateralPolicy collateral = CollateralPolicy::kUnconstrained;
  // When set, only these links are considered as victims (e.g. restrict to
  // perfectly-cut links for a stealth-preserving attacker).
  std::optional<std::vector<LinkId>> candidate_victims;
};

struct MaxDamageResult {
  AttackResult best;  // success == false if no victim works at all
  // Damage per feasible single victim, sorted descending (diagnostics and
  // the Fig. 5 narrative "highest in all chosen-victim attacks").
  std::vector<std::pair<LinkId, double>> single_victim_damages;
};

MaxDamageResult max_damage_attack(const AttackContext& ctx,
                                  const MaxDamageOptions& opt = {});

}  // namespace scapegoat
