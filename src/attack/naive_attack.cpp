#include "attack/naive_attack.hpp"

#include <cassert>

namespace scapegoat {

AttackResult naive_delay_attack(const AttackContext& ctx,
                                const std::vector<double>& delays_ms) {
  assert(ctx.estimator != nullptr && ctx.estimator->ok());
  assert(delays_ms.size() == ctx.attackers.size());

  AttackResult result;
  const auto& paths = ctx.estimator->paths();
  result.m = Vector(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double hold = 0.0;
    for (std::size_t k = 0; k < ctx.attackers.size(); ++k)
      if (paths[i].contains_node(ctx.attackers[k])) hold += delays_ms[k];
    result.m[i] = hold;
  }
  result.damage = result.m.norm1();
  result.y_observed = ctx.true_measurements() + result.m;
  result.x_estimated = ctx.estimator->estimate(result.y_observed);
  result.states = classify_all(result.x_estimated, ctx.thresholds);
  // "Success" here only means the manipulation was applied — the whole
  // point of this baseline is that it does NOT hide the attacker.
  result.success = result.damage > 0.0;
  result.status = lp::SolveStatus::kOptimal;
  return result;
}

AttackResult naive_delay_attack(const AttackContext& ctx, double delay_ms) {
  return naive_delay_attack(
      ctx, std::vector<double>(ctx.attackers.size(), delay_ms));
}

}  // namespace scapegoat
