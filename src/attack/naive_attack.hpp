// The naive (non-scapegoating) attacker — §II-C's strawman, implemented as
// the baseline the paper argues against.
//
// "A straightforward attack is that they delay or drop all packets routed
// to them. However, it is easy for the network operator to detect that the
// links connecting to these nodes suffer long delay" — this module makes
// that concrete: each malicious node v holds EVERY probe it forwards by a
// fixed d_v (it cannot tell which measurement path a probe belongs to, so
// it cannot target; this is exactly what an attacker is reduced to when the
// operator hides path information, the first line of defense in §VI).
//
// The resulting manipulation is m_i = Σ_{v ∈ V_m ∩ P_i} d_v, which
// tomography attributes straight to the attacker-adjacent links:
// scapegoating fails and the attacker exposes itself.

#pragma once

#include <vector>

#include "attack/manipulation.hpp"

namespace scapegoat {

// Per-node delays for the naive attacker; `delays[k]` pairs with
// `ctx.attackers[k]`. Uniform helper below.
AttackResult naive_delay_attack(const AttackContext& ctx,
                                const std::vector<double>& delays_ms);

// Every attacker holds every probe by the same `delay_ms`.
AttackResult naive_delay_attack(const AttackContext& ctx, double delay_ms);

}  // namespace scapegoat
