#include "attack/obfuscation.hpp"

#include <algorithm>
#include <cmath>

#include "attack/attack_lp.hpp"

namespace scapegoat {

namespace {

// Total upward influence the attacker has on a link's estimate — the greedy
// drop order: links it can barely move are the ones that make the band
// constraints infeasible.
double upward_influence(const AttackContext& ctx, LinkId link) {
  const Matrix& g = ctx.estimator->pseudo_inverse();
  double acc = 0.0;
  for (std::size_t i : ctx.attacker_path_indices()) {
    const double c = g(link, i);
    if (c > 0.0) acc += c;
  }
  return acc;
}

}  // namespace

AttackResult obfuscation_attack(const AttackContext& ctx,
                                const ObfuscationOptions& opt) {
  const std::vector<LinkId> lm = ctx.controlled_links();
  auto is_controlled = [&](LinkId l) {
    return std::find(lm.begin(), lm.end(), l) != lm.end();
  };

  // Initial L_s: every non-attacker link the relaxation says can reach the
  // uncertain band, ordered by decreasing upward influence so the greedy
  // shrink removes the weakest candidates first.
  std::vector<LinkId> pool;
  if (opt.candidate_victims) {
    pool = *opt.candidate_victims;
  } else {
    pool.resize(ctx.estimator->num_links());
    for (LinkId l = 0; l < pool.size(); ++l) pool[l] = l;
  }
  std::vector<LinkId> victims;
  for (LinkId l : pool) {
    if (is_controlled(l)) continue;
    if (max_estimate_push(ctx, l) < ctx.thresholds.lower + ctx.margin)
      continue;
    victims.push_back(l);
  }
  std::sort(victims.begin(), victims.end(), [&](LinkId a, LinkId b) {
    return upward_influence(ctx, a) > upward_influence(ctx, b);
  });
  if (victims.size() > opt.max_victims) victims.resize(opt.max_victims);

  // Greedy shrink until feasible or too small to count as obfuscation.
  while (victims.size() >= opt.min_victims) {
    std::vector<LinkBand> bands;
    // Eq. (10): every link of L_o = L_s ∪ L_m lands in [b_l, b_u].
    for (LinkId l : lm)
      bands.push_back({l, ctx.thresholds.lower + ctx.margin,
                       ctx.thresholds.upper - ctx.margin});
    for (LinkId v : victims)
      bands.push_back({v, ctx.thresholds.lower + ctx.margin,
                       ctx.thresholds.upper - ctx.margin});

    AttackResult r = opt.mode == ManipulationMode::kConsistent
                         ? solve_consistent_attack_lp(ctx, bands, victims)
                         : solve_attack_lp(ctx, bands, victims);
    if (r.success) return r;
    victims.pop_back();  // drop the least-influenceable candidate
  }

  AttackResult fail;
  fail.status = lp::SolveStatus::kInfeasible;
  return fail;
}

}  // namespace scapegoat
