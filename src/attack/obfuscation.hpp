// Obfuscation — Eq. (9)-(11) of the paper.
//
// Instead of manufacturing a clear scapegoat, the attacker pushes a
// substantial set of links L_o = L_s ∪ L_m into the *uncertain* band
// [b_l, b_u] so the operator cannot tell which link is actually at fault,
// while still maximizing damage. The victim set L_s is not given: we start
// from every link the attacker can influence upward past b_l and greedily
// drop the least-influenceable links until the LP is feasible. §V-C2 counts
// an obfuscation successful only when at least `min_victims` victim links
// reach the uncertain state.

#pragma once

#include <optional>
#include <vector>

#include "attack/attack_lp.hpp"
#include "attack/manipulation.hpp"

namespace scapegoat {

struct ObfuscationOptions {
  std::size_t min_victims = 5;  // success needs |L_s| ≥ this (§V-C2)
  std::size_t max_victims = 64; // cap on the initial candidate set
  ManipulationMode mode = ManipulationMode::kUnrestricted;
  // When set, only these links may join L_s (e.g. restrict to perfectly-cut
  // links so the attack stays undetectable under Theorem 3).
  std::optional<std::vector<LinkId>> candidate_victims;
};

AttackResult obfuscation_attack(const AttackContext& ctx,
                                const ObfuscationOptions& opt = {});

}  // namespace scapegoat
