#include "attack/sparse_aware.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>

#include "lp/model.hpp"
#include "obs/obs.hpp"

namespace scapegoat {

std::string to_string(LeakageScope scope) {
  switch (scope) {
    case LeakageScope::kAttackerPaths:
      return "attacker_paths";
    case LeakageScope::kAllPaths:
      return "all_paths";
  }
  return "unknown";
}

std::optional<LeakageScope> leakage_scope_from_string(std::string_view s) {
  if (s == "attacker_paths") return LeakageScope::kAttackerPaths;
  if (s == "all_paths") return LeakageScope::kAllPaths;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, LeakageScope scope) {
  return os << to_string(scope);
}

AttackResult sparse_aware_attack(const AttackContext& ctx,
                                 const std::vector<LinkId>& victims,
                                 const SparseAwareOptions& opt) {
  assert(ctx.estimator != nullptr);
  AttackResult result;
  result.victims = victims;

  const std::vector<LinkId> lm = ctx.controlled_links();
  // Eq. (7): L_m ∩ L_s = ∅ — a link can't be both hidden and scapegoated.
  for (LinkId v : victims) {
    if (std::find(lm.begin(), lm.end(), v) != lm.end()) {
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
  }

  obs::count("attack.sparse_aware.solves");
  const double eps = std::max(0.0, opt.epsilon_ms);
  const Matrix& r = ctx.estimator->r();
  const std::size_t num_paths = ctx.estimator->num_paths();

  // Δx̂ variables, one per banded link. Boxes are the link-state bands
  // shifted by the true metric, intersected with x̂′ ⪰ 0 (a target the
  // defender's nonnegative LP could never adopt is useless).
  lp::Model model(lp::Sense::kMaximize);
  std::vector<LinkId> banded_links;
  auto add_delta = [&](LinkId link, double lower, double upper) -> bool {
    const double base = ctx.x_true[link];
    const double lb = std::max(lower - base, -base);
    const double ub =
        std::isfinite(upper) ? upper - base : lp::kInfinity;
    if (lb > ub) return false;
    model.add_variable(lb, ub, 0.0);
    banded_links.push_back(link);
    return true;
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (LinkId l : lm) {
    // Eq. (5): attacker links classify normal.
    if (!add_delta(l, 0.0, ctx.thresholds.lower - ctx.margin)) {
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
  }
  for (LinkId v : victims) {
    // Eq. (6): victims classify abnormal.
    if (!add_delta(v, ctx.thresholds.upper + ctx.margin, kInf)) {
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
  }

  // One m variable per attacker path, the damage objective.
  std::vector<bool> has_attacker(num_paths, false);
  for (std::size_t i : ctx.attacker_path_indices()) has_attacker[i] = true;
  std::vector<std::size_t> m_var(num_paths, SIZE_MAX);
  for (std::size_t i = 0; i < num_paths; ++i)
    if (has_attacker[i])
      m_var[i] = model.add_variable(0.0, ctx.per_path_cap, 1.0);

  for (std::size_t i = 0; i < num_paths; ++i) {
    std::vector<lp::Term> terms;
    for (std::size_t k = 0; k < banded_links.size(); ++k)
      if (r(i, banded_links[k]) != 0.0) terms.push_back({k, 1.0});
    if (has_attacker[i]) {
      // |(RΔx̂)ᵢ − mᵢ| ≤ ε.
      terms.push_back({m_var[i], -1.0});
      model.add_constraint(terms, lp::RowType::kLessEqual, eps);
      model.add_constraint(std::move(terms), lp::RowType::kGreaterEqual,
                           -eps);
    } else {
      if (terms.empty()) continue;  // (RΔx̂)ᵢ ≡ 0: inside any budget
      const double row_eps =
          opt.scope == LeakageScope::kAllPaths ? eps : 0.0;
      if (row_eps == 0.0) {
        model.add_constraint(std::move(terms), lp::RowType::kEqual, 0.0);
      } else {
        model.add_constraint(terms, lp::RowType::kLessEqual, row_eps);
        model.add_constraint(std::move(terms), lp::RowType::kGreaterEqual,
                             -row_eps);
      }
    }
  }

  const lp::Solution sol = lp::solve(model, ctx.lp_options);
  result.status = sol.status;
  if (!sol.optimal()) {
    obs::count("attack.sparse_aware.infeasible");
    return result;
  }

  result.m = Vector(num_paths);
  for (std::size_t i = 0; i < num_paths; ++i)
    if (m_var[i] != SIZE_MAX) result.m[i] = std::max(0.0, sol.x[m_var[i]]);
  result.damage = result.m.norm1();
  result.y_observed = ctx.true_measurements() + result.m;
  // The defender the context carries answers — least squares or sparse
  // recovery, whichever the scenario deployed.
  result.x_estimated = ctx.estimator->estimate(result.y_observed);
  result.states = classify_all(result.x_estimated, ctx.thresholds);
  result.success = true;
  obs::count("attack.sparse_aware.successes");
  return result;
}

}  // namespace scapegoat
