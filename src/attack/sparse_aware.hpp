// Sparsity-aware scapegoating — the attack re-asked against the
// EstimatorKind::kSparseRecovery defender (DESIGN.md §14).
//
// Against the least-squares defender the Theorem-1 consistent construction
// must satisfy R x̂′ = y′ exactly. A sparse-recovery defender with an ∞-ball
// tolerance ε accepts any y′ admitting SOME nonnegative x with
// ‖Rx − y′‖∞ ≤ ε, so the adversary's consistency constraint relaxes to
// "the target estimate explains y′ to within ε per path":
//
//   max Σᵢ mᵢ  over  Δx̂ (banded links), m (attacker paths)
//   s.t. |（RΔx̂)ᵢ − mᵢ| ≤ ε          on attacker paths (mᵢ ∈ [0, cap]),
//        |（RΔx̂)ᵢ| ≤ ε               on attacker-free paths (mᵢ ≡ 0),
//        x_true + Δx̂ keeps attacker links normal, victims abnormal,
//        x_true + Δx̂ ⪰ 0            (else the defender's LP rejects it).
//
// ε = 0 degenerates to the consistent construction (with the extra x ⪰ 0
// target restriction). ε > 0 buys the attacker two things: up to ε extra
// damage on every controlled path, and feasibility under slightly-imperfect
// cuts where an attacker-free path sees a small nonzero (RΔx̂)ᵢ.
//
// Honest-evaluation caveat: feasibility guarantees a valid point inside the
// defender's ε-ball exists — not that the defender's min-‖x − prior‖₁ fit
// picks it. AttackResult::x_estimated is therefore materialized through
// ctx.estimator->estimate(y′), i.e. the defender the context actually
// carries, and callers must judge success from the reported states.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/manipulation.hpp"

namespace scapegoat {

// Where the attacker spends its ε leakage budget.
enum class LeakageScope {
  kAttackerPaths,  // attacker-free paths stay exactly consistent (stealthy
                   // even against an equality-mode sparse defender there)
  kAllPaths,       // ±ε everywhere — relaxes the perfect-cut requirement
};

std::string to_string(LeakageScope scope);
std::optional<LeakageScope> leakage_scope_from_string(std::string_view s);
std::ostream& operator<<(std::ostream& os, LeakageScope scope);

struct SparseAwareOptions {
  // Per-path leakage budget. Stealth against a sparse defender with ball
  // radius ε_def requires epsilon_ms ≤ ε_def.
  double epsilon_ms = 10.0;
  LeakageScope scope = LeakageScope::kAllPaths;
};

// Solves the sparsity-aware chosen-victim LP above. Infeasible (success ==
// false) when no target estimate within the leakage budget frames the
// victims — e.g. a badly imperfect cut, exactly like the consistent LP.
AttackResult sparse_aware_attack(const AttackContext& ctx,
                                 const std::vector<LinkId>& victims,
                                 const SparseAwareOptions& opt = {});

}  // namespace scapegoat
