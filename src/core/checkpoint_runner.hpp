// Internal glue between the experiment runners and robust/checkpoint:
// journal session lifecycle, replay bookkeeping, guarded trial execution
// with retry-then-quarantine, and the stop conditions (SIGINT/SIGTERM,
// new-trial quota) that make a sweep resumable instead of lost.
//
// Only core/experiment.cpp and core/fault_experiment.cpp include this; it
// is not part of the public surface.

#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "obs/obs.hpp"
#include "robust/checkpoint.hpp"
#include "robust/watchdog.hpp"
#include "util/random.hpp"

namespace scapegoat::internal {

// Per-trial slot state shared by the runners' replay prepass and fold.
enum class TrialSlot : char { kCompute = 0, kReplayed, kQuarantined };

// Outcome of guarded execution for one computed trial.
struct GuardOutcome {
  bool quarantined = false;
  std::size_t attempts = 1;
};

// Runs one trial attempt function under the per-trial watchdog budget,
// retrying with an identical derived RNG stream when the budget expires,
// then quarantining. `attempt_fn(rng)` must fully overwrite its outputs on
// every attempt (the runners' trials re-derive all randomized state from
// the rng, so a retry is bitwise-equivalent to a fresh first attempt).
template <typename Fn>
GuardOutcome run_trial_guarded(const robust::Budget& budget,
                               std::size_t retries, std::uint64_t seed,
                               Fn&& attempt_fn) {
  GuardOutcome out;
  for (std::size_t attempt = 0;; ++attempt) {
    robust::Watchdog dog(budget);
    robust::ScopedTrialDeadline scope(&dog);
    Rng rng(seed);
    attempt_fn(rng);
    out.attempts = attempt + 1;
    if (!dog.expired()) return out;
    if (attempt >= retries) {
      out.quarantined = true;
      return out;
    }
    obs::count("ckpt.trial_retries");
  }
}

// One checkpointed run: wraps the journal (absent when checkpointing is
// off) and owns the stop conditions. All methods are serial-fold-only.
class CheckpointedRun {
 public:
  CheckpointedRun(const robust::ResilienceOptions& opt,
                  const std::string& experiment, std::uint64_t config_hash)
      : opt_(opt) {
    if (opt.checkpoint_path.empty()) return;
    auto opened = robust::CheckpointJournal::open(
        opt.checkpoint_path, experiment, config_hash, opt.resume);
    if (!opened.ok()) {
      // A sweep that cannot journal is still a correct sweep; warn the
      // operator that resumability is gone and carry on.
      std::cerr << "warning: checkpointing disabled: "
                << opened.error_message() << '\n';
      obs::count("ckpt.open_errors");
      return;
    }
    journal_ = std::move(*opened);
    if (!journal_->info().note.empty())
      std::cerr << "note: checkpoint: " << journal_->info().note << '\n';
  }

  bool enabled() const { return journal_ != nullptr; }

  // Payload for a replayable trial, nullptr when it must be computed. The
  // recorded derived seed must match the one this run would use — a journal
  // whose seeding scheme drifted is recomputed, never trusted.
  const std::string* replay(std::string_view family, std::uint64_t index,
                            std::uint64_t seed) const {
    if (journal_ == nullptr) return nullptr;
    const robust::TrialRecord* rec = journal_->find(family, index);
    if (rec == nullptr || rec->seed != seed) return nullptr;
    return &rec->payload;
  }

  bool is_quarantined(std::string_view family, std::uint64_t index) const {
    return journal_ != nullptr &&
           journal_->find_quarantined(family, index) != nullptr;
  }

  void record(std::string_view family, std::uint64_t index,
              std::uint64_t seed, std::string payload) {
    ++new_trials_;
    if (journal_ == nullptr) return;
    robust::TrialRecord rec;
    rec.family = std::string(family);
    rec.index = index;
    rec.seed = seed;
    rec.payload = std::move(payload);
    journal_->append(rec);
  }

  void record_quarantine(std::string_view family, std::uint64_t index,
                         std::uint64_t seed, std::size_t attempts) {
    ++new_trials_;
    if (journal_ == nullptr) return;
    robust::QuarantineRecord rec;
    rec.family = std::string(family);
    rec.index = index;
    rec.seed = seed;
    rec.code = robust::ErrorCode::kIterationLimit;
    rec.message = "trial watchdog budget expired";
    rec.attempts = attempts;
    journal_->append(rec);
  }

  // Durability point: call at every block boundary (per topology, per
  // wave). A crash after flush() recomputes nothing from that block.
  void flush() {
    if (journal_ != nullptr) journal_->flush();
  }

  // True when the sweep should stop *resumably*: operator signal, or the
  // new-trial quota is spent. Poll at block boundaries, after flush().
  bool should_stop() const {
    if (robust::shutdown_requested()) return true;
    return opt_.stop_after_new_trials != 0 &&
           new_trials_ >= opt_.stop_after_new_trials;
  }

  const robust::Budget& trial_budget() const { return opt_.trial_budget; }
  std::size_t trial_retries() const { return opt_.trial_retries; }

 private:
  robust::ResilienceOptions opt_;
  std::unique_ptr<robust::CheckpointJournal> journal_;
  std::size_t new_trials_ = 0;  // computed (not replayed) this session
};

}  // namespace scapegoat::internal
