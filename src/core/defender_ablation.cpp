#include "core/defender_ablation.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <ostream>

#include "attack/chosen_victim.hpp"
#include "attack/sparse_aware.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "tomography/sparse_recovery.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

std::string to_string(AttackFamily f) {
  switch (f) {
    case AttackFamily::kUnrestricted:
      return "unrestricted";
    case AttackFamily::kConsistent:
      return "consistent";
    case AttackFamily::kSparseAware:
      return "sparse-aware";
  }
  return "?";
}

std::optional<AttackFamily> attack_family_from_string(std::string_view s) {
  if (s == "unrestricted") return AttackFamily::kUnrestricted;
  if (s == "consistent") return AttackFamily::kConsistent;
  if (s == "sparse-aware") return AttackFamily::kSparseAware;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, AttackFamily f) {
  return os << to_string(f);
}

namespace {

constexpr std::uint64_t kAblTopologySalt = 0xab1a70b010ull;
constexpr std::uint64_t kAblTrialSalt = 0xab17121a1ull;
constexpr std::uint64_t kAblCleanSalt = 0xab1c1ea9ull;

// Same growth scheme as experiment.cpp's Fig. 9 helper (kept file-local
// there by design): enclose a connected non-monitor region S; its boundary
// nodes are the attackers, its internal links the perfectly-cut victims.
struct CutSample {
  std::vector<NodeId> attackers;
  std::vector<LinkId> internal_links;
};

std::optional<CutSample> grow_cut(const Scenario& sc, std::size_t target_size,
                                  Rng& rng) {
  const Graph& g = sc.graph();
  std::vector<NodeId> non_monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!sc.is_monitor(v)) non_monitors.push_back(v);
  if (non_monitors.empty()) return std::nullopt;

  const NodeId seed = non_monitors[rng.index(non_monitors.size())];
  std::vector<bool> in_s(g.num_nodes(), false);
  std::vector<NodeId> s{seed};
  in_s[seed] = true;
  for (std::size_t i = 0; i < s.size() && s.size() < target_size; ++i) {
    std::vector<Adjacent> nbrs = g.neighbors(s[i]);
    rng.shuffle(nbrs);
    for (const Adjacent& a : nbrs) {
      if (s.size() >= target_size) break;
      if (in_s[a.neighbor] || sc.is_monitor(a.neighbor)) continue;
      in_s[a.neighbor] = true;
      s.push_back(a.neighbor);
    }
  }

  CutSample out;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (in_s[link.u] && in_s[link.v]) out.internal_links.push_back(l);
  }
  if (out.internal_links.empty()) return std::nullopt;
  std::vector<bool> is_attacker(g.num_nodes(), false);
  for (NodeId v : s) {
    for (const Adjacent& a : g.neighbors(v)) {
      if (!in_s[a.neighbor] && !is_attacker[a.neighbor]) {
        is_attacker[a.neighbor] = true;
        out.attackers.push_back(a.neighbor);
      }
    }
  }
  if (out.attackers.empty()) return std::nullopt;
  return out;
}

// The defender panel for one topology: the scenario's own least-squares
// estimator plus one SparseRecoveryEstimator per swept ε, all anchored to
// the topology's baseline metrics as the prior.
struct DefenderPanel {
  std::vector<std::unique_ptr<SparseRecoveryEstimator>> sparse;
};

DefenderPanel build_panel(const Scenario& sc,
                          const DefenderAblationOptions& opt) {
  DefenderPanel panel;
  for (double eps : opt.defender_epsilons_ms) {
    SparseRecoveryOptions so;
    so.constraint =
        eps > 0.0 ? SparseConstraint::kInfBall : SparseConstraint::kEquality;
    so.epsilon_ms = eps;
    so.prior = sc.x_true();
    panel.sparse.push_back(std::make_unique<SparseRecoveryEstimator>(
        sc.graph(), sc.estimator().paths(), so));
  }
  return panel;
}

struct TrialOut {
  bool counted = false;  // attack succeeded and was evaluated
  bool ls = false;
  std::uint32_t sparse_mask = 0;  // bit e = defender ε index e fired
};

// Plants the k-sparse anomaly over the baseline, runs the family's attack,
// and puts the SAME observed y′ in front of every defender.
TrialOut attack_trial(const Scenario& sc, const DefenderPanel& panel,
                      AttackFamily family, std::size_t k,
                      const DefenderAblationOptions& opt, Rng& rng) {
  TrialOut out;
  const std::size_t num_links = sc.graph().num_links();
  Vector x = sc.x_true();
  for (std::size_t l :
       rng.sample_without_replacement(num_links, std::min(k, num_links)))
    x[l] += opt.anomaly_delay_ms;

  Vector y_observed;
  if (family == AttackFamily::kUnrestricted) {
    const std::size_t na = static_cast<std::size_t>(rng.uniform_int(1, 4));
    AttackContext ctx =
        sc.context(rng.sample_without_replacement(sc.graph().num_nodes(), na));
    ctx.x_true = x;
    const std::vector<std::size_t> on = ctx.attacker_path_indices();
    if (on.empty()) return out;
    y_observed = ctx.true_measurements();
    const double delta = std::min(opt.attack_epsilon_ms, ctx.per_path_cap);
    for (std::size_t i : on) y_observed[i] += delta;
  } else {
    std::optional<CutSample> cut = grow_cut(sc, 8, rng);
    if (!cut) return out;
    AttackContext ctx = sc.context(cut->attackers);
    ctx.x_true = x;
    const LinkId victim =
        cut->internal_links[rng.index(cut->internal_links.size())];
    AttackResult res;
    if (family == AttackFamily::kConsistent) {
      res = chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    } else {
      SparseAwareOptions sa;
      sa.epsilon_ms = opt.attack_epsilon_ms;
      res = sparse_aware_attack(ctx, {victim}, sa);
    }
    if (!res.success) return out;
    y_observed = std::move(res.y_observed);
  }
  if (opt.noise_ms > 0.0)
    for (double& yi : y_observed) yi += rng.uniform(0.0, opt.noise_ms);

  const DetectorOptions det{opt.alpha};
  out.ls = detect_scapegoating(sc.estimator(), y_observed, det).detected;
  for (std::size_t e = 0; e < panel.sparse.size(); ++e)
    if (detect_scapegoating(*panel.sparse[e], y_observed, det).detected)
      out.sparse_mask |= 1u << e;
  out.counted = true;
  return out;
}

// Honest trial: anomaly + noise, no manipulation. `counted` is always true.
TrialOut clean_trial(const Scenario& sc, const DefenderPanel& panel,
                     const DefenderAblationOptions& opt, Rng& rng) {
  TrialOut out;
  const std::size_t num_links = sc.graph().num_links();
  const std::size_t k =
      opt.anomaly_sparsity.empty()
          ? 1
          : opt.anomaly_sparsity[rng.index(opt.anomaly_sparsity.size())];
  Vector x = sc.x_true();
  for (std::size_t l :
       rng.sample_without_replacement(num_links, std::min(k, num_links)))
    x[l] += opt.anomaly_delay_ms;
  Vector y = sc.estimator().r() * x;
  if (opt.noise_ms > 0.0)
    for (double& yi : y) yi += rng.uniform(0.0, opt.noise_ms);

  const DetectorOptions det{opt.alpha};
  out.ls = detect_scapegoating(sc.estimator(), y, det).detected;
  for (std::size_t e = 0; e < panel.sparse.size(); ++e)
    if (detect_scapegoating(*panel.sparse[e], y, det).detected)
      out.sparse_mask |= 1u << e;
  out.counted = true;
  return out;
}

}  // namespace

AblationSeries run_defender_ablation(const DefenderAblationOptions& opt) {
  assert(opt.defender_epsilons_ms.size() <= 32 &&
         "sparse_mask packs one bit per swept ε");
  AblationSeries series;
  series.kind = opt.kind;
  series.epsilons = opt.defender_epsilons_ms;
  series.sparse_false_alarms.assign(opt.defender_epsilons_ms.size(), 0);
  const std::size_t ne = opt.defender_epsilons_ms.size();
  for (AttackFamily f : opt.families) {
    for (std::size_t k : opt.anomaly_sparsity) {
      AblationCell cell;
      cell.family = f;
      cell.sparsity = k;
      cell.sparse_detected.assign(ne, 0);
      cell.ls_only.assign(ne, 0);
      cell.sparse_only.assign(ne, 0);
      series.cells.push_back(std::move(cell));
    }
  }

  const std::uint64_t base =
      opt.seed + (opt.kind == TopologyKind::kWireline ? 0 : 0xab1f1ee5u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  obs::ScopedSpan run_span("core.ablation.run");
  run_span.attr("kind", to_string(opt.kind));

  const std::size_t cells = series.cells.size();
  const std::size_t per_topology = cells * opt.trials_per_cell;

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    Rng topo_rng(derive_seed(base ^ kAblTopologySalt, t));
    std::optional<Scenario> sc = make_scenario(opt.kind, topo_rng);
    if (!sc) continue;
    sc->estimator().pseudo_inverse();  // warm the lazy cache pre-fan-out
    const DefenderPanel panel = build_panel(*sc, opt);

    // Clean block: one index space per topology, folded serially.
    std::vector<TrialOut> clean_outs(opt.clean_trials);
    pool.parallel_for(0, opt.clean_trials, opt.grain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          Rng rng(derive_seed(base ^ kAblCleanSalt,
                                              t * opt.clean_trials + i));
                          clean_outs[i] = clean_trial(*sc, panel, opt, rng);
                        }
                      });
    for (const TrialOut& o : clean_outs) {
      ++series.clean_trials;
      if (o.ls) ++series.ls_false_alarms;
      for (std::size_t e = 0; e < ne; ++e)
        if (o.sparse_mask & (1u << e)) ++series.sparse_false_alarms[e];
      obs::count("core.ablation.clean_trials");
      if (o.ls || o.sparse_mask != 0) obs::count("core.ablation.false_alarms");
    }

    // Attack block: cells × trials flattened; trial i's RNG stream depends
    // only on the global index, never on scheduling.
    std::vector<TrialOut> outs(per_topology);
    pool.parallel_for(
        0, per_topology, opt.grain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t cell = i / opt.trials_per_cell;
            obs::ScopedSpan trial_span("core.ablation.trial");
            Rng rng(derive_seed(base ^ kAblTrialSalt, t * per_topology + i));
            outs[i] = attack_trial(*sc, panel, series.cells[cell].family,
                                   series.cells[cell].sparsity, opt, rng);
          }
        });
    for (std::size_t i = 0; i < per_topology; ++i) {
      ++series.total_trials;
      const TrialOut& o = outs[i];
      if (!o.counted) continue;
      AblationCell& cell = series.cells[i / opt.trials_per_cell];
      ++cell.attacks;
      if (o.ls) ++cell.ls_detected;
      for (std::size_t e = 0; e < ne; ++e) {
        const bool sp = (o.sparse_mask & (1u << e)) != 0;
        if (sp) ++cell.sparse_detected[e];
        if (o.ls && !sp) ++cell.ls_only[e];
        if (!o.ls && sp) ++cell.sparse_only[e];
      }
      obs::count("core.ablation.attacks");
      if (o.ls) obs::count("core.ablation.ls_detected");
      if (o.sparse_mask != 0) obs::count("core.ablation.sparse_detected");
    }
  }
  run_span.attr("trials", static_cast<std::uint64_t>(series.total_trials));
  return series;
}

}  // namespace scapegoat
