#include "core/defender_ablation.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <ostream>

#include "attack/chosen_victim.hpp"
#include "attack/loss_scapegoat.hpp"
#include "attack/sparse_aware.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "simnet/multicast_probe.hpp"
#include "tomography/sparse_recovery.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

std::string to_string(AttackFamily f) {
  switch (f) {
    case AttackFamily::kUnrestricted:
      return "unrestricted";
    case AttackFamily::kConsistent:
      return "consistent";
    case AttackFamily::kSparseAware:
      return "sparse-aware";
  }
  return "?";
}

std::optional<AttackFamily> attack_family_from_string(std::string_view s) {
  if (s == "unrestricted") return AttackFamily::kUnrestricted;
  if (s == "consistent") return AttackFamily::kConsistent;
  if (s == "sparse-aware") return AttackFamily::kSparseAware;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, AttackFamily f) {
  return os << to_string(f);
}

namespace {

constexpr std::uint64_t kAblTopologySalt = 0xab1a70b010ull;
constexpr std::uint64_t kAblTrialSalt = 0xab17121a1ull;
constexpr std::uint64_t kAblCleanSalt = 0xab1c1ea9ull;

// Same growth scheme as experiment.cpp's Fig. 9 helper (kept file-local
// there by design): enclose a connected non-monitor region S; its boundary
// nodes are the attackers, its internal links the perfectly-cut victims.
struct CutSample {
  std::vector<NodeId> attackers;
  std::vector<LinkId> internal_links;
};

std::optional<CutSample> grow_cut(const Scenario& sc, std::size_t target_size,
                                  Rng& rng) {
  const Graph& g = sc.graph();
  std::vector<NodeId> non_monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!sc.is_monitor(v)) non_monitors.push_back(v);
  if (non_monitors.empty()) return std::nullopt;

  const NodeId seed = non_monitors[rng.index(non_monitors.size())];
  std::vector<bool> in_s(g.num_nodes(), false);
  std::vector<NodeId> s{seed};
  in_s[seed] = true;
  for (std::size_t i = 0; i < s.size() && s.size() < target_size; ++i) {
    std::vector<Adjacent> nbrs = g.neighbors(s[i]);
    rng.shuffle(nbrs);
    for (const Adjacent& a : nbrs) {
      if (s.size() >= target_size) break;
      if (in_s[a.neighbor] || sc.is_monitor(a.neighbor)) continue;
      in_s[a.neighbor] = true;
      s.push_back(a.neighbor);
    }
  }

  CutSample out;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (in_s[link.u] && in_s[link.v]) out.internal_links.push_back(l);
  }
  if (out.internal_links.empty()) return std::nullopt;
  std::vector<bool> is_attacker(g.num_nodes(), false);
  for (NodeId v : s) {
    for (const Adjacent& a : g.neighbors(v)) {
      if (!in_s[a.neighbor] && !is_attacker[a.neighbor]) {
        is_attacker[a.neighbor] = true;
        out.attackers.push_back(a.neighbor);
      }
    }
  }
  if (out.attackers.empty()) return std::nullopt;
  return out;
}

// The defender panel for one topology: the scenario's own least-squares
// estimator plus one SparseRecoveryEstimator per swept ε, all anchored to
// the topology's baseline metrics as the prior.
struct DefenderPanel {
  std::vector<std::unique_ptr<SparseRecoveryEstimator>> sparse;
};

DefenderPanel build_panel(const Scenario& sc,
                          const DefenderAblationOptions& opt) {
  DefenderPanel panel;
  for (double eps : opt.defender_epsilons_ms) {
    SparseRecoveryOptions so;
    so.constraint =
        eps > 0.0 ? SparseConstraint::kInfBall : SparseConstraint::kEquality;
    so.epsilon_ms = eps;
    so.prior = sc.x_true();
    panel.sparse.push_back(std::make_unique<SparseRecoveryEstimator>(
        sc.graph(), sc.estimator().paths(), so));
  }
  return panel;
}

struct TrialOut {
  bool counted = false;  // attack succeeded and was evaluated
  bool ls = false;
  std::uint32_t sparse_mask = 0;  // bit e = defender ε index e fired
};

// Plants the k-sparse anomaly over the baseline, runs the family's attack,
// and puts the SAME observed y′ in front of every defender.
TrialOut attack_trial(const Scenario& sc, const DefenderPanel& panel,
                      AttackFamily family, std::size_t k,
                      const DefenderAblationOptions& opt, Rng& rng) {
  TrialOut out;
  const std::size_t num_links = sc.graph().num_links();
  Vector x = sc.x_true();
  for (std::size_t l :
       rng.sample_without_replacement(num_links, std::min(k, num_links)))
    x[l] += opt.anomaly_delay_ms;

  Vector y_observed;
  if (family == AttackFamily::kUnrestricted) {
    const std::size_t na = static_cast<std::size_t>(rng.uniform_int(1, 4));
    AttackContext ctx =
        sc.context(rng.sample_without_replacement(sc.graph().num_nodes(), na));
    ctx.x_true = x;
    const std::vector<std::size_t> on = ctx.attacker_path_indices();
    if (on.empty()) return out;
    y_observed = ctx.true_measurements();
    const double delta = std::min(opt.attack_epsilon_ms, ctx.per_path_cap);
    for (std::size_t i : on) y_observed[i] += delta;
  } else {
    std::optional<CutSample> cut = grow_cut(sc, 8, rng);
    if (!cut) return out;
    AttackContext ctx = sc.context(cut->attackers);
    ctx.x_true = x;
    const LinkId victim =
        cut->internal_links[rng.index(cut->internal_links.size())];
    AttackResult res;
    if (family == AttackFamily::kConsistent) {
      res = chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    } else {
      SparseAwareOptions sa;
      sa.epsilon_ms = opt.attack_epsilon_ms;
      res = sparse_aware_attack(ctx, {victim}, sa);
    }
    if (!res.success) return out;
    y_observed = std::move(res.y_observed);
  }
  if (opt.noise_ms > 0.0)
    for (double& yi : y_observed) yi += rng.uniform(0.0, opt.noise_ms);

  const DetectorOptions det{opt.alpha};
  out.ls = detect_scapegoating(sc.estimator(), y_observed, det).detected;
  for (std::size_t e = 0; e < panel.sparse.size(); ++e)
    if (detect_scapegoating(*panel.sparse[e], y_observed, det).detected)
      out.sparse_mask |= 1u << e;
  out.counted = true;
  return out;
}

// Honest trial: anomaly + noise, no manipulation. `counted` is always true.
TrialOut clean_trial(const Scenario& sc, const DefenderPanel& panel,
                     const DefenderAblationOptions& opt, Rng& rng) {
  TrialOut out;
  const std::size_t num_links = sc.graph().num_links();
  const std::size_t k =
      opt.anomaly_sparsity.empty()
          ? 1
          : opt.anomaly_sparsity[rng.index(opt.anomaly_sparsity.size())];
  Vector x = sc.x_true();
  for (std::size_t l :
       rng.sample_without_replacement(num_links, std::min(k, num_links)))
    x[l] += opt.anomaly_delay_ms;
  Vector y = sc.estimator().r() * x;
  if (opt.noise_ms > 0.0)
    for (double& yi : y) yi += rng.uniform(0.0, opt.noise_ms);

  const DetectorOptions det{opt.alpha};
  out.ls = detect_scapegoating(sc.estimator(), y, det).detected;
  for (std::size_t e = 0; e < panel.sparse.size(); ++e)
    if (detect_scapegoating(*panel.sparse[e], y, det).detected)
      out.sparse_mask |= 1u << e;
  out.counted = true;
  return out;
}

}  // namespace

AblationSeries run_defender_ablation(const DefenderAblationOptions& opt) {
  assert(opt.defender_epsilons_ms.size() <= 32 &&
         "sparse_mask packs one bit per swept ε");
  AblationSeries series;
  series.kind = opt.kind;
  series.epsilons = opt.defender_epsilons_ms;
  series.sparse_false_alarms.assign(opt.defender_epsilons_ms.size(), 0);
  const std::size_t ne = opt.defender_epsilons_ms.size();
  for (AttackFamily f : opt.families) {
    for (std::size_t k : opt.anomaly_sparsity) {
      AblationCell cell;
      cell.family = f;
      cell.sparsity = k;
      cell.sparse_detected.assign(ne, 0);
      cell.ls_only.assign(ne, 0);
      cell.sparse_only.assign(ne, 0);
      series.cells.push_back(std::move(cell));
    }
  }

  const std::uint64_t base =
      opt.seed + (opt.kind == TopologyKind::kWireline ? 0 : 0xab1f1ee5u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  obs::ScopedSpan run_span("core.ablation.run");
  run_span.attr("kind", to_string(opt.kind));

  const std::size_t cells = series.cells.size();
  const std::size_t per_topology = cells * opt.trials_per_cell;

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    Rng topo_rng(derive_seed(base ^ kAblTopologySalt, t));
    std::optional<Scenario> sc = make_scenario(opt.kind, topo_rng);
    if (!sc) continue;
    sc->estimator().pseudo_inverse();  // warm the lazy cache pre-fan-out
    const DefenderPanel panel = build_panel(*sc, opt);

    // Clean block: one index space per topology, folded serially.
    std::vector<TrialOut> clean_outs(opt.clean_trials);
    pool.parallel_for(0, opt.clean_trials, opt.grain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          Rng rng(derive_seed(base ^ kAblCleanSalt,
                                              t * opt.clean_trials + i));
                          clean_outs[i] = clean_trial(*sc, panel, opt, rng);
                        }
                      });
    for (const TrialOut& o : clean_outs) {
      ++series.clean_trials;
      if (o.ls) ++series.ls_false_alarms;
      for (std::size_t e = 0; e < ne; ++e)
        if (o.sparse_mask & (1u << e)) ++series.sparse_false_alarms[e];
      obs::count("core.ablation.clean_trials");
      if (o.ls || o.sparse_mask != 0) obs::count("core.ablation.false_alarms");
    }

    // Attack block: cells × trials flattened; trial i's RNG stream depends
    // only on the global index, never on scheduling.
    std::vector<TrialOut> outs(per_topology);
    pool.parallel_for(
        0, per_topology, opt.grain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t cell = i / opt.trials_per_cell;
            obs::ScopedSpan trial_span("core.ablation.trial");
            Rng rng(derive_seed(base ^ kAblTrialSalt, t * per_topology + i));
            outs[i] = attack_trial(*sc, panel, series.cells[cell].family,
                                   series.cells[cell].sparsity, opt, rng);
          }
        });
    for (std::size_t i = 0; i < per_topology; ++i) {
      ++series.total_trials;
      const TrialOut& o = outs[i];
      if (!o.counted) continue;
      AblationCell& cell = series.cells[i / opt.trials_per_cell];
      ++cell.attacks;
      if (o.ls) ++cell.ls_detected;
      for (std::size_t e = 0; e < ne; ++e) {
        const bool sp = (o.sparse_mask & (1u << e)) != 0;
        if (sp) ++cell.sparse_detected[e];
        if (o.ls && !sp) ++cell.ls_only[e];
        if (!o.ls && sp) ++cell.sparse_only[e];
      }
      obs::count("core.ablation.attacks");
      if (o.ls) obs::count("core.ablation.ls_detected");
      if (o.sparse_mask != 0) obs::count("core.ablation.sparse_detected");
    }
  }
  run_span.attr("trials", static_cast<std::uint64_t>(series.total_trials));
  return series;
}

// ---- loss-domain ablation -------------------------------------------------

namespace {

constexpr std::uint64_t kLossTopoSalt = 0x10ab70b05ull;
constexpr std::uint64_t kLossTrialSalt = 0x10ab17121ull;
constexpr std::uint64_t kLossCleanSalt = 0x10abc1ea9ull;
constexpr std::uint64_t kLossProbeSalt = 0x10ab9b0beull;
// Unicast-channel coins: per (link, packet) delivery and per (edge, packet)
// grey-hole drop. Unicast packets never share a coin — per-packet drops are
// i.i.d. whatever the family, which is exactly why this channel cannot see
// the split-framing anti-correlation.
constexpr std::uint64_t kLossLsLinkSalt = 0x10ab151145ull;
constexpr std::uint64_t kLossLsDropSalt = 0x10ab15d0ull;

double unit_hash(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                 std::uint64_t b) {
  std::uint64_t s = seed ^ salt;
  s = derive_seed(a, s);
  s = derive_seed(b, s);
  s = derive_seed(0, s);
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

struct LossTrialOut {
  bool counted = false;
  bool blamed = false;
  bool mle = false;
  bool ls = false;
};

// The attacked physical edges: the first link of each framed chain (the
// grey hole sits at the attacker's graph node and drops what it forwards
// onto that edge).
std::vector<LinkId> attacked_edges(const MulticastTree& tree,
                                   const simnet::MulticastAdversary& adv) {
  std::vector<LinkId> edges;
  for (const simnet::GreyHoleRule& rule : adv.rules)
    edges.push_back(tree.nodes[rule.victim].chain.front());
  return edges;
}

// One trial, attack (family != nullptr) or clean. Both channels observe the
// same ground-truth deliveries; every random decision comes from `rng` or
// from pure hashes of `probe_seed`, never from scheduling.
LossTrialOut loss_trial(const Scenario& sc, const LossAttackFamily* family,
                        double rate, const LossAblationOptions& opt,
                        std::uint64_t probe_seed, Rng& rng) {
  LossTrialOut out;
  const Graph& g = sc.graph();

  // Root the tree at a monitor (the multicast source must be measurement
  // infrastructure); receivers are re-drawn on tree-construction failure
  // (e.g. a sampled receiver relaying for another).
  std::vector<NodeId> monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (sc.is_monitor(v)) monitors.push_back(v);
  if (monitors.empty() || g.num_nodes() < 4) return out;
  const NodeId root = monitors[rng.index(monitors.size())];

  std::optional<MulticastTree> tree;
  for (int attempt = 0; attempt < 8 && !tree; ++attempt) {
    std::vector<NodeId> receivers;
    for (std::size_t v : rng.sample_without_replacement(
             g.num_nodes(), std::min(opt.receivers + 1, g.num_nodes()))) {
      if (v == root || receivers.size() >= opt.receivers) continue;
      receivers.push_back(v);
    }
    if (receivers.size() < 2) continue;
    auto built = build_multicast_tree(g, root, receivers);
    if (built.ok()) tree = std::move(*built);
  }
  if (!tree) return out;

  std::vector<double> delivery(g.num_links());
  for (double& d : delivery)
    d = rng.uniform(opt.min_link_delivery, opt.max_link_delivery);

  simnet::MulticastAdversary adv;
  std::size_t victim_child = 0;
  if (family != nullptr) {
    // A non-root internal node with ≥ 2 children: framing a proper subtree
    // while a sibling subtree stays observed, with an own incoming chain
    // whose blame matters.
    std::vector<std::size_t> candidates;
    for (std::size_t k = 1; k < tree->num_nodes(); ++k)
      if (tree->nodes[k].children.size() >= 2) candidates.push_back(k);
    if (candidates.empty()) return out;
    const std::size_t attacker = candidates[rng.index(candidates.size())];
    const auto& kids = tree->nodes[attacker].children;
    victim_child = kids[rng.index(kids.size())];
    adv.drop_rate = rate;
    adv.rules.push_back({attacker, victim_child});
    if (*family == LossAttackFamily::kSplitFraming) {
      for (std::size_t c : kids)
        if (c != victim_child) {
          adv.rules.push_back({attacker, c});
          break;
        }
      adv.exclusive = true;
    }
  }

  // Multicast channel → MLE defender.
  simnet::MulticastProbeOptions popt;
  popt.probes = opt.probes;
  popt.seed = probe_seed;
  popt.link_delivery = delivery;
  popt.adversary = family != nullptr ? &adv : nullptr;
  popt.histogram_max_leaves = 0;
  const simnet::MulticastProbeRun run =
      simnet::run_multicast_probes(*tree, popt);

  MulticastMleEstimator defender(g, *tree);
  if (opt.probe_mode == simnet::ProbeMode::kMulticast)
    defender.ingest(run.obs);  // kUnicast: marginals-only completion
  const Vector y = run.leaf_loss_metrics();
  out.mle = detect_scapegoating(defender, y, DetectorOptions{opt.mle_alpha})
                .detected;
  if (family != nullptr) {
    const std::vector<LinkState> states =
        classify_all(defender.estimate(y), loss_thresholds());
    out.blamed = true;
    for (LinkId l : tree->nodes[victim_child].chain)
      out.blamed = out.blamed && states[l] == LinkState::kAbnormal;
  }

  // Unicast channel → the scenario's least-squares defender, fed per-path
  // loss metrics over its own monitor paths.
  const std::vector<Path>& paths = sc.estimator().paths();
  const std::vector<LinkId> edges =
      family != nullptr ? attacked_edges(*tree, adv) : std::vector<LinkId>{};
  Vector y_ls(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::size_t passed = 0;
    for (std::size_t j = 0; j < opt.probes; ++j) {
      const std::uint64_t packet = i * opt.probes + j;
      bool ok = true;
      for (LinkId l : paths[i].links)
        if (unit_hash(probe_seed, kLossLsLinkSalt, l, packet) >=
            delivery[l]) {
          ok = false;
          break;
        }
      if (ok)
        for (std::size_t e = 0; e < edges.size(); ++e)
          if (std::find(paths[i].links.begin(), paths[i].links.end(),
                        edges[e]) != paths[i].links.end() &&
              unit_hash(probe_seed, kLossLsDropSalt, e, packet) < rate) {
            ok = false;
            break;
          }
      if (ok) ++passed;
    }
    const double pass =
        static_cast<double>(passed) / static_cast<double>(opt.probes);
    y_ls[i] = -std::log(std::max(pass, 1e-9));
  }
  out.ls = detect_scapegoating(sc.estimator(), y_ls,
                               DetectorOptions{opt.ls_alpha})
               .detected;
  out.counted = true;
  return out;
}

}  // namespace

LossAblationSeries run_loss_ablation(const LossAblationOptions& opt) {
  LossAblationSeries series;
  series.kind = opt.kind;
  series.probe_mode = opt.probe_mode;
  for (LossAttackFamily f : opt.families)
    for (double r : opt.drop_rates) {
      LossAblationCell cell;
      cell.family = f;
      cell.drop_rate = r;
      series.cells.push_back(cell);
    }

  const std::uint64_t base =
      opt.seed + (opt.kind == TopologyKind::kWireline ? 0 : 0xab1f1ee5u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  obs::ScopedSpan run_span("core.loss_ablation.run");
  run_span.attr("kind", to_string(opt.kind));
  run_span.attr("probe_mode", to_string(opt.probe_mode));

  const std::size_t cells = series.cells.size();
  const std::size_t per_topology = cells * opt.trials_per_cell;

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    Rng topo_rng(derive_seed(base ^ kLossTopoSalt, t));
    std::optional<Scenario> sc = make_scenario(opt.kind, topo_rng);
    if (!sc) continue;
    sc->estimator().pseudo_inverse();  // warm the lazy cache pre-fan-out

    std::vector<LossTrialOut> clean_outs(opt.clean_trials);
    pool.parallel_for(
        0, opt.clean_trials, opt.grain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t gi = t * opt.clean_trials + i;
            Rng rng(derive_seed(base ^ kLossCleanSalt, gi));
            clean_outs[i] =
                loss_trial(*sc, nullptr, 0.0, opt,
                           derive_seed(base ^ kLossProbeSalt, 2 * gi), rng);
          }
        });
    for (const LossTrialOut& o : clean_outs) {
      if (!o.counted) continue;
      ++series.clean_trials;
      if (o.mle) ++series.mle_false_alarms;
      if (o.ls) ++series.ls_false_alarms;
      obs::count("core.loss_ablation.clean_trials");
      if (o.mle || o.ls) obs::count("core.loss_ablation.false_alarms");
    }

    std::vector<LossTrialOut> outs(per_topology);
    pool.parallel_for(
        0, per_topology, opt.grain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t cell = i / opt.trials_per_cell;
            const std::size_t gi = t * per_topology + i;
            obs::ScopedSpan trial_span("core.loss_ablation.trial");
            Rng rng(derive_seed(base ^ kLossTrialSalt, gi));
            outs[i] = loss_trial(
                *sc, &series.cells[cell].family, series.cells[cell].drop_rate,
                opt, derive_seed(base ^ kLossProbeSalt, 2 * gi + 1), rng);
          }
        });
    for (std::size_t i = 0; i < per_topology; ++i) {
      ++series.total_trials;
      const LossTrialOut& o = outs[i];
      if (!o.counted) continue;
      LossAblationCell& cell = series.cells[i / opt.trials_per_cell];
      ++cell.attacks;
      if (o.blamed) ++cell.victim_blamed;
      if (o.mle) ++cell.mle_detected;
      if (o.ls) ++cell.ls_detected;
      if (o.mle && !o.ls) ++cell.mle_only;
      if (o.ls && !o.mle) ++cell.ls_only;
      obs::count("core.loss_ablation.attacks");
      if (o.mle) obs::count("core.loss_ablation.mle_detected");
      if (o.ls) obs::count("core.loss_ablation.ls_detected");
    }
  }
  run_span.attr("trials", static_cast<std::uint64_t>(series.total_trials));
  return series;
}

}  // namespace scapegoat
