// Defender-choice ablation: least squares vs sparse recovery on the SAME
// attacks (DESIGN.md §14, EXPERIMENTS.md "Defender ablation").
//
// The experiment plants a k-sparse delay anomaly over the topology's
// baseline metrics (the compressive-sensing ground truth the sparse
// defender's prior anchors to), lets an attack family manipulate the
// measurements, and asks every configured defender — the Eq. 23
// least-squares detector and a SparseRecoveryEstimator per ε in the sweep —
// whether it flags the SAME observed y′. Clean trials (anomaly + noise, no
// attack) calibrate each defender's false-alarm rate on the same data.
//
// Families:
//   kUnrestricted — flat +δ on every attacker path, no stealth constraint.
//     The regime that separates the defenders: per-path discrepancies ≤ ε
//     are inside the sparse defender's ball (excess statistic 0) while the
//     least-squares residual accumulates them across paths past α.
//   kConsistent  — Theorem-1 chosen-victim construction on a grown perfect
//     cut. Invisible to least squares (Theorem 3); the sparse defender
//     inherits the blindness whenever the forged estimate stays ⪰ 0.
//   kSparseAware — attack/sparse_aware.hpp with the attacker's ε equal to
//     opt.attack_epsilon_ms: consistent up to ±ε everywhere, plus up to ε
//     extra damage per attacker path.
//
// Determinism contract: trials fan out over the pool with per-trial derived
// RNG streams and fold serially in trial-index order, so every counter is
// bitwise identical at every thread count (DESIGN.md "Threading model").

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/loss_scapegoat.hpp"
#include "core/experiment.hpp"
#include "util/execution.hpp"

namespace scapegoat {

enum class AttackFamily { kUnrestricted, kConsistent, kSparseAware };

std::string to_string(AttackFamily f);
std::optional<AttackFamily> attack_family_from_string(std::string_view s);
std::ostream& operator<<(std::ostream& os, AttackFamily f);

struct DefenderAblationOptions : ExecutionPolicy {
  DefenderAblationOptions() : ExecutionPolicy(0, /*grain=*/4, /*seed=*/14) {}

  TopologyKind kind = TopologyKind::kWireline;
  std::size_t topologies = 3;
  std::size_t trials_per_cell = 12;   // per (family, k) per topology
  std::size_t clean_trials = 8;       // false-alarm trials per topology

  std::vector<std::size_t> anomaly_sparsity = {1, 4, 8};  // k sweep
  // Sparse-defender ball radii. ε = 0 runs the equality-mode estimator.
  std::vector<double> defender_epsilons_ms = {0.0, 10.0, 50.0};
  std::vector<AttackFamily> families = {AttackFamily::kUnrestricted,
                                        AttackFamily::kConsistent,
                                        AttackFamily::kSparseAware};

  double alpha = 200.0;            // detector threshold, both defenders (§V-D)
  double anomaly_delay_ms = 900.0; // planted per-link anomaly (abnormal band)
  double noise_ms = 1.0;           // per-path jitter ~ U[0, noise_ms) (Rem. 4)
  double attack_epsilon_ms = 50.0; // unrestricted δ / sparse-aware budget
};

// One (family, k) cell: how often each defender flagged the attack, plus the
// per-ε separation counters the EXPERIMENTS.md regime claim is built on.
struct AblationCell {
  AttackFamily family = AttackFamily::kUnrestricted;
  std::size_t sparsity = 0;  // planted k
  std::size_t attacks = 0;   // successful attacks evaluated
  std::size_t ls_detected = 0;
  // All indexed by defender_epsilons_ms position.
  std::vector<std::size_t> sparse_detected;
  std::vector<std::size_t> ls_only;      // LS fired, sparse[e] silent
  std::vector<std::size_t> sparse_only;  // sparse[e] fired, LS silent

  double ls_rate() const {
    return attacks == 0 ? 0.0 : static_cast<double>(ls_detected) / attacks;
  }
  double sparse_rate(std::size_t e) const {
    return attacks == 0 ? 0.0
                        : static_cast<double>(sparse_detected[e]) / attacks;
  }
};

struct AblationSeries {
  TopologyKind kind = TopologyKind::kWireline;
  std::vector<double> epsilons;     // echo of defender_epsilons_ms
  std::vector<AblationCell> cells;  // families × k, fixed enumeration order
  std::size_t total_trials = 0;     // attack trials attempted (incl. failed)

  std::size_t clean_trials = 0;
  std::size_t ls_false_alarms = 0;
  std::vector<std::size_t> sparse_false_alarms;  // per ε
};

// Runs the sweep. Topology draws, anomaly placement, attacker placement and
// noise all derive from opt.seed; identical options give bitwise identical
// series at every thread count.
AblationSeries run_defender_ablation(const DefenderAblationOptions& opt);

// ---- loss-domain ablation: multicast MLE vs least squares -----------------
//
// The grey-hole grid (DESIGN.md §15, EXPERIMENTS.md "Loss-domain
// scapegoating"). Each trial draws a topology, roots a multicast tree at a
// monitor, places a grey hole at an internal tree node and frames one child
// subtree (attack/loss_scapegoat.hpp families), then feeds the SAME ground
// truth to two measurement channels:
//
//   * the multicast channel — run_multicast_probes joint OR counts into a
//     tree-native MulticastMleEstimator; detection thresholds the loss
//     residual (probability units) against mle_alpha. probe_mode = kUnicast
//     withholds the joint counts (marginals-only independence completion),
//     the "how much does correlation buy" knob.
//   * the unicast channel — per-path loss probes over the scenario's
//     monitor paths; the grey hole drops probes crossing the attacked
//     edge(s) with the same per-packet rate. Every drop is i.i.d. per
//     packet, i.e. indistinguishable from link loss on that edge, so the
//     least-squares Eq. 23 residual (loss-metric units, ls_alpha) stays at
//     noise for BOTH families — the separation the MLE's clamp statistic
//     provides only on the correlated channel.
//
// Clean trials (honest link loss only, both channels) pin the false-alarm
// rates the EXPERIMENTS.md table's zero-false-alarm claim rests on.
struct LossAblationOptions : ExecutionPolicy {
  LossAblationOptions() : ExecutionPolicy(0, /*grain=*/2, /*seed=*/15) {}

  TopologyKind kind = TopologyKind::kWireline;
  std::size_t topologies = 3;
  std::size_t trials_per_cell = 8;  // per (family, drop rate) per topology
  std::size_t clean_trials = 8;     // false-alarm trials per topology
  std::size_t probes = 4000;        // per trial, both channels
  std::size_t receivers = 5;        // multicast leaves drawn per trial

  std::vector<double> drop_rates = {0.10, 0.20, 0.30};
  std::vector<LossAttackFamily> families = {LossAttackFamily::kSubtreeFraming,
                                            LossAttackFamily::kSplitFraming};
  simnet::ProbeMode probe_mode = simnet::ProbeMode::kMulticast;

  double mle_alpha = 0.05;  // MLE residual threshold, probability units
  double ls_alpha = 0.5;    // LS Eq. 23 threshold, loss-metric units
  // Honest per-link delivery drawn U[min, max] — the background loss floor.
  double min_link_delivery = 0.985;
  double max_link_delivery = 1.0;
};

// One (family, drop rate) cell.
struct LossAblationCell {
  LossAttackFamily family = LossAttackFamily::kSubtreeFraming;
  double drop_rate = 0.0;
  std::size_t attacks = 0;        // trials with a usable tree + attacker
  std::size_t victim_blamed = 0;  // MLE classified every victim link abnormal
  std::size_t mle_detected = 0;
  std::size_t ls_detected = 0;
  std::size_t mle_only = 0;  // MLE fired, LS silent — the separation count
  std::size_t ls_only = 0;

  double blame_rate() const {
    return attacks == 0 ? 0.0
                        : static_cast<double>(victim_blamed) / attacks;
  }
  double mle_rate() const {
    return attacks == 0 ? 0.0
                        : static_cast<double>(mle_detected) / attacks;
  }
  double ls_rate() const {
    return attacks == 0 ? 0.0 : static_cast<double>(ls_detected) / attacks;
  }
};

struct LossAblationSeries {
  TopologyKind kind = TopologyKind::kWireline;
  simnet::ProbeMode probe_mode = simnet::ProbeMode::kMulticast;
  std::vector<LossAblationCell> cells;  // families × rates, enumeration order
  std::size_t total_trials = 0;         // attempted (incl. unusable draws)

  std::size_t clean_trials = 0;
  std::size_t mle_false_alarms = 0;
  std::size_t ls_false_alarms = 0;
};

// Runs the grid. Same determinism contract as run_defender_ablation: every
// counter is bitwise identical at every thread count for fixed options.
LossAblationSeries run_loss_ablation(const LossAblationOptions& opt);

}  // namespace scapegoat
