#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

std::string to_string(TopologyKind k) {
  return k == TopologyKind::kWireline ? "wireline" : "wireless";
}

std::string to_string(AttackStrategy s) {
  switch (s) {
    case AttackStrategy::kChosenVictim:
      return "chosen-victim";
    case AttackStrategy::kMaxDamage:
      return "maximum-damage";
    case AttackStrategy::kObfuscation:
      return "obfuscation";
  }
  return "?";
}

std::optional<Scenario> make_scenario(TopologyKind kind, Rng& rng,
                                      const ScenarioConfig& config,
                                      std::size_t redundant_paths) {
  Graph g;
  if (kind == TopologyKind::kWireline) {
    g = isp_topology(IspParams{}, rng);
  } else {
    g = random_geometric(GeometricParams{}, rng).graph;
  }
  return Scenario::from_graph(std::move(g), rng, config, redundant_paths);
}

namespace {

// Stream-namespace salts: topology draws, clean-baseline runs, and the
// attack-trial families each derive seeds in their own namespace so no two
// purposes ever share an RNG stream (see derive_seed in util/random.hpp).
constexpr std::uint64_t kTopologySalt = 0x7090a10975a17ull;
constexpr std::uint64_t kTrialSalt = 0x7121a15a175ull;
constexpr std::uint64_t kCleanSalt = 0xc1ea9ba5e11ull;
constexpr std::uint64_t kPerfectSalt = 0x9e2fec7c07ull;
constexpr std::uint64_t kImperfectSalt = 0x19e2fec7c07ull;

// Draws topology t of the run on its own seed stream and pre-computes the
// estimator's lazily-cached pseudo-inverse, so the per-chunk Scenario copies
// taken by worker threads are plain value copies with no shared lazy state.
std::optional<Scenario> draw_topology(TopologyKind kind, std::uint64_t base,
                                      std::size_t t) {
  Rng rng(derive_seed(base ^ kTopologySalt, t));
  std::optional<Scenario> sc = make_scenario(kind, rng);
  if (sc) sc->estimator().pseudo_inverse();
  return sc;
}

// Random attacker node set of size `count` (monitors are eligible — the
// paper's §II-D explicitly allows malicious monitors).
std::vector<NodeId> sample_attackers(const Graph& g, std::size_t count,
                                     Rng& rng) {
  return rng.sample_without_replacement(g.num_nodes(), count);
}

// Random victim link not controlled by the attackers; nullopt if all links
// are attacker-incident.
std::optional<LinkId> sample_victim(const Graph& g,
                                    const std::vector<LinkId>& controlled,
                                    Rng& rng) {
  std::vector<bool> bad(g.num_links(), false);
  for (LinkId l : controlled) bad[l] = true;
  std::vector<LinkId> pool;
  for (LinkId l = 0; l < g.num_links(); ++l)
    if (!bad[l]) pool.push_back(l);
  if (pool.empty()) return std::nullopt;
  return pool[rng.index(pool.size())];
}

}  // namespace

namespace {

struct PresenceTrialOut {
  bool counted = false;
  std::size_t bin = 0;
  bool success = false;
};

// One Fig. 7 trial on a private scenario copy and a private RNG stream.
PresenceTrialOut presence_trial(Scenario& sc, const PresenceRatioOptions& opt,
                                Rng& rng) {
  PresenceTrialOut out;
  sc.resample_metrics(rng);
  const auto& paths = sc.estimator().paths();
  const std::size_t na =
      static_cast<std::size_t>(rng.uniform_int(1, opt.max_attackers));

  // Pick the victim first; draw attackers either uniformly (low-ratio
  // regime) or from the nodes sitting on the victim's measurement paths
  // (mid/high-ratio regime), so every presence-ratio bin receives
  // trials — purely uniform placement concentrates mass near ratio 0.
  const LinkId victim = rng.index(sc.graph().num_links());
  std::vector<NodeId> attackers;
  if (rng.bernoulli(0.5)) {
    attackers = sample_attackers(sc.graph(), na, rng);
  } else {
    std::vector<NodeId> on_victim_paths;
    std::vector<bool> seen(sc.graph().num_nodes(), false);
    for (std::size_t i : paths_through_links(paths, {victim})) {
      for (NodeId v : paths[i].nodes) {
        const Link& vl = sc.graph().link(victim);
        if (v != vl.u && v != vl.v && !seen[v]) {
          seen[v] = true;
          on_victim_paths.push_back(v);
        }
      }
    }
    rng.shuffle(on_victim_paths);
    for (std::size_t i = 0; i < na && i < on_victim_paths.size(); ++i)
      attackers.push_back(on_victim_paths[i]);
    if (attackers.empty()) attackers = sample_attackers(sc.graph(), na, rng);
  }

  AttackContext ctx = sc.context(attackers);
  const auto lm = ctx.controlled_links();
  if (std::find(lm.begin(), lm.end(), victim) != lm.end())
    return out;  // victim became attacker-controlled — not a scapegoat
  const PresenceRatio pr = attack_presence_ratio(paths, attackers, {victim});
  if (pr.victim_paths == 0) return out;  // cannot happen when identifiable

  const double ratio = pr.ratio();
  if (ratio >= 1.0 - 1e-12) {
    out.bin = opt.bins;  // exact perfect cut
  } else {
    out.bin =
        std::min(static_cast<std::size_t>(ratio * opt.bins), opt.bins - 1);
  }
  out.success = chosen_victim_attack(ctx, {victim}).success;
  out.counted = true;
  return out;
}

}  // namespace

PresenceRatioSeries run_presence_ratio_experiment(
    TopologyKind kind, const PresenceRatioOptions& opt) {
  PresenceRatioSeries series;
  series.kind = kind;
  series.bins.resize(opt.bins + 1);
  for (std::size_t b = 0; b < opt.bins; ++b) {
    series.bins[b].ratio_low = static_cast<double>(b) / opt.bins;
    series.bins[b].ratio_high = static_cast<double>(b + 1) / opt.bins;
  }
  series.bins.back().ratio_low = series.bins.back().ratio_high = 1.0;

  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x9e3779b9u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  obs::ScopedSpan run_span("core.fig7.run");
  run_span.attr("kind", to_string(kind));

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;
    std::vector<PresenceTrialOut> outs(opt.trials_per_topology);
    pool.parallel_for(
        0, opt.trials_per_topology, opt.grain,
        [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;  // private copy: resample_metrics mutates
          for (std::size_t i = lo; i < hi; ++i) {
            obs::ScopedSpan trial_span("core.fig7.trial");
            Rng rng(derive_seed(base ^ kTrialSalt,
                                t * opt.trials_per_topology + i));
            outs[i] = presence_trial(local, opt, rng);
            trial_span.attr(
                "trial",
                static_cast<std::uint64_t>(t * opt.trials_per_topology + i));
          }
        });
    // Serial fold in trial order — identical at every thread count.
    for (const PresenceTrialOut& o : outs) {
      if (!o.counted) continue;
      ++series.bins[o.bin].trials;
      if (o.success) ++series.bins[o.bin].successes;
      ++series.total_trials;
      obs::count("core.fig7.trials");
      if (o.success) obs::count("core.fig7.successes");
    }
  }
  run_span.attr("trials", static_cast<std::uint64_t>(series.total_trials));
  return series;
}

SingleAttackerResult run_single_attacker_experiment(
    TopologyKind kind, const SingleAttackerOptions& opt) {
  SingleAttackerResult out;
  out.kind = kind;
  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x51f15ee5u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  struct TrialOut {
    bool max_damage = false;
    bool obfuscation = false;
  };

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;
    std::vector<TrialOut> outs(opt.trials_per_topology);
    pool.parallel_for(
        0, opt.trials_per_topology, opt.grain,
        [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;
          for (std::size_t i = lo; i < hi; ++i) {
            Rng rng(derive_seed(base ^ kTrialSalt,
                                t * opt.trials_per_topology + i));
            local.resample_metrics(rng);
            const NodeId attacker = rng.index(local.graph().num_nodes());
            AttackContext ctx = local.context({attacker});

            MaxDamageOptions md;
            md.max_candidates = 32;
            md.max_victims = 4;
            outs[i].max_damage = max_damage_attack(ctx, md).best.success;

            ObfuscationOptions ob;
            ob.min_victims = opt.min_obfuscation_victims;
            ob.max_victims = 24;
            outs[i].obfuscation = obfuscation_attack(ctx, ob).success;
          }
        });
    for (const TrialOut& o : outs) {
      if (o.max_damage) ++out.max_damage_successes;
      if (o.obfuscation) ++out.obfuscation_successes;
      ++out.trials;
      obs::count("core.fig8.trials");
      if (o.max_damage) obs::count("core.fig8.max_damage_successes");
      if (o.obfuscation) obs::count("core.fig8.obfuscation_successes");
    }
  }
  return out;
}

namespace {

// Grows a connected set S of non-monitor nodes and returns (S's boundary as
// attackers, S's internal links as perfectly-cut victim candidates).
// Empty result when the growth fails (e.g. seed pool exhausted).
struct PerfectCutSample {
  std::vector<NodeId> attackers;
  std::vector<LinkId> internal_links;
};

std::optional<PerfectCutSample> grow_perfect_cut(const Scenario& sc,
                                                 std::size_t target_size,
                                                 Rng& rng) {
  const Graph& g = sc.graph();
  std::vector<NodeId> non_monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!sc.is_monitor(v)) non_monitors.push_back(v);
  if (non_monitors.empty()) return std::nullopt;

  const NodeId seed = non_monitors[rng.index(non_monitors.size())];
  std::vector<bool> in_s(g.num_nodes(), false);
  std::vector<NodeId> s{seed};
  in_s[seed] = true;
  // Randomized BFS growth over non-monitor neighbors.
  for (std::size_t i = 0; i < s.size() && s.size() < target_size; ++i) {
    std::vector<Adjacent> nbrs = g.neighbors(s[i]);
    rng.shuffle(nbrs);
    for (const Adjacent& a : nbrs) {
      if (s.size() >= target_size) break;
      if (in_s[a.neighbor] || sc.is_monitor(a.neighbor)) continue;
      in_s[a.neighbor] = true;
      s.push_back(a.neighbor);
    }
  }

  PerfectCutSample out;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (in_s[link.u] && in_s[link.v]) out.internal_links.push_back(l);
  }
  if (out.internal_links.empty()) return std::nullopt;
  std::vector<bool> is_attacker(g.num_nodes(), false);
  for (NodeId v : s) {
    for (const Adjacent& a : g.neighbors(v)) {
      if (!in_s[a.neighbor] && !is_attacker[a.neighbor]) {
        is_attacker[a.neighbor] = true;
        out.attackers.push_back(a.neighbor);
      }
    }
  }
  if (out.attackers.empty()) return std::nullopt;
  return out;
}

DetectionCell& cell_for(DetectionSeries& series, AttackStrategy s,
                        bool perfect) {
  for (DetectionCell& c : series.cells)
    if (c.strategy == s && c.perfect_cut == perfect) return c;
  series.cells.push_back(DetectionCell{s, perfect, 0, 0});
  return series.cells.back();
}

// Per-strategy outcome of one detection trial, computed entirely inside the
// worker; the serial fold only applies the per-cell sampling budget.
struct StrategyOut {
  bool success = false;
  bool perfect = false;
  bool detected = false;
};

struct DetectionTrialOut {
  StrategyOut chosen, max_damage, obfuscation;
};

StrategyOut eval_attack(const Scenario& sc,
                        const std::vector<NodeId>& attackers,
                        const AttackResult& res, const DetectorOptions& det) {
  StrategyOut out;
  if (!res.success) return out;
  out.success = true;
  out.perfect = is_perfect_cut(sc.estimator().paths(), attackers, res.victims);
  out.detected =
      detect_scapegoating(sc.estimator(), res.y_observed, det).detected;
  return out;
}

// Perfect-cut trial: enclose a non-monitor region, attack its internal
// links with the Theorem-1 consistent construction.
DetectionTrialOut perfect_cut_trial(Scenario& sc,
                                    const DetectorOptions& det, Rng& rng) {
  DetectionTrialOut out;
  sc.resample_metrics(rng);
  auto sample = grow_perfect_cut(sc, 8, rng);
  if (!sample) return out;
  AttackContext ctx = sc.context(sample->attackers);

  const LinkId victim =
      sample->internal_links[rng.index(sample->internal_links.size())];
  out.chosen = eval_attack(
      sc, sample->attackers,
      chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent), det);

  MaxDamageOptions md;
  md.mode = ManipulationMode::kConsistent;
  md.candidate_victims = sample->internal_links;
  md.max_victims = 3;
  out.max_damage =
      eval_attack(sc, sample->attackers, max_damage_attack(ctx, md).best, det);

  ObfuscationOptions ob;
  ob.mode = ManipulationMode::kConsistent;
  ob.candidate_victims = sample->internal_links;
  ob.min_victims = std::min<std::size_t>(5, sample->internal_links.size());
  out.obfuscation =
      eval_attack(sc, sample->attackers, obfuscation_attack(ctx, ob), det);
  return out;
}

// Imperfect-cut trial: random attacker placements, damage-maximizing
// manipulation (the stealthy construction is infeasible here).
DetectionTrialOut imperfect_cut_trial(Scenario& sc,
                                      const DetectorOptions& det, Rng& rng) {
  DetectionTrialOut out;
  sc.resample_metrics(rng);
  const std::size_t na = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<NodeId> attackers = sample_attackers(sc.graph(), na, rng);
  AttackContext ctx = sc.context(attackers);

  std::optional<LinkId> victim =
      sample_victim(sc.graph(), ctx.controlled_links(), rng);
  if (victim) {
    out.chosen =
        eval_attack(sc, attackers, chosen_victim_attack(ctx, {*victim}), det);
  }

  MaxDamageOptions md;
  md.max_candidates = 24;
  md.max_victims = 3;
  out.max_damage =
      eval_attack(sc, attackers, max_damage_attack(ctx, md).best, det);

  ObfuscationOptions ob;
  ob.max_victims = 24;
  out.obfuscation = eval_attack(sc, attackers, obfuscation_attack(ctx, ob), det);
  return out;
}

}  // namespace

DetectionSeries run_detection_experiment(
    TopologyKind kind, const DetectionOptionsExperiment& opt) {
  DetectionSeries series;
  series.kind = kind;
  for (AttackStrategy s :
       {AttackStrategy::kChosenVictim, AttackStrategy::kMaxDamage,
        AttackStrategy::kObfuscation})
    for (bool perfect : {true, false}) cell_for(series, s, perfect);

  const DetectorOptions detector{opt.alpha};
  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0xdec0deu);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  // Trials are computed in fixed-size waves (worker threads fill a wave in
  // parallel) and folded serially in trial order with the per-cell budget.
  // Budget decisions therefore depend only on the trial index order, never
  // on scheduling: results are identical at every thread count, and a wave's
  // surplus trials past the budget are discarded identically everywhere.
  constexpr std::size_t kWave = 32;
  constexpr std::size_t kCleanTrials = 20;

  auto fold = [&](AttackStrategy s, const StrategyOut& o) {
    if (!o.success) return;
    DetectionCell& cell = cell_for(series, s, o.perfect);
    if (cell.attacks >= opt.successful_attacks_per_cell) return;
    ++cell.attacks;
    if (o.detected) ++cell.detected;
    obs::count("core.fig9.attacks");
    if (o.detected) obs::count("core.fig9.detected");
  };

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;

    // False-alarm baseline: honest measurements through the detector.
    std::vector<char> alarms(kCleanTrials, 0);
    pool.parallel_for(
        0, kCleanTrials, opt.grain, [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;
          for (std::size_t i = lo; i < hi; ++i) {
            Rng rng(derive_seed(base ^ kCleanSalt, t * kCleanTrials + i));
            local.resample_metrics(rng);
            alarms[i] = detect_scapegoating(local.estimator(),
                                            local.clean_measurements(),
                                            detector)
                            .detected;
          }
        });
    for (char a : alarms) {
      ++series.clean_trials;
      if (a) ++series.false_alarms;
      obs::count("core.fig9.clean_trials");
      if (a) obs::count("core.fig9.false_alarms");
    }

    for (bool perfect_phase : {true, false}) {
      const std::uint64_t salt = perfect_phase ? kPerfectSalt : kImperfectSalt;
      auto phase_full = [&] {
        return cell_for(series, AttackStrategy::kChosenVictim, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell &&
               cell_for(series, AttackStrategy::kMaxDamage, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell &&
               cell_for(series, AttackStrategy::kObfuscation, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell;
      };
      std::size_t next = 0;
      while (!phase_full() && next < opt.max_trials_per_cell) {
        const std::size_t wave_end =
            std::min(next + kWave, opt.max_trials_per_cell);
        std::vector<DetectionTrialOut> outs(wave_end - next);
        pool.parallel_for(
            0, outs.size(), opt.grain, [&](std::size_t lo, std::size_t hi) {
              Scenario local = *sc;
              for (std::size_t i = lo; i < hi; ++i) {
                Rng rng(derive_seed(base ^ salt,
                                    t * opt.max_trials_per_cell + next + i));
                outs[i] = perfect_phase
                              ? perfect_cut_trial(local, detector, rng)
                              : imperfect_cut_trial(local, detector, rng);
              }
            });
        for (const DetectionTrialOut& o : outs) {
          if (phase_full()) break;
          fold(AttackStrategy::kChosenVictim, o.chosen);
          fold(AttackStrategy::kMaxDamage, o.max_damage);
          fold(AttackStrategy::kObfuscation, o.obfuscation);
        }
        next = wave_end;
      }
    }
  }
  return series;
}

}  // namespace scapegoat
