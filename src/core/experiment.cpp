#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "detect/detector.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"

namespace scapegoat {

std::string to_string(TopologyKind k) {
  return k == TopologyKind::kWireline ? "wireline" : "wireless";
}

std::string to_string(AttackStrategy s) {
  switch (s) {
    case AttackStrategy::kChosenVictim:
      return "chosen-victim";
    case AttackStrategy::kMaxDamage:
      return "maximum-damage";
    case AttackStrategy::kObfuscation:
      return "obfuscation";
  }
  return "?";
}

std::optional<Scenario> make_scenario(TopologyKind kind, Rng& rng,
                                      const ScenarioConfig& config,
                                      std::size_t redundant_paths) {
  Graph g;
  if (kind == TopologyKind::kWireline) {
    g = isp_topology(IspParams{}, rng);
  } else {
    g = random_geometric(GeometricParams{}, rng).graph;
  }
  return Scenario::from_graph(std::move(g), rng, config, redundant_paths);
}

namespace {

// Random attacker node set of size `count` (monitors are eligible — the
// paper's §II-D explicitly allows malicious monitors).
std::vector<NodeId> sample_attackers(const Graph& g, std::size_t count,
                                     Rng& rng) {
  return rng.sample_without_replacement(g.num_nodes(), count);
}

// Random victim link not controlled by the attackers; nullopt if all links
// are attacker-incident.
std::optional<LinkId> sample_victim(const Graph& g,
                                    const std::vector<LinkId>& controlled,
                                    Rng& rng) {
  std::vector<bool> bad(g.num_links(), false);
  for (LinkId l : controlled) bad[l] = true;
  std::vector<LinkId> pool;
  for (LinkId l = 0; l < g.num_links(); ++l)
    if (!bad[l]) pool.push_back(l);
  if (pool.empty()) return std::nullopt;
  return pool[rng.index(pool.size())];
}

}  // namespace

PresenceRatioSeries run_presence_ratio_experiment(
    TopologyKind kind, const PresenceRatioOptions& opt) {
  PresenceRatioSeries series;
  series.kind = kind;
  series.bins.resize(opt.bins + 1);
  for (std::size_t b = 0; b < opt.bins; ++b) {
    series.bins[b].ratio_low = static_cast<double>(b) / opt.bins;
    series.bins[b].ratio_high = static_cast<double>(b + 1) / opt.bins;
  }
  series.bins.back().ratio_low = series.bins.back().ratio_high = 1.0;

  Rng rng(opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x9e3779b9u));
  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = make_scenario(kind, rng);
    if (!sc) continue;
    const auto& paths = sc->estimator().paths();
    for (std::size_t trial = 0; trial < opt.trials_per_topology; ++trial) {
      sc->resample_metrics(rng);
      const std::size_t na =
          static_cast<std::size_t>(rng.uniform_int(1, opt.max_attackers));

      // Pick the victim first; draw attackers either uniformly (low-ratio
      // regime) or from the nodes sitting on the victim's measurement paths
      // (mid/high-ratio regime), so every presence-ratio bin receives
      // trials — purely uniform placement concentrates mass near ratio 0.
      const LinkId victim = rng.index(sc->graph().num_links());
      std::vector<NodeId> attackers;
      if (rng.bernoulli(0.5)) {
        attackers = sample_attackers(sc->graph(), na, rng);
      } else {
        std::vector<NodeId> on_victim_paths;
        std::vector<bool> seen(sc->graph().num_nodes(), false);
        for (std::size_t i : paths_through_links(paths, {victim})) {
          for (NodeId v : paths[i].nodes) {
            const Link& vl = sc->graph().link(victim);
            if (v != vl.u && v != vl.v && !seen[v]) {
              seen[v] = true;
              on_victim_paths.push_back(v);
            }
          }
        }
        rng.shuffle(on_victim_paths);
        for (std::size_t i = 0; i < na && i < on_victim_paths.size(); ++i)
          attackers.push_back(on_victim_paths[i]);
        if (attackers.empty()) attackers = sample_attackers(sc->graph(), na, rng);
      }

      AttackContext ctx = sc->context(attackers);
      const auto lm = ctx.controlled_links();
      if (std::find(lm.begin(), lm.end(), victim) != lm.end())
        continue;  // victim became attacker-controlled — not a scapegoat
      const PresenceRatio pr =
          attack_presence_ratio(paths, attackers, {victim});
      if (pr.victim_paths == 0) continue;  // cannot happen when identifiable

      const double ratio = pr.ratio();
      std::size_t bin;
      if (ratio >= 1.0 - 1e-12) {
        bin = opt.bins;  // exact perfect cut
      } else {
        bin = std::min(static_cast<std::size_t>(ratio * opt.bins),
                       opt.bins - 1);
      }
      const AttackResult res = chosen_victim_attack(ctx, {victim});
      ++series.bins[bin].trials;
      if (res.success) ++series.bins[bin].successes;
      ++series.total_trials;
    }
  }
  return series;
}

SingleAttackerResult run_single_attacker_experiment(
    TopologyKind kind, const SingleAttackerOptions& opt) {
  SingleAttackerResult out;
  out.kind = kind;
  Rng rng(opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x51f15ee5u));
  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = make_scenario(kind, rng);
    if (!sc) continue;
    for (std::size_t trial = 0; trial < opt.trials_per_topology; ++trial) {
      sc->resample_metrics(rng);
      const NodeId attacker = rng.index(sc->graph().num_nodes());
      AttackContext ctx = sc->context({attacker});

      MaxDamageOptions md;
      md.max_candidates = 32;
      md.max_victims = 4;
      if (max_damage_attack(ctx, md).best.success) ++out.max_damage_successes;

      ObfuscationOptions ob;
      ob.min_victims = opt.min_obfuscation_victims;
      ob.max_victims = 24;
      if (obfuscation_attack(ctx, ob).success) ++out.obfuscation_successes;

      ++out.trials;
    }
  }
  return out;
}

namespace {

// Grows a connected set S of non-monitor nodes and returns (S's boundary as
// attackers, S's internal links as perfectly-cut victim candidates).
// Empty result when the growth fails (e.g. seed pool exhausted).
struct PerfectCutSample {
  std::vector<NodeId> attackers;
  std::vector<LinkId> internal_links;
};

std::optional<PerfectCutSample> grow_perfect_cut(const Scenario& sc,
                                                 std::size_t target_size,
                                                 Rng& rng) {
  const Graph& g = sc.graph();
  std::vector<NodeId> non_monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!sc.is_monitor(v)) non_monitors.push_back(v);
  if (non_monitors.empty()) return std::nullopt;

  const NodeId seed = non_monitors[rng.index(non_monitors.size())];
  std::vector<bool> in_s(g.num_nodes(), false);
  std::vector<NodeId> s{seed};
  in_s[seed] = true;
  // Randomized BFS growth over non-monitor neighbors.
  for (std::size_t i = 0; i < s.size() && s.size() < target_size; ++i) {
    std::vector<Adjacent> nbrs = g.neighbors(s[i]);
    rng.shuffle(nbrs);
    for (const Adjacent& a : nbrs) {
      if (s.size() >= target_size) break;
      if (in_s[a.neighbor] || sc.is_monitor(a.neighbor)) continue;
      in_s[a.neighbor] = true;
      s.push_back(a.neighbor);
    }
  }

  PerfectCutSample out;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (in_s[link.u] && in_s[link.v]) out.internal_links.push_back(l);
  }
  if (out.internal_links.empty()) return std::nullopt;
  std::vector<bool> is_attacker(g.num_nodes(), false);
  for (NodeId v : s) {
    for (const Adjacent& a : g.neighbors(v)) {
      if (!in_s[a.neighbor] && !is_attacker[a.neighbor]) {
        is_attacker[a.neighbor] = true;
        out.attackers.push_back(a.neighbor);
      }
    }
  }
  if (out.attackers.empty()) return std::nullopt;
  return out;
}

DetectionCell& cell_for(DetectionSeries& series, AttackStrategy s,
                        bool perfect) {
  for (DetectionCell& c : series.cells)
    if (c.strategy == s && c.perfect_cut == perfect) return c;
  series.cells.push_back(DetectionCell{s, perfect, 0, 0});
  return series.cells.back();
}

}  // namespace

DetectionSeries run_detection_experiment(
    TopologyKind kind, const DetectionOptionsExperiment& opt) {
  DetectionSeries series;
  series.kind = kind;
  for (AttackStrategy s :
       {AttackStrategy::kChosenVictim, AttackStrategy::kMaxDamage,
        AttackStrategy::kObfuscation})
    for (bool perfect : {true, false}) cell_for(series, s, perfect);

  const DetectorOptions detector{opt.alpha};
  Rng rng(opt.seed + (kind == TopologyKind::kWireline ? 0 : 0xdec0deu));

  auto record = [&](AttackStrategy strategy, const Scenario& sc,
                    const std::vector<NodeId>& attackers,
                    const AttackResult& res) {
    if (!res.success) return;
    const bool perfect =
        is_perfect_cut(sc.estimator().paths(), attackers, res.victims);
    DetectionCell& cell = cell_for(series, strategy, perfect);
    if (cell.attacks >= opt.successful_attacks_per_cell) return;
    ++cell.attacks;
    if (detect_scapegoating(sc.estimator(), res.y_observed, detector).detected)
      ++cell.detected;
  };
  auto cell_full = [&](AttackStrategy s, bool perfect) {
    return cell_for(series, s, perfect).attacks >=
           opt.successful_attacks_per_cell;
  };

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = make_scenario(kind, rng);
    if (!sc) continue;

    // False-alarm baseline: honest measurements through the detector.
    for (int i = 0; i < 20; ++i) {
      sc->resample_metrics(rng);
      ++series.clean_trials;
      if (detect_scapegoating(sc->estimator(), sc->clean_measurements(),
                              detector)
              .detected)
        ++series.false_alarms;
    }

    // Perfect-cut cells: enclose a non-monitor region, attack its internal
    // links with the Theorem-1 consistent construction.
    for (std::size_t trial = 0; trial < opt.max_trials_per_cell; ++trial) {
      if (cell_full(AttackStrategy::kChosenVictim, true) &&
          cell_full(AttackStrategy::kMaxDamage, true) &&
          cell_full(AttackStrategy::kObfuscation, true))
        break;
      sc->resample_metrics(rng);
      auto sample = grow_perfect_cut(*sc, 8, rng);
      if (!sample) continue;
      AttackContext ctx = sc->context(sample->attackers);

      const LinkId victim =
          sample->internal_links[rng.index(sample->internal_links.size())];
      record(AttackStrategy::kChosenVictim, *sc, sample->attackers,
             chosen_victim_attack(ctx, {victim},
                                  ManipulationMode::kConsistent));

      MaxDamageOptions md;
      md.mode = ManipulationMode::kConsistent;
      md.candidate_victims = sample->internal_links;
      md.max_victims = 3;
      record(AttackStrategy::kMaxDamage, *sc, sample->attackers,
             max_damage_attack(ctx, md).best);

      ObfuscationOptions ob;
      ob.mode = ManipulationMode::kConsistent;
      ob.candidate_victims = sample->internal_links;
      ob.min_victims = std::min<std::size_t>(5, sample->internal_links.size());
      record(AttackStrategy::kObfuscation, *sc, sample->attackers,
             obfuscation_attack(ctx, ob));
    }

    // Imperfect-cut cells: random attacker placements, damage-maximizing
    // manipulation (the stealthy construction is infeasible here).
    for (std::size_t trial = 0; trial < opt.max_trials_per_cell; ++trial) {
      if (cell_full(AttackStrategy::kChosenVictim, false) &&
          cell_full(AttackStrategy::kMaxDamage, false) &&
          cell_full(AttackStrategy::kObfuscation, false))
        break;
      sc->resample_metrics(rng);
      const std::size_t na = static_cast<std::size_t>(rng.uniform_int(1, 4));
      std::vector<NodeId> attackers = sample_attackers(sc->graph(), na, rng);
      AttackContext ctx = sc->context(attackers);

      std::optional<LinkId> victim =
          sample_victim(sc->graph(), ctx.controlled_links(), rng);
      if (victim) {
        record(AttackStrategy::kChosenVictim, *sc, attackers,
               chosen_victim_attack(ctx, {*victim}));
      }

      MaxDamageOptions md;
      md.max_candidates = 24;
      md.max_victims = 3;
      record(AttackStrategy::kMaxDamage, *sc, attackers,
             max_damage_attack(ctx, md).best);

      ObfuscationOptions ob;
      ob.max_victims = 24;
      record(AttackStrategy::kObfuscation, *sc, attackers,
             obfuscation_attack(ctx, ob));
    }
  }
  return series;
}

}  // namespace scapegoat
