#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <memory>
#include <string_view>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "core/checkpoint_runner.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

std::string to_string(TopologyKind k) {
  return k == TopologyKind::kWireline ? "wireline" : "wireless";
}

std::string to_string(AttackStrategy s) {
  switch (s) {
    case AttackStrategy::kChosenVictim:
      return "chosen-victim";
    case AttackStrategy::kMaxDamage:
      return "maximum-damage";
    case AttackStrategy::kObfuscation:
      return "obfuscation";
  }
  return "?";
}

std::optional<Scenario> make_scenario(TopologyKind kind, Rng& rng,
                                      const ScenarioConfig& config,
                                      std::size_t redundant_paths) {
  Graph g;
  if (kind == TopologyKind::kWireline) {
    g = isp_topology(IspParams{}, rng);
  } else {
    g = random_geometric(GeometricParams{}, rng).graph;
  }
  return Scenario::from_graph(std::move(g), rng, config, redundant_paths);
}

namespace {

// Stream-namespace salts: topology draws, clean-baseline runs, and the
// attack-trial families each derive seeds in their own namespace so no two
// purposes ever share an RNG stream (see derive_seed in util/random.hpp).
constexpr std::uint64_t kTopologySalt = 0x7090a10975a17ull;
constexpr std::uint64_t kTrialSalt = 0x7121a15a175ull;
constexpr std::uint64_t kCleanSalt = 0xc1ea9ba5e11ull;
constexpr std::uint64_t kPerfectSalt = 0x9e2fec7c07ull;
constexpr std::uint64_t kImperfectSalt = 0x19e2fec7c07ull;

// Draws topology t of the run on its own seed stream and pre-computes the
// estimator's lazily-cached pseudo-inverse, so the per-chunk Scenario copies
// taken by worker threads are plain value copies with no shared lazy state.
std::optional<Scenario> draw_topology(TopologyKind kind, std::uint64_t base,
                                      std::size_t t) {
  Rng rng(derive_seed(base ^ kTopologySalt, t));
  std::optional<Scenario> sc = make_scenario(kind, rng);
  if (sc) sc->estimator().pseudo_inverse();
  return sc;
}

// Random attacker node set of size `count` (monitors are eligible — the
// paper's §II-D explicitly allows malicious monitors).
std::vector<NodeId> sample_attackers(const Graph& g, std::size_t count,
                                     Rng& rng) {
  return rng.sample_without_replacement(g.num_nodes(), count);
}

// Random victim link not controlled by the attackers; nullopt if all links
// are attacker-incident.
std::optional<LinkId> sample_victim(const Graph& g,
                                    const std::vector<LinkId>& controlled,
                                    Rng& rng) {
  std::vector<bool> bad(g.num_links(), false);
  for (LinkId l : controlled) bad[l] = true;
  std::vector<LinkId> pool;
  for (LinkId l = 0; l < g.num_links(); ++l)
    if (!bad[l]) pool.push_back(l);
  if (pool.empty()) return std::nullopt;
  return pool[rng.index(pool.size())];
}

// --- checkpoint payload codecs ------------------------------------------
//
// Trial outputs here are small tuples of flags and indices, serialized as
// ':'-separated decimal fields. Doubles never appear in the figure trials
// (they would use robust::encode_double_bits, as fault_experiment does).

bool split_u64_fields(std::string_view payload, std::uint64_t* out,
                      std::size_t count) {
  std::size_t field = 0;
  const char* p = payload.data();
  const char* end = p + payload.size();
  while (field < count) {
    std::uint64_t value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc() || next == p) return false;
    out[field++] = value;
    p = next;
    if (field < count) {
      if (p == end || *p != ':') return false;
      ++p;
    }
  }
  return field == count && p == end;
}

void append_u64_field(std::string& s, std::uint64_t v) {
  if (!s.empty()) s += ':';
  s += std::to_string(v);
}

}  // namespace

namespace {

struct PresenceTrialOut {
  bool counted = false;
  std::size_t bin = 0;
  bool success = false;
};

// One Fig. 7 trial on a private scenario copy and a private RNG stream.
PresenceTrialOut presence_trial(Scenario& sc, const PresenceRatioOptions& opt,
                                Rng& rng) {
  PresenceTrialOut out;
  sc.resample_metrics(rng);
  const auto& paths = sc.estimator().paths();
  const std::size_t na =
      static_cast<std::size_t>(rng.uniform_int(1, opt.max_attackers));

  // Pick the victim first; draw attackers either uniformly (low-ratio
  // regime) or from the nodes sitting on the victim's measurement paths
  // (mid/high-ratio regime), so every presence-ratio bin receives
  // trials — purely uniform placement concentrates mass near ratio 0.
  const LinkId victim = rng.index(sc.graph().num_links());
  std::vector<NodeId> attackers;
  if (rng.bernoulli(0.5)) {
    attackers = sample_attackers(sc.graph(), na, rng);
  } else {
    std::vector<NodeId> on_victim_paths;
    std::vector<bool> seen(sc.graph().num_nodes(), false);
    for (std::size_t i : paths_through_links(paths, {victim})) {
      for (NodeId v : paths[i].nodes) {
        const Link& vl = sc.graph().link(victim);
        if (v != vl.u && v != vl.v && !seen[v]) {
          seen[v] = true;
          on_victim_paths.push_back(v);
        }
      }
    }
    rng.shuffle(on_victim_paths);
    for (std::size_t i = 0; i < na && i < on_victim_paths.size(); ++i)
      attackers.push_back(on_victim_paths[i]);
    if (attackers.empty()) attackers = sample_attackers(sc.graph(), na, rng);
  }

  AttackContext ctx = sc.context(attackers);
  const auto lm = ctx.controlled_links();
  if (std::find(lm.begin(), lm.end(), victim) != lm.end())
    return out;  // victim became attacker-controlled — not a scapegoat
  const PresenceRatio pr = attack_presence_ratio(paths, attackers, {victim});
  if (pr.victim_paths == 0) return out;  // cannot happen when identifiable

  const double ratio = pr.ratio();
  if (ratio >= 1.0 - 1e-12) {
    out.bin = opt.bins;  // exact perfect cut
  } else {
    out.bin =
        std::min(static_cast<std::size_t>(ratio * opt.bins), opt.bins - 1);
  }
  out.success = chosen_victim_attack(ctx, {victim}).success;
  out.counted = true;
  return out;
}

std::string encode_presence(const PresenceTrialOut& o) {
  std::string s;
  append_u64_field(s, o.counted ? 1 : 0);
  append_u64_field(s, o.bin);
  append_u64_field(s, o.success ? 1 : 0);
  return s;
}

bool decode_presence(std::string_view payload, PresenceTrialOut& o) {
  std::uint64_t f[3];
  if (!split_u64_fields(payload, f, 3)) return false;
  o.counted = f[0] != 0;
  o.bin = static_cast<std::size_t>(f[1]);
  o.success = f[2] != 0;
  return true;
}

// Result-affecting configuration only: threads/grain/resilience are absent
// by design so a journal resumes correctly at any thread count.
std::uint64_t presence_config_hash(TopologyKind kind,
                                   const PresenceRatioOptions& opt) {
  robust::ConfigHasher h;
  h.mix("fig7.presence_ratio");
  h.mix(to_string(kind));
  h.mix(static_cast<std::uint64_t>(opt.seed));
  h.mix(opt.topologies);
  h.mix(opt.trials_per_topology);
  h.mix(opt.max_attackers);
  h.mix(opt.bins);
  return h.hash();
}

}  // namespace

PresenceRatioSeries run_presence_ratio_experiment(
    TopologyKind kind, const PresenceRatioOptions& opt) {
  PresenceRatioSeries series;
  series.kind = kind;
  series.bins.resize(opt.bins + 1);
  for (std::size_t b = 0; b < opt.bins; ++b) {
    series.bins[b].ratio_low = static_cast<double>(b) / opt.bins;
    series.bins[b].ratio_high = static_cast<double>(b + 1) / opt.bins;
  }
  series.bins.back().ratio_low = series.bins.back().ratio_high = 1.0;

  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x9e3779b9u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  obs::ScopedSpan run_span("core.fig7.run");
  run_span.attr("kind", to_string(kind));

  internal::CheckpointedRun run(opt.resilience, "fig7.presence_ratio",
                                presence_config_hash(kind, opt));

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;
    const std::size_t n = opt.trials_per_topology;
    std::vector<PresenceTrialOut> outs(n);
    std::vector<internal::TrialSlot> slots(n, internal::TrialSlot::kCompute);
    std::vector<internal::GuardOutcome> guards(n);
    std::vector<std::uint64_t> seeds(n);
    // Serial prepass: finished trials replay from the journal, quarantined
    // trials stay quarantined; only the rest are computed.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t idx = t * n + i;
      seeds[i] = derive_seed(base ^ kTrialSalt, idx);
      if (const std::string* p = run.replay("trial", idx, seeds[i]);
          p != nullptr && decode_presence(*p, outs[i])) {
        slots[i] = internal::TrialSlot::kReplayed;
      } else if (run.is_quarantined("trial", idx)) {
        slots[i] = internal::TrialSlot::kQuarantined;
      }
    }
    pool.parallel_for(
        0, n, opt.grain, [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;  // private copy: resample_metrics mutates
          for (std::size_t i = lo; i < hi; ++i) {
            if (slots[i] != internal::TrialSlot::kCompute) continue;
            obs::ScopedSpan trial_span("core.fig7.trial");
            guards[i] = internal::run_trial_guarded(
                run.trial_budget(), run.trial_retries(), seeds[i],
                [&](Rng& rng) { outs[i] = presence_trial(local, opt, rng); });
            trial_span.attr("trial", static_cast<std::uint64_t>(t * n + i));
          }
        });
    // Serial fold in trial order — identical at every thread count.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t idx = t * n + i;
      if (slots[i] == internal::TrialSlot::kQuarantined ||
          (slots[i] == internal::TrialSlot::kCompute &&
           guards[i].quarantined)) {
        if (slots[i] == internal::TrialSlot::kCompute)
          run.record_quarantine("trial", idx, seeds[i], guards[i].attempts);
        ++series.trials_quarantined;
        obs::count("ckpt.trials_quarantined");
        continue;
      }
      if (slots[i] == internal::TrialSlot::kReplayed) {
        ++series.trials_replayed;
        obs::count("ckpt.trials_replayed");
      } else {
        run.record("trial", idx, seeds[i], encode_presence(outs[i]));
      }
      const PresenceTrialOut& o = outs[i];
      if (!o.counted) continue;
      ++series.bins[o.bin].trials;
      if (o.success) ++series.bins[o.bin].successes;
      ++series.total_trials;
      obs::count("core.fig7.trials");
      if (o.success) obs::count("core.fig7.successes");
    }
    run.flush();  // durability point: this topology's block is on disk
    if (run.should_stop()) {
      series.interrupted = true;
      break;
    }
  }
  run_span.attr("trials", static_cast<std::uint64_t>(series.total_trials));
  return series;
}

namespace {

struct SingleTrialOut {
  bool max_damage = false;
  bool obfuscation = false;
};

// One Fig. 8 trial: a lone attacker runs both §V-C constructions.
SingleTrialOut single_attacker_trial(Scenario& sc,
                                     const SingleAttackerOptions& opt,
                                     Rng& rng) {
  SingleTrialOut out;
  sc.resample_metrics(rng);
  const NodeId attacker = rng.index(sc.graph().num_nodes());
  AttackContext ctx = sc.context({attacker});

  MaxDamageOptions md;
  md.max_candidates = 32;
  md.max_victims = 4;
  out.max_damage = max_damage_attack(ctx, md).best.success;

  ObfuscationOptions ob;
  ob.min_victims = opt.min_obfuscation_victims;
  ob.max_victims = 24;
  out.obfuscation = obfuscation_attack(ctx, ob).success;
  return out;
}

std::string encode_single(const SingleTrialOut& o) {
  std::string s;
  append_u64_field(s, o.max_damage ? 1 : 0);
  append_u64_field(s, o.obfuscation ? 1 : 0);
  return s;
}

bool decode_single(std::string_view payload, SingleTrialOut& o) {
  std::uint64_t f[2];
  if (!split_u64_fields(payload, f, 2)) return false;
  o.max_damage = f[0] != 0;
  o.obfuscation = f[1] != 0;
  return true;
}

std::uint64_t single_config_hash(TopologyKind kind,
                                 const SingleAttackerOptions& opt) {
  robust::ConfigHasher h;
  h.mix("fig8.single_attacker");
  h.mix(to_string(kind));
  h.mix(static_cast<std::uint64_t>(opt.seed));
  h.mix(opt.topologies);
  h.mix(opt.trials_per_topology);
  h.mix(opt.min_obfuscation_victims);
  return h.hash();
}

}  // namespace

SingleAttackerResult run_single_attacker_experiment(
    TopologyKind kind, const SingleAttackerOptions& opt) {
  SingleAttackerResult out;
  out.kind = kind;
  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0x51f15ee5u);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  internal::CheckpointedRun run(opt.resilience, "fig8.single_attacker",
                                single_config_hash(kind, opt));

  for (std::size_t t = 0; t < opt.topologies; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;
    const std::size_t n = opt.trials_per_topology;
    std::vector<SingleTrialOut> outs(n);
    std::vector<internal::TrialSlot> slots(n, internal::TrialSlot::kCompute);
    std::vector<internal::GuardOutcome> guards(n);
    std::vector<std::uint64_t> seeds(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t idx = t * n + i;
      seeds[i] = derive_seed(base ^ kTrialSalt, idx);
      if (const std::string* p = run.replay("trial", idx, seeds[i]);
          p != nullptr && decode_single(*p, outs[i])) {
        slots[i] = internal::TrialSlot::kReplayed;
      } else if (run.is_quarantined("trial", idx)) {
        slots[i] = internal::TrialSlot::kQuarantined;
      }
    }
    pool.parallel_for(
        0, n, opt.grain, [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;
          for (std::size_t i = lo; i < hi; ++i) {
            if (slots[i] != internal::TrialSlot::kCompute) continue;
            guards[i] = internal::run_trial_guarded(
                run.trial_budget(), run.trial_retries(), seeds[i],
                [&](Rng& rng) {
                  outs[i] = single_attacker_trial(local, opt, rng);
                });
          }
        });
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t idx = t * n + i;
      if (slots[i] == internal::TrialSlot::kQuarantined ||
          (slots[i] == internal::TrialSlot::kCompute &&
           guards[i].quarantined)) {
        if (slots[i] == internal::TrialSlot::kCompute)
          run.record_quarantine("trial", idx, seeds[i], guards[i].attempts);
        ++out.trials_quarantined;
        obs::count("ckpt.trials_quarantined");
        continue;
      }
      if (slots[i] == internal::TrialSlot::kReplayed) {
        ++out.trials_replayed;
        obs::count("ckpt.trials_replayed");
      } else {
        run.record("trial", idx, seeds[i], encode_single(outs[i]));
      }
      const SingleTrialOut& o = outs[i];
      if (o.max_damage) ++out.max_damage_successes;
      if (o.obfuscation) ++out.obfuscation_successes;
      ++out.trials;
      obs::count("core.fig8.trials");
      if (o.max_damage) obs::count("core.fig8.max_damage_successes");
      if (o.obfuscation) obs::count("core.fig8.obfuscation_successes");
    }
    run.flush();
    if (run.should_stop()) {
      out.interrupted = true;
      break;
    }
  }
  return out;
}

namespace {

// Grows a connected set S of non-monitor nodes and returns (S's boundary as
// attackers, S's internal links as perfectly-cut victim candidates).
// Empty result when the growth fails (e.g. seed pool exhausted).
struct PerfectCutSample {
  std::vector<NodeId> attackers;
  std::vector<LinkId> internal_links;
};

std::optional<PerfectCutSample> grow_perfect_cut(const Scenario& sc,
                                                 std::size_t target_size,
                                                 Rng& rng) {
  const Graph& g = sc.graph();
  std::vector<NodeId> non_monitors;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!sc.is_monitor(v)) non_monitors.push_back(v);
  if (non_monitors.empty()) return std::nullopt;

  const NodeId seed = non_monitors[rng.index(non_monitors.size())];
  std::vector<bool> in_s(g.num_nodes(), false);
  std::vector<NodeId> s{seed};
  in_s[seed] = true;
  // Randomized BFS growth over non-monitor neighbors.
  for (std::size_t i = 0; i < s.size() && s.size() < target_size; ++i) {
    std::vector<Adjacent> nbrs = g.neighbors(s[i]);
    rng.shuffle(nbrs);
    for (const Adjacent& a : nbrs) {
      if (s.size() >= target_size) break;
      if (in_s[a.neighbor] || sc.is_monitor(a.neighbor)) continue;
      in_s[a.neighbor] = true;
      s.push_back(a.neighbor);
    }
  }

  PerfectCutSample out;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (in_s[link.u] && in_s[link.v]) out.internal_links.push_back(l);
  }
  if (out.internal_links.empty()) return std::nullopt;
  std::vector<bool> is_attacker(g.num_nodes(), false);
  for (NodeId v : s) {
    for (const Adjacent& a : g.neighbors(v)) {
      if (!in_s[a.neighbor] && !is_attacker[a.neighbor]) {
        is_attacker[a.neighbor] = true;
        out.attackers.push_back(a.neighbor);
      }
    }
  }
  if (out.attackers.empty()) return std::nullopt;
  return out;
}

DetectionCell& cell_for(DetectionSeries& series, AttackStrategy s,
                        bool perfect) {
  for (DetectionCell& c : series.cells)
    if (c.strategy == s && c.perfect_cut == perfect) return c;
  series.cells.push_back(DetectionCell{s, perfect, 0, 0});
  return series.cells.back();
}

// Per-strategy outcome of one detection trial, computed entirely inside the
// worker; the serial fold only applies the per-cell sampling budget.
struct StrategyOut {
  bool success = false;
  bool perfect = false;
  bool detected = false;
};

struct DetectionTrialOut {
  StrategyOut chosen, max_damage, obfuscation;
};

// Nine flags, one field per strategy encoded as success·4 + perfect·2 +
// detected.
std::uint64_t pack_strategy(const StrategyOut& o) {
  return (o.success ? 4u : 0u) | (o.perfect ? 2u : 0u) | (o.detected ? 1u : 0u);
}

StrategyOut unpack_strategy(std::uint64_t v) {
  StrategyOut o;
  o.success = (v & 4u) != 0;
  o.perfect = (v & 2u) != 0;
  o.detected = (v & 1u) != 0;
  return o;
}

std::string encode_detection(const DetectionTrialOut& o) {
  std::string s;
  append_u64_field(s, pack_strategy(o.chosen));
  append_u64_field(s, pack_strategy(o.max_damage));
  append_u64_field(s, pack_strategy(o.obfuscation));
  return s;
}

bool decode_detection(std::string_view payload, DetectionTrialOut& o) {
  std::uint64_t f[3];
  if (!split_u64_fields(payload, f, 3)) return false;
  o.chosen = unpack_strategy(f[0]);
  o.max_damage = unpack_strategy(f[1]);
  o.obfuscation = unpack_strategy(f[2]);
  return true;
}

std::uint64_t detection_config_hash(TopologyKind kind,
                                    const DetectionOptionsExperiment& opt) {
  robust::ConfigHasher h;
  h.mix("fig9.detection");
  h.mix(to_string(kind));
  h.mix(static_cast<std::uint64_t>(opt.seed));
  h.mix(opt.topologies);
  h.mix(opt.successful_attacks_per_cell);
  h.mix(opt.max_trials_per_cell);
  h.mix(opt.alpha);
  return h.hash();
}

StrategyOut eval_attack(const Scenario& sc,
                        const std::vector<NodeId>& attackers,
                        const AttackResult& res, const DetectorOptions& det) {
  StrategyOut out;
  if (!res.success) return out;
  out.success = true;
  out.perfect = is_perfect_cut(sc.estimator().paths(), attackers, res.victims);
  out.detected =
      detect_scapegoating(sc.estimator(), res.y_observed, det).detected;
  return out;
}

// Perfect-cut trial: enclose a non-monitor region, attack its internal
// links with the Theorem-1 consistent construction.
DetectionTrialOut perfect_cut_trial(Scenario& sc,
                                    const DetectorOptions& det, Rng& rng) {
  DetectionTrialOut out;
  sc.resample_metrics(rng);
  auto sample = grow_perfect_cut(sc, 8, rng);
  if (!sample) return out;
  AttackContext ctx = sc.context(sample->attackers);

  const LinkId victim =
      sample->internal_links[rng.index(sample->internal_links.size())];
  out.chosen = eval_attack(
      sc, sample->attackers,
      chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent), det);

  MaxDamageOptions md;
  md.mode = ManipulationMode::kConsistent;
  md.candidate_victims = sample->internal_links;
  md.max_victims = 3;
  out.max_damage =
      eval_attack(sc, sample->attackers, max_damage_attack(ctx, md).best, det);

  ObfuscationOptions ob;
  ob.mode = ManipulationMode::kConsistent;
  ob.candidate_victims = sample->internal_links;
  ob.min_victims = std::min<std::size_t>(5, sample->internal_links.size());
  out.obfuscation =
      eval_attack(sc, sample->attackers, obfuscation_attack(ctx, ob), det);
  return out;
}

// Imperfect-cut trial: random attacker placements, damage-maximizing
// manipulation (the stealthy construction is infeasible here).
DetectionTrialOut imperfect_cut_trial(Scenario& sc,
                                      const DetectorOptions& det, Rng& rng) {
  DetectionTrialOut out;
  sc.resample_metrics(rng);
  const std::size_t na = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<NodeId> attackers = sample_attackers(sc.graph(), na, rng);
  AttackContext ctx = sc.context(attackers);

  std::optional<LinkId> victim =
      sample_victim(sc.graph(), ctx.controlled_links(), rng);
  if (victim) {
    out.chosen =
        eval_attack(sc, attackers, chosen_victim_attack(ctx, {*victim}), det);
  }

  MaxDamageOptions md;
  md.max_candidates = 24;
  md.max_victims = 3;
  out.max_damage =
      eval_attack(sc, attackers, max_damage_attack(ctx, md).best, det);

  ObfuscationOptions ob;
  ob.max_victims = 24;
  out.obfuscation = eval_attack(sc, attackers, obfuscation_attack(ctx, ob), det);
  return out;
}

}  // namespace

DetectionSeries run_detection_experiment(
    TopologyKind kind, const DetectionOptionsExperiment& opt) {
  DetectionSeries series;
  series.kind = kind;
  for (AttackStrategy s :
       {AttackStrategy::kChosenVictim, AttackStrategy::kMaxDamage,
        AttackStrategy::kObfuscation})
    for (bool perfect : {true, false}) cell_for(series, s, perfect);

  const DetectorOptions detector{opt.alpha};
  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0xdec0deu);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  // Trials are computed in fixed-size waves (worker threads fill a wave in
  // parallel) and folded serially in trial order with the per-cell budget.
  // Budget decisions therefore depend only on the trial index order, never
  // on scheduling: results are identical at every thread count, and a wave's
  // surplus trials past the budget are discarded identically everywhere.
  constexpr std::size_t kWave = 32;
  constexpr std::size_t kCleanTrials = 20;

  auto fold = [&](AttackStrategy s, const StrategyOut& o) {
    if (!o.success) return;
    DetectionCell& cell = cell_for(series, s, o.perfect);
    if (cell.attacks >= opt.successful_attacks_per_cell) return;
    ++cell.attacks;
    if (o.detected) ++cell.detected;
    obs::count("core.fig9.attacks");
    if (o.detected) obs::count("core.fig9.detected");
  };

  internal::CheckpointedRun run(opt.resilience, "fig9.detection",
                                detection_config_hash(kind, opt));

  for (std::size_t t = 0; t < opt.topologies && !series.interrupted; ++t) {
    std::optional<Scenario> sc = draw_topology(kind, base, t);
    if (!sc) continue;

    // False-alarm baseline: honest measurements through the detector. Its
    // trials journal under the "clean" family — a separate index space from
    // the attack waves below.
    std::vector<char> alarms(kCleanTrials, 0);
    std::vector<internal::TrialSlot> slots(kCleanTrials,
                                           internal::TrialSlot::kCompute);
    std::vector<internal::GuardOutcome> guards(kCleanTrials);
    std::vector<std::uint64_t> seeds(kCleanTrials);
    for (std::size_t i = 0; i < kCleanTrials; ++i) {
      const std::uint64_t idx = t * kCleanTrials + i;
      seeds[i] = derive_seed(base ^ kCleanSalt, idx);
      std::uint64_t alarm = 0;
      if (const std::string* p = run.replay("clean", idx, seeds[i]);
          p != nullptr && split_u64_fields(*p, &alarm, 1)) {
        alarms[i] = alarm != 0;
        slots[i] = internal::TrialSlot::kReplayed;
      } else if (run.is_quarantined("clean", idx)) {
        slots[i] = internal::TrialSlot::kQuarantined;
      }
    }
    pool.parallel_for(
        0, kCleanTrials, opt.grain, [&](std::size_t lo, std::size_t hi) {
          Scenario local = *sc;
          for (std::size_t i = lo; i < hi; ++i) {
            if (slots[i] != internal::TrialSlot::kCompute) continue;
            guards[i] = internal::run_trial_guarded(
                run.trial_budget(), run.trial_retries(), seeds[i],
                [&](Rng& rng) {
                  local.resample_metrics(rng);
                  alarms[i] = detect_scapegoating(local.estimator(),
                                                  local.clean_measurements(),
                                                  detector)
                                  .detected;
                });
          }
        });
    for (std::size_t i = 0; i < kCleanTrials; ++i) {
      const std::uint64_t idx = t * kCleanTrials + i;
      if (slots[i] == internal::TrialSlot::kQuarantined ||
          (slots[i] == internal::TrialSlot::kCompute &&
           guards[i].quarantined)) {
        if (slots[i] == internal::TrialSlot::kCompute)
          run.record_quarantine("clean", idx, seeds[i], guards[i].attempts);
        ++series.trials_quarantined;
        obs::count("ckpt.trials_quarantined");
        continue;
      }
      if (slots[i] == internal::TrialSlot::kReplayed) {
        ++series.trials_replayed;
        obs::count("ckpt.trials_replayed");
      } else {
        std::string payload;
        append_u64_field(payload, alarms[i] ? 1 : 0);
        run.record("clean", idx, seeds[i], std::move(payload));
      }
      ++series.clean_trials;
      if (alarms[i]) ++series.false_alarms;
      obs::count("core.fig9.clean_trials");
      if (alarms[i]) obs::count("core.fig9.false_alarms");
    }
    run.flush();
    if (run.should_stop()) {
      series.interrupted = true;
      break;
    }

    for (bool perfect_phase : {true, false}) {
      if (series.interrupted) break;
      const std::uint64_t salt = perfect_phase ? kPerfectSalt : kImperfectSalt;
      const std::string_view family = perfect_phase ? "perfect" : "imperfect";
      auto phase_full = [&] {
        return cell_for(series, AttackStrategy::kChosenVictim, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell &&
               cell_for(series, AttackStrategy::kMaxDamage, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell &&
               cell_for(series, AttackStrategy::kObfuscation, perfect_phase)
                       .attacks >= opt.successful_attacks_per_cell;
      };
      std::size_t next = 0;
      while (!phase_full() && next < opt.max_trials_per_cell) {
        const std::size_t wave_end =
            std::min(next + kWave, opt.max_trials_per_cell);
        const std::size_t wave = wave_end - next;
        std::vector<DetectionTrialOut> outs(wave);
        std::vector<internal::TrialSlot> wslots(wave,
                                                internal::TrialSlot::kCompute);
        std::vector<internal::GuardOutcome> wguards(wave);
        std::vector<std::uint64_t> wseeds(wave);
        for (std::size_t i = 0; i < wave; ++i) {
          const std::uint64_t idx = t * opt.max_trials_per_cell + next + i;
          wseeds[i] = derive_seed(base ^ salt, idx);
          if (const std::string* p = run.replay(family, idx, wseeds[i]);
              p != nullptr && decode_detection(*p, outs[i])) {
            wslots[i] = internal::TrialSlot::kReplayed;
          } else if (run.is_quarantined(family, idx)) {
            wslots[i] = internal::TrialSlot::kQuarantined;
          }
        }
        pool.parallel_for(
            0, wave, opt.grain, [&](std::size_t lo, std::size_t hi) {
              Scenario local = *sc;
              for (std::size_t i = lo; i < hi; ++i) {
                if (wslots[i] != internal::TrialSlot::kCompute) continue;
                wguards[i] = internal::run_trial_guarded(
                    run.trial_budget(), run.trial_retries(), wseeds[i],
                    [&](Rng& rng) {
                      outs[i] = perfect_phase
                                    ? perfect_cut_trial(local, detector, rng)
                                    : imperfect_cut_trial(local, detector, rng);
                    });
              }
            });
        // Bookkeeping runs for every wave trial (surplus included, so a
        // resume never recomputes them); the per-cell budget fold keeps the
        // original semantics — no folds once the phase is full. phase_full
        // is monotone, so gating per trial equals the old break.
        for (std::size_t i = 0; i < wave; ++i) {
          const std::uint64_t idx = t * opt.max_trials_per_cell + next + i;
          if (wslots[i] == internal::TrialSlot::kQuarantined ||
              (wslots[i] == internal::TrialSlot::kCompute &&
               wguards[i].quarantined)) {
            if (wslots[i] == internal::TrialSlot::kCompute)
              run.record_quarantine(family, idx, wseeds[i],
                                    wguards[i].attempts);
            ++series.trials_quarantined;
            obs::count("ckpt.trials_quarantined");
            continue;
          }
          if (wslots[i] == internal::TrialSlot::kReplayed) {
            ++series.trials_replayed;
            obs::count("ckpt.trials_replayed");
          } else {
            run.record(family, idx, wseeds[i], encode_detection(outs[i]));
          }
          if (phase_full()) continue;
          const DetectionTrialOut& o = outs[i];
          fold(AttackStrategy::kChosenVictim, o.chosen);
          fold(AttackStrategy::kMaxDamage, o.max_damage);
          fold(AttackStrategy::kObfuscation, o.obfuscation);
        }
        next = wave_end;
        run.flush();  // durability point: one wave per journal block
        if (run.should_stop()) {
          series.interrupted = true;
          break;
        }
      }
    }
  }
  return series;
}

}  // namespace scapegoat
