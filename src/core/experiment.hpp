// Monte-Carlo experiment runners behind Figs. 7-9.
//
// Each runner draws topologies of the requested kind (wireline = synthetic
// AS1221-like ISP, wireless = random geometric graph with λ = 5), places
// monitors/paths once per topology, then runs many attack trials with fresh
// ground-truth delays, attacker placements and victims. Results are plain
// structs the bench binaries print as the paper's series.
//
// Trials fan out over a thread pool. Each trial owns a deterministically
// derived RNG stream — Rng(derive_seed(seed ⊕ kind salt, trial index)) — and
// a private copy of the topology's Scenario, so per-trial estimates and the
// folded aggregates are bitwise identical at every thread count (see
// DESIGN.md "Threading model"). `threads` = 0 runs on the process-global
// pool (ThreadPool::global()); any other value uses a dedicated pool of that
// size for the call.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/scenario.hpp"
#include "robust/checkpoint.hpp"
#include "util/execution.hpp"

namespace scapegoat {

enum class TopologyKind { kWireline, kWireless };

std::string to_string(TopologyKind k);

// Draws one topology of the given kind (see DESIGN.md §4 for the Rocketfuel
// substitution) and builds an identifiable scenario on it.
std::optional<Scenario> make_scenario(TopologyKind kind, Rng& rng,
                                      const ScenarioConfig& config = {},
                                      std::size_t redundant_paths = 8);

// ---------------------------------------------------------------- Fig. 7 --

// threads/grain/seed come from the shared ExecutionPolicy base
// (util/execution.hpp); the old field names keep working via inheritance.
struct PresenceRatioOptions : ExecutionPolicy {
  PresenceRatioOptions() : ExecutionPolicy(0, /*grain=*/8, /*seed=*/7) {}

  std::size_t topologies = 2;          // independent topology draws
  std::size_t trials_per_topology = 400;
  std::size_t max_attackers = 6;       // attacker count drawn U[1, max]
  std::size_t bins = 10;               // histogram bins over ratio (0, 1)

  // Crash-safety: checkpoint journal, per-trial watchdog budget, quarantine
  // retries (robust/checkpoint.hpp). Not part of the config hash — a journal
  // is resumable at any thread count or budget setting.
  robust::ResilienceOptions resilience;
};

struct PresenceRatioBin {
  double ratio_low = 0.0;   // bin covers (ratio_low, ratio_high]
  double ratio_high = 0.0;
  std::size_t trials = 0;
  std::size_t successes = 0;
  double probability() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

struct PresenceRatioSeries {
  TopologyKind kind;
  std::vector<PresenceRatioBin> bins;  // last bin is the exact-1.0 perfect cut
  std::size_t total_trials = 0;
  // Resilience bookkeeping. `trials_quarantined` is stable across resumes
  // (a quarantined trial stays quarantined); `trials_replayed` counts this
  // session's journal hits and is therefore session-local. `interrupted`
  // means the run stopped resumably (signal or new-trial quota) and the
  // series is a prefix of the full experiment.
  std::size_t trials_replayed = 0;
  std::size_t trials_quarantined = 0;
  bool interrupted = false;
};

// Chosen-victim success probability vs attack presence ratio (Fig. 7).
PresenceRatioSeries run_presence_ratio_experiment(
    TopologyKind kind, const PresenceRatioOptions& opt);

// ---------------------------------------------------------------- Fig. 8 --

struct SingleAttackerOptions : ExecutionPolicy {
  SingleAttackerOptions() : ExecutionPolicy(0, /*grain=*/4, /*seed=*/8) {}

  std::size_t topologies = 2;
  std::size_t trials_per_topology = 60;
  std::size_t min_obfuscation_victims = 5;  // §V-C2 success bar

  robust::ResilienceOptions resilience;  // see PresenceRatioOptions
};

struct SingleAttackerResult {
  TopologyKind kind;
  std::size_t trials = 0;
  std::size_t max_damage_successes = 0;
  std::size_t obfuscation_successes = 0;
  double max_damage_probability() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(max_damage_successes) / trials;
  }
  double obfuscation_probability() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(obfuscation_successes) / trials;
  }
  std::size_t trials_replayed = 0;     // see PresenceRatioSeries
  std::size_t trials_quarantined = 0;
  bool interrupted = false;
};

// Single-attacker maximum-damage and obfuscation success rates (Fig. 8).
SingleAttackerResult run_single_attacker_experiment(
    TopologyKind kind, const SingleAttackerOptions& opt);

// ---------------------------------------------------------------- Fig. 9 --

enum class AttackStrategy { kChosenVictim, kMaxDamage, kObfuscation };

std::string to_string(AttackStrategy s);

struct DetectionOptionsExperiment : ExecutionPolicy {
  DetectionOptionsExperiment() : ExecutionPolicy(0, /*grain=*/4, /*seed=*/9) {}

  std::size_t topologies = 2;
  std::size_t successful_attacks_per_cell = 30;  // per (strategy, cut) bucket
  std::size_t max_trials_per_cell = 4000;        // sampling budget
  double alpha = 200.0;                          // detector threshold (§V-D)

  robust::ResilienceOptions resilience;  // see PresenceRatioOptions
};

struct DetectionCell {
  AttackStrategy strategy;
  bool perfect_cut = false;
  std::size_t attacks = 0;
  std::size_t detected = 0;
  double detection_ratio() const {
    return attacks == 0 ? 0.0 : static_cast<double>(detected) / attacks;
  }
};

struct DetectionSeries {
  TopologyKind kind;
  std::vector<DetectionCell> cells;  // 3 strategies × {perfect, imperfect}
  std::size_t clean_trials = 0;      // no-attack runs fed to the detector
  std::size_t false_alarms = 0;
  std::size_t trials_replayed = 0;   // see PresenceRatioSeries
  std::size_t trials_quarantined = 0;
  bool interrupted = false;
};

// Detection ratios for all strategies under perfect/imperfect cuts (Fig. 9),
// plus the no-attack false-alarm check.
DetectionSeries run_detection_experiment(TopologyKind kind,
                                         const DetectionOptionsExperiment& opt);

}  // namespace scapegoat
