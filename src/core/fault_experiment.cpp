#include "core/fault_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string_view>
#include <vector>

#include "core/checkpoint_runner.hpp"
#include "core/simulate.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "robust/degraded.hpp"
#include "simnet/resilient_probing.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

namespace {

// Own namespaces for the sweep's topology draws, trial RNGs and fault
// schedules — disjoint from the Fig. 7-9 salts in experiment.cpp.
constexpr std::uint64_t kSweepTopologySalt = 0xfa010907090ull;
constexpr std::uint64_t kSweepTrialSalt = 0xfa0107121a1ull;
constexpr std::uint64_t kSweepFaultSalt = 0xfa01f5c4edull;

struct FaultTrialOut {
  enum class Status { kFullRank, kFallback, kUnsolvable } status =
      Status::kUnsolvable;
  std::size_t paths_total = 0;
  std::size_t paths_measured = 0;
  double abs_error_sum = 0.0;  // over links, solvable trials only
  double abs_error_max = 0.0;
  std::size_t links = 0;
  bool alarm = false;
  simnet::ResilientProbeStats probe_stats;  // folded into obs counters
};

// One honest-network trial under the cell's fault schedule. The scenario
// copy is private to the worker; rng is this trial's own stream.
FaultTrialOut fault_trial(Scenario& sc, const FaultSweepOptions& opt,
                          const robust::FaultInjector& faults, Rng& rng) {
  FaultTrialOut out;
  sc.resample_metrics(rng);
  const auto& paths = sc.estimator().paths();
  out.paths_total = paths.size();

  simnet::NullAdversary honest;
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, rng);
  simnet::ProbeOptions probe;
  probe.probes_per_path = opt.probes_per_path;

  const robust::DegradedMeasurement m = simnet::probe_with_retries(
      sim, paths, probe, faults, opt.retry, &out.probe_stats);
  out.paths_measured = m.num_measured();

  const auto est = robust::degraded_estimate(sc.estimator().r(), m);
  if (!est.ok()) return out;  // status stays kUnsolvable — structured, no crash
  out.status = est->method == robust::SolveMethod::kFullRank
                   ? FaultTrialOut::Status::kFullRank
                   : FaultTrialOut::Status::kFallback;

  const Vector& x_true = sc.x_true();
  out.links = x_true.size();
  for (std::size_t l = 0; l < x_true.size(); ++l) {
    const double e = std::abs(est->x[l] - x_true[l]);
    out.abs_error_sum += e;
    out.abs_error_max = std::max(out.abs_error_max, e);
  }

  DetectorOptions det;
  det.alpha = opt.alpha;
  const auto verdict = detect_scapegoating_degraded(sc.estimator(), m, det);
  out.alarm = verdict.ok() && verdict->detected;
  return out;
}

// --- checkpoint payload codec -------------------------------------------
//
// All fields hex-encoded and ':'-separated; doubles travel as IEEE bit
// patterns (robust::encode_double_bits) so a replayed trial folds into the
// error aggregates bitwise identically to a recomputed one.

std::string encode_fault_trial(const FaultTrialOut& o) {
  std::string s;
  auto put = [&s](const std::string& field) {
    if (!s.empty()) s += ':';
    s += field;
  };
  put(robust::encode_u64_hex(static_cast<std::uint64_t>(o.status)));
  put(robust::encode_u64_hex(o.paths_total));
  put(robust::encode_u64_hex(o.paths_measured));
  put(robust::encode_u64_hex(o.links));
  put(robust::encode_u64_hex(o.alarm ? 1 : 0));
  put(robust::encode_double_bits(o.abs_error_sum));
  put(robust::encode_double_bits(o.abs_error_max));
  put(robust::encode_u64_hex(o.probe_stats.attempts_used));
  put(robust::encode_u64_hex(o.probe_stats.probes_sent));
  put(robust::encode_u64_hex(o.probe_stats.probes_lost));
  put(robust::encode_u64_hex(o.probe_stats.probes_timed_out));
  put(robust::encode_u64_hex(o.probe_stats.paths_recovered));
  put(robust::encode_u64_hex(o.probe_stats.paths_missing));
  put(robust::encode_double_bits(o.probe_stats.backoff_wait_ms));
  return s;
}

bool decode_fault_trial(std::string_view payload, FaultTrialOut& o) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= payload.size()) {
    const std::size_t sep = payload.find(':', start);
    if (sep == std::string_view::npos) {
      fields.push_back(payload.substr(start));
      break;
    }
    fields.push_back(payload.substr(start, sep - start));
    start = sep + 1;
  }
  if (fields.size() != 14) return false;
  auto u64 = [&](std::size_t i, std::uint64_t& out) {
    const auto v = robust::decode_u64_hex(fields[i]);
    if (!v) return false;
    out = *v;
    return true;
  };
  auto f64 = [&](std::size_t i, double& out) {
    const auto v = robust::decode_double_bits(fields[i]);
    if (!v) return false;
    out = *v;
    return true;
  };
  std::uint64_t status = 0, alarm = 0, tmp = 0;
  if (!u64(0, status) || status > 2) return false;
  o.status = static_cast<FaultTrialOut::Status>(status);
  if (!u64(1, tmp)) return false;
  o.paths_total = tmp;
  if (!u64(2, tmp)) return false;
  o.paths_measured = tmp;
  if (!u64(3, tmp)) return false;
  o.links = tmp;
  if (!u64(4, alarm)) return false;
  o.alarm = alarm != 0;
  if (!f64(5, o.abs_error_sum) || !f64(6, o.abs_error_max)) return false;
  if (!u64(7, tmp)) return false;
  o.probe_stats.attempts_used = tmp;
  if (!u64(8, tmp)) return false;
  o.probe_stats.probes_sent = tmp;
  if (!u64(9, tmp)) return false;
  o.probe_stats.probes_lost = tmp;
  if (!u64(10, tmp)) return false;
  o.probe_stats.probes_timed_out = tmp;
  if (!u64(11, tmp)) return false;
  o.probe_stats.paths_recovered = tmp;
  if (!u64(12, tmp)) return false;
  o.probe_stats.paths_missing = tmp;
  return f64(13, o.probe_stats.backoff_wait_ms);
}

std::uint64_t sweep_config_hash(TopologyKind kind,
                                const FaultSweepOptions& opt) {
  robust::ConfigHasher h;
  h.mix("fault_sweep");
  h.mix(to_string(kind));
  h.mix(static_cast<std::uint64_t>(opt.seed));
  h.mix(opt.loss_rates.size());
  for (double r : opt.loss_rates) h.mix(r);
  h.mix(opt.faults.probe_loss_rate);
  h.mix(opt.faults.duplicate_rate);
  h.mix(opt.faults.reorder_rate);
  h.mix(opt.faults.reorder_extra_ms);
  h.mix(opt.faults.monitor_outage_rate);
  h.mix(opt.faults.link_failure_rate);
  h.mix(opt.faults.clock_jitter_ms);
  h.mix(opt.retry.max_retries);
  h.mix(opt.retry.probe_deadline_ms);
  h.mix(opt.retry.backoff_base_ms);
  h.mix(opt.retry.backoff_factor);
  h.mix(opt.retry.max_backoff_ms);
  h.mix(opt.topologies);
  h.mix(opt.trials_per_topology);
  h.mix(opt.probes_per_path);
  h.mix(opt.alpha);
  return h.hash();
}

}  // namespace

FaultSweepSeries run_fault_sweep(TopologyKind kind,
                                 const FaultSweepOptions& opt) {
  FaultSweepSeries series;
  series.kind = kind;
  series.cells.resize(opt.loss_rates.size());

  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0xfa017ab1eull);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  // Topologies are shared across cells: the same deployments face every
  // loss rate, so cell-to-cell differences are pure fault effects.
  std::vector<Scenario> topologies;
  for (std::size_t t = 0; t < opt.topologies; ++t) {
    Rng trng(derive_seed(base ^ kSweepTopologySalt, t));
    std::optional<Scenario> sc = make_scenario(kind, trng);
    if (sc) {
      sc->estimator().pseudo_inverse();  // pre-warm shared lazy state
      topologies.push_back(std::move(*sc));
    }
  }

  internal::CheckpointedRun run(opt.resilience, "fault_sweep",
                                sweep_config_hash(kind, opt));

  for (std::size_t c = 0; c < opt.loss_rates.size() && !series.interrupted;
       ++c) {
    FaultSweepCell& cell = series.cells[c];
    cell.loss_rate = opt.loss_rates[c];
    robust::FaultSpec spec = opt.faults;
    spec.probe_loss_rate = cell.loss_rate;

    double err_sum = 0.0;
    std::size_t err_links = 0;
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      const Scenario& sc = topologies[t];
      const std::size_t n = opt.trials_per_topology;
      std::vector<FaultTrialOut> outs(n);
      std::vector<internal::TrialSlot> slots(n, internal::TrialSlot::kCompute);
      std::vector<internal::GuardOutcome> guards(n);
      std::vector<std::uint64_t> seeds(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Global trial index: unique across (cell, topology, trial) so no
        // two trials anywhere share an RNG or fault stream.
        const std::uint64_t g = (c * topologies.size() + t) * n + i;
        seeds[i] = derive_seed(base ^ kSweepTrialSalt, g);
        if (const std::string* p = run.replay("trial", g, seeds[i]);
            p != nullptr && decode_fault_trial(*p, outs[i])) {
          slots[i] = internal::TrialSlot::kReplayed;
        } else if (run.is_quarantined("trial", g)) {
          slots[i] = internal::TrialSlot::kQuarantined;
        }
      }
      pool.parallel_for(
          0, n, opt.grain, [&](std::size_t lo, std::size_t hi) {
            Scenario local = sc;  // private copy: resample_metrics mutates
            for (std::size_t i = lo; i < hi; ++i) {
              if (slots[i] != internal::TrialSlot::kCompute) continue;
              const std::uint64_t g = (c * topologies.size() + t) * n + i;
              robust::FaultInjector faults(
                  spec, derive_seed(base ^ kSweepFaultSalt, g));
              guards[i] = internal::run_trial_guarded(
                  run.trial_budget(), run.trial_retries(), seeds[i],
                  [&](Rng& rng) {
                    outs[i] = fault_trial(local, opt, faults, rng);
                  });
            }
          });
      // Serial fold in trial order — identical at every thread count.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t g = (c * topologies.size() + t) * n + i;
        if (slots[i] == internal::TrialSlot::kQuarantined ||
            (slots[i] == internal::TrialSlot::kCompute &&
             guards[i].quarantined)) {
          if (slots[i] == internal::TrialSlot::kCompute)
            run.record_quarantine("trial", g, seeds[i], guards[i].attempts);
          ++series.trials_quarantined;
          obs::count("ckpt.trials_quarantined");
          continue;
        }
        if (slots[i] == internal::TrialSlot::kReplayed) {
          ++series.trials_replayed;
          obs::count("ckpt.trials_replayed");
        } else {
          run.record("trial", g, seeds[i], encode_fault_trial(outs[i]));
        }
        const FaultTrialOut& o = outs[i];
        ++cell.trials;
        ++series.total_trials;
        cell.paths_total += o.paths_total;
        cell.paths_measured += o.paths_measured;
        obs::count("core.faults.trials");
        obs::count("core.faults.probe_rounds", o.probe_stats.attempts_used);
        obs::count("core.faults.probes_sent", o.probe_stats.probes_sent);
        obs::count("core.faults.probes_lost", o.probe_stats.probes_lost);
        obs::count("core.faults.probes_timed_out",
                   o.probe_stats.probes_timed_out);
        obs::count("core.faults.paths_recovered",
                   o.probe_stats.paths_recovered);
        obs::count("core.faults.paths_missing", o.probe_stats.paths_missing);
        switch (o.status) {
          case FaultTrialOut::Status::kFullRank:
            ++cell.full_rank;
            obs::count("core.faults.full_rank");
            break;
          case FaultTrialOut::Status::kFallback:
            ++cell.fallback;
            obs::count("core.faults.fallback");
            break;
          case FaultTrialOut::Status::kUnsolvable:
            ++cell.unsolvable;
            obs::count("core.faults.unsolvable");
            break;
        }
        if (o.links > 0) {
          err_sum += o.abs_error_sum;
          err_links += o.links;
          cell.max_abs_error_ms =
              std::max(cell.max_abs_error_ms, o.abs_error_max);
        }
        if (o.alarm) ++cell.alarms;
      }
      run.flush();  // durability point: one (cell, topology) block
      if (run.should_stop()) {
        series.interrupted = true;
        break;
      }
    }
    if (err_links > 0) cell.mean_abs_error_ms = err_sum / err_links;
  }
  return series;
}

}  // namespace scapegoat
