#include "core/fault_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/simulate.hpp"
#include "detect/detector.hpp"
#include "obs/obs.hpp"
#include "robust/degraded.hpp"
#include "simnet/resilient_probing.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

namespace {

// Own namespaces for the sweep's topology draws, trial RNGs and fault
// schedules — disjoint from the Fig. 7-9 salts in experiment.cpp.
constexpr std::uint64_t kSweepTopologySalt = 0xfa010907090ull;
constexpr std::uint64_t kSweepTrialSalt = 0xfa0107121a1ull;
constexpr std::uint64_t kSweepFaultSalt = 0xfa01f5c4edull;

struct FaultTrialOut {
  enum class Status { kFullRank, kFallback, kUnsolvable } status =
      Status::kUnsolvable;
  std::size_t paths_total = 0;
  std::size_t paths_measured = 0;
  double abs_error_sum = 0.0;  // over links, solvable trials only
  double abs_error_max = 0.0;
  std::size_t links = 0;
  bool alarm = false;
  simnet::ResilientProbeStats probe_stats;  // folded into obs counters
};

// One honest-network trial under the cell's fault schedule. The scenario
// copy is private to the worker; rng is this trial's own stream.
FaultTrialOut fault_trial(Scenario& sc, const FaultSweepOptions& opt,
                          const robust::FaultInjector& faults, Rng& rng) {
  FaultTrialOut out;
  sc.resample_metrics(rng);
  const auto& paths = sc.estimator().paths();
  out.paths_total = paths.size();

  simnet::NullAdversary honest;
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, rng);
  simnet::ProbeOptions probe;
  probe.probes_per_path = opt.probes_per_path;

  const robust::DegradedMeasurement m = simnet::probe_with_retries(
      sim, paths, probe, faults, opt.retry, &out.probe_stats);
  out.paths_measured = m.num_measured();

  const auto est = robust::degraded_estimate(sc.estimator().r(), m);
  if (!est.ok()) return out;  // status stays kUnsolvable — structured, no crash
  out.status = est->method == robust::SolveMethod::kFullRank
                   ? FaultTrialOut::Status::kFullRank
                   : FaultTrialOut::Status::kFallback;

  const Vector& x_true = sc.x_true();
  out.links = x_true.size();
  for (std::size_t l = 0; l < x_true.size(); ++l) {
    const double e = std::abs(est->x[l] - x_true[l]);
    out.abs_error_sum += e;
    out.abs_error_max = std::max(out.abs_error_max, e);
  }

  DetectorOptions det;
  det.alpha = opt.alpha;
  const auto verdict = detect_scapegoating_degraded(sc.estimator(), m, det);
  out.alarm = verdict.ok() && verdict->detected;
  return out;
}

}  // namespace

FaultSweepSeries run_fault_sweep(TopologyKind kind,
                                 const FaultSweepOptions& opt) {
  FaultSweepSeries series;
  series.kind = kind;
  series.cells.resize(opt.loss_rates.size());

  const std::uint64_t base =
      opt.seed + (kind == TopologyKind::kWireline ? 0 : 0xfa017ab1eull);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(opt, owned);

  // Topologies are shared across cells: the same deployments face every
  // loss rate, so cell-to-cell differences are pure fault effects.
  std::vector<Scenario> topologies;
  for (std::size_t t = 0; t < opt.topologies; ++t) {
    Rng trng(derive_seed(base ^ kSweepTopologySalt, t));
    std::optional<Scenario> sc = make_scenario(kind, trng);
    if (sc) {
      sc->estimator().pseudo_inverse();  // pre-warm shared lazy state
      topologies.push_back(std::move(*sc));
    }
  }

  for (std::size_t c = 0; c < opt.loss_rates.size(); ++c) {
    FaultSweepCell& cell = series.cells[c];
    cell.loss_rate = opt.loss_rates[c];
    robust::FaultSpec spec = opt.faults;
    spec.probe_loss_rate = cell.loss_rate;

    double err_sum = 0.0;
    std::size_t err_links = 0;
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      const Scenario& sc = topologies[t];
      std::vector<FaultTrialOut> outs(opt.trials_per_topology);
      pool.parallel_for(
          0, opt.trials_per_topology, opt.grain,
          [&](std::size_t lo, std::size_t hi) {
            Scenario local = sc;  // private copy: resample_metrics mutates
            for (std::size_t i = lo; i < hi; ++i) {
              // Global trial index: unique across (cell, topology, trial)
              // so no two trials anywhere share an RNG or fault stream.
              const std::size_t g =
                  (c * topologies.size() + t) * opt.trials_per_topology + i;
              Rng rng(derive_seed(base ^ kSweepTrialSalt, g));
              robust::FaultInjector faults(
                  spec, derive_seed(base ^ kSweepFaultSalt, g));
              outs[i] = fault_trial(local, opt, faults, rng);
            }
          });
      // Serial fold in trial order — identical at every thread count.
      for (const FaultTrialOut& o : outs) {
        ++cell.trials;
        ++series.total_trials;
        cell.paths_total += o.paths_total;
        cell.paths_measured += o.paths_measured;
        obs::count("core.faults.trials");
        obs::count("core.faults.probe_rounds", o.probe_stats.attempts_used);
        obs::count("core.faults.probes_sent", o.probe_stats.probes_sent);
        obs::count("core.faults.probes_lost", o.probe_stats.probes_lost);
        obs::count("core.faults.probes_timed_out",
                   o.probe_stats.probes_timed_out);
        obs::count("core.faults.paths_recovered",
                   o.probe_stats.paths_recovered);
        obs::count("core.faults.paths_missing", o.probe_stats.paths_missing);
        switch (o.status) {
          case FaultTrialOut::Status::kFullRank:
            ++cell.full_rank;
            obs::count("core.faults.full_rank");
            break;
          case FaultTrialOut::Status::kFallback:
            ++cell.fallback;
            obs::count("core.faults.fallback");
            break;
          case FaultTrialOut::Status::kUnsolvable:
            ++cell.unsolvable;
            obs::count("core.faults.unsolvable");
            break;
        }
        if (o.links > 0) {
          err_sum += o.abs_error_sum;
          err_links += o.links;
          cell.max_abs_error_ms =
              std::max(cell.max_abs_error_ms, o.abs_error_max);
        }
        if (o.alarm) ++cell.alarms;
      }
    }
    if (err_links > 0) cell.mean_abs_error_ms = err_sum / err_links;
  }
  return series;
}

}  // namespace scapegoat
