// Fault-tolerance sweep: the chaos harness behind the robustness claims.
//
// For each probe-loss rate in the sweep, run many honest-network trials in
// which probes traverse the packet simulator under a deterministic fault
// schedule (loss, duplication, reordering, monitor outage, link failure,
// clock jitter — robust/faults.hpp), measurement retries degrade
// unmeasured paths to *missing*, and the estimator/detector pipeline runs
// in its checked, degraded form. Every trial ends in a structured status —
// full-rank solve, regularized fallback, or a typed error — never a crash.
//
// Determinism contract matches the Fig. 7-9 runners: each trial owns a
// derived RNG stream and a derived fault-injector seed, trials fan out over
// a thread pool, and aggregates are folded serially in trial order, so the
// whole series is bitwise identical at every thread count.

#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "robust/faults.hpp"
#include "robust/retry.hpp"

namespace scapegoat {

// threads/grain/seed come from the shared ExecutionPolicy base
// (util/execution.hpp); the old field names keep working via inheritance.
struct FaultSweepOptions : ExecutionPolicy {
  FaultSweepOptions() : ExecutionPolicy(0, /*grain=*/4, /*seed=*/11) {}

  // Probe-loss rates to sweep; each gets its own cell. The remaining fault
  // dimensions come from `faults` and are held constant across cells.
  std::vector<double> loss_rates{0.0, 0.01, 0.05, 0.2};
  robust::FaultSpec faults;       // probe_loss_rate is overridden per cell
  robust::RetryPolicy retry;
  std::size_t topologies = 1;
  std::size_t trials_per_topology = 40;
  std::size_t probes_per_path = 3;
  double alpha = 200.0;           // degraded-detector threshold (§V-D)

  robust::ResilienceOptions resilience;  // see PresenceRatioOptions
};

// Aggregates for one loss rate.
struct FaultSweepCell {
  double loss_rate = 0.0;
  std::size_t trials = 0;
  // Trial statuses; full_rank + fallback + unsolvable == trials.
  std::size_t full_rank = 0;    // all metrics identifiable from measured rows
  std::size_t fallback = 0;     // rank-deficient → regularized least squares
  std::size_t unsolvable = 0;   // structured error (e.g. nothing measured)
  // Measurement coverage over all trials.
  std::size_t paths_total = 0;
  std::size_t paths_measured = 0;
  // Estimation error vs ground truth, over solvable trials' links.
  double mean_abs_error_ms = 0.0;
  double max_abs_error_ms = 0.0;
  // Degraded detector firing on an honest network (fault-induced alarms).
  std::size_t alarms = 0;

  double measured_fraction() const {
    return paths_total == 0
               ? 0.0
               : static_cast<double>(paths_measured) / paths_total;
  }
  double solve_rate() const {
    return trials == 0
               ? 0.0
               : static_cast<double>(full_rank + fallback) / trials;
  }
};

struct FaultSweepSeries {
  TopologyKind kind;
  std::vector<FaultSweepCell> cells;  // one per loss rate, sweep order
  std::size_t total_trials = 0;
  std::size_t trials_replayed = 0;    // see PresenceRatioSeries
  std::size_t trials_quarantined = 0;
  bool interrupted = false;
};

// Runs the sweep. Never throws for degraded measurements; every trial lands
// in exactly one status bucket of its cell.
FaultSweepSeries run_fault_sweep(TopologyKind kind,
                                 const FaultSweepOptions& opt);

}  // namespace scapegoat
