#include "core/figures.hpp"

#include <ostream>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "topology/example_networks.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace scapegoat {

namespace {

// Paper link index (1-based) for printing.
std::string link_label(LinkId l) { return std::to_string(l + 1); }

// Resilience annotations shared by the Monte-Carlo figure printers:
// quarantined trials are excluded from every aggregate but never silent,
// and an interrupted series is labelled as a resumable prefix.
void print_resilience_notes(std::size_t quarantined, bool interrupted,
                            std::ostream& os) {
  if (quarantined > 0)
    os << "quarantined trials (excluded from all aggregates): " << quarantined
       << '\n';
  if (interrupted)
    os << "series INCOMPLETE — run interrupted; checkpoint journal flushed, "
          "rerun with --resume to continue\n";
  if (quarantined > 0 || interrupted) os << '\n';
}

void print_link_table(const Vector& x_true, const AttackResult& attack,
                      const StateThresholds& t, std::ostream& os) {
  Table table({"link", "true_delay_ms", "estimated_ms", "state"});
  for (LinkId l = 0; l < x_true.size(); ++l) {
    table.add_row({link_label(l), Table::num(x_true[l]),
                   Table::num(attack.x_estimated[l]),
                   to_string(classify(attack.x_estimated[l], t))});
  }
  table.print(os);
}

double average(const Vector& v) {
  return v.size() == 0 ? 0.0 : v.norm1() / static_cast<double>(v.size());
}

}  // namespace

Fig2Result run_fig2(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);
  Fig2Result out;

  // Chosen-victim: the paper's Fig. 2 sketch targets two specific links;
  // here we target link 10 and link 9 (paper indices), both non-controlled.
  // kAvoidAbnormal keeps the victims as the sole outliers, as Fig. 2 shows.
  AttackResult cv = chosen_victim_attack(ctx, {9}, ManipulationMode::kUnrestricted,
                                         CollateralPolicy::kAvoidAbnormal);
  if (!cv.success) cv = chosen_victim_attack(ctx, {8});
  out.chosen_victim = cv.success ? cv.x_estimated : ctx.x_true;
  out.cv_victims = cv.victims;

  MaxDamageOptions md_opt;
  md_opt.collateral = CollateralPolicy::kAvoidAbnormal;
  MaxDamageResult md = max_damage_attack(ctx, md_opt);
  out.max_damage = md.best.success ? md.best.x_estimated : ctx.x_true;
  out.md_victims = md.best.victims;

  ObfuscationOptions ob;
  ob.min_victims = 1;  // the toy network has only 3 non-attacker links
  AttackResult obf = obfuscation_attack(ctx, ob);
  out.obfuscation = obf.success ? obf.x_estimated : ctx.x_true;
  out.ob_victims = obf.victims;
  return out;
}

void print_fig2(const Fig2Result& r, std::ostream& os) {
  os << "Fig. 2 — per-link delay profiles under the three strategies\n"
     << "(Fig. 1 network, attackers B and C; estimates in ms)\n\n";
  Table table({"link", "chosen_victim", "max_damage", "obfuscation"});
  for (LinkId l = 0; l < r.chosen_victim.size(); ++l) {
    table.add_row({link_label(l), Table::num(r.chosen_victim[l]),
                   Table::num(r.max_damage[l]), Table::num(r.obfuscation[l])});
  }
  table.print(os);
  os << '\n';
}

Fig4Result run_fig4(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);

  Fig4Result out;
  out.x_true = ctx.x_true;
  const LinkId victim = 9;  // paper link 10
  out.perfect_cut =
      is_perfect_cut(sc.estimator().paths(), net.attackers, {victim});
  // The paper's Fig. 4 shows link 10 as the only link past b_u: bound the
  // bystanders away from the abnormal region.
  out.attack = chosen_victim_attack(ctx, {victim},
                                    ManipulationMode::kUnrestricted,
                                    CollateralPolicy::kAvoidAbnormal);
  if (out.attack.success) {
    out.avg_path_delay = average(out.attack.y_observed);
    out.detection = detect_scapegoating(sc.estimator(), out.attack.y_observed);
  }
  return out;
}

void print_fig4(const Fig4Result& r, std::ostream& os) {
  os << "Fig. 4 — chosen-victim scapegoating of link 10 (Fig. 1 network)\n"
     << "attackers: B, C   victim: link 10   perfect cut: "
     << (r.perfect_cut ? "yes" : "no") << "\n\n";
  if (!r.attack.success) {
    os << "attack infeasible (status: " << lp::to_string(r.attack.status)
       << ")\n";
    return;
  }
  print_link_table(r.x_true, r.attack, StateThresholds{}, os);
  os << "\ndamage ‖m‖₁: " << Table::num(r.attack.damage)
     << " ms   avg end-to-end path delay: " << Table::num(r.avg_path_delay)
     << " ms (paper: 820.87 ms)\n"
     << "Eq. 23 detector (α=200ms): residual "
     << Table::num(r.detection.residual_norm1) << " ms ⇒ "
     << (r.detection.detected ? "DETECTED (imperfect cut, Thm 3)"
                              : "not detected")
     << "\n\n";
}

Fig5Result run_fig5(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);

  Fig5Result out;
  out.x_true = ctx.x_true;
  // Fig. 5 shows exactly the victim links (1 and 9) as abnormal.
  MaxDamageOptions opt;
  opt.collateral = CollateralPolicy::kAvoidAbnormal;
  MaxDamageResult md = max_damage_attack(ctx, opt);
  out.attack = std::move(md.best);
  out.single_victim_damages = std::move(md.single_victim_damages);
  if (out.attack.success) out.avg_path_delay = average(out.attack.y_observed);
  return out;
}

void print_fig5(const Fig5Result& r, std::ostream& os) {
  os << "Fig. 5 — maximum-damage scapegoating (Fig. 1 network)\n"
     << "attackers: B, C\n\n";
  if (!r.attack.success) {
    os << "attack infeasible\n";
    return;
  }
  print_link_table(r.x_true, r.attack, StateThresholds{}, os);
  os << "\nvictim set chosen:";
  for (LinkId v : r.attack.victims) os << ' ' << link_label(v);
  os << "  (paper: links 1 and 9)\n"
     << "damage ‖m‖₁: " << Table::num(r.attack.damage)
     << " ms   avg end-to-end path delay: " << Table::num(r.avg_path_delay)
     << " ms (paper: 1239.4 ms)\n\nper-victim damages:\n";
  Table t({"victim_link", "damage_ms"});
  for (const auto& [v, d] : r.single_victim_damages)
    t.add_row({link_label(v), Table::num(d)});
  t.print(os);
  os << '\n';
}

Fig6Result run_fig6(std::uint64_t seed) {
  Rng rng(seed);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);

  Fig6Result out;
  out.x_true = ctx.x_true;
  ObfuscationOptions ob;
  // The Fig. 1 network has only 3 non-attacker links, so "a substantial
  // amount" means all of them (the paper's Fig. 6 shows all 10 links inside
  // the band).
  ob.min_victims = 1;
  out.attack = obfuscation_attack(ctx, ob);
  if (out.attack.success) {
    for (LinkState s : out.attack.states)
      if (s == LinkState::kUncertain) ++out.uncertain_links;
  }
  return out;
}

void print_fig6(const Fig6Result& r, std::ostream& os) {
  os << "Fig. 6 — obfuscation (Fig. 1 network)\nattackers: B, C\n\n";
  if (!r.attack.success) {
    os << "attack infeasible\n";
    return;
  }
  print_link_table(r.x_true, r.attack, StateThresholds{}, os);
  os << "\nlinks in uncertain state: " << r.uncertain_links << " / "
     << r.x_true.size() << " (paper: all links inside the band)\n"
     << "damage ‖m‖₁: " << Table::num(r.attack.damage) << " ms\n\n";
}

void print_fig7(const PresenceRatioSeries& wireline,
                const PresenceRatioSeries& wireless, std::ostream& os) {
  os << "Fig. 7 — chosen-victim success probability vs attack presence "
        "ratio\n\n";
  auto emit = [&](const PresenceRatioSeries& s) {
    os << to_string(s.kind) << " (" << s.total_trials << " trials):\n";
    Table t({"presence_ratio", "trials", "successes", "success_prob",
             "ci95_halfwidth"});
    for (const PresenceRatioBin& b : s.bins) {
      if (b.trials == 0) continue;
      const std::string label =
          b.ratio_low == b.ratio_high
              ? "= 100%"
              : "(" + Table::num(100 * b.ratio_low, 0) + "%, " +
                    Table::num(100 * b.ratio_high, 0) + "%]";
      t.add_row({label, std::to_string(b.trials),
                 std::to_string(b.successes), Table::num(b.probability(), 3),
                 Table::num(wilson_halfwidth(b.successes, b.trials), 3)});
    }
    t.print(os);
    os << '\n';
    print_resilience_notes(s.trials_quarantined, s.interrupted, os);
  };
  emit(wireline);
  emit(wireless);
}

void print_fig8(const SingleAttackerResult& wireline,
                const SingleAttackerResult& wireless, std::ostream& os) {
  os << "Fig. 8 — single-attacker success probabilities\n\n";
  Table t({"topology", "trials", "max_damage_prob", "obfuscation_prob"});
  for (const SingleAttackerResult* r : {&wireline, &wireless}) {
    t.add_row({to_string(r->kind), std::to_string(r->trials),
               Table::num(r->max_damage_probability(), 3),
               Table::num(r->obfuscation_probability(), 3)});
  }
  t.print(os);
  os << '\n';
  for (const SingleAttackerResult* r : {&wireline, &wireless})
    print_resilience_notes(r->trials_quarantined, r->interrupted, os);
}

void print_fig9(const DetectionSeries& series, std::ostream& os) {
  os << "Fig. 9 — detection ratios (" << to_string(series.kind)
     << ", α = 200 ms)\n\n";
  Table t({"strategy", "cut", "attacks", "detected", "detection_ratio"});
  for (const DetectionCell& c : series.cells) {
    t.add_row({to_string(c.strategy), c.perfect_cut ? "perfect" : "imperfect",
               std::to_string(c.attacks), std::to_string(c.detected),
               Table::num(c.detection_ratio(), 3)});
  }
  t.print(os);
  os << "\nfalse alarms on honest measurements: " << series.false_alarms
     << " / " << series.clean_trials << " (paper: none)\n\n";
  print_resilience_notes(series.trials_quarantined, series.interrupted, os);
}

}  // namespace scapegoat
