// Per-figure reproduction drivers.
//
// Each run_figN() executes the paper's experiment for that figure and
// returns a plain data struct; each print_figN() renders the same
// rows/series the paper reports. The bench binaries and examples are thin
// wrappers around these, so the numbers in EXPERIMENTS.md come from exactly
// one code path.

#pragma once

#include <iosfwd>

#include "attack/manipulation.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"

namespace scapegoat {

// -------- Fig. 2: qualitative per-link delay profiles, three strategies ---

struct Fig2Result {
  Vector chosen_victim;  // per-link x̂ under each strategy (Fig. 1 network)
  Vector max_damage;
  Vector obfuscation;
  std::vector<LinkId> cv_victims, md_victims, ob_victims;
};
Fig2Result run_fig2(std::uint64_t seed = 2);
void print_fig2(const Fig2Result& r, std::ostream& os);

// -------- Fig. 4: chosen-victim on link 10 of the Fig. 1 network ----------

struct Fig4Result {
  AttackResult attack;          // victim = paper link 10 (imperfect cut)
  Vector x_true;
  double avg_path_delay = 0.0;  // mean observed end-to-end delay (paper: 820.87)
  bool perfect_cut = false;     // paper: false
  DetectionOutcome detection;   // Theorem 3 ⇒ detectable
};
Fig4Result run_fig4(std::uint64_t seed = 4);
void print_fig4(const Fig4Result& r, std::ostream& os);

// -------- Fig. 5: maximum-damage on the Fig. 1 network --------------------

struct Fig5Result {
  AttackResult attack;
  Vector x_true;
  std::vector<std::pair<LinkId, double>> single_victim_damages;
  double avg_path_delay = 0.0;  // paper: 1239.4 ms
};
Fig5Result run_fig5(std::uint64_t seed = 5);
void print_fig5(const Fig5Result& r, std::ostream& os);

// -------- Fig. 6: obfuscation on the Fig. 1 network -----------------------

struct Fig6Result {
  AttackResult attack;
  Vector x_true;
  std::size_t uncertain_links = 0;  // paper: all 10 links in the band
};
Fig6Result run_fig6(std::uint64_t seed = 6);
void print_fig6(const Fig6Result& r, std::ostream& os);

// -------- Figs. 7-9 printers (runners live in experiment.hpp) -------------

void print_fig7(const PresenceRatioSeries& wireline,
                const PresenceRatioSeries& wireless, std::ostream& os);
void print_fig8(const SingleAttackerResult& wireline,
                const SingleAttackerResult& wireless, std::ostream& os);
void print_fig9(const DetectionSeries& series, std::ostream& os);

}  // namespace scapegoat
