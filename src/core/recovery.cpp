#include "core/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "graph/shortest_path.hpp"

namespace scapegoat {

namespace {

// True cost experienced by traffic on `path`: real link delays plus the
// attacker tax per malicious node crossed.
double true_cost(const Path& path, const Vector& x_true,
                 const std::vector<bool>& malicious, double tax) {
  double acc = 0.0;
  for (LinkId l : path.links) acc += x_true[l];
  for (NodeId v : path.nodes)
    if (malicious[v]) acc += tax;
  return acc;
}

}  // namespace

robust::Expected<RecoveryAssessment> try_assess_recovery(
    const Scenario& scenario, const AttackContext& ctx,
    const AttackResult& attack, const RecoveryOptions& opt, Rng& rng) {
  const Graph& g = scenario.graph();
  if (!attack.success) {
    return robust::Error{robust::ErrorCode::kInvalidInput,
                         "attack did not succeed; no recovery to assess"};
  }
  if (attack.states.size() != g.num_links() ||
      attack.x_estimated.size() != g.num_links()) {
    return robust::Error{
        robust::ErrorCode::kDimensionMismatch,
        "attack result sized for a different topology (" +
            std::to_string(attack.states.size()) + " states, " +
            std::to_string(attack.x_estimated.size()) + " estimates, " +
            std::to_string(g.num_links()) + " links)"};
  }
  for (NodeId a : ctx.attackers) {
    if (a >= g.num_nodes()) {
      return robust::Error{robust::ErrorCode::kInvalidInput,
                           "attacker id " + std::to_string(a) +
                               " out of range for " +
                               std::to_string(g.num_nodes()) + " nodes"};
    }
  }
  return assess_recovery(scenario, ctx, attack, opt, rng);
}

RecoveryAssessment assess_recovery(const Scenario& scenario,
                                   const AttackContext& ctx,
                                   const AttackResult& attack,
                                   const RecoveryOptions& opt, Rng& rng) {
  assert(attack.success);
  const Graph& g = scenario.graph();
  const Vector& x_true = scenario.x_true();

  std::vector<bool> malicious(g.num_nodes(), false);
  for (NodeId a : ctx.attackers) malicious[a] = true;

  RecoveryAssessment out;

  // Links the misled operator drains: reported abnormal.
  std::vector<bool> drained(g.num_links(), false);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (attack.states[l] == LinkState::kAbnormal) {
      drained[l] = true;
      ++out.drained_links;
    }
  }
  // The misled operator routes on what it believes the delays are.
  std::vector<double> believed(g.num_links());
  for (LinkId l = 0; l < g.num_links(); ++l)
    believed[l] = std::max(0.0, attack.x_estimated[l]);
  std::vector<double> truth(x_true.data());
  // The oracle routes tax-aware: each link incident to a malicious node
  // carries half the tax, so an interior malicious hop (two incident links
  // on the path) costs exactly `attacker_tax_ms`. Soft avoidance — crossing
  // an attacker when every alternative is worse is still allowed, which
  // keeps every demand routable.
  std::vector<double> tax_aware = truth;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (malicious[link.u]) tax_aware[l] += opt.attacker_tax_ms / 2.0;
    if (malicious[link.v]) tax_aware[l] += opt.attacker_tax_ms / 2.0;
  }

  double baseline = 0.0, misled = 0.0, informed = 0.0;
  std::size_t counted = 0;
  for (std::size_t d = 0; d < opt.demand_pairs; ++d) {
    const NodeId s = rng.index(g.num_nodes());
    const NodeId t = rng.index(g.num_nodes());
    if (s == t) continue;

    const auto base_path = dijkstra(g, s, t, truth);
    const auto misled_path =
        dijkstra_avoiding(g, s, t, believed, {}, drained);
    const auto informed_path = dijkstra(g, s, t, tax_aware);
    if (!base_path || !informed_path) continue;  // graph is connected
    if (!misled_path) {
      // Draining cut the pair off: the demand simply fails under the
      // misled policy — the starkest form of exacerbation. Counted
      // separately so the delay averages stay like-for-like.
      ++out.unroutable;
      continue;
    }
    baseline += true_cost(*base_path, x_true, malicious, opt.attacker_tax_ms);
    misled += true_cost(*misled_path, x_true, malicious, opt.attacker_tax_ms);
    informed +=
        true_cost(*informed_path, x_true, malicious, opt.attacker_tax_ms);
    ++counted;
  }
  if (counted > 0) {
    out.baseline_delay_ms = baseline / counted;
    out.misled_delay_ms = misled / counted;
    out.informed_delay_ms = informed / counted;
  }
  return out;
}

}  // namespace scapegoat
