// Misdirected failure recovery — quantifying the paper's motivating claim
// that "failure recovery or mitigation procedures may further exacerbate
// the damage caused by the attack".
//
// Model: after tomography, the operator drains links whose estimates read
// abnormal and re-routes traffic using the estimated metrics; malicious
// nodes meanwhile also degrade data traffic crossing them. We compare the
// demand-averaged true end-to-end delay under three routing policies:
//   * baseline — min-delay routing on the TRUE metrics, tomography ignored
//     (what the network does with no recovery at all),
//   * misled   — routing on the ATTACKED estimates with reported-abnormal
//     links drained (the operator trusts the scapegoat),
//   * informed — oracle routing on true metrics avoiding attacker nodes
//     (what recovery could do if the real culprits were known).
// Each routed demand pays its links' true delay plus `attacker_tax_ms` per
// malicious node it crosses.

#pragma once

#include "attack/manipulation.hpp"
#include "core/scenario.hpp"
#include "robust/expected.hpp"

namespace scapegoat {

struct RecoveryOptions {
  double attacker_tax_ms = 300.0;  // data-plane delay per malicious hop
  std::size_t demand_pairs = 200;  // sampled src/dst demands
};

struct RecoveryAssessment {
  double baseline_delay_ms = 0.0;
  double misled_delay_ms = 0.0;
  double informed_delay_ms = 0.0;
  std::size_t drained_links = 0;   // links the operator took out of service
  std::size_t unroutable = 0;      // demands with no path under the policy

  // The headline: positive when trusting the manipulated tomography makes
  // things worse than doing nothing.
  double exacerbation_ms() const { return misled_delay_ms - baseline_delay_ms; }
};

// `attack` must be a successful result produced against `ctx`.
RecoveryAssessment assess_recovery(const Scenario& scenario,
                                   const AttackContext& ctx,
                                   const AttackResult& attack,
                                   const RecoveryOptions& opt, Rng& rng);

// Checked variant: a failed attack, an estimate/state vector of the wrong
// size, or an out-of-range attacker id comes back as a structured error
// instead of tripping asserts (assess_recovery keeps the asserting contract
// for callers that already validated).
robust::Expected<RecoveryAssessment> try_assess_recovery(
    const Scenario& scenario, const AttackContext& ctx,
    const AttackResult& attack, const RecoveryOptions& opt, Rng& rng);

}  // namespace scapegoat
