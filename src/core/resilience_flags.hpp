// Shared command-line wiring for the crash-safety knobs: every driver that
// runs an experiment (scapegoat_cli, the bench_fig* harnesses and the fault
// sweep) accepts the same four flags:
//   --checkpoint PATH     journal trial results to PATH (+ PATH.manifest)
//   --resume              replay completed trials from the journal
//   --trial-budget-ms MS  per-trial watchdog budget (0 = unlimited)
//   --stop-after N        stop resumably after N newly computed trials
//
// Lives in core because it marries util (ArgParser) to robust
// (ResilienceOptions) — neither may depend on the other.

#pragma once

#include <cstddef>

#include "robust/checkpoint.hpp"
#include "util/args.hpp"

namespace scapegoat {

inline void apply_resilience_flags(ArgParser& args,
                                   robust::ResilienceOptions& resilience) {
  resilience.checkpoint_path = args.get_string("checkpoint");
  resilience.resume = args.get_bool("resume");
  resilience.trial_budget.wall_ms = args.get_double("trial-budget-ms", 0.0);
  resilience.stop_after_new_trials =
      static_cast<std::size_t>(args.get_int("stop-after", 0));
}

}  // namespace scapegoat
