// Umbrella header: the full public API of the scapegoat library.
//
//   #include "core/scapegoat.hpp"
//
// Layering (each header is independently includable):
//   util/       RNG, summary statistics, table/CSV output
//   linalg/     dense Matrix/Vector, LU, Cholesky, QR, least squares
//   lp/         LP model + two-phase simplex
//   graph/      topology type, traversal, shortest paths, cuts
//   topology/   Fig. 1 / Fig. 3 examples, ISP + geometric + random generators,
//               Rocketfuel loaders
//   tomography/ routing matrix, link states, Eq. 2 estimator, monitor and
//               path selection
//   robust/     Expected error taxonomy, deterministic fault schedules,
//               retry policy, degraded (partially-measured) estimation
//   attack/     Constraint-1 model, perfect cuts, the three scapegoating
//               strategies (Eqs. 4-11), consistent/stealthy variants
//   detect/     Eq. 23 consistency detector
//   core/       Scenario bundling + the paper's figure experiments

#pragma once

#include "attack/attack_lp.hpp"
#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/manipulation.hpp"
#include "attack/max_damage.hpp"
#include "attack/naive_attack.hpp"
#include "attack/obfuscation.hpp"
#include "attack/sparse_aware.hpp"
#include "core/defender_ablation.hpp"
#include "core/experiment.hpp"
#include "core/fault_experiment.hpp"
#include "core/figures.hpp"
#include "core/scenario.hpp"
#include "core/recovery.hpp"
#include "core/scenario_io.hpp"
#include "core/simulate.hpp"
#include "detect/detector.hpp"
#include "detect/localize.hpp"
#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/k_shortest.hpp"
#include "graph/paths.hpp"
#include "graph/shortest_path.hpp"
#include "graph/traversal.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/conditioning.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "robust/degraded.hpp"
#include "robust/expected.hpp"
#include "robust/faults.hpp"
#include "robust/retry.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/resilient_probing.hpp"
#include "simnet/simulator.hpp"
#include "tomography/estimator.hpp"
#include "tomography/estimator_interface.hpp"
#include "tomography/link_state.hpp"
#include "tomography/sparse_recovery.hpp"
#include "tomography/loss_metric.hpp"
#include "tomography/monitor_placement.hpp"
#include "tomography/path_selection.hpp"
#include "tomography/regularized.hpp"
#include "tomography/routing_matrix.hpp"
#include "tomography/secure_placement.hpp"
#include "topology/example_networks.hpp"
#include "topology/generators.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"
#include "topology/rocketfuel.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
