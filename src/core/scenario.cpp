#include "core/scenario.hpp"

#include <algorithm>
#include <cassert>

#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {

namespace {

EstimatorOptions estimator_options_for(const ScenarioConfig& config) {
  EstimatorOptions opt;
  opt.sparse_epsilon_ms = config.sparse_epsilon_ms;
  opt.mle_min_rate = config.mle_min_rate;
  return opt;
}

}  // namespace

Scenario::Scenario(Graph graph, std::vector<NodeId> monitors,
                   std::vector<Path> paths, ScenarioConfig config)
    : graph_(std::move(graph)),
      monitors_(std::move(monitors)),
      estimator_(make_estimator(config.estimator_kind, graph_,
                                std::move(paths),
                                estimator_options_for(config))),
      config_(config) {}

Scenario::Scenario(const Scenario& other)
    : graph_(other.graph_),
      monitors_(other.monitors_),
      estimator_(other.estimator_->clone()),
      x_true_(other.x_true_),
      config_(other.config_) {}

Scenario& Scenario::operator=(const Scenario& other) {
  if (this == &other) return *this;
  graph_ = other.graph_;
  monitors_ = other.monitors_;
  estimator_ = other.estimator_->clone();
  x_true_ = other.x_true_;
  config_ = other.config_;
  return *this;
}

Scenario Scenario::fig1(Rng& rng, const ScenarioConfig& config) {
  ExampleNetwork net = fig1_network();
  Scenario sc(std::move(net.graph), std::move(net.monitors),
              std::move(net.paths), config);
  sc.resample_metrics(rng);
  return sc;
}

std::optional<Scenario> Scenario::from_graph(Graph graph, Rng& rng,
                                             const ScenarioConfig& config,
                                             std::size_t redundant_paths) {
  MonitorPlacementOptions opt;
  opt.path_options.redundant_paths = redundant_paths;
  MonitorPlacementResult placement = place_monitors(graph, opt, rng);
  if (!placement.identifiable) return std::nullopt;
  Scenario sc(std::move(graph), std::move(placement.monitors),
              std::move(placement.paths), config);
  sc.resample_metrics(rng);
  return sc;
}

std::optional<Scenario> Scenario::restore(Graph graph,
                                          std::vector<NodeId> monitors,
                                          std::vector<Path> paths,
                                          Vector x_true,
                                          const ScenarioConfig& config) {
  if (x_true.size() != graph.num_links()) return std::nullopt;
  for (const Path& p : paths)
    if (!is_valid_simple_path(graph, p)) return std::nullopt;
  for (NodeId m : monitors)
    if (m >= graph.num_nodes()) return std::nullopt;
  Scenario sc(std::move(graph), std::move(monitors), std::move(paths),
              config);
  if (!sc.estimator_->ok()) return std::nullopt;
  sc.x_true_ = std::move(x_true);
  return sc;
}

bool Scenario::is_monitor(NodeId v) const {
  return std::find(monitors_.begin(), monitors_.end(), v) != monitors_.end();
}

void Scenario::resample_metrics(Rng& rng) {
  x_true_ = Vector(graph_.num_links());
  for (std::size_t i = 0; i < x_true_.size(); ++i)
    x_true_[i] = rng.uniform(config_.delay_min_ms, config_.delay_max_ms);
}

AttackContext Scenario::context(std::vector<NodeId> attackers) const {
  AttackContext ctx;
  ctx.graph = &graph_;
  ctx.estimator = estimator_.get();
  ctx.x_true = x_true_;
  ctx.attackers = std::move(attackers);
  ctx.thresholds = config_.thresholds;
  ctx.per_path_cap = config_.per_path_cap_ms;
  ctx.margin = config_.margin_ms;
  return ctx;
}

Vector Scenario::clean_measurements() const {
  return path_metrics(estimator_->paths(), x_true_);
}

Vector Scenario::noisy_measurements(double amplitude, Rng& rng) const {
  Vector y = clean_measurements();
  for (auto& yi : y) yi += rng.uniform(0.0, amplitude);
  return y;
}

}  // namespace scapegoat
