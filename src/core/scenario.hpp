// A Scenario bundles one complete tomography deployment: topology, monitor
// set, measurement paths, the estimator built from them, and the sampled
// ground-truth link metrics (routine traffic delay, U[1,20] ms per §V-A).
// All experiments and examples operate on Scenarios; attack strategies
// receive an AttackContext view created by `context(attackers)`.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attack/manipulation.hpp"
#include "graph/graph.hpp"
#include "tomography/estimator_interface.hpp"
#include "tomography/monitor_placement.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct ScenarioConfig {
  double delay_min_ms = 1.0;   // routine per-link delay lower bound (§V-A)
  double delay_max_ms = 20.0;  // routine per-link delay upper bound
  StateThresholds thresholds;  // normal < 100 ms, abnormal > 800 ms (§V-A)
  double per_path_cap_ms = 2000.0;  // attacker per-path delay limit (§V-A)
  double margin_ms = 1.0;      // strictness margin in state constraints
  // Which defender the deployment runs (DESIGN.md §14). kSparseRecovery
  // builds the ℓ1 estimator with a zero prior and the ∞-ball tolerance
  // below; kLeastSquares ignores the ε. kMulticastMle consults the clamp
  // floor below (loss-domain defender, DESIGN.md §15).
  EstimatorKind estimator_kind = EstimatorKind::kLeastSquares;
  double sparse_epsilon_ms = 0.0;  // sparse defender per-path noise allowance
  double mle_min_rate = 1e-6;      // MLE fitted-success-rate clamp floor
};

class Scenario {
 public:
  // The paper's Fig. 1 deployment: its fixed 23 paths and monitors, with
  // ground-truth delays drawn from `rng`.
  static Scenario fig1(Rng& rng, const ScenarioConfig& config = {});

  // Places monitors / selects paths on an arbitrary connected graph.
  // `redundant_paths` extra rows keep R non-square (detectability, Thm 3).
  // nullopt if the placement loop could not reach identifiability.
  static std::optional<Scenario> from_graph(Graph graph, Rng& rng,
                                            const ScenarioConfig& config = {},
                                            std::size_t redundant_paths = 5);

  // Rebuilds a scenario from explicit parts (scenario_io.hpp persistence).
  // nullopt when the paths are invalid or don't identify the link metrics.
  static std::optional<Scenario> restore(Graph graph,
                                         std::vector<NodeId> monitors,
                                         std::vector<Path> paths,
                                         Vector x_true,
                                         const ScenarioConfig& config = {});

  // Experiment workers take private Scenario copies; the estimator is
  // deep-copied through Estimator::clone().
  Scenario(const Scenario& other);
  Scenario& operator=(const Scenario& other);
  Scenario(Scenario&&) = default;
  Scenario& operator=(Scenario&&) = default;

  const Graph& graph() const { return graph_; }
  const std::vector<NodeId>& monitors() const { return monitors_; }
  const Estimator& estimator() const { return *estimator_; }
  const Vector& x_true() const { return x_true_; }
  const ScenarioConfig& config() const { return config_; }

  bool is_monitor(NodeId v) const;

  // Re-draws the routine-traffic link delays.
  void resample_metrics(Rng& rng);

  // Attack view for a malicious node set. The context borrows this
  // scenario; it must not outlive it.
  AttackContext context(std::vector<NodeId> attackers) const;

  // Honest end-to-end measurements y = R x_true.
  Vector clean_measurements() const;

  // Honest measurements with additive per-path jitter ~ U[0, amplitude) ms —
  // the "randomness in packet delivery and measurement error" of Remark 4.
  // Used by the detector-threshold ablation.
  Vector noisy_measurements(double amplitude, Rng& rng) const;

 private:
  // Metrics are NOT initialized here; factories either resample or restore.
  Scenario(Graph graph, std::vector<NodeId> monitors, std::vector<Path> paths,
           ScenarioConfig config);

  Graph graph_;
  std::vector<NodeId> monitors_;
  std::unique_ptr<Estimator> estimator_;  // never null after construction
  Vector x_true_;
  ScenarioConfig config_;
};

}  // namespace scapegoat
