#include "core/scenario_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"

namespace scapegoat {

namespace {

constexpr const char* kMagic = "scapegoat-scenario";
constexpr int kVersion = 1;

// Reads the next non-comment, non-blank line into `line`.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    if (!blank) return true;
  }
  return false;
}

// Expects "<keyword> <count...>" and returns the stream over the rest.
std::optional<std::istringstream> expect(std::istream& in,
                                         const std::string& keyword) {
  std::string line;
  if (!next_line(in, line)) return std::nullopt;
  std::istringstream ls(line);
  std::string word;
  if (!(ls >> word) || word != keyword) return std::nullopt;
  return ls;
}

}  // namespace

void save_scenario(std::ostream& out, const Scenario& scenario) {
  const Graph& g = scenario.graph();
  out << kMagic << ' ' << kVersion << '\n';
  out << "nodes " << g.num_nodes() << '\n';
  out << "links " << g.num_links() << '\n';
  for (const Link& l : g.links()) out << l.u << ' ' << l.v << '\n';
  out << "monitors " << scenario.monitors().size() << '\n';
  for (std::size_t i = 0; i < scenario.monitors().size(); ++i)
    out << (i ? " " : "") << scenario.monitors()[i];
  out << '\n';
  const auto& paths = scenario.estimator().paths();
  out << "paths " << paths.size() << '\n';
  for (const Path& p : paths) {
    out << p.nodes.size();
    for (NodeId v : p.nodes) out << ' ' << v;
    out << '\n';
  }
  out << "metrics " << scenario.x_true().size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < scenario.x_true().size(); ++i)
    out << (i ? " " : "") << scenario.x_true()[i];
  out << '\n';
  const ScenarioConfig& c = scenario.config();
  out << "config " << c.delay_min_ms << ' ' << c.delay_max_ms << ' '
      << c.thresholds.lower << ' ' << c.thresholds.upper << ' '
      << c.per_path_cap_ms << ' ' << c.margin_ms << '\n';
  // Optional trailing section, only for non-default defenders: files saved
  // by older builds (and every least-squares scenario) stay byte-identical.
  if (c.estimator_kind != EstimatorKind::kLeastSquares) {
    out << "estimator " << to_string(c.estimator_kind) << ' '
        << c.sparse_epsilon_ms;
    // The MLE defender's clamp floor rides as a third token; other kinds
    // keep the two-token line older readers expect.
    if (c.estimator_kind == EstimatorKind::kMulticastMle)
      out << ' ' << c.mle_min_rate;
    out << '\n';
  }
}

robust::Expected<Scenario> try_load_scenario(std::istream& in) {
  using robust::Error;
  using robust::ErrorCode;
  const auto parse_error = [](const std::string& what) {
    return Error{ErrorCode::kParseError, what};
  };

  // Sanity caps: a corrupted header count must produce a diagnostic, not a
  // multi-gigabyte allocation attempt. Orders of magnitude above any
  // topology this library targets.
  constexpr std::size_t kMaxNodes = 1'000'000;
  constexpr std::size_t kMaxLinks = 4'000'000;
  constexpr std::size_t kMaxPaths = 1'000'000;
  constexpr std::size_t kMaxPathLen = 100'000;

  std::string line;
  if (!next_line(in, line)) return parse_error("empty stream");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    if (!(ls >> magic >> version) || magic != kMagic)
      return parse_error("missing '" + std::string(kMagic) + "' header");
    if (version != kVersion)
      return parse_error("unsupported version " + std::to_string(version));
  }

  auto nodes_hdr = expect(in, "nodes");
  std::size_t num_nodes = 0;
  if (!nodes_hdr || !(*nodes_hdr >> num_nodes))
    return parse_error("bad or missing 'nodes' section");
  if (num_nodes > kMaxNodes)
    return Error{ErrorCode::kInvalidInput,
                 "implausible node count " + std::to_string(num_nodes)};

  auto links_hdr = expect(in, "links");
  std::size_t num_links = 0;
  if (!links_hdr || !(*links_hdr >> num_links))
    return parse_error("bad or missing 'links' section");
  if (num_links > kMaxLinks)
    return Error{ErrorCode::kInvalidInput,
                 "implausible link count " + std::to_string(num_links)};
  Graph g(num_nodes);
  for (std::size_t i = 0; i < num_links; ++i) {
    if (!next_line(in, line))
      return parse_error("truncated link list at entry " + std::to_string(i));
    std::istringstream ls(line);
    NodeId u, v;
    if (!(ls >> u >> v))
      return parse_error("unreadable link entry " + std::to_string(i));
    if (u >= num_nodes || v >= num_nodes)
      return parse_error("link entry " + std::to_string(i) +
                         " references a node out of range");
    if (!g.add_link(u, v))
      return parse_error("invalid link entry " + std::to_string(i));
  }

  auto monitors_hdr = expect(in, "monitors");
  std::size_t num_monitors = 0;
  if (!monitors_hdr || !(*monitors_hdr >> num_monitors))
    return parse_error("bad or missing 'monitors' section");
  if (num_monitors > num_nodes)
    return Error{ErrorCode::kInvalidInput,
                 "more monitors than nodes: " + std::to_string(num_monitors)};
  std::vector<NodeId> monitors(num_monitors);
  if (num_monitors > 0) {
    if (!next_line(in, line)) return parse_error("truncated monitor list");
    std::istringstream ls(line);
    for (NodeId& m : monitors)
      if (!(ls >> m)) return parse_error("unreadable monitor id");
  }

  auto paths_hdr = expect(in, "paths");
  std::size_t num_paths = 0;
  if (!paths_hdr || !(*paths_hdr >> num_paths))
    return parse_error("bad or missing 'paths' section");
  if (num_paths > kMaxPaths)
    return Error{ErrorCode::kInvalidInput,
                 "implausible path count " + std::to_string(num_paths)};
  std::vector<Path> paths(num_paths);
  for (std::size_t pi = 0; pi < num_paths; ++pi) {
    Path& p = paths[pi];
    if (!next_line(in, line))
      return parse_error("truncated path list at entry " + std::to_string(pi));
    std::istringstream ls(line);
    std::size_t n = 0;
    if (!(ls >> n) || n < 2)
      return parse_error("path " + std::to_string(pi) +
                         " needs at least two nodes");
    if (n > kMaxPathLen)
      return Error{ErrorCode::kInvalidInput, "implausible path length " +
                                                 std::to_string(n) +
                                                 " at entry " +
                                                 std::to_string(pi)};
    p.nodes.resize(n);
    for (NodeId& v : p.nodes)
      if (!(ls >> v))
        return parse_error("unreadable node in path " + std::to_string(pi));
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto link = g.find_link(p.nodes[i], p.nodes[i + 1]);
      if (!link)
        return parse_error("path " + std::to_string(pi) +
                           " traverses a non-existent link");
      p.links.push_back(*link);
    }
  }

  auto metrics_hdr = expect(in, "metrics");
  std::size_t num_metrics = 0;
  if (!metrics_hdr || !(*metrics_hdr >> num_metrics))
    return parse_error("bad or missing 'metrics' section");
  if (num_metrics != num_links)
    return Error{ErrorCode::kDimensionMismatch,
                 std::to_string(num_metrics) + " metrics for " +
                     std::to_string(num_links) + " links"};
  Vector x(num_metrics);
  if (!next_line(in, line)) return parse_error("truncated metrics line");
  {
    std::istringstream ls(line);
    for (std::size_t i = 0; i < num_metrics; ++i)
      if (!(ls >> x[i]))
        return parse_error("unreadable metric " + std::to_string(i));
  }

  auto config_hdr = expect(in, "config");
  if (!config_hdr) return parse_error("bad or missing 'config' section");
  ScenarioConfig cfg;
  if (!(*config_hdr >> cfg.delay_min_ms >> cfg.delay_max_ms >>
        cfg.thresholds.lower >> cfg.thresholds.upper >> cfg.per_path_cap_ms >>
        cfg.margin_ms))
    return parse_error("unreadable 'config' values");

  // Optional trailing "estimator <kind> <epsilon_ms>" (absent = least
  // squares — the format before the estimator family existed).
  if (std::string est_line; next_line(in, est_line)) {
    std::istringstream ls(est_line);
    std::string word, kind_word;
    if (!(ls >> word) || word != "estimator" || !(ls >> kind_word))
      return parse_error("unrecognized trailing section '" + est_line + "'");
    const std::optional<EstimatorKind> kind =
        estimator_kind_from_string(kind_word);
    if (!kind) return parse_error("unknown estimator kind '" + kind_word + "'");
    cfg.estimator_kind = *kind;
    if (!(ls >> cfg.sparse_epsilon_ms))
      return parse_error("unreadable estimator epsilon");
    // Optional third token: the MLE clamp floor (absent in two-token files).
    if (double floor = 0.0; ls >> floor) cfg.mle_min_rate = floor;
  }

  std::optional<Scenario> sc = Scenario::restore(
      std::move(g), std::move(monitors), std::move(paths), std::move(x), cfg);
  if (!sc)
    return Error{ErrorCode::kInvalidInput,
                 "recorded paths do not identify the link metrics"};
  return std::move(*sc);
}

std::optional<Scenario> load_scenario(std::istream& in) {
  auto sc = try_load_scenario(in);
  if (!sc.ok()) return std::nullopt;
  return std::move(*sc);
}

bool save_scenario_file(const std::string& path, const Scenario& scenario) {
  // Serialize fully in memory, then publish atomically (temp + fsync +
  // rename): a crash mid-save leaves either the old file or the new one,
  // never a torn scenario that load would half-parse.
  std::ostringstream out;
  save_scenario(out, scenario);
  if (!out) return false;
  return write_file_atomic(path, out.str()).ok();
}

robust::Expected<Scenario> try_load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return robust::Error{robust::ErrorCode::kIoError,
                         "cannot open " + path};
  return try_load_scenario(in);
}

std::optional<Scenario> load_scenario_file(const std::string& path) {
  auto sc = try_load_scenario_file(path);
  if (!sc.ok()) return std::nullopt;
  return std::move(*sc);
}

}  // namespace scapegoat
