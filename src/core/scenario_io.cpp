#include "core/scenario_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace scapegoat {

namespace {

constexpr const char* kMagic = "scapegoat-scenario";
constexpr int kVersion = 1;

// Reads the next non-comment, non-blank line into `line`.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    if (!blank) return true;
  }
  return false;
}

// Expects "<keyword> <count...>" and returns the stream over the rest.
std::optional<std::istringstream> expect(std::istream& in,
                                         const std::string& keyword) {
  std::string line;
  if (!next_line(in, line)) return std::nullopt;
  std::istringstream ls(line);
  std::string word;
  if (!(ls >> word) || word != keyword) return std::nullopt;
  return ls;
}

}  // namespace

void save_scenario(std::ostream& out, const Scenario& scenario) {
  const Graph& g = scenario.graph();
  out << kMagic << ' ' << kVersion << '\n';
  out << "nodes " << g.num_nodes() << '\n';
  out << "links " << g.num_links() << '\n';
  for (const Link& l : g.links()) out << l.u << ' ' << l.v << '\n';
  out << "monitors " << scenario.monitors().size() << '\n';
  for (std::size_t i = 0; i < scenario.monitors().size(); ++i)
    out << (i ? " " : "") << scenario.monitors()[i];
  out << '\n';
  const auto& paths = scenario.estimator().paths();
  out << "paths " << paths.size() << '\n';
  for (const Path& p : paths) {
    out << p.nodes.size();
    for (NodeId v : p.nodes) out << ' ' << v;
    out << '\n';
  }
  out << "metrics " << scenario.x_true().size() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < scenario.x_true().size(); ++i)
    out << (i ? " " : "") << scenario.x_true()[i];
  out << '\n';
  const ScenarioConfig& c = scenario.config();
  out << "config " << c.delay_min_ms << ' ' << c.delay_max_ms << ' '
      << c.thresholds.lower << ' ' << c.thresholds.upper << ' '
      << c.per_path_cap_ms << ' ' << c.margin_ms << '\n';
}

std::optional<Scenario> load_scenario(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) return std::nullopt;
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    if (!(ls >> magic >> version) || magic != kMagic || version != kVersion)
      return std::nullopt;
  }

  auto nodes_hdr = expect(in, "nodes");
  std::size_t num_nodes = 0;
  if (!nodes_hdr || !(*nodes_hdr >> num_nodes)) return std::nullopt;

  auto links_hdr = expect(in, "links");
  std::size_t num_links = 0;
  if (!links_hdr || !(*links_hdr >> num_links)) return std::nullopt;
  Graph g(num_nodes);
  for (std::size_t i = 0; i < num_links; ++i) {
    if (!next_line(in, line)) return std::nullopt;
    std::istringstream ls(line);
    NodeId u, v;
    if (!(ls >> u >> v)) return std::nullopt;
    if (u >= num_nodes || v >= num_nodes) return std::nullopt;
    if (!g.add_link(u, v)) return std::nullopt;  // keeps LinkIds in order
  }

  auto monitors_hdr = expect(in, "monitors");
  std::size_t num_monitors = 0;
  if (!monitors_hdr || !(*monitors_hdr >> num_monitors)) return std::nullopt;
  std::vector<NodeId> monitors(num_monitors);
  if (num_monitors > 0) {
    if (!next_line(in, line)) return std::nullopt;
    std::istringstream ls(line);
    for (NodeId& m : monitors)
      if (!(ls >> m)) return std::nullopt;
  }

  auto paths_hdr = expect(in, "paths");
  std::size_t num_paths = 0;
  if (!paths_hdr || !(*paths_hdr >> num_paths)) return std::nullopt;
  std::vector<Path> paths(num_paths);
  for (Path& p : paths) {
    if (!next_line(in, line)) return std::nullopt;
    std::istringstream ls(line);
    std::size_t n = 0;
    if (!(ls >> n) || n < 2) return std::nullopt;
    p.nodes.resize(n);
    for (NodeId& v : p.nodes)
      if (!(ls >> v)) return std::nullopt;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto link = g.find_link(p.nodes[i], p.nodes[i + 1]);
      if (!link) return std::nullopt;
      p.links.push_back(*link);
    }
  }

  auto metrics_hdr = expect(in, "metrics");
  std::size_t num_metrics = 0;
  if (!metrics_hdr || !(*metrics_hdr >> num_metrics) ||
      num_metrics != num_links)
    return std::nullopt;
  Vector x(num_metrics);
  if (!next_line(in, line)) return std::nullopt;
  {
    std::istringstream ls(line);
    for (std::size_t i = 0; i < num_metrics; ++i)
      if (!(ls >> x[i])) return std::nullopt;
  }

  auto config_hdr = expect(in, "config");
  if (!config_hdr) return std::nullopt;
  ScenarioConfig cfg;
  if (!(*config_hdr >> cfg.delay_min_ms >> cfg.delay_max_ms >>
        cfg.thresholds.lower >> cfg.thresholds.upper >> cfg.per_path_cap_ms >>
        cfg.margin_ms))
    return std::nullopt;

  return Scenario::restore(std::move(g), std::move(monitors),
                           std::move(paths), std::move(x), cfg);
}

bool save_scenario_file(const std::string& path, const Scenario& scenario) {
  std::ofstream out(path);
  if (!out) return false;
  save_scenario(out, scenario);
  return static_cast<bool>(out);
}

std::optional<Scenario> load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_scenario(in);
}

}  // namespace scapegoat
