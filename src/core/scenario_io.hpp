// Scenario persistence: a line-oriented text format capturing everything a
// deployment needs to be reproduced elsewhere — topology, monitors, the
// exact measurement paths, ground-truth metrics and thresholds. Used by the
// CLI (--save/--load) so an attack found once can be re-examined later or
// shared as a test fixture.
//
// Format (version header, then sections, '#' comments allowed):
//   scapegoat-scenario 1
//   nodes <N>
//   links <M>            followed by M lines "u v"
//   monitors <k>         followed by one line of k node ids
//   paths <P>            followed by P lines "n v0 v1 ... v(n-1)"
//   metrics <M>          followed by one line of M doubles
//   config <delay_min> <delay_max> <b_l> <b_u> <cap> <margin>

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/scenario.hpp"
#include "robust/expected.hpp"

namespace scapegoat {

void save_scenario(std::ostream& out, const Scenario& scenario);
bool save_scenario_file(const std::string& path, const Scenario& scenario);

// Parses a saved scenario with a typed diagnostic on failure: kParseError
// for malformed/truncated sections (the message names the section),
// kInvalidInput for absurd header counts (guards against corrupted files
// demanding gigabyte allocations) or non-identifiable recorded paths, and
// kIoError when the file can't be opened. `try_` is the repo-wide prefix
// for Expected-returning variants (DESIGN.md §9).
robust::Expected<Scenario> try_load_scenario(std::istream& in);
robust::Expected<Scenario> try_load_scenario_file(const std::string& path);

// Deprecated spellings from before the checked-call surface was unified;
// forward to the try_ names.
inline robust::Expected<Scenario> load_scenario_checked(std::istream& in) {
  return try_load_scenario(in);
}
inline robust::Expected<Scenario> load_scenario_checked_file(
    const std::string& path) {
  return try_load_scenario_file(path);
}

// Convenience wrappers that collapse the diagnostic to nullopt.
std::optional<Scenario> load_scenario(std::istream& in);
std::optional<Scenario> load_scenario_file(const std::string& path);

}  // namespace scapegoat
