#include "core/simulate.hpp"

#include <cassert>

namespace scapegoat {

std::vector<simnet::LinkModel> link_models(const Scenario& scenario,
                                           double service_ms) {
  std::vector<simnet::LinkModel> models(scenario.graph().num_links());
  for (std::size_t l = 0; l < models.size(); ++l) {
    models[l].propagation_ms = scenario.x_true()[l];
    models[l].service_ms = service_ms;
  }
  return models;
}

Vector simulate_honest_measurements(const Scenario& scenario, Rng& rng,
                                    const simnet::ProbeOptions& opt) {
  simnet::NullAdversary nobody;
  simnet::Simulator sim(scenario.graph(), link_models(scenario), nobody, rng);
  return sim.run_probes(scenario.estimator().paths(), opt).mean_delays();
}

Vector simulate_attack_measurements(const Scenario& scenario,
                                    const std::vector<NodeId>& attackers,
                                    const Vector& m, Rng& rng,
                                    const simnet::ProbeOptions& opt) {
  assert(m.size() == scenario.estimator().num_paths());
  simnet::ManipulationAdversary adversary(attackers, m);
  simnet::Simulator sim(scenario.graph(), link_models(scenario), adversary,
                        rng);
  return sim.run_probes(scenario.estimator().paths(), opt).mean_delays();
}

}  // namespace scapegoat
