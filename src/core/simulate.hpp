// Bridges the packet-level simulator with Scenario/attack results.
//
// The algebraic pipeline computes y′ = y + m; these helpers *measure* y′ by
// actually pushing probe packets through the topology with the attacker
// behavior installed, closing the loop the paper's simulation experiments
// describe. Tests assert the two agree (and quantify when they don't —
// FIFO serialization and jitter).

#pragma once

#include "core/scenario.hpp"
#include "simnet/simulator.hpp"

namespace scapegoat {

// One LinkModel per link with propagation = the scenario's true metric.
std::vector<simnet::LinkModel> link_models(const Scenario& scenario,
                                           double service_ms = 0.0);

// Measured per-path delays with no attacker present.
Vector simulate_honest_measurements(const Scenario& scenario, Rng& rng,
                                    const simnet::ProbeOptions& opt = {});

// Measured per-path delays under a manipulation-vector attack: `m` is the
// AttackResult's per-path delay (Constraint 1 holds mechanically — nodes
// not on a path never see its probes).
Vector simulate_attack_measurements(const Scenario& scenario,
                                    const std::vector<NodeId>& attackers,
                                    const Vector& m, Rng& rng,
                                    const simnet::ProbeOptions& opt = {});

}  // namespace scapegoat
