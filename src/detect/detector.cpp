#include "detect/detector.hpp"

namespace scapegoat {

DetectionOutcome detect_scapegoating(const TomographyEstimator& estimator,
                                     const Vector& y_observed,
                                     const DetectorOptions& opt) {
  DetectionOutcome out;
  out.residual_norm1 = estimator.residual(y_observed).norm1();
  out.detected = out.residual_norm1 > opt.alpha;
  return out;
}

}  // namespace scapegoat
