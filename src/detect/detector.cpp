#include "detect/detector.hpp"

#include "linalg/backend.hpp"
#include "obs/obs.hpp"

namespace scapegoat {

DetectionOutcome detect_scapegoating(const Estimator& estimator,
                                     const Vector& y_observed,
                                     const DetectorOptions& opt) {
  DetectionOutcome out;
  // The Eq. 23 residual inherits the estimator's backend routing; the
  // per-backend counter makes the split visible in experiment reports.
  const auto& r = estimator.sparse_r();
  obs::count(estimator.backend().use_sparse_products(r.rows(), r.cols(),
                                                     r.nnz())
                 ? "detect.residual_backend.sparse"
                 : "detect.residual_backend.dense");
  out.residual_norm1 = estimator.residual_statistic(y_observed);
  out.detected = out.residual_norm1 > opt.alpha;
  obs::count("detect.checks");
  if (out.detected) obs::count("detect.alarms");
  obs::observe("detect.residual_norm1", out.residual_norm1);
  return out;
}

robust::Expected<DegradedDetectionOutcome> detect_scapegoating_degraded(
    const Estimator& estimator,
    const robust::DegradedMeasurement& y_observed, const DetectorOptions& opt,
    const robust::DegradedOptions& solve_opt) {
  auto est = robust::degraded_estimate(estimator.r(), y_observed, solve_opt);
  if (!est.ok()) return est.error();
  auto residual =
      robust::degraded_residual_norm1(estimator.r(), y_observed, est->x);
  if (!residual.ok()) return residual.error();

  DegradedDetectionOutcome out;
  out.residual_norm1 = *residual;
  out.detected = out.residual_norm1 > opt.alpha;
  out.paths_used = est->paths_used;
  out.method = est->method;
  obs::count("detect.degraded.checks");
  if (out.detected) obs::count("detect.degraded.alarms");
  obs::observe("detect.degraded.residual_norm1", out.residual_norm1);
  return out;
}

}  // namespace scapegoat
