#include "detect/detector.hpp"

namespace scapegoat {

DetectionOutcome detect_scapegoating(const TomographyEstimator& estimator,
                                     const Vector& y_observed,
                                     const DetectorOptions& opt) {
  DetectionOutcome out;
  out.residual_norm1 = estimator.residual(y_observed).norm1();
  out.detected = out.residual_norm1 > opt.alpha;
  return out;
}

robust::Expected<DegradedDetectionOutcome> detect_scapegoating_degraded(
    const TomographyEstimator& estimator,
    const robust::DegradedMeasurement& y_observed, const DetectorOptions& opt,
    const robust::DegradedOptions& solve_opt) {
  auto est = robust::degraded_estimate(estimator.r(), y_observed, solve_opt);
  if (!est.ok()) return est.error();
  auto residual =
      robust::degraded_residual_norm1(estimator.r(), y_observed, est->x);
  if (!residual.ok()) return residual.error();

  DegradedDetectionOutcome out;
  out.residual_norm1 = *residual;
  out.detected = out.residual_norm1 > opt.alpha;
  out.paths_used = est->paths_used;
  out.method = est->method;
  return out;
}

}  // namespace scapegoat
