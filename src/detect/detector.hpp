// Scapegoating detection — Eq. (23) and Remark 4 of the paper.
//
// After running tomography, verify the estimate against the observations:
// under the linear model an honest network gives R x̂ = y′ exactly (up to
// measurement noise), while an imperfect-cut manipulation leaves an
// irreducible inconsistency. The practical test is ‖R x̂ − y′‖₁ > α with an
// empirically chosen α (200 ms in §V-D).
//
// Theorem 3 scopes this detector: it CANNOT fire when the attackers
// perfectly cut the victims (they can synthesize a fully consistent y′) or
// when R is square (x̂ = R⁻¹y′ reproduces y′ identically).

#pragma once

#include "linalg/matrix.hpp"
#include "tomography/estimator.hpp"

namespace scapegoat {

struct DetectorOptions {
  double alpha = 200.0;  // ‖R x̂ − y′‖₁ threshold, ms (§V-D)
};

struct DetectionOutcome {
  bool detected = false;
  double residual_norm1 = 0.0;  // the tested statistic
};

// Runs the Eq. 23 consistency check on observed measurements.
DetectionOutcome detect_scapegoating(const TomographyEstimator& estimator,
                                     const Vector& y_observed,
                                     const DetectorOptions& opt = {});

}  // namespace scapegoat
