// Scapegoating detection — Eq. (23) and Remark 4 of the paper.
//
// After running tomography, verify the estimate against the observations:
// under the linear model an honest network gives R x̂ = y′ exactly (up to
// measurement noise), while an imperfect-cut manipulation leaves an
// irreducible inconsistency. The practical test is ‖R x̂ − y′‖₁ > α with an
// empirically chosen α (200 ms in §V-D).
//
// Theorem 3 scopes this detector: it CANNOT fire when the attackers
// perfectly cut the victims (they can synthesize a fully consistent y′) or
// when R is square (x̂ = R⁻¹y′ reproduces y′ identically).

#pragma once

#include "linalg/matrix.hpp"
#include "robust/degraded.hpp"
#include "robust/expected.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat {

struct DetectorOptions {
  double alpha = 200.0;  // ‖R x̂ − y′‖₁ threshold, ms (§V-D)
};

struct DetectionOutcome {
  bool detected = false;
  double residual_norm1 = 0.0;  // the tested statistic
};

// Runs the Eq. 23 consistency check on observed measurements. The tested
// statistic is the estimator family's residual_statistic: ‖y − Rx̂‖₁
// verbatim for least squares, the over-ε excess for sparse recovery.
DetectionOutcome detect_scapegoating(const Estimator& estimator,
                                     const Vector& y_observed,
                                     const DetectorOptions& opt = {});

// Eq. 23 under measurement loss: rows that never produced a measurement are
// dropped from both the estimate and the residual. The outcome reports how
// many paths actually backed the verdict and which solver produced x̂ —
// with the regularized fallback the residual also carries shrinkage bias,
// so callers should weigh `method` before trusting a detection. Errors
// (nothing measured, shape mismatch) come back structured, never as crashes.
struct DegradedDetectionOutcome {
  bool detected = false;
  double residual_norm1 = 0.0;
  std::size_t paths_used = 0;
  robust::SolveMethod method = robust::SolveMethod::kFullRank;
};

robust::Expected<DegradedDetectionOutcome> detect_scapegoating_degraded(
    const Estimator& estimator,
    const robust::DegradedMeasurement& y_observed,
    const DetectorOptions& opt = {},
    const robust::DegradedOptions& solve_opt = {});

}  // namespace scapegoat
