#include "detect/localize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/qr.hpp"

namespace scapegoat {

namespace {

// Least squares restricted to the `kept` rows; nullopt if those rows no
// longer identify all links.
std::optional<Vector> restricted_estimate(const Matrix& r, const Vector& y,
                                          const std::vector<bool>& kept,
                                          std::size_t kept_count) {
  if (kept_count < r.cols()) return std::nullopt;
  Matrix rk(kept_count, r.cols());
  Vector yk(kept_count);
  std::size_t out = 0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    if (!kept[i]) continue;
    for (std::size_t j = 0; j < r.cols(); ++j) rk(out, j) = r(i, j);
    yk[out] = y[i];
    ++out;
  }
  return least_squares(rk, yk);
}

double restricted_residual_norm1(const Matrix& r, const Vector& y,
                                 const Vector& x,
                                 const std::vector<bool>& kept) {
  double acc = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    if (!kept[i]) continue;
    double row = y[i];
    for (std::size_t j = 0; j < r.cols(); ++j) row -= r(i, j) * x[j];
    acc += std::abs(row);
  }
  return acc;
}

}  // namespace

LocalizationResult localize_manipulation(const Estimator& estimator,
                                         const Vector& y_observed,
                                         const LocalizationOptions& opt) {
  assert(estimator.ok());
  assert(y_observed.size() == estimator.num_paths());
  const Matrix& r = estimator.r();

  LocalizationResult result;
  result.manipulated =
      estimator.residual(y_observed).norm1() > opt.alpha;
  if (!result.manipulated) {
    result.clean = true;
    result.x_cleaned = estimator.estimate(y_observed);
    return result;
  }

  std::vector<bool> kept(r.rows(), true);
  std::size_t kept_count = r.rows();

  for (std::size_t removal = 0; removal <= opt.max_removals; ++removal) {
    auto x = restricted_estimate(r, y_observed, kept, kept_count);
    if (!x) break;  // lost identifiability — cannot localize further
    const double resid =
        restricted_residual_norm1(r, y_observed, *x, kept);
    if (resid <= opt.alpha) {
      result.clean = true;
      result.x_cleaned = std::move(*x);
      break;
    }
    if (removal == opt.max_removals) break;

    // Drop the kept row with the largest absolute residual.
    std::size_t worst = r.rows();
    double worst_val = -1.0;
    for (std::size_t i = 0; i < r.rows(); ++i) {
      if (!kept[i]) continue;
      double row = y_observed[i];
      for (std::size_t j = 0; j < r.cols(); ++j) row -= r(i, j) * (*x)[j];
      if (std::abs(row) > worst_val) {
        worst_val = std::abs(row);
        worst = i;
      }
    }
    if (worst == r.rows()) break;
    kept[worst] = false;
    --kept_count;
    result.suspicious_paths.push_back(worst);
  }
  std::sort(result.suspicious_paths.begin(), result.suspicious_paths.end());

  // Suspect nodes: intersection of the suspicious paths' node sets.
  if (!result.suspicious_paths.empty()) {
    const auto& paths = estimator.paths();
    std::vector<NodeId> common =
        paths[result.suspicious_paths.front()].nodes;
    std::sort(common.begin(), common.end());
    for (std::size_t k = 1; k < result.suspicious_paths.size(); ++k) {
      std::vector<NodeId> nodes = paths[result.suspicious_paths[k]].nodes;
      std::sort(nodes.begin(), nodes.end());
      std::vector<NodeId> merged;
      std::set_intersection(common.begin(), common.end(), nodes.begin(),
                            nodes.end(), std::back_inserter(merged));
      common = std::move(merged);
      if (common.empty()) break;
    }
    result.suspect_nodes = std::move(common);
  }
  return result;
}

}  // namespace scapegoat
