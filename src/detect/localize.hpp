// Manipulation localization — a defense extension beyond the paper.
//
// Eq. 23 answers only "is someone manipulating?"; an operator also wants to
// know *which measurements to distrust*. Under an imperfect cut the
// attacker can only touch paths it sits on, so there exists a subset of
// paths whose removal restores consistency — and the untouched rows then
// re-estimate the true metrics. This module finds such a subset greedily:
//
//   repeat until consistent or out of budget:
//     x̂  ← least-squares on the remaining rows
//     drop the remaining path with the largest |yᵢ′ − (Rx̂)ᵢ| residual
//        (only if the remaining rows still identify all links)
//
// Output: the suspicious path set, the cleaned estimate, and the nodes
// shared by all suspicious paths (candidate attacker locations). The
// greedy loop is a heuristic — an optimal minimal subset is NP-hard
// (it is an L0 residual minimization) — but on LP damage-maximizing
// attacks the manipulated rows carry dominant residuals and are found
// first. Limits: once rank would drop below |L| the loop stops, so heavy
// manipulation of low-redundancy systems can exhaust the budget
// (`clean == false`).

#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat {

struct LocalizationOptions {
  double alpha = 200.0;          // consistency threshold on ‖residual‖₁
  std::size_t max_removals = 32; // budget of paths to discard
};

struct LocalizationResult {
  bool manipulated = false;  // Eq. 23 verdict on the full system
  bool clean = false;        // consistency restored within budget
  std::vector<std::size_t> suspicious_paths;  // removed path indices
  Vector x_cleaned;          // estimate from the surviving rows (if clean)
  // Nodes present on every suspicious path — the natural suspects (empty
  // when no path was flagged).
  std::vector<NodeId> suspect_nodes;
};

LocalizationResult localize_manipulation(const Estimator& estimator,
                                         const Vector& y_observed,
                                         const LocalizationOptions& opt = {});

}  // namespace scapegoat
