#include "graph/connectivity.hpp"

#include <algorithm>
#include <cassert>

#include "graph/traversal.hpp"

namespace scapegoat {

namespace {

// Iterative Tarjan lowlink computation shared by articulation points and
// bridges (recursion avoided so large topologies can't overflow the stack).
struct Lowlink {
  std::vector<std::size_t> disc, low;
  std::vector<NodeId> parent;
  std::vector<bool> is_articulation;
  std::vector<LinkId> bridge_links;

  explicit Lowlink(const Graph& g) {
    const std::size_t n = g.num_nodes();
    disc.assign(n, kUnreachable);
    low.assign(n, kUnreachable);
    parent.assign(n, static_cast<NodeId>(-1));
    is_articulation.assign(n, false);
    std::size_t timer = 0;

    struct Frame {
      NodeId node;
      std::size_t edge_idx;
      std::size_t root_children;
    };

    for (NodeId root = 0; root < n; ++root) {
      if (disc[root] != kUnreachable) continue;
      std::vector<Frame> stack{{root, 0, 0}};
      disc[root] = low[root] = timer++;
      std::size_t root_children = 0;
      while (!stack.empty()) {
        Frame& f = stack.back();
        const auto& adj = g.neighbors(f.node);
        if (f.edge_idx < adj.size()) {
          const Adjacent a = adj[f.edge_idx++];
          if (disc[a.neighbor] == kUnreachable) {
            parent[a.neighbor] = f.node;
            disc[a.neighbor] = low[a.neighbor] = timer++;
            if (f.node == root) ++root_children;
            stack.push_back({a.neighbor, 0, 0});
          } else if (a.neighbor != parent[f.node]) {
            low[f.node] = std::min(low[f.node], disc[a.neighbor]);
          }
        } else {
          const NodeId done = f.node;
          stack.pop_back();
          if (!stack.empty()) {
            const NodeId par = stack.back().node;
            low[par] = std::min(low[par], low[done]);
            if (par != root && low[done] >= disc[par])
              is_articulation[par] = true;
            if (low[done] > disc[par]) {
              // parent link is a bridge
              if (auto l = g.find_link(par, done)) bridge_links.push_back(*l);
            }
          }
        }
      }
      if (root_children > 1) is_articulation[root] = true;
    }
  }
};

}  // namespace

std::vector<NodeId> articulation_points(const Graph& g) {
  Lowlink ll(g);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (ll.is_articulation[v]) out.push_back(v);
  return out;
}

std::vector<LinkId> bridges(const Graph& g) {
  Lowlink ll(g);
  std::sort(ll.bridge_links.begin(), ll.bridge_links.end());
  return ll.bridge_links;
}

bool separates(const Graph& g, const std::vector<NodeId>& cut_set, NodeId a,
               NodeId b) {
  assert(a < g.num_nodes() && b < g.num_nodes());
  for ([[maybe_unused]] NodeId c : cut_set) assert(c != a && c != b);
  const auto dist = bfs_distances_avoiding(g, a, cut_set);
  return dist[b] == kUnreachable;
}

}  // namespace scapegoat
