// Cut-oriented connectivity analysis.
//
// The feasibility theory (Theorems 1-3) hinges on whether the attacker node
// set *cuts* the victim links off every monitor-to-monitor path. These
// helpers provide the structural side: articulation points, bridges, and
// "does removing S disconnect a from b" queries.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

// Nodes whose removal increases the number of connected components.
std::vector<NodeId> articulation_points(const Graph& g);

// Links whose removal disconnects their endpoints.
std::vector<LinkId> bridges(const Graph& g);

// True iff removing `cut_set` (none of which may be a or b) leaves no path
// from a to b.
bool separates(const Graph& g, const std::vector<NodeId>& cut_set, NodeId a,
               NodeId b);

}  // namespace scapegoat
