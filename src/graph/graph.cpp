#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace scapegoat {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

std::optional<LinkId> Graph::add_link(NodeId u, NodeId v) {
  assert(u < num_nodes() && v < num_nodes());
  if (u == v) return std::nullopt;
  if (has_link(u, v)) return std::nullopt;
  const LinkId id = links_.size();
  links_.push_back(Link{u, v});
  adjacency_[u].push_back(Adjacent{v, id});
  adjacency_[v].push_back(Adjacent{u, id});
  return id;
}

bool Graph::has_link(NodeId u, NodeId v) const {
  return find_link(u, v).has_value();
}

std::optional<LinkId> Graph::find_link(NodeId u, NodeId v) const {
  assert(u < num_nodes() && v < num_nodes());
  // Scan the smaller adjacency list.
  const NodeId base = adjacency_[u].size() <= adjacency_[v].size() ? u : v;
  const NodeId target = base == u ? v : u;
  for (const Adjacent& a : adjacency_[base])
    if (a.neighbor == target) return a.link;
  return std::nullopt;
}

std::vector<LinkId> Graph::incident_links(NodeId node) const {
  std::vector<LinkId> out;
  out.reserve(adjacency_[node].size());
  for (const Adjacent& a : adjacency_[node]) out.push_back(a.link);
  return out;
}

std::vector<LinkId> Graph::incident_links(
    const std::vector<NodeId>& nodes) const {
  std::vector<LinkId> out;
  for (NodeId n : nodes)
    for (const Adjacent& a : adjacency_[n]) out.push_back(a.link);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(" << num_nodes() << " nodes, " << num_links() << " links)";
  return os.str();
}

bool Path::contains_node(NodeId node) const {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

bool Path::contains_link(LinkId link) const {
  return std::find(links.begin(), links.end(), link) != links.end();
}

bool Path::contains_any_node(const std::vector<NodeId>& query) const {
  for (NodeId q : query)
    if (contains_node(q)) return true;
  return false;
}

bool is_valid_simple_path(const Graph& g, const Path& path) {
  if (path.nodes.empty()) return false;
  if (path.nodes.size() != path.links.size() + 1) return false;
  std::unordered_set<NodeId> seen;
  for (NodeId n : path.nodes) {
    if (n >= g.num_nodes()) return false;
    if (!seen.insert(n).second) return false;
  }
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    if (path.links[i] >= g.num_links()) return false;
    const Link& l = g.link(path.links[i]);
    const bool forward = l.u == path.nodes[i] && l.v == path.nodes[i + 1];
    const bool backward = l.v == path.nodes[i] && l.u == path.nodes[i + 1];
    if (!forward && !backward) return false;
  }
  return true;
}

}  // namespace scapegoat
