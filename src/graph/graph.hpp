// Undirected network topology.
//
// Matches the paper's model: G = (V, L), at most one link per node pair, no
// self-loops. Links carry stable integer ids because everything downstream —
// routing-matrix columns, link metrics x, link states — is indexed by link id
// exactly as the paper indexes l_1 … l_|L|.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace scapegoat {

using NodeId = std::size_t;
using LinkId = std::size_t;

struct Link {
  NodeId u;
  NodeId v;

  // The other endpoint; `node` must be one of u/v.
  NodeId other(NodeId node) const { return node == u ? v : u; }
  bool has_endpoint(NodeId node) const { return node == u || node == v; }
};

// Adjacency entry: neighbor node reached over `link`.
struct Adjacent {
  NodeId neighbor;
  LinkId link;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_links() const { return links_.size(); }

  NodeId add_node();

  // Adds an undirected link; returns nullopt for self-loops or duplicates.
  std::optional<LinkId> add_link(NodeId u, NodeId v);

  bool has_link(NodeId u, NodeId v) const;
  std::optional<LinkId> find_link(NodeId u, NodeId v) const;

  const Link& link(LinkId id) const { return links_[id]; }
  const std::vector<Link>& links() const { return links_; }

  const std::vector<Adjacent>& neighbors(NodeId node) const {
    return adjacency_[node];
  }
  std::size_t degree(NodeId node) const { return adjacency_[node].size(); }

  // Link ids incident to `node`.
  std::vector<LinkId> incident_links(NodeId node) const;

  // All link ids incident to any node in `nodes`, deduplicated — the
  // attacker-controlled link set L_m for malicious node set V_m.
  std::vector<LinkId> incident_links(const std::vector<NodeId>& nodes) const;

  std::string to_string() const;

 private:
  std::vector<std::vector<Adjacent>> adjacency_;
  std::vector<Link> links_;
};

// A measurement path: ordered node sequence plus the links it traverses
// (nodes.size() == links.size() + 1 for any non-degenerate path).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  bool empty() const { return links.empty(); }
  std::size_t length() const { return links.size(); }
  NodeId source() const { return nodes.front(); }
  NodeId destination() const { return nodes.back(); }

  bool contains_node(NodeId node) const;
  bool contains_link(LinkId link) const;
  // True iff the path visits any node from `nodes` (attacker presence test).
  bool contains_any_node(const std::vector<NodeId>& nodes) const;
};

// Validates that `path` is a simple path in `g` (consecutive nodes adjacent
// via the recorded links, no repeated node).
bool is_valid_simple_path(const Graph& g, const Path& path);

}  // namespace scapegoat
