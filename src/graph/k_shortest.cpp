#include "graph/k_shortest.hpp"

#include "graph/shortest_path.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <set>

namespace scapegoat {

namespace {

double path_cost(const Path& p, const std::vector<double>& weights) {
  double acc = 0.0;
  for (LinkId l : p.links) acc += weights[l];
  return acc;
}

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const std::vector<double>& weights) {
  assert(weights.size() == g.num_links());
  for ([[maybe_unused]] double w : weights) assert(w >= 0.0);

  std::vector<Path> found;  // A in Yen's notation
  if (k == 0) return found;

  std::vector<bool> no_nodes(g.num_nodes(), false);
  std::vector<bool> no_links(g.num_links(), false);
  auto first = dijkstra_avoiding(g, source, target, weights, no_nodes,
                                   no_links);
  if (!first) return found;
  found.push_back(std::move(*first));

  // Candidate pool B, deduplicated on node sequences.
  struct Candidate {
    double cost;
    std::size_t order;  // discovery order for deterministic ties
    Path path;
    bool operator>(const Candidate& rhs) const {
      if (cost != rhs.cost) return cost > rhs.cost;
      return order > rhs.order;
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pool;
  std::set<std::vector<NodeId>> seen;
  seen.insert(found[0].nodes);
  std::size_t order = 0;

  while (found.size() < k) {
    const Path& prev = found.back();
    for (std::size_t spur = 0; spur + 1 < prev.nodes.size(); ++spur) {
      const NodeId spur_node = prev.nodes[spur];
      // Root = prefix of prev up to (and including) the spur node.
      Path root;
      root.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + spur + 1);
      root.links.assign(prev.links.begin(), prev.links.begin() + spur);

      std::vector<bool> banned_links(g.num_links(), false);
      std::vector<bool> banned_nodes(g.num_nodes(), false);
      // Ban the next link of every accepted path sharing this root.
      for (const Path& p : found) {
        if (p.nodes.size() > spur &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       p.nodes.begin())) {
          if (spur < p.links.size()) banned_links[p.links[spur]] = true;
        }
      }
      // Ban the root's interior nodes so the spur path stays loopless.
      for (std::size_t i = 0; i < spur; ++i)
        banned_nodes[prev.nodes[i]] = true;

      auto spur_path = dijkstra_avoiding(g, spur_node, target, weights,
                                           banned_nodes, banned_links);
      if (!spur_path) continue;

      Path total = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.links.insert(total.links.end(), spur_path->links.begin(),
                         spur_path->links.end());
      if (!seen.insert(total.nodes).second) continue;
      pool.push(Candidate{path_cost(total, weights), order++,
                          std::move(total)});
    }
    if (pool.empty()) break;
    found.push_back(std::move(const_cast<Candidate&>(pool.top()).path));
    pool.pop();
  }
  return found;
}

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k) {
  return k_shortest_paths(g, source, target, k,
                          std::vector<double>(g.num_links(), 1.0));
}

}  // namespace scapegoat
