// Yen's algorithm for the k shortest loopless paths.
//
// Controllable routing lets monitors pick any simple path; ranking the
// candidates by weight (e.g. current delay estimates) gives the path
// selector and the examples a principled, diverse candidate pool beyond
// geodesics and waypoint samples.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

// The k lowest-weight simple paths from `source` to `target`, ascending by
// total weight (ties broken deterministically by discovery order). Fewer
// than k are returned when the graph doesn't contain that many simple
// paths. `weights` must hold one non-negative entry per link.
std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const std::vector<double>& weights);

// Unit-weight (fewest-hop) variant.
std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k);

}  // namespace scapegoat
