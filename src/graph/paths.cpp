#include "graph/paths.hpp"

#include <cassert>

#include "graph/shortest_path.hpp"

namespace scapegoat {

namespace {

struct EnumState {
  const Graph& g;
  NodeId target;
  const PathEnumerationOptions& opt;
  std::vector<Path>& out;
  std::vector<bool> on_path;
  Path current;

  bool dfs(NodeId cur) {
    if (cur == target) {
      out.push_back(current);
      return out.size() < opt.max_paths;
    }
    if (current.links.size() >= opt.max_length) return true;
    for (const Adjacent& a : g.neighbors(cur)) {
      if (on_path[a.neighbor]) continue;
      on_path[a.neighbor] = true;
      current.nodes.push_back(a.neighbor);
      current.links.push_back(a.link);
      const bool keep_going = dfs(a.neighbor);
      current.nodes.pop_back();
      current.links.pop_back();
      on_path[a.neighbor] = false;
      if (!keep_going) return false;
    }
    return true;
  }
};

}  // namespace

std::vector<Path> enumerate_simple_paths(const Graph& g, NodeId source,
                                         NodeId target,
                                         const PathEnumerationOptions& opt) {
  assert(source < g.num_nodes() && target < g.num_nodes());
  std::vector<Path> out;
  if (source == target) return out;
  EnumState state{g, target, opt, out,
                  std::vector<bool>(g.num_nodes(), false), Path{}};
  state.on_path[source] = true;
  state.current.nodes.push_back(source);
  state.dfs(source);
  return out;
}

namespace {

bool random_dfs(const Graph& g, NodeId cur, NodeId target,
                std::size_t max_length, Rng& rng, std::vector<bool>& on_path,
                Path& current, std::size_t& steps_left) {
  if (cur == target) return true;
  if (current.links.size() >= max_length) return false;
  if (steps_left == 0) return false;
  --steps_left;
  std::vector<Adjacent> order = g.neighbors(cur);
  rng.shuffle(order);
  for (const Adjacent& a : order) {
    if (on_path[a.neighbor]) continue;
    on_path[a.neighbor] = true;
    current.nodes.push_back(a.neighbor);
    current.links.push_back(a.link);
    if (random_dfs(g, a.neighbor, target, max_length, rng, on_path, current,
                   steps_left))
      return true;
    current.nodes.pop_back();
    current.links.pop_back();
    on_path[a.neighbor] = false;
    if (steps_left == 0) return false;
  }
  return false;
}

}  // namespace

Path sample_simple_path(const Graph& g, NodeId source, NodeId target,
                        std::size_t max_length, Rng& rng,
                        std::size_t max_steps) {
  assert(source < g.num_nodes() && target < g.num_nodes());
  Path current;
  if (source == target) return current;
  std::vector<bool> on_path(g.num_nodes(), false);
  on_path[source] = true;
  current.nodes.push_back(source);
  std::size_t steps_left = max_steps;
  if (!random_dfs(g, source, target, max_length, rng, on_path, current,
                  steps_left)) {
    return Path{};
  }
  return current;
}

Path sample_waypoint_path(const Graph& g, NodeId source, NodeId target,
                          std::size_t max_length, Rng& rng) {
  assert(source < g.num_nodes() && target < g.num_nodes());
  if (source == target) return Path{};

  const NodeId waypoint = rng.index(g.num_nodes());
  if (waypoint == source || waypoint == target) {
    auto p = shortest_path(g, source, target);
    return (p && p->length() <= max_length) ? *p : Path{};
  }

  // Leg 1: source → waypoint staying clear of the target.
  auto leg1 = shortest_path_avoiding(g, source, waypoint, {target});
  if (!leg1) return Path{};
  // Leg 2: waypoint → target avoiding leg 1's nodes (except the waypoint).
  std::vector<NodeId> forbidden(leg1->nodes.begin(), leg1->nodes.end() - 1);
  auto leg2 = shortest_path_avoiding(g, waypoint, target, forbidden);
  if (!leg2) return Path{};
  if (leg1->length() + leg2->length() > max_length) return Path{};

  Path joined = *leg1;
  joined.nodes.insert(joined.nodes.end(), leg2->nodes.begin() + 1,
                      leg2->nodes.end());
  joined.links.insert(joined.links.end(), leg2->links.begin(),
                      leg2->links.end());
  return joined;
}

}  // namespace scapegoat
