// Simple-path enumeration and sampling between node pairs.
//
// Network tomography's controllable-routing assumption means monitors can
// route probes over any simple path between them; the path selector draws
// candidate paths from these generators and keeps the rank-increasing ones.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct PathEnumerationOptions {
  std::size_t max_length = 8;    // max hops per path
  std::size_t max_paths = 1000;  // stop after this many paths found
};

// All simple paths from `source` to `target` up to the configured limits,
// in DFS order (deterministic given the graph's adjacency order).
std::vector<Path> enumerate_simple_paths(const Graph& g, NodeId source,
                                         NodeId target,
                                         const PathEnumerationOptions& opt = {});

// One random simple path from `source` to `target` via randomized DFS:
// neighbor order is shuffled at every step, first path found wins. Returns
// an empty Path if none exists within `max_length`, or when the search
// exceeds `max_steps` node expansions (randomized DFS with a hop cap can
// backtrack exponentially on dense graphs; the budget keeps a single sample
// O(max_steps)).
Path sample_simple_path(const Graph& g, NodeId source, NodeId target,
                        std::size_t max_length, Rng& rng,
                        std::size_t max_steps = 2000);

// One random simple path assembled from two BFS-shortest legs through a
// uniformly random waypoint w: source → w → target, with the second leg
// avoiding the first leg's interior nodes. O(V + E) per sample, so it is
// the sampler of choice for path selection on 100-node topologies; the
// diversity comes from the waypoint choice. Returns an empty Path when the
// legs cannot be joined within `max_length`.
Path sample_waypoint_path(const Graph& g, NodeId source, NodeId target,
                          std::size_t max_length, Rng& rng);

}  // namespace scapegoat
