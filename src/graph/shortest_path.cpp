#include "graph/shortest_path.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <queue>

namespace scapegoat {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Rebuilds a Path from parent pointers (parent node + incoming link).
std::optional<Path> build_path(NodeId source, NodeId target,
                               const std::vector<NodeId>& parent_node,
                               const std::vector<LinkId>& parent_link) {
  if (parent_node[target] == kNone && target != source) return std::nullopt;
  Path p;
  NodeId cur = target;
  while (cur != source) {
    p.nodes.push_back(cur);
    p.links.push_back(parent_link[cur]);
    cur = parent_node[cur];
  }
  p.nodes.push_back(source);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

}  // namespace

std::optional<Path> shortest_path_avoiding(
    const Graph& g, NodeId source, NodeId target,
    const std::vector<NodeId>& forbidden) {
  assert(source < g.num_nodes() && target < g.num_nodes());
  if (source == target) return std::nullopt;
  std::vector<bool> blocked(g.num_nodes(), false);
  for (NodeId n : forbidden)
    if (n < g.num_nodes()) blocked[n] = true;
  if (blocked[source] || blocked[target]) return std::nullopt;

  std::vector<NodeId> parent_node(g.num_nodes(), kNone);
  std::vector<LinkId> parent_link(g.num_nodes(), kNone);
  std::deque<NodeId> queue{source};
  std::vector<bool> visited(g.num_nodes(), false);
  visited[source] = true;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    if (cur == target) break;
    for (const Adjacent& a : g.neighbors(cur)) {
      if (visited[a.neighbor] || blocked[a.neighbor]) continue;
      visited[a.neighbor] = true;
      parent_node[a.neighbor] = cur;
      parent_link[a.neighbor] = a.link;
      queue.push_back(a.neighbor);
    }
  }
  return build_path(source, target, parent_node, parent_link);
}

std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                  NodeId target) {
  return shortest_path_avoiding(g, source, target, {});
}

std::optional<Path> dijkstra_avoiding(const Graph& g, NodeId source,
                                      NodeId target,
                                      const std::vector<double>& weights,
                                      const std::vector<bool>& banned_nodes,
                                      const std::vector<bool>& banned_links) {
  assert(weights.size() == g.num_links());
  assert(source < g.num_nodes() && target < g.num_nodes());
  assert(banned_nodes.empty() || banned_nodes.size() == g.num_nodes());
  assert(banned_links.empty() || banned_links.size() == g.num_links());
  if (source == target) return std::nullopt;
  auto node_ok = [&](NodeId v) {
    return banned_nodes.empty() || !banned_nodes[v];
  };
  auto link_ok = [&](LinkId l) {
    return banned_links.empty() || !banned_links[l];
  };
  if (!node_ok(source) || !node_ok(target)) return std::nullopt;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), kInf);
  std::vector<NodeId> parent_node(g.num_nodes(), kNone);
  std::vector<LinkId> parent_link(g.num_nodes(), kNone);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, cur] = heap.top();
    heap.pop();
    if (d > dist[cur]) continue;
    if (cur == target) break;
    for (const Adjacent& a : g.neighbors(cur)) {
      if (!node_ok(a.neighbor) || !link_ok(a.link)) continue;
      const double w = weights[a.link];
      assert(w >= 0.0);
      const double nd = d + w;
      if (nd < dist[a.neighbor]) {
        dist[a.neighbor] = nd;
        parent_node[a.neighbor] = cur;
        parent_link[a.neighbor] = a.link;
        heap.emplace(nd, a.neighbor);
      }
    }
  }
  if (dist[target] == kInf) return std::nullopt;
  return build_path(source, target, parent_node, parent_link);
}

std::optional<Path> dijkstra(const Graph& g, NodeId source, NodeId target,
                             const std::vector<double>& weights) {
  return dijkstra_avoiding(g, source, target, weights, {}, {});
}

}  // namespace scapegoat
