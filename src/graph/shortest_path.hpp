// Shortest paths: unweighted BFS paths and weighted Dijkstra.

#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

// Fewest-hop simple path from `source` to `target`; nullopt if disconnected
// or source == target.
std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                  NodeId target);

// Same but the path may not visit any node in `forbidden` (endpoints must
// not be forbidden either).
std::optional<Path> shortest_path_avoiding(const Graph& g, NodeId source,
                                           NodeId target,
                                           const std::vector<NodeId>& forbidden);

// Dijkstra with non-negative per-link weights (weights.size() == num_links).
std::optional<Path> dijkstra(const Graph& g, NodeId source, NodeId target,
                             const std::vector<double>& weights);

// Dijkstra that may not use banned nodes/links (empty masks = no bans).
// Used by Yen's spur computation and by recovery routing that drains
// suspected-failed links.
std::optional<Path> dijkstra_avoiding(const Graph& g, NodeId source,
                                      NodeId target,
                                      const std::vector<double>& weights,
                                      const std::vector<bool>& banned_nodes,
                                      const std::vector<bool>& banned_links);

}  // namespace scapegoat
