#include "graph/traversal.hpp"

#include <deque>

namespace scapegoat {

namespace {
std::vector<std::size_t> bfs_impl(const Graph& g, NodeId source,
                                  const std::vector<bool>& blocked) {
  std::vector<std::size_t> dist(g.num_nodes(), kUnreachable);
  if (source >= g.num_nodes() || blocked[source]) return dist;
  std::deque<NodeId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const Adjacent& a : g.neighbors(cur)) {
      if (blocked[a.neighbor] || dist[a.neighbor] != kUnreachable) continue;
      dist[a.neighbor] = dist[cur] + 1;
      queue.push_back(a.neighbor);
    }
  }
  return dist;
}
}  // namespace

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_impl(g, source, std::vector<bool>(g.num_nodes(), false));
}

std::vector<std::size_t> bfs_distances_avoiding(
    const Graph& g, NodeId source, const std::vector<NodeId>& forbidden) {
  std::vector<bool> blocked(g.num_nodes(), false);
  for (NodeId n : forbidden)
    if (n < g.num_nodes()) blocked[n] = true;
  return bfs_impl(g, source, blocked);
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  for (std::size_t d : dist)
    if (d == kUnreachable) return false;
  return true;
}

Components connected_components(const Graph& g) {
  Components out;
  out.component.assign(g.num_nodes(), kUnreachable);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (out.component[start] != kUnreachable) continue;
    const std::size_t id = out.count++;
    std::deque<NodeId> queue{start};
    out.component[start] = id;
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const Adjacent& a : g.neighbors(cur)) {
        if (out.component[a.neighbor] != kUnreachable) continue;
        out.component[a.neighbor] = id;
        queue.push_back(a.neighbor);
      }
    }
  }
  return out;
}

}  // namespace scapegoat
