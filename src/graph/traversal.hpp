// BFS-based traversal utilities: reachability, components, hop distances.

#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

// Hop distance from `source` to every node (kUnreachable if disconnected).
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

// Hop distances with a node set removed from the graph (used for cut
// analysis: can monitors still reach each other avoiding suspected nodes?).
std::vector<std::size_t> bfs_distances_avoiding(
    const Graph& g, NodeId source, const std::vector<NodeId>& forbidden);

bool is_connected(const Graph& g);

// component[v] = component index in [0, num_components).
struct Components {
  std::vector<std::size_t> component;
  std::size_t count = 0;
};
Components connected_components(const Graph& g);

}  // namespace scapegoat
