#include "linalg/backend.hpp"

#include <atomic>

namespace scapegoat {
namespace {

// -1 = no override; otherwise the NumericBackend value. Plain atomics (not
// a pointer chain) because overrides nest strictly via RAII scopes.
std::atomic<int> g_products_override{-1};
std::atomic<int> g_solver_override{-1};

NumericBackend resolve(NumericBackend policy,
                       const std::atomic<int>& override_slot) {
  const int forced = override_slot.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<NumericBackend>(forced);
  return policy;
}

bool sparse_shaped(std::size_t rows, std::size_t cols, std::size_t nnz,
                   std::size_t min_cells, double max_density) {
  if (rows == 0 || cols == 0) return false;
  const double cells =
      static_cast<double>(rows) * static_cast<double>(cols);
  if (cells < static_cast<double>(min_cells)) return false;
  return static_cast<double>(nnz) <= max_density * cells;
}

}  // namespace

std::string to_string(NumericBackend backend) {
  switch (backend) {
    case NumericBackend::kAuto:
      return "auto";
    case NumericBackend::kDense:
      return "dense";
    case NumericBackend::kSparse:
      return "sparse";
  }
  return "unknown";
}

std::optional<NumericBackend> numeric_backend_from_string(
    const std::string& text) {
  if (text == "auto") return NumericBackend::kAuto;
  if (text == "dense") return NumericBackend::kDense;
  if (text == "sparse") return NumericBackend::kSparse;
  return std::nullopt;
}

bool BackendPolicy::use_sparse_products(std::size_t rows, std::size_t cols,
                                        std::size_t nnz) const {
  switch (resolve(products, g_products_override)) {
    case NumericBackend::kDense:
      return false;
    case NumericBackend::kSparse:
      return true;
    case NumericBackend::kAuto:
      break;
  }
  return sparse_shaped(rows, cols, nnz, sparse_min_cells, sparse_max_density);
}

bool BackendPolicy::use_iterative_solver(std::size_t rows, std::size_t cols,
                                         std::size_t nnz) const {
  switch (resolve(solver, g_solver_override)) {
    case NumericBackend::kDense:
      return false;
    case NumericBackend::kSparse:
      return true;
    case NumericBackend::kAuto:
      break;
  }
  return sparse_shaped(rows, cols, nnz, iterative_min_cells,
                       sparse_max_density);
}

ScopedBackendOverride::ScopedBackendOverride(NumericBackend products,
                                             NumericBackend solver) {
  // kAuto means "no override for this slot" so a scope can force only one
  // side; the previous override (if any) keeps governing the other.
  prev_products_ = g_products_override.load(std::memory_order_relaxed);
  prev_solver_ = g_solver_override.load(std::memory_order_relaxed);
  if (products != NumericBackend::kAuto)
    g_products_override.store(static_cast<int>(products),
                              std::memory_order_relaxed);
  if (solver != NumericBackend::kAuto)
    g_solver_override.store(static_cast<int>(solver),
                            std::memory_order_relaxed);
}

ScopedBackendOverride::~ScopedBackendOverride() {
  g_products_override.store(prev_products_, std::memory_order_relaxed);
  g_solver_override.store(prev_solver_, std::memory_order_relaxed);
}

std::optional<NumericBackend> ScopedBackendOverride::products_override() {
  const int v = g_products_override.load(std::memory_order_relaxed);
  if (v < 0) return std::nullopt;
  return static_cast<NumericBackend>(v);
}

std::optional<NumericBackend> ScopedBackendOverride::solver_override() {
  const int v = g_solver_override.load(std::memory_order_relaxed);
  if (v < 0) return std::nullopt;
  return static_cast<NumericBackend>(v);
}

}  // namespace scapegoat
