// Numeric backend selection for the sparse subsystem.
//
// Two independent choices hide behind one policy:
//   products — whether routing-matrix products (SpMV in estimate/residual)
//              run through CSR storage. Bitwise-identical to dense (see
//              sparse_matrix.hpp), so forcing it is always safe.
//   solver   — whether least squares runs through iterative CGLS instead of
//              dense QR. Equal only to tolerance, so the auto threshold is
//              deliberately high and golden-figure workloads stay dense.
//
// Resolution precedence, decided at call time (mirrors how ExecutionPolicy
// resolves thread counts):
//   1. ScopedBackendOverride — process-global RAII override, for tests and
//      benchmarks that must force one backend through code they don't own.
//   2. The caller's BackendPolicy (kDense / kSparse pins the choice).
//   3. kAuto — size/density thresholds below.

#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace scapegoat {

enum class NumericBackend {
  kAuto,    // size/density thresholds decide
  kDense,   // always dense Matrix / QR
  kSparse,  // always CSR products / CGLS solver
};

std::string to_string(NumericBackend backend);
std::optional<NumericBackend> numeric_backend_from_string(
    const std::string& text);

struct BackendPolicy {
  NumericBackend products = NumericBackend::kAuto;
  NumericBackend solver = NumericBackend::kAuto;

  // kAuto products: go sparse when the matrix has at least this many cells
  // AND density at most this fraction. Products are bitwise-identical either
  // way, so the threshold is purely a speed heuristic.
  std::size_t sparse_min_cells = 1u << 14;  // 16384 cells (e.g. 128x128)
  double sparse_max_density = 0.25;

  // kAuto solver: CGLS only above this cell count (and under the density
  // cap). Dense QR is the reference everywhere the golden figures run;
  // 1<<20 cells keeps every checked-in experiment config on QR.
  std::size_t iterative_min_cells = 1u << 20;

  // Resolve the policy for a rows×cols matrix with nnz stored entries.
  bool use_sparse_products(std::size_t rows, std::size_t cols,
                           std::size_t nnz) const;
  bool use_iterative_solver(std::size_t rows, std::size_t cols,
                            std::size_t nnz) const;
};

// Process-global backend override (RAII). While alive, every BackendPolicy
// resolution in the process obeys it, regardless of per-instance policy.
// Nests: the innermost override wins, and destruction restores the previous
// one. Intended for tests/benchmarks; not for library code.
class ScopedBackendOverride {
 public:
  ScopedBackendOverride(NumericBackend products, NumericBackend solver);
  ~ScopedBackendOverride();

  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

  // Current override, or nullopt when none is active.
  static std::optional<NumericBackend> products_override();
  static std::optional<NumericBackend> solver_override();

 private:
  int prev_products_;
  int prev_solver_;
};

}  // namespace scapegoat
