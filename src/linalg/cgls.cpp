#include "linalg/cgls.hpp"

#include <cassert>
#include <cmath>

#include "obs/obs.hpp"

namespace scapegoat {

CglsResult cgls_solve(const SparseMatrix& a, const Vector& b,
                      const CglsOptions& options) {
  assert(b.size() == a.rows());
  assert(a.rows() >= a.cols());
  obs::ScopedTimer timer("linalg.cgls.solve_us");
  obs::count("linalg.cgls.solves");

  const std::size_t n = a.cols();
  CglsResult result;
  result.x = Vector(n);

  // r = b − Ax = b at x = 0; s = Aᵀr; p = s.
  Vector r = b;
  Vector s = a.multiply_transpose(r);
  const double s0_norm = s.norm2();
  if (s0_norm == 0.0) {
    // Aᵀb = 0: x = 0 is already the least-squares solution.
    result.converged = true;
    return result;
  }
  Vector p = s;
  double gamma = s.dot(s);

  const std::size_t max_iters = options.max_iterations != 0
                                    ? options.max_iterations
                                    : 4 * n + 100;
  const double stop = options.tol * s0_norm;

  for (std::size_t it = 0; it < max_iters; ++it) {
    const Vector q = a.multiply(p);
    const double qq = q.dot(q);
    if (qq == 0.0) break;  // p in the null space: cannot make progress
    const double alpha = gamma / qq;
    for (std::size_t j = 0; j < n; ++j) result.x[j] += alpha * p[j];
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= alpha * q[i];
    s = a.multiply_transpose(r);
    const double gamma_next = s.dot(s);
    ++result.iterations;
    if (std::sqrt(gamma_next) <= stop) {
      result.converged = true;
      gamma = gamma_next;
      break;
    }
    const double beta = gamma_next / gamma;
    gamma = gamma_next;
    for (std::size_t j = 0; j < n; ++j) p[j] = s[j] + beta * p[j];
  }

  result.relative_residual = std::sqrt(gamma) / s0_norm;
  // Guard the qq == 0 early break: gamma there is the pre-break value, so
  // recompute the honest residual from the final x.
  if (!result.converged) {
    const Vector final_s =
        a.multiply_transpose(b - a.multiply(result.x));
    result.relative_residual = final_s.norm2() / s0_norm;
    result.converged = result.relative_residual <= options.tol;
  }
  obs::count(result.converged ? "linalg.cgls.converged"
                              : "linalg.cgls.stalled");
  obs::observe("linalg.cgls.iterations",
               static_cast<double>(result.iterations));
  return result;
}

}  // namespace scapegoat
