// CGLS — conjugate gradients on the normal equations, applied to the CSR
// routing matrix without ever forming AᵀA.
//
// Solves min ‖Ax − b‖₂ for full-column-rank A. Stops when the normal-
// equation residual satisfies ‖Aᵀ(b − Ax)‖₂ ≤ tol·‖Aᵀb‖₂ or the iteration
// cap is hit. Tolerance contract (DESIGN.md §12): the answer agrees with the
// dense QR solution to a conditioning-dependent tolerance — it is NOT
// bitwise-reproducible against QR, which is why BackendPolicy thresholds the
// solver separately from the bitwise-safe products.
//
// CGLS cannot detect rank deficiency: on a rank-deficient system it
// converges to *a* least-norm-ish solution without complaint. Callers must
// establish identifiability first (TomographyEstimator does, via the dense
// rank check at construction).

#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace scapegoat {

struct CglsOptions {
  // Relative tolerance on ‖Aᵀr‖ against ‖Aᵀb‖. 1e-12 pushes to near machine
  // precision so downstream detector thresholds (Eq. 23) see solver noise
  // well below the attack margins they discriminate.
  double tol = 1e-12;
  // 0 = auto: 4·cols + 100, generous for well-conditioned routing systems
  // (theory: exact in cols iterations under exact arithmetic).
  std::size_t max_iterations = 0;
};

struct CglsResult {
  Vector x;
  std::size_t iterations = 0;
  // ‖Aᵀ(b − Ax)‖ / ‖Aᵀb‖ at exit (0 when Aᵀb = 0).
  double relative_residual = 0.0;
  bool converged = false;
};

// Least-squares solve via CGLS. Requires a.rows() >= a.cols() and b.size()
// == a.rows(); asserts otherwise.
CglsResult cgls_solve(const SparseMatrix& a, const Vector& b,
                      const CglsOptions& options = {});

}  // namespace scapegoat
