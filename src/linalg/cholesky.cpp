#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace scapegoat {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a, double tol) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  ok_ = true;
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag < tol) {
      ok_ = false;
      return;
    }
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  assert(ok_);
  const std::size_t n = l_.rows();
  assert(b.size() == n);
  // Forward: L z = b.
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * z[k];
    z[i] = acc / l_(i, i);
  }
  // Backward: Lᵀ x = z.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

std::optional<Vector> solve_normal_equations(const Matrix& a,
                                             const Vector& b) {
  const Matrix at = a.transposed();
  CholeskyDecomposition chol(at * a);
  if (!chol.ok()) return std::nullopt;
  return chol.solve(at * b);
}

}  // namespace scapegoat
