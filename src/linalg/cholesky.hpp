// Cholesky factorization for symmetric positive-definite systems.
//
// The paper's estimator (Eq. 2) is the normal-equations solve
// (RᵀR)⁻¹Rᵀy; RᵀR is SPD exactly when R has full column rank, so Cholesky
// both solves the system and certifies identifiability. The QR path in
// least_squares.hpp is the better-conditioned default; this one exists to
// reproduce Eq. 2 literally and to cross-check QR in tests.

#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace scapegoat {

class CholeskyDecomposition {
 public:
  // Factors an SPD matrix as L Lᵀ; ok() is false if `a` is not positive
  // definite to working precision.
  explicit CholeskyDecomposition(const Matrix& a, double tol = 1e-12);

  bool ok() const { return ok_; }

  // Solves a x = b. Requires ok().
  Vector solve(const Vector& b) const;

  const Matrix& l() const { return l_; }

 private:
  Matrix l_;
  bool ok_ = false;
};

// Solves the normal equations (aᵀa) x = aᵀ b — the literal Eq. 2 estimator.
// nullopt if aᵀa is not SPD (i.e. `a` lacks full column rank).
std::optional<Vector> solve_normal_equations(const Matrix& a, const Vector& b);

}  // namespace scapegoat
