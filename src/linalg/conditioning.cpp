#include "linalg/conditioning.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"

namespace scapegoat {

namespace {

// Deterministic pseudo-random start vector (no RNG dependency here; a fixed
// irrational stride avoids accidental orthogonality to the extremal
// eigenvector far more robustly than e_1).
Vector start_vector(std::size_t n) {
  Vector v(n);
  double x = 0.754877666;  // frac(golden ratio conjugate), arbitrary seed
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 997.0;
    x -= std::floor(x);
    v[i] = x - 0.5;
  }
  const double norm = v.norm2();
  if (norm > 0) v *= 1.0 / norm;
  return v;
}

}  // namespace

std::optional<ConditionEstimate> estimate_condition(const Matrix& a,
                                                    std::size_t max_iters,
                                                    double tol) {
  if (a.rows() == 0 || a.cols() == 0 || a.rows() < a.cols())
    return std::nullopt;
  const Matrix at = a.transposed();
  const Matrix ata = at * a;
  CholeskyDecomposition chol(ata);
  if (!chol.ok()) return std::nullopt;

  ConditionEstimate out;

  // Power iteration: λ_max(AᵀA) = σ_max².
  {
    Vector v = start_vector(a.cols());
    double lambda = 0.0, prev = -1.0;
    for (std::size_t it = 0; it < max_iters; ++it) {
      Vector w = ata * v;
      lambda = w.norm2();
      if (lambda == 0.0) break;
      w *= 1.0 / lambda;
      v = std::move(w);
      ++out.iterations;
      if (std::abs(lambda - prev) <= tol * std::max(1.0, lambda)) break;
      prev = lambda;
    }
    out.sigma_max = std::sqrt(lambda);
  }

  // Inverse power iteration: λ_min(AᵀA) = σ_min²; each step solves
  // (AᵀA) w = v via the Cholesky factors.
  {
    Vector v = start_vector(a.cols());
    double mu = 0.0, prev = -1.0;
    for (std::size_t it = 0; it < max_iters; ++it) {
      Vector w = chol.solve(v);
      mu = w.norm2();  // ≈ 1/λ_min after convergence
      if (mu == 0.0) break;
      w *= 1.0 / mu;
      v = std::move(w);
      ++out.iterations;
      if (std::abs(mu - prev) <= tol * std::max(1.0, mu)) break;
      prev = mu;
    }
    out.sigma_min = mu > 0.0 ? std::sqrt(1.0 / mu) : 0.0;
  }
  return out;
}

}  // namespace scapegoat
