// Spectral conditioning diagnostics for routing matrices.
//
// The Fig. 7 analysis showed attack leverage depends on how well-conditioned
// R is: a near-singular routing matrix gives the pseudo-inverse large
// entries, letting small per-path manipulations swing link estimates. This
// estimates σ_max via power iteration on AᵀA and σ_min via inverse power
// iteration through a Cholesky factorization — cheap enough to run as an
// operator-side deployment diagnostic (exposed in `scapegoat_cli topo`).

#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace scapegoat {

struct ConditionEstimate {
  double sigma_max = 0.0;  // largest singular value
  double sigma_min = 0.0;  // smallest singular value
  std::size_t iterations = 0;

  double condition() const {
    return sigma_min > 0.0 ? sigma_max / sigma_min : 0.0;
  }
};

// nullopt when `a` lacks full column rank (AᵀA not SPD) or is empty.
std::optional<ConditionEstimate> estimate_condition(const Matrix& a,
                                                    std::size_t max_iters = 300,
                                                    double tol = 1e-12);

}  // namespace scapegoat
