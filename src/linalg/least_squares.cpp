#include "linalg/least_squares.hpp"

#include <cassert>
#include <cmath>
#include <string>

#include "linalg/cgls.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse_matrix.hpp"
#include "obs/obs.hpp"

namespace scapegoat {

std::string to_string(LeastSquaresMethod method) {
  switch (method) {
    case LeastSquaresMethod::kQr:
      return "qr";
    case LeastSquaresMethod::kNormalEquations:
      return "normal_equations";
    case LeastSquaresMethod::kCgls:
      return "cgls";
  }
  return "unknown";
}

std::optional<LeastSquaresMethod> least_squares_method_from_string(
    std::string_view s) {
  for (LeastSquaresMethod m :
       {LeastSquaresMethod::kQr, LeastSquaresMethod::kNormalEquations,
        LeastSquaresMethod::kCgls}) {
    if (to_string(m) == s) return m;
  }
  return std::nullopt;
}

std::optional<Vector> least_squares(const Matrix& a, const Vector& b,
                                    LeastSquaresMethod method) {
  assert(a.rows() == b.size());
  if (a.cols() == 0 || a.rows() < a.cols()) return std::nullopt;
  obs::ScopedTimer timer("linalg.lstsq.solve_us");
  obs::count("linalg.lstsq.solves");
  switch (method) {
    case LeastSquaresMethod::kNormalEquations:
      return solve_normal_equations(a, b);
    case LeastSquaresMethod::kQr: {
      QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
      if (!qr.full_column_rank()) return std::nullopt;
      return qr.solve(b);
    }
    case LeastSquaresMethod::kCgls: {
      // Trusts the caller on column rank (CGLS cannot detect deficiency —
      // see cgls.hpp); only non-convergence is reported as failure.
      CglsResult r = cgls_solve(SparseMatrix::from_dense(a), b);
      if (!r.converged) return std::nullopt;
      return r.x;
    }
  }
  return std::nullopt;
}

robust::Expected<Vector> try_least_squares(const Matrix& a, const Vector& b,
                                           LeastSquaresMethod method) {
  if (a.rows() != b.size()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(b.size()) + " measurements for " +
                             std::to_string(a.rows()) + " rows"};
  }
  if (a.rows() == 0 || a.cols() == 0) {
    return robust::Error{robust::ErrorCode::kEmptyInput,
                         "empty least-squares system"};
  }
  if (a.rows() < a.cols()) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "under-determined: " + std::to_string(a.rows()) +
                             " rows for " + std::to_string(a.cols()) +
                             " unknowns"};
  }
  auto x = least_squares(a, b, method);
  if (!x) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "matrix is numerically rank deficient"};
  }
  return *x;
}

robust::Expected<Vector> ridge_least_squares(const Matrix& a, const Vector& b,
                                             double lambda,
                                             const Vector* prior) {
  if (lambda <= 0.0) {
    return robust::Error{robust::ErrorCode::kInvalidInput,
                         "ridge solve requires lambda > 0"};
  }
  if (a.rows() != b.size() ||
      (prior != nullptr && prior->size() != a.cols())) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         "rhs/prior sizes do not match the matrix"};
  }
  if (a.cols() == 0) {
    return robust::Error{robust::ErrorCode::kEmptyInput,
                         "ridge solve with no unknowns"};
  }
  obs::ScopedTimer timer("linalg.lstsq.ridge_us");
  obs::count("linalg.lstsq.ridge_solves");
  Matrix normal = a.transposed() * a;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += lambda;
  CholeskyDecomposition chol(normal);
  if (!chol.ok()) {
    return robust::Error{robust::ErrorCode::kIllConditioned,
                         "regularized normal matrix failed to factor"};
  }
  Vector rhs = a.transposed() * b;
  if (prior != nullptr) {
    for (std::size_t i = 0; i < rhs.size(); ++i)
      rhs[i] += lambda * (*prior)[i];
  }
  return chol.solve(rhs);
}

Vector residual(const Matrix& a, const Vector& x, const Vector& b) {
  return b - a * x;
}

RankTracker::RankTracker(std::size_t dimension, double tol)
    : dim_(dimension), tol_(tol) {}

std::pair<Vector, double> RankTracker::orthogonalize(const Vector& row) const {
  assert(row.size() == dim_);
  Vector v = row;
  const double original_norm = v.norm2();
  // Two MGS passes for numerical robustness (re-orthogonalization).
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis_) {
      const double proj = q.dot(v);
      if (proj != 0.0) v -= proj * q;
    }
  }
  return {std::move(v), original_norm};
}

bool RankTracker::is_independent(const Vector& row) const {
  if (full()) return false;
  auto [v, norm] = orthogonalize(row);
  if (norm == 0.0) return false;
  return v.norm2() > tol_ * norm;
}

bool RankTracker::add(const Vector& row) {
  if (full()) return false;
  auto [v, norm] = orthogonalize(row);
  if (norm == 0.0) return false;
  const double vnorm = v.norm2();
  if (vnorm <= tol_ * norm) return false;
  v *= 1.0 / vnorm;
  basis_.push_back(std::move(v));
  return true;
}

}  // namespace scapegoat
