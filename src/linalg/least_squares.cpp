#include "linalg/least_squares.hpp"

#include <cassert>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace scapegoat {

std::optional<Vector> least_squares(const Matrix& a, const Vector& b,
                                    LeastSquaresMethod method) {
  assert(a.rows() == b.size());
  if (a.cols() == 0 || a.rows() < a.cols()) return std::nullopt;
  switch (method) {
    case LeastSquaresMethod::kNormalEquations:
      return solve_normal_equations(a, b);
    case LeastSquaresMethod::kQr: {
      QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
      if (!qr.full_column_rank()) return std::nullopt;
      return qr.solve(b);
    }
  }
  return std::nullopt;
}

Vector residual(const Matrix& a, const Vector& x, const Vector& b) {
  return b - a * x;
}

RankTracker::RankTracker(std::size_t dimension, double tol)
    : dim_(dimension), tol_(tol) {}

std::pair<Vector, double> RankTracker::orthogonalize(const Vector& row) const {
  assert(row.size() == dim_);
  Vector v = row;
  const double original_norm = v.norm2();
  // Two MGS passes for numerical robustness (re-orthogonalization).
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vector& q : basis_) {
      const double proj = q.dot(v);
      if (proj != 0.0) v -= proj * q;
    }
  }
  return {std::move(v), original_norm};
}

bool RankTracker::is_independent(const Vector& row) const {
  if (full()) return false;
  auto [v, norm] = orthogonalize(row);
  if (norm == 0.0) return false;
  return v.norm2() > tol_ * norm;
}

bool RankTracker::add(const Vector& row) {
  if (full()) return false;
  auto [v, norm] = orthogonalize(row);
  if (norm == 0.0) return false;
  const double vnorm = v.norm2();
  if (vnorm <= tol_ * norm) return false;
  v *= 1.0 / vnorm;
  basis_.push_back(std::move(v));
  return true;
}

}  // namespace scapegoat
