// Least-squares solving and incremental rank tracking.
//
// `least_squares` is the single entry point the tomography estimator uses:
// it picks QR by default and can cross-check against the literal Eq. 2
// normal-equations path. `RankTracker` supports the greedy measurement-path
// selector: paths are proposed one at a time and accepted only if their
// {0,1} incidence row increases the rank of the routing matrix.

#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "robust/expected.hpp"

namespace scapegoat {

enum class LeastSquaresMethod {
  kQr,               // Householder QR (default; better conditioned)
  kNormalEquations,  // (AᵀA)⁻¹Aᵀb via Cholesky — the paper's Eq. 2 verbatim
  kCgls,             // iterative CGLS over CSR storage (linalg/cgls.hpp);
                     // tolerance-equal to QR, cannot detect rank deficiency
};

std::string to_string(LeastSquaresMethod method);
std::optional<LeastSquaresMethod> least_squares_method_from_string(
    std::string_view s);

inline std::ostream& operator<<(std::ostream& os, LeastSquaresMethod method) {
  return os << to_string(method);
}

// Solves min ‖a x − b‖₂. Returns nullopt if `a` lacks full column rank
// (the system is not identifiable).
std::optional<Vector> least_squares(
    const Matrix& a, const Vector& b,
    LeastSquaresMethod method = LeastSquaresMethod::kQr);

// Checked variant: names the failure instead of nullopt/assert —
//   kDimensionMismatch  |b| ≠ rows(a),
//   kEmptyInput         a has no rows or no columns,
//   kRankDeficient      under-determined or numerically rank deficient.
robust::Expected<Vector> try_least_squares(
    const Matrix& a, const Vector& b,
    LeastSquaresMethod method = LeastSquaresMethod::kQr);

// Tikhonov solve min ‖a x − b‖₂² + λ‖x − prior‖₂² via Cholesky on
// aᵀa + λI. Defined for any shape of `a` when λ > 0 (the degraded-path
// fallback); null prior means shrink toward zero. Errors: kInvalidInput for
// λ ≤ 0, kDimensionMismatch, kIllConditioned if the factorization fails.
robust::Expected<Vector> ridge_least_squares(const Matrix& a, const Vector& b,
                                             double lambda,
                                             const Vector* prior = nullptr);

// Residual b − a x.
Vector residual(const Matrix& a, const Vector& x, const Vector& b);

// Incrementally tracks the rank of a growing set of row vectors using
// modified Gram-Schmidt. Rows that are (numerically) in the span of the
// accepted ones are rejected.
class RankTracker {
 public:
  explicit RankTracker(std::size_t dimension, double tol = 1e-8);

  std::size_t dimension() const { return dim_; }
  std::size_t rank() const { return basis_.size(); }
  bool full() const { return rank() == dim_; }

  // True iff `row` is independent from the accepted rows.
  bool is_independent(const Vector& row) const;

  // Adds `row` if independent; returns whether it was accepted.
  bool add(const Vector& row);

 private:
  // Returns the component of `row` orthogonal to the current basis and its
  // original norm (for the relative independence test).
  std::pair<Vector, double> orthogonalize(const Vector& row) const;

  std::size_t dim_;
  double tol_;
  std::vector<Vector> basis_;  // orthonormal
};

}  // namespace scapegoat
