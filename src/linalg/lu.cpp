#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"

namespace scapegoat {

LuDecomposition::LuDecomposition(const Matrix& a, double pivot_tol) : lu_(a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  obs::ScopedTimer timer("linalg.lu.factorize_us");
  obs::count("linalg.lu.factorizations");
  // Gaussian elimination with partial pivoting: ~2n³/3 flops.
  obs::count("linalg.lu.flops", 2 * n * n * n / 3);
  piv_.resize(n);
  std::iota(piv_.begin(), piv_.end(), std::size_t{0});
  ok_ = true;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(lu_(r, k)) > best) {
        best = std::abs(lu_(r, k));
        p = r;
      }
    }
    if (best < pivot_tol) {
      ok_ = false;
      return;
    }
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(piv_[p], piv_[k]);
      sign_ = -sign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      lu_(r, k) /= lu_(k, k);
      const double f = lu_(r, k);
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  assert(ok_);
  const std::size_t n = lu_.rows();
  assert(b.size() == n);
  Vector x(n);
  // Forward substitution with the permutation applied.
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[piv_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  assert(ok_);
  assert(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

double LuDecomposition::determinant() const {
  if (!ok_) return 0.0;
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::optional<Vector> solve_square(const Matrix& a, const Vector& b) {
  LuDecomposition lu(a);
  if (!lu.ok()) return std::nullopt;
  return lu.solve(b);
}

}  // namespace scapegoat
