// LU factorization with partial pivoting for square systems.
//
// Used for solving small square systems (e.g. the square-routing-matrix case
// of Theorem 3, where R is invertible and detection is impossible) and for
// determinants in tests.

#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace scapegoat {

class LuDecomposition {
 public:
  // Factors a square matrix; `ok()` is false if the matrix is singular to
  // working precision (pivot below `pivot_tol`).
  explicit LuDecomposition(const Matrix& a, double pivot_tol = 1e-12);

  bool ok() const { return ok_; }

  // Solves a x = b. Requires ok().
  Vector solve(const Vector& b) const;

  // Solves a X = B column-by-column. Requires ok().
  Matrix solve(const Matrix& b) const;

  Matrix inverse() const;

  double determinant() const;

 private:
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_;  // row permutation
  int sign_ = 1;
  bool ok_ = false;
};

// Convenience: solve a square system, nullopt if singular.
std::optional<Vector> solve_square(const Matrix& a, const Vector& b);

}  // namespace scapegoat
