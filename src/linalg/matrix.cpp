#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace scapegoat {

Vector& Vector::operator+=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  assert(size() == rhs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm1() const {
  double acc = 0.0;
  for (double x : data_) acc += std::abs(x);
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

bool Vector::componentwise_geq(const Vector& rhs, double tol) const {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i)
    if (data_[i] < rhs.data_[i] - tol) return false;
  return true;
}

std::string Vector::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << ']';
  return os.str();
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double s, Vector v) { return v *= s; }

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::row(std::size_t r) const {
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  assert(v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::norm_fro() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a(r, k);
      if (av == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) out(r, c) += av * b(k, c);
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  Vector out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

}  // namespace scapegoat
