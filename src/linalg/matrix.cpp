#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/thread_pool.hpp"

namespace scapegoat {

Vector& Vector::operator+=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  assert(size() == rhs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm1() const {
  double acc = 0.0;
  for (double x : data_) acc += std::abs(x);
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

bool Vector::componentwise_geq(const Vector& rhs, double tol) const {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i)
    if (data_[i] < rhs.data_[i] - tol) return false;
  return true;
}

std::string Vector::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << ']';
  return os.str();
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double s, Vector v) { return v *= s; }

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::row(std::size_t r) const {
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  assert(v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::norm_fro() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double s, Matrix m) { return m *= s; }

namespace {

// Multiply-accumulate for output rows [r0, r1). The k-loop is blocked for
// cache reuse of b's rows; blocking never reorders the per-entry
// accumulation (k stays ascending), so blocked, serial, and parallel runs
// all produce identical bits.
constexpr std::size_t kMulKBlock = 64;

void multiply_rows(const Matrix& a, const Matrix& b, Matrix& out,
                   std::size_t r0, std::size_t r1) {
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kMulKBlock) {
      const std::size_t k1 = std::min(a.cols(), k0 + kMulKBlock);
      for (std::size_t k = k0; k < k1; ++k) {
        const double av = a(r, k);
        if (av == 0.0) continue;
        for (std::size_t c = 0; c < b.cols(); ++c) out(r, c) += av * b(k, c);
      }
    }
  }
}

// Products below this many multiply-adds are not worth a pool dispatch.
constexpr std::size_t kMulParallelFlops = 1u << 18;
// Target work per parallel_for chunk, in multiply-adds.
constexpr std::size_t kMulGrainFlops = 1u << 16;

}  // namespace

Matrix multiply_serial(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  multiply_rows(a, b, out, 0, a.rows());
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  ThreadPool& pool = ThreadPool::global();
  if (flops < kMulParallelFlops || pool.size() <= 1 ||
      pool.on_worker_thread()) {
    return multiply_serial(a, b);
  }
  Matrix out(a.rows(), b.cols());
  const std::size_t row_flops = std::max<std::size_t>(1, a.cols() * b.cols());
  const std::size_t grain =
      std::max<std::size_t>(1, kMulGrainFlops / row_flops);
  pool.parallel_for(0, a.rows(), grain,
                    [&](std::size_t lo, std::size_t hi) {
                      multiply_rows(a, b, out, lo, hi);
                    });
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  Vector out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

}  // namespace scapegoat
