// Dense row-major matrix / vector types.
//
// This is the library's replacement for Eigen: the tomography estimator,
// routing matrices, and the simplex tableau all sit on these types. Sizes in
// this problem domain are modest (hundreds of rows/columns), so a simple,
// well-tested dense implementation is the right tool — no expression
// templates, no allocation tricks, just value semantics and asserts on shape.

#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace scapegoat {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  double dot(const Vector& rhs) const;
  // L1, L2 and max norms.
  double norm1() const;
  double norm2() const;
  double norm_inf() const;

  // True iff every entry of *this is >= the matching entry of rhs - tol.
  // This is the componentwise ⪰ relation from the paper's Table I.
  bool componentwise_geq(const Vector& rhs, double tol = 0.0) const;

  std::string to_string(int precision = 3) const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);
bool approx_equal(const Vector& a, const Vector& b, double tol = 1e-9);

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Row-major construction from nested initializer lists; all rows must have
  // equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  // Frobenius norm.
  double norm_fro() const;
  double max_abs() const;

  std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(double s, Matrix m);

// Product a·b. Large products are computed by row blocks on the global
// ThreadPool; each output row is written by exactly one task and inner-loop
// accumulation order matches the serial kernel, so the result is bitwise
// identical at any thread count. Small products run serially.
Matrix operator*(const Matrix& a, const Matrix& b);

// The serial multiply kernel (always single-threaded). Exposed so property
// tests can pin the parallel path against it.
Matrix multiply_serial(const Matrix& a, const Matrix& b);

Vector operator*(const Matrix& a, const Vector& x);
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace scapegoat
