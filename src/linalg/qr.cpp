#include "linalg/qr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <string>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {

namespace {

// Trailing-update work (in flops) below which a Householder step is not
// worth a pool dispatch, and the per-chunk flop target above it. Applying
// the reflector to one column touches ~2(m−k) entries.
constexpr std::size_t kQrParallelFlops = 1u << 15;
constexpr std::size_t kQrGrainFlops = 1u << 13;

// Work per pseudo-inverse column solve: one Qᵀ apply plus a back-solve.
constexpr std::size_t kPinvParallelFlops = 1u << 15;

}  // namespace

QrDecomposition::QrDecomposition(const Matrix& a, Pivoting pivoting)
    : m_(a.rows()), n_(a.cols()), qr_(a) {
  obs::ScopedTimer timer("linalg.qr.factorize_us");
  obs::count("linalg.qr.factorizations");
  // Householder QR flop count ≈ 2n²(m − n/3) for m ≥ n (Golub & Van Loan).
  const std::size_t mn = std::min(m_, n_);
  obs::count("linalg.qr.flops",
             2 * mn * mn * (std::max(m_, n_) - mn / 3));
  const std::size_t steps = std::min(m_, n_);
  betas_.assign(steps, 0.0);
  perm_.resize(n_);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  // Column squared norms for pivot selection, downdated as we go.
  std::vector<double> colnorm(n_, 0.0);
  if (pivoting == Pivoting::kColumn) {
    for (std::size_t c = 0; c < n_; ++c)
      for (std::size_t r = 0; r < m_; ++r) colnorm[c] += qr_(r, c) * qr_(r, c);
  }

  for (std::size_t k = 0; k < steps; ++k) {
    if (pivoting == Pivoting::kColumn) {
      std::size_t best = k;
      for (std::size_t c = k + 1; c < n_; ++c)
        if (colnorm[c] > colnorm[best]) best = c;
      if (best != k) {
        for (std::size_t r = 0; r < m_; ++r) std::swap(qr_(r, k), qr_(r, best));
        std::swap(colnorm[k], colnorm[best]);
        std::swap(perm_[k], perm_[best]);
      }
    }

    // Householder vector annihilating qr_(k+1.., k).
    double norm = 0.0;
    for (std::size_t r = k; r < m_; ++r) norm += qr_(r, k) * qr_(r, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      betas_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // beta = 2 / vᵀv with v = (v0, qr_(k+1..,k)); store v scaled by 1/v0 so
    // the implicit leading entry is 1.
    double vtv = v0 * v0;
    for (std::size_t r = k + 1; r < m_; ++r) vtv += qr_(r, k) * qr_(r, k);
    const double beta = 2.0 * v0 * v0 / vtv;
    for (std::size_t r = k + 1; r < m_; ++r) qr_(r, k) /= v0;
    betas_[k] = beta;

    qr_(k, k) = alpha;
    // Apply the reflector to the trailing columns. Columns are independent
    // (each reads the fixed Householder vector in column k and writes only
    // its own column), so the update parallelizes across the pool with
    // bitwise-identical results; the pivot-norm downdate rides along per
    // column. Small trailing blocks stay serial.
    auto update_columns = [&](std::size_t c0, std::size_t c1) {
      for (std::size_t c = c0; c < c1; ++c) {
        double dot = qr_(k, c);
        for (std::size_t r = k + 1; r < m_; ++r) dot += qr_(r, k) * qr_(r, c);
        dot *= beta;
        qr_(k, c) -= dot;
        for (std::size_t r = k + 1; r < m_; ++r) qr_(r, c) -= dot * qr_(r, k);
        if (pivoting == Pivoting::kColumn) {
          colnorm[c] -= qr_(k, c) * qr_(k, c);
          if (colnorm[c] < 0.0) colnorm[c] = 0.0;
        }
      }
    };
    const std::size_t trailing_cols = n_ - (k + 1);
    const std::size_t col_flops = 2 * (m_ - k);
    ThreadPool& pool = ThreadPool::global();
    if (trailing_cols * col_flops < kQrParallelFlops || pool.size() <= 1 ||
        pool.on_worker_thread()) {
      update_columns(k + 1, n_);
    } else {
      const std::size_t grain =
          std::max<std::size_t>(1, kQrGrainFlops / col_flops);
      pool.parallel_for(k + 1, n_, grain, update_columns);
    }
  }
}

std::size_t QrDecomposition::rank(double tol) const {
  const std::size_t steps = std::min(m_, n_);
  if (steps == 0) return 0;
  const double scale = std::abs(qr_(0, 0));
  if (scale == 0.0) return 0;
  const double threshold =
      tol * static_cast<double>(std::max(m_, n_)) * scale;
  std::size_t r = 0;
  for (std::size_t k = 0; k < steps; ++k)
    if (std::abs(qr_(k, k)) > threshold) ++r;
  return r;
}

Vector QrDecomposition::qt_times(const Vector& b) const {
  assert(b.size() == m_);
  Vector y = b;
  const std::size_t steps = std::min(m_, n_);
  for (std::size_t k = 0; k < steps; ++k) {
    if (betas_[k] == 0.0) continue;
    double dot = y[k];
    for (std::size_t r = k + 1; r < m_; ++r) dot += qr_(r, k) * y[r];
    dot *= betas_[k];
    y[k] -= dot;
    for (std::size_t r = k + 1; r < m_; ++r) y[r] -= dot * qr_(r, k);
  }
  return y;
}

Vector QrDecomposition::solve(const Vector& b) const {
  assert(m_ >= n_);
  Vector y = qt_times(b);
  // Back substitution on the n×n upper triangle.
  Vector z(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t c = ii + 1; c < n_; ++c) acc -= qr_(ii, c) * z[c];
    assert(std::abs(qr_(ii, ii)) > 0.0 && "solve() requires full column rank");
    z[ii] = acc / qr_(ii, ii);
  }
  // Undo the column permutation.
  Vector x(n_);
  for (std::size_t j = 0; j < n_; ++j) x[perm_[j]] = z[j];
  return x;
}

Matrix QrDecomposition::r() const {
  const std::size_t k = std::min(m_, n_);
  Matrix out(k, n_);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < n_; ++j) out(i, j) = qr_(i, j);
  return out;
}

std::size_t matrix_rank(const Matrix& a, double tol) {
  if (a.rows() == 0 || a.cols() == 0) return 0;
  return QrDecomposition(a, QrDecomposition::Pivoting::kColumn).rank(tol);
}

robust::Expected<Matrix> try_pseudo_inverse(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return robust::Error{robust::ErrorCode::kEmptyInput,
                         "pseudo-inverse of an empty matrix"};
  }
  if (a.rows() < a.cols()) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "fewer rows than columns (" +
                             std::to_string(a.rows()) + "x" +
                             std::to_string(a.cols()) + ")"};
  }
  QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
  if (!qr.full_column_rank()) {
    return robust::Error{
        robust::ErrorCode::kRankDeficient,
        "numerical rank " + std::to_string(qr.rank()) + " of " +
            std::to_string(a.cols()) + " columns"};
  }
  return pseudo_inverse(a);
}

Matrix pseudo_inverse(const Matrix& a) {
  obs::ScopedTimer timer("linalg.pinv.compute_us");
  obs::count("linalg.pinv.computes");
  QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
  assert(qr.full_column_rank() && "pseudo_inverse requires full column rank");
  const std::size_t m = a.rows(), n = a.cols();
  // m back-solves against the shared factor: ~(2mn + n²) flops each.
  obs::count("linalg.pinv.flops", m * (2 * m * n + n * n));
  Matrix pinv(n, m);
  // Column j of the pseudo-inverse is argmin ‖a x − e_j‖₂. The m solves
  // share the read-only factorization and write disjoint columns, so they
  // fan out across the pool (this is the estimator's G = R⁺ hot path).
  auto solve_columns = [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) {
      Vector ej(m);
      ej[j] = 1.0;
      Vector xj = qr.solve(ej);
      for (std::size_t i = 0; i < n; ++i) pinv(i, j) = xj[i];
    }
  };
  const std::size_t col_flops = std::max<std::size_t>(1, 2 * m * n + n * n);
  ThreadPool& pool = ThreadPool::global();
  if (m * col_flops < kPinvParallelFlops || pool.size() <= 1 ||
      pool.on_worker_thread()) {
    solve_columns(0, m);
  } else {
    pool.parallel_for(0, m, 1, solve_columns);
  }
  return pinv;
}

}  // namespace scapegoat
