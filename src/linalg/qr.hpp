// Householder QR with optional column pivoting.
//
// This is the workhorse behind the tomography estimator and the
// pseudo-inverse used by the attack LPs:
//   * plain QR        → least-squares solve of y = Rx for full-column-rank R,
//   * pivoted QR      → numerical rank of R (identifiability checks and the
//                       greedy rank-augmenting path selector).

#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "robust/expected.hpp"

namespace scapegoat {

class QrDecomposition {
 public:
  enum class Pivoting { kNone, kColumn };

  explicit QrDecomposition(const Matrix& a,
                           Pivoting pivoting = Pivoting::kNone);

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  // Numerical rank: number of diagonal entries of R above
  // tol * max(m, n) * |R(0,0)|. Only meaningful with column pivoting
  // (without it the diagonal of R is not ordered by magnitude).
  std::size_t rank(double tol = 1e-10) const;

  bool full_column_rank(double tol = 1e-10) const { return rank(tol) == n_; }

  // Minimum-norm least-squares solve min ‖a x − b‖₂ for full-column-rank a.
  // Requires full_column_rank(); asserts otherwise.
  Vector solve(const Vector& b) const;

  // Applies Qᵀ to a copy of b (length m).
  Vector qt_times(const Vector& b) const;

  // The upper-triangular factor (n×n leading block).
  Matrix r() const;

  // Column permutation p such that A(:, p[j]) is the j-th factored column.
  const std::vector<std::size_t>& permutation() const { return perm_; }

 private:
  std::size_t m_ = 0, n_ = 0;
  // Packed factorization: upper triangle holds R, lower triangle the
  // Householder vectors (v[k]=1 implicit), betas_ the scalar coefficients.
  Matrix qr_;
  std::vector<double> betas_;
  std::vector<std::size_t> perm_;
};

// Numerical rank via pivoted QR.
std::size_t matrix_rank(const Matrix& a, double tol = 1e-10);

// Moore-Penrose pseudo-inverse for full-column-rank a: (aᵀa)⁻¹aᵀ computed as
// column-wise QR least-squares solves (better conditioned than forming aᵀa).
// Asserts full column rank.
Matrix pseudo_inverse(const Matrix& a);

// Checked pseudo-inverse: reports rank deficiency (with the numerical rank
// in the message) or an empty input as a structured error instead of
// tripping the assert above. The crash-free entry point for degraded paths.
robust::Expected<Matrix> try_pseudo_inverse(const Matrix& a);

}  // namespace scapegoat
