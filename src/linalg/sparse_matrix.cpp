#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace scapegoat {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

robust::Expected<SparseMatrix> SparseMatrix::try_from_triplets(
    std::size_t rows, std::size_t cols, const std::vector<Triplet>& entries) {
  SparseMatrix out(rows, cols);
  // Counting sort by row keeps construction O(nnz + rows) and deterministic.
  std::vector<std::size_t> per_row(rows, 0);
  for (const Triplet& t : entries) {
    if (t.row >= rows || t.col >= cols) {
      return robust::Error{robust::ErrorCode::kInvalidInput,
                           "triplet (" + std::to_string(t.row) + "," +
                               std::to_string(t.col) + ") outside " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols)};
    }
    if (t.value != 0.0) ++per_row[t.row];
  }
  for (std::size_t r = 0; r < rows; ++r)
    out.row_ptr_[r + 1] = out.row_ptr_[r] + per_row[r];
  const std::size_t nnz = out.row_ptr_[rows];
  out.col_index_.resize(nnz);
  out.values_.resize(nnz);
  std::vector<std::size_t> cursor(out.row_ptr_.begin(),
                                  out.row_ptr_.end() - 1);
  for (const Triplet& t : entries) {
    if (t.value == 0.0) continue;  // structural zeros are not stored
    const std::size_t k = cursor[t.row]++;
    out.col_index_[k] = t.col;
    out.values_[k] = t.value;
  }
  // Sort each row by column and reject duplicates: one incidence per
  // (path, link) is the routing-matrix invariant this type exists for.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t begin = out.row_ptr_[r], end = out.row_ptr_[r + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return out.col_index_[a] < out.col_index_[b];
              });
    std::vector<std::size_t> cols_sorted(order.size());
    std::vector<double> vals_sorted(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      cols_sorted[i] = out.col_index_[order[i]];
      vals_sorted[i] = out.values_[order[i]];
    }
    for (std::size_t i = 0; i + 1 < cols_sorted.size(); ++i) {
      if (cols_sorted[i] == cols_sorted[i + 1]) {
        return robust::Error{robust::ErrorCode::kInvalidInput,
                             "duplicate coordinate (" + std::to_string(r) +
                                 "," + std::to_string(cols_sorted[i]) + ")"};
      }
    }
    std::copy(cols_sorted.begin(), cols_sorted.end(),
              out.col_index_.begin() + begin);
    std::copy(vals_sorted.begin(), vals_sorted.end(),
              out.values_.begin() + begin);
  }
  return out;
}

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         const std::vector<Triplet>& entries) {
  auto out = try_from_triplets(rows, cols, entries);
  assert(out.ok() && "invalid triplets");
  return *out;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& a, double tol) {
  SparseMatrix out(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t count = 0;
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c)) > tol && a(r, c) != 0.0) ++count;
    out.row_ptr_[r + 1] = out.row_ptr_[r] + count;
  }
  out.col_index_.reserve(out.row_ptr_[a.rows()]);
  out.values_.reserve(out.row_ptr_[a.rows()]);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double v = a(r, c);
      if (std::abs(v) > tol && v != 0.0) {
        out.col_index_.push_back(c);
        out.values_.push_back(v);
      }
    }
  }
  return out;
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out(r, col_index_[k]) = values_[k];
  return out;
}

double SparseMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 1.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  assert(row < rows_ && col < cols_);
  for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k)
    if (col_index_[k] == col) return values_[k];
  return 0.0;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_index_[k]];
    out[r] = acc;
  }
  return out;
}

Vector SparseMatrix::multiply_transpose(const Vector& y) const {
  assert(y.size() == rows_);
  Vector out(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out[col_index_[k]] += values_[k] * yr;
  }
  return out;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix out(cols_, rows_);
  std::vector<std::size_t> per_row(cols_, 0);
  for (const std::size_t c : col_index_) ++per_row[c];
  for (std::size_t r = 0; r < cols_; ++r)
    out.row_ptr_[r + 1] = out.row_ptr_[r] + per_row[r];
  out.col_index_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<std::size_t> cursor(out.row_ptr_.begin(),
                                  out.row_ptr_.end() - 1);
  // Walking rows in order writes each transposed row's entries in
  // increasing original-row order, so columns stay sorted.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t dst = cursor[col_index_[k]]++;
      out.col_index_[dst] = r;
      out.values_[dst] = values_[k];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::select_rows(
    const std::vector<std::size_t>& rows) const {
  SparseMatrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < rows_);
    out.row_ptr_[i + 1] = out.row_ptr_[i] + row_nnz(rows[i]);
  }
  out.col_index_.reserve(out.row_ptr_.back());
  out.values_.reserve(out.row_ptr_.back());
  for (const std::size_t r : rows) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.col_index_.push_back(col_index_[k]);
      out.values_.push_back(values_[k]);
    }
  }
  return out;
}

SparseMatrix SparseMatrix::select_cols(
    const std::vector<std::size_t>& cols) const {
  // new position of an original column, in `cols` order; kKeep sentinel
  // avoids a per-entry map lookup. Repeated columns take the last position —
  // callers selecting with repeats get each entry once (documented: indices
  // may repeat, entries are not duplicated across repeats of a column).
  constexpr std::size_t kDrop = static_cast<std::size_t>(-1);
  std::vector<std::size_t> position(cols_, kDrop);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    assert(cols[i] < cols_);
    position[cols[i]] = i;
  }
  SparseMatrix out(rows_, cols.size());
  std::vector<Triplet> kept;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (position[col_index_[k]] != kDrop)
        kept.push_back({r, position[col_index_[k]], values_[k]});
  return from_triplets(rows_, cols.size(), kept);
}

robust::Status SparseMatrix::try_append_row(
    const std::vector<std::size_t>& cols, const std::vector<double>& values) {
  if (cols_ == 0) {
    return robust::Error{robust::ErrorCode::kInvalidInput,
                         "cannot append a row to a 0-column matrix"};
  }
  if (cols.size() != values.size()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(cols.size()) + " columns for " +
                             std::to_string(values.size()) + " values"};
  }
  // Stage the nonzero entries sorted by column; validate before touching any
  // member so a rejected append leaves the matrix exactly as it was.
  std::vector<std::pair<std::size_t, double>> entries;
  entries.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] >= cols_) {
      return robust::Error{robust::ErrorCode::kInvalidInput,
                           "column " + std::to_string(cols[i]) +
                               " outside width " + std::to_string(cols_)};
    }
    if (values[i] != 0.0) entries.emplace_back(cols[i], values[i]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    if (entries[i].first == entries[i + 1].first) {
      return robust::Error{robust::ErrorCode::kInvalidInput,
                           "duplicate coordinate (" + std::to_string(rows_) +
                               "," + std::to_string(entries[i].first) + ")"};
    }
  }
  col_index_.reserve(col_index_.size() + entries.size());
  values_.reserve(values_.size() + entries.size());
  for (const auto& [c, v] : entries) {
    col_index_.push_back(c);
    values_.push_back(v);
  }
  ++rows_;
  row_ptr_.push_back(col_index_.size());
  return robust::ok_status();
}

void SparseMatrix::append_row(const std::vector<std::size_t>& cols,
                              const std::vector<double>& values) {
  const robust::Status st = try_append_row(cols, values);
  assert(st.ok() && "invalid appended row");
  (void)st;
}

Vector SparseMatrix::row_dense(std::size_t r) const {
  assert(r < rows_);
  Vector out(cols_);
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    out[col_index_[k]] = values_[k];
  return out;
}

std::string SparseMatrix::to_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " csr, " << nnz() << " nnz";
  return os.str();
}

Vector operator*(const SparseMatrix& a, const Vector& x) {
  return a.multiply(x);
}

bool approx_equal(const SparseMatrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  std::size_t k = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t next = a.row_begin(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      double av = 0.0;
      if (next < a.row_end(r) && a.col_index()[next] == c)
        av = a.values()[next++];
      if (std::abs(av - b(r, c)) > tol) return false;
    }
    k = next;
  }
  (void)k;
  return true;
}

}  // namespace scapegoat
