// Compressed-sparse-row matrix — the storage format for routing matrices.
//
// The paper's R is {0,1} with ~path-length nonzeros per row, so on the
// 10k–100k-link topologies the ROADMAP targets a dense |P|×|L| array is
// almost entirely zeros. This CSR type carries the sparse half of the
// numerics subsystem: construction (triplets, dense conversion, routing
// matrices via tomography/routing_matrix.hpp), SpMV / SpMᵀV products, and
// row/column slicing for the degraded-measurement paths.
//
// Bitwise contract (DESIGN.md §12): `multiply` accumulates each output row
// in column order over the stored nonzeros, which is exactly the dense
// row-dot-product with the structural-zero terms skipped. Adding a ±0.0
// product never changes a running sum that starts at +0.0, so for any
// matrix whose zeros are exact — every routing matrix — SpMV equals the
// dense `Matrix * Vector` BIT FOR BIT. The golden-figure suite pins this
// through whole experiment pipelines; the sparse least-squares *solver*
// (cgls.hpp) carries only a tolerance contract and is thresholded
// separately.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "robust/expected.hpp"

namespace scapegoat {

// One (row, col, value) coordinate for triplet construction.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Empty rows×cols matrix (no stored entries).
  SparseMatrix(std::size_t rows, std::size_t cols);

  // Triplet construction. Entries may arrive in any order; exact zeros are
  // dropped. Duplicate (row, col) coordinates are REJECTED, not summed —
  // a routing matrix has exactly one incidence per (path, link), and a
  // duplicate means the caller built the path set wrong. `try_` names the
  // failure (kInvalidInput for out-of-range or duplicate coordinates);
  // `from_triplets` asserts on the same conditions.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    const std::vector<Triplet>& entries);
  static robust::Expected<SparseMatrix> try_from_triplets(
      std::size_t rows, std::size_t cols, const std::vector<Triplet>& entries);

  // Dense conversions. `from_dense` stores entries with |a(i,j)| > tol
  // (tol = 0.0 keeps every non-zero bit pattern, the lossless default).
  static SparseMatrix from_dense(const Matrix& a, double tol = 0.0);
  Matrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  // nnz / (rows·cols); 1.0 for degenerate shapes so auto-selection treats
  // them as dense.
  double density() const;

  // Entry lookup (linear scan of the row — diagnostics, not hot paths).
  double at(std::size_t row, std::size_t col) const;

  // Row r's entries live at indices [row_begin(r), row_end(r)) of
  // col_index()/values(), sorted by column.
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  const std::vector<std::size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }

  // y = A x (per-row column-order accumulation — bitwise equal to the dense
  // product, see header comment).
  Vector multiply(const Vector& x) const;
  // z = Aᵀ y without materializing the transpose (row-major scatter; equals
  // the dense transposed product to roundoff, not bitwise — accumulation
  // order differs).
  Vector multiply_transpose(const Vector& y) const;

  SparseMatrix transposed() const;

  // Row/column slicing: the sub-matrix keeping exactly `rows`/`cols` in the
  // given order (indices may repeat; each must be in range). Row slicing is
  // the degraded-measurement shape (drop unmeasured paths); column slicing
  // restricts to a link subset.
  SparseMatrix select_rows(const std::vector<std::size_t>& rows) const;
  SparseMatrix select_cols(const std::vector<std::size_t>& cols) const;

  // Incremental row append: grows the matrix to rows()+1 without rebuilding
  // the CSR arrays from triplets — the streaming-service shape, where a
  // shard absorbs a new measurement path as one O(k log k) append instead of
  // an O(nnz) from-scratch reconstruction. Entries may arrive in any column
  // order; exact zeros are dropped and duplicate columns are rejected, so an
  // appended matrix is BITWISE identical (row_ptr/col_index/values) to the
  // same matrix rebuilt via from_triplets — pinned by the
  // `linalg_sparse_row_append_matches_rebuild` registry property. `try_`
  // names the failure (kInvalidInput, matrix untouched); `append_row`
  // asserts on the same conditions. cols() must already be set (appending
  // to a default-constructed 0-column matrix is kInvalidInput).
  robust::Status try_append_row(const std::vector<std::size_t>& cols,
                                const std::vector<double>& values);
  void append_row(const std::vector<std::size_t>& cols,
                  const std::vector<double>& values);

  // Dense copy of one row (length cols()).
  Vector row_dense(std::size_t r) const;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;    // rows_ + 1 offsets
  std::vector<std::size_t> col_index_;  // nnz, sorted within each row
  std::vector<double> values_;          // nnz
};

// y = A x, mirroring the dense operator.
Vector operator*(const SparseMatrix& a, const Vector& x);

bool approx_equal(const SparseMatrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace scapegoat
