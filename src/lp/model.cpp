#include "lp/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace scapegoat::lp {

std::size_t Model::add_variable(double lower, double upper, double objective,
                                std::string name) {
  assert(lower <= upper);
  variables_.push_back(Variable{lower, upper, objective, std::move(name)});
  return variables_.size() - 1;
}

void Model::add_constraint(std::vector<Term> terms, RowType type, double rhs,
                           std::string name) {
  for ([[maybe_unused]] const Term& t : terms) assert(t.var < variables_.size());
  constraints_.push_back(
      Constraint{std::move(terms), type, rhs, std::move(name)});
}

double Model::objective_value(const std::vector<double>& x) const {
  assert(x.size() == variables_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    acc += variables_[i].objective * x[i];
  return acc;
}

double Model::max_violation(const std::vector<double>& x) const {
  assert(x.size() == variables_.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lower - x[i]);
    worst = std::max(worst, x[i] - variables_[i].upper);
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[t.var];
    switch (c.type) {
      case RowType::kLessEqual:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case RowType::kGreaterEqual:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case RowType::kEqual:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

std::string to_string(const Model& model) {
  std::ostringstream os;
  os << (model.sense() == Sense::kMaximize ? "max" : "min");
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (v.objective != 0.0) os << ' ' << v.objective << "*x" << j;
  }
  os << " |";
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    os << " x" << j << " in [" << v.lower << ',' << v.upper << ']';
  }
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const Constraint& c = model.constraint(i);
    os << ';';
    for (const Term& t : c.terms) os << ' ' << t.coeff << "*x" << t.var;
    switch (c.type) {
      case RowType::kLessEqual:
        os << " <= ";
        break;
      case RowType::kGreaterEqual:
        os << " >= ";
        break;
      case RowType::kEqual:
        os << " == ";
        break;
    }
    os << c.rhs;
  }
  return os.str();
}

}  // namespace scapegoat::lp
