// Linear-program model builder.
//
// All three scapegoating strategies in the paper reduce to LPs over the
// attack manipulation vector m (maximize ‖m‖₁ = Σ mᵢ subject to Constraint 1
// and link-state constraints on the manipulated tomography estimate). This
// model type is the neutral LP surface between the attack formulations and
// the simplex solver: named variables with box bounds, sparse constraint
// rows with ≤ / = / ≥ senses, and a linear objective.

#pragma once

#include <limits>
#include <string>
#include <vector>

namespace scapegoat::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kMaximize, kMinimize };
enum class RowType { kLessEqual, kGreaterEqual, kEqual };

// One sparse coefficient: variable index and value.
struct Term {
  std::size_t var;
  double coeff;
};

struct Constraint {
  std::vector<Term> terms;
  RowType type = RowType::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  std::string name;
};

class Model {
 public:
  explicit Model(Sense sense = Sense::kMaximize) : sense_(sense) {}

  Sense sense() const { return sense_; }
  void set_sense(Sense sense) { sense_ = sense; }

  // Returns the new variable's index. `lower` may be -inf and `upper` +inf.
  std::size_t add_variable(double lower, double upper, double objective,
                           std::string name = {});

  void add_constraint(std::vector<Term> terms, RowType type, double rhs,
                      std::string name = {});

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  const Variable& variable(std::size_t i) const { return variables_[i]; }
  const Constraint& constraint(std::size_t i) const { return constraints_[i]; }

  // Objective value of a candidate point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  // Max constraint/bound violation of a candidate point; 0 means feasible.
  double max_violation(const std::vector<double>& x) const;

 private:
  Sense sense_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

// Compact single-line rendering — "max 2x0 -x1 | x0 in [0,3] ...; 2x0+x1 <=
// 4; ..." — for logs and property-test counterexample reports.
std::string to_string(const Model& model);

}  // namespace scapegoat::lp
