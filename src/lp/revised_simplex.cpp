#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "robust/watchdog.hpp"

namespace scapegoat::lp {
namespace {

constexpr std::size_t kWatchdogStride = 64;
// Basis changes between LU refreshes: long enough to amortize the O(m³)
// factorization, short enough that eta-file drift stays below feas_tol.
constexpr std::size_t kRefactorStride = 64;
constexpr std::size_t kStallLimit = 200;  // matches the tableau's Bland trip

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColState { kBasic, kAtLower, kAtUpper };

// One sparse column of the standard-form constraint matrix.
struct SparseCol {
  std::vector<std::size_t> row;
  std::vector<double> coeff;
};

// Product-form eta: replacing basic row `r` with a column whose FTRAN image
// was `w` multiplies B by an identity-with-column-r-replaced-by-w factor.
struct Eta {
  std::size_t r;
  std::vector<double> w;
};

class RevisedSimplex {
 public:
  RevisedSimplex(const Model& model, const SimplexOptions& opt);
  Solution run();

 private:
  enum class StepResult { kPivoted, kOptimal, kUnbounded };

  void refactorize();
  Vector ftran(const Vector& v) const;
  Vector btran(const Vector& v) const;
  StepResult step(bool phase1, bool bland);
  double objective(bool phase1) const;
  std::vector<double> extract_model_solution() const;
  SolveStatus optimize(bool phase1);
  Solution finish(Solution sol, SolveStatus status);

  bool out_of_time() const {
    return own_watchdog_.expired() ||
           (ambient_watchdog_ != nullptr && ambient_watchdog_->expired());
  }

  const Model& model_;
  const SimplexOptions& opt_;

  std::size_t m_ = 0;           // rows (model constraints)
  std::size_t n_ = 0;           // structural columns (model variables)
  std::size_t num_cols_ = 0;    // structural + slack + artificial
  std::size_t first_artificial_ = 0;

  std::vector<SparseCol> cols_;
  std::vector<double> lower_, upper_;  // per column
  std::vector<double> cost_;           // phase-2 cost (minimization form)
  std::vector<double> rhs_;

  std::vector<std::size_t> basis_;  // basis_[i] = column basic in row i
  std::vector<ColState> state_;     // per column
  std::vector<double> value_;       // per column; basic entries tracked live

  LuDecomposition lu_{Matrix(0, 0)};    // of B0
  LuDecomposition lu_t_{Matrix(0, 0)};  // of B0ᵀ (BTRAN without a
                                        // transpose-solve API on lu.hpp)
  std::vector<Eta> etas_;
  std::size_t pivots_since_refactor_ = 0;

  std::size_t iterations_ = 0;

  robust::Watchdog own_watchdog_;
  const robust::Watchdog* ambient_watchdog_ = nullptr;
};

RevisedSimplex::RevisedSimplex(const Model& model, const SimplexOptions& opt)
    : model_(model),
      opt_(opt),
      own_watchdog_(robust::Budget{opt.max_wall_ms, 0}),
      ambient_watchdog_(robust::ScopedTrialDeadline::current()) {
  m_ = model.num_constraints();
  n_ = model.num_variables();

  // Structural columns carry the model's own bounds — no shifts, no splits,
  // no bound rows; extraction is x[j] = value_[j] verbatim.
  const double sense = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
  cols_.resize(n_ + m_);
  lower_.assign(n_ + m_, 0.0);
  upper_.assign(n_ + m_, 0.0);
  cost_.assign(n_ + m_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    const Variable& v = model.variable(j);
    lower_[j] = v.lower;
    upper_[j] = v.upper;
    cost_[j] = sense * v.objective;
  }
  rhs_.assign(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const Constraint& c = model.constraint(i);
    rhs_[i] = c.rhs;
    for (const Term& t : c.terms) {
      SparseCol& col = cols_[t.var];
      // Merge duplicate terms on the same row so each column stays a clean
      // (row, coeff) list.
      if (!col.row.empty() && col.row.back() == i) {
        col.coeff.back() += t.coeff;
      } else {
        col.row.push_back(i);
        col.coeff.push_back(t.coeff);
      }
    }
    // Row slack: a_i·x + s_i = rhs_i with the slack sign encoding the sense.
    const std::size_t s = n_ + i;
    cols_[s].row.push_back(i);
    cols_[s].coeff.push_back(1.0);
    switch (c.type) {
      case RowType::kLessEqual:
        lower_[s] = 0.0;
        upper_[s] = kInf;
        break;
      case RowType::kGreaterEqual:
        lower_[s] = -kInf;
        upper_[s] = 0.0;
        break;
      case RowType::kEqual:
        lower_[s] = 0.0;
        upper_[s] = 0.0;
        break;
    }
  }

  // Initial point: structurals at their nearest finite bound (0 if free),
  // then per row either the slack absorbs the residual (slack basic) or an
  // artificial does (slack pinned at its nearest bound).
  num_cols_ = n_ + m_;
  first_artificial_ = num_cols_;
  state_.assign(num_cols_, ColState::kAtLower);
  value_.assign(num_cols_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    if (std::isfinite(lower_[j])) {
      state_[j] = ColState::kAtLower;
      value_[j] = lower_[j];
    } else if (std::isfinite(upper_[j])) {
      state_[j] = ColState::kAtUpper;
      value_[j] = upper_[j];
    } else {
      state_[j] = ColState::kAtLower;  // free: parked at 0
      value_[j] = 0.0;
    }
  }
  Vector activity(m_);
  for (std::size_t j = 0; j < n_; ++j) {
    if (value_[j] == 0.0) continue;
    const SparseCol& col = cols_[j];
    for (std::size_t k = 0; k < col.row.size(); ++k)
      activity[col.row[k]] += col.coeff[k] * value_[j];
  }
  basis_.assign(m_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t s = n_ + i;
    const double resid = rhs_[i] - activity[i];
    if (resid >= lower_[s] && resid <= upper_[s]) {
      basis_[i] = s;
      state_[s] = ColState::kBasic;
      value_[s] = resid;
      continue;
    }
    const double pinned = std::clamp(resid, lower_[s], upper_[s]);
    state_[s] = pinned == lower_[s] ? ColState::kAtLower : ColState::kAtUpper;
    value_[s] = pinned;
    const double v = resid - pinned;
    // Artificial with coefficient sign(v) keeps its own value ≥ 0.
    const std::size_t a = num_cols_++;
    cols_.push_back({{i}, {v < 0.0 ? -1.0 : 1.0}});
    lower_.push_back(0.0);
    upper_.push_back(kInf);
    cost_.push_back(0.0);
    state_.push_back(ColState::kBasic);
    value_.push_back(std::abs(v));
    basis_[i] = a;
  }

  refactorize();
}

void RevisedSimplex::refactorize() {
  Matrix b(m_, m_);
  for (std::size_t i = 0; i < m_; ++i) {
    const SparseCol& col = cols_[basis_[i]];
    for (std::size_t k = 0; k < col.row.size(); ++k)
      b(col.row[k], i) = col.coeff[k];
  }
  lu_ = LuDecomposition(b);
  lu_t_ = LuDecomposition(b.transposed());
  etas_.clear();
  pivots_since_refactor_ = 0;
  obs::count("lp.revised.refactorizations");

  // Recompute basic values from scratch: x_B = B⁻¹(rhs − N x_N). This is the
  // drift-control step that lets the eta file run kRefactorStride pivots.
  if (!lu_.ok()) return;  // singular basis: optimize() will stop on it
  Vector r(m_);
  for (std::size_t i = 0; i < m_; ++i) r[i] = rhs_[i];
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (state_[j] == ColState::kBasic || value_[j] == 0.0) continue;
    const SparseCol& col = cols_[j];
    for (std::size_t k = 0; k < col.row.size(); ++k)
      r[col.row[k]] -= col.coeff[k] * value_[j];
  }
  const Vector xb = lu_.solve(r);
  for (std::size_t i = 0; i < m_; ++i) value_[basis_[i]] = xb[i];
}

Vector RevisedSimplex::ftran(const Vector& v) const {
  Vector x = lu_.solve(v);
  for (const Eta& e : etas_) {
    const double xr = x[e.r] / e.w[e.r];
    for (std::size_t i = 0; i < m_; ++i) x[i] -= e.w[i] * xr;
    x[e.r] = xr;
  }
  return x;
}

Vector RevisedSimplex::btran(const Vector& v) const {
  Vector z = v;
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& e = *it;
    double dot = 0.0;
    for (std::size_t i = 0; i < m_; ++i) dot += z[i] * e.w[i];
    z[e.r] = (z[e.r] - (dot - z[e.r] * e.w[e.r])) / e.w[e.r];
  }
  return lu_t_.solve(z);
}

double RevisedSimplex::objective(bool phase1) const {
  double obj = 0.0;
  if (phase1) {
    for (std::size_t j = first_artificial_; j < num_cols_; ++j)
      obj += value_[j];
  } else {
    for (std::size_t j = 0; j < n_; ++j) obj += cost_[j] * value_[j];
  }
  return obj;
}

RevisedSimplex::StepResult RevisedSimplex::step(bool phase1, bool bland) {
  // Pricing: y = B⁻ᵀ c_B, then reduced costs on eligible nonbasic columns.
  Vector cb(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t j = basis_[i];
    cb[i] = phase1 ? (j >= first_artificial_ ? 1.0 : 0.0) : cost_[j];
  }
  const Vector y = btran(cb);

  std::size_t enter = num_cols_;
  double enter_dir = 0.0;
  double best = opt_.cost_tol;
  for (std::size_t j = 0; j < num_cols_; ++j) {
    if (state_[j] == ColState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed: can never move
    if (phase1 && j >= first_artificial_) continue;
    const double cj = phase1 ? (j >= first_artificial_ ? 1.0 : 0.0)
                             : cost_[j];
    const SparseCol& col = cols_[j];
    double ya = 0.0;
    for (std::size_t k = 0; k < col.row.size(); ++k)
      ya += y[col.row[k]] * col.coeff[k];
    const double d = cj - ya;
    // Free columns are parked kAtLower at 0 and may move either way.
    const bool is_free = !std::isfinite(lower_[j]) && !std::isfinite(upper_[j]);
    double dir = 0.0;
    if (state_[j] == ColState::kAtLower && d < -opt_.cost_tol) dir = 1.0;
    else if (state_[j] == ColState::kAtUpper && d > opt_.cost_tol) dir = -1.0;
    else if (is_free && d > opt_.cost_tol) dir = -1.0;
    if (dir == 0.0) continue;
    if (bland) {
      enter = j;
      enter_dir = dir;
      break;
    }
    if (std::abs(d) > best) {
      best = std::abs(d);
      enter = j;
      enter_dir = dir;
    }
  }
  if (enter == num_cols_) return StepResult::kOptimal;

  // FTRAN the entering column; basic values move at −dir·w per unit step.
  Vector aq(m_);
  for (std::size_t k = 0; k < cols_[enter].row.size(); ++k)
    aq[cols_[enter].row[k]] = cols_[enter].coeff[k];
  const Vector w = ftran(aq);

  // Ratio test over (a) the entering column's own range, (b) each basic
  // column hitting a finite bound. Bland tie-break on the leaving column
  // index, mirroring the tableau.
  double t_max = kInf;
  if (std::isfinite(lower_[enter]) && std::isfinite(upper_[enter]))
    t_max = upper_[enter] - lower_[enter];
  std::size_t leave = m_;        // m_ = bound flip / none
  double leave_bound = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    const double delta = -enter_dir * w[i];
    const std::size_t bj = basis_[i];
    double limit = kInf;
    double bound = 0.0;
    if (delta < -opt_.pivot_tol && std::isfinite(lower_[bj])) {
      limit = (value_[bj] - lower_[bj]) / -delta;
      bound = lower_[bj];
    } else if (delta > opt_.pivot_tol && std::isfinite(upper_[bj])) {
      limit = (upper_[bj] - value_[bj]) / delta;
      bound = upper_[bj];
    }
    if (limit == kInf) continue;
    if (limit < 0.0) limit = 0.0;  // drift: take the degenerate step
    if (limit < t_max - opt_.pivot_tol ||
        (limit < t_max + opt_.pivot_tol && leave != m_ &&
         bj < basis_[leave])) {
      t_max = limit;
      leave = i;
      leave_bound = bound;
    }
  }
  if (t_max == kInf) return StepResult::kUnbounded;
  if (t_max <= opt_.pivot_tol) obs::count("lp.revised.degenerate_pivots");

  // Apply the step to the basic values and the entering column.
  for (std::size_t i = 0; i < m_; ++i)
    value_[basis_[i]] -= enter_dir * w[i] * t_max;
  value_[enter] += enter_dir * t_max;
  ++iterations_;

  if (leave == m_) {
    // Blocked by the entering column's opposite bound: a pure bound flip.
    state_[enter] = enter_dir > 0.0 ? ColState::kAtUpper : ColState::kAtLower;
    value_[enter] = enter_dir > 0.0 ? upper_[enter] : lower_[enter];
    obs::count("lp.revised.bound_flips");
    return StepResult::kPivoted;
  }

  const std::size_t out = basis_[leave];
  state_[out] = leave_bound == lower_[out] ? ColState::kAtLower
                                           : ColState::kAtUpper;
  value_[out] = leave_bound;  // snap exactly onto the bound it hit
  basis_[leave] = enter;
  state_[enter] = ColState::kBasic;
  etas_.push_back({leave, std::vector<double>(w.begin(), w.end())});
  if (++pivots_since_refactor_ >= kRefactorStride) refactorize();
  return StepResult::kPivoted;
}

SolveStatus RevisedSimplex::optimize(bool phase1) {
  std::size_t stall = 0;
  double last_obj = objective(phase1);
  bool bland = false;
  while (iterations_ < opt_.max_iterations) {
    if (iterations_ % kWatchdogStride == 0 && out_of_time())
      return SolveStatus::kTimeLimit;
    if (!lu_.ok()) {
      // Singular refactorized basis — numerically wedged. Surface it as an
      // iteration limit with the certificate rather than looping.
      obs::count("lp.revised.singular_basis");
      return SolveStatus::kIterationLimit;
    }
    switch (step(phase1, bland)) {
      case StepResult::kOptimal:
        return SolveStatus::kOptimal;
      case StepResult::kUnbounded:
        return SolveStatus::kUnbounded;
      case StepResult::kPivoted:
        break;
    }
    const double obj = objective(phase1);
    if (obj < last_obj - 1e-12) {
      last_obj = obj;
      stall = 0;
    } else if (++stall > kStallLimit) {
      if (!bland) obs::count("lp.revised.bland_switches");
      bland = true;
    }
  }
  return SolveStatus::kIterationLimit;
}

std::vector<double> RevisedSimplex::extract_model_solution() const {
  std::vector<double> x(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) x[j] = value_[j];
  return x;
}

Solution RevisedSimplex::finish(Solution sol, SolveStatus status) {
  sol.status = status;
  sol.iterations = iterations_;
  sol.basis = basis_;
  // Same certificate shape as the tableau: x on optimal and on budget
  // exhaustion (the basic point where the solve stopped), empty otherwise.
  if (status == SolveStatus::kOptimal || status == SolveStatus::kTimeLimit ||
      status == SolveStatus::kIterationLimit) {
    sol.x = extract_model_solution();
    sol.objective = model_.objective_value(sol.x);
  }
  return sol;
}

Solution RevisedSimplex::run() {
  Solution sol;

  if (first_artificial_ < num_cols_) {
    const SolveStatus s1 = optimize(/*phase1=*/true);
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kTimeLimit)
      return finish(sol, s1);
    if (objective(/*phase1=*/true) > opt_.feas_tol) {
      sol.status = SolveStatus::kInfeasible;
      sol.iterations = iterations_;
      sol.basis = basis_;
      return sol;
    }
    // Pin every artificial to zero. Basic artificials may remain basic at
    // level 0 (redundant rows) exactly like the tableau's harmless leftover;
    // with lower == upper == 0 they are never eligible to move again.
    for (std::size_t j = first_artificial_; j < num_cols_; ++j) {
      upper_[j] = 0.0;
      if (std::abs(value_[j]) <= opt_.feas_tol) value_[j] = 0.0;
      if (state_[j] != ColState::kBasic) value_[j] = 0.0;
    }
    obs::count("lp.revised.phase_transitions");
  }
  obs::count("lp.revised.phase1_iterations", iterations_);
  const std::size_t phase1_iters = iterations_;

  const SolveStatus s2 = optimize(/*phase1=*/false);
  obs::count("lp.revised.phase2_iterations", iterations_ - phase1_iters);
  return finish(sol, s2);
}

}  // namespace

Solution solve_revised(const Model& model, const SimplexOptions& options) {
  obs::ScopedTimer timer("lp.revised.solve_us");
  obs::ScopedSpan span("lp.revised.solve");

  Solution sol;
  if (model.num_constraints() == 0) {
    // No rows → the basis is empty; each variable optimizes independently
    // over its own box.
    const double sense = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
    sol.x.assign(model.num_variables(), 0.0);
    sol.status = SolveStatus::kOptimal;
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      const double c = sense * v.objective;
      double x = 0.0;
      if (c > 0.0) x = v.lower;        // minimize: push down
      else if (c < 0.0) x = v.upper;   // push up
      else x = std::isfinite(v.lower) ? v.lower
             : std::isfinite(v.upper) ? v.upper : 0.0;
      if (!std::isfinite(x)) {
        sol.status = SolveStatus::kUnbounded;
        x = 0.0;
      }
      sol.x[j] = x;
    }
    if (sol.status == SolveStatus::kOptimal)
      sol.objective = model.objective_value(sol.x);
    else
      sol.x.clear();
  } else {
    RevisedSimplex solver(model, options);
    sol = solver.run();
  }

  obs::count("lp.revised.solves");
  obs::count("lp.revised.pivots", sol.iterations);
  obs::count(std::string("lp.revised.status.") + to_string(sol.status));
  span.attr("status", to_string(sol.status));
  span.attr("iterations", static_cast<std::uint64_t>(sol.iterations));
  return sol;
}

}  // namespace scapegoat::lp
