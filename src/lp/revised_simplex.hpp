// Bounded-variable revised simplex with a factorized basis.
//
// The tableau solver (simplex.hpp) carries the whole m×(n+slacks+artificials)
// array through every pivot — O(m·n) work per pivot and a dense bound row per
// box-constrained variable, which is what makes the ≥5k-link attack LPs
// crawl. The revised method keeps only:
//   * the constraint matrix column-wise sparse (never modified),
//   * an LU factorization of the m×m basis, refreshed every
//     kRefactorStride basis changes, with product-form eta updates between
//     refactorizations (FTRAN: LU solve then etas forward; BTRAN: etas in
//     reverse then the transposed LU),
//   * upper/lower bounds handled natively — a box constraint is a bound
//     flip, not a tableau row.
// Per-pivot cost is O(m² + nnz) instead of O(m·n_total), and m counts only
// the model's constraints, not its bounded variables.
//
// Contract: identical to lp::solve — same Model in, same Solution /
// SolveStatus out, same basis certificate on iteration/time limits (basis[i]
// = column basic in row i, in this solver's column numbering: structurals
// 0..n-1, then one slack per row, then artificials). Degeneracy handling
// mirrors the tableau: Dantzig until the objective stalls, then Bland.
// Differential agreement with the tableau is enforced by the
// lp_revised_simplex_matches_tableau property.

#pragma once

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace scapegoat::lp {

// Solves `model` with the revised simplex. Drop-in replacement for the
// tableau path of lp::solve; normally reached through lp::solve's backend
// routing rather than called directly.
Solution solve_revised(const Model& model, const SimplexOptions& options = {});

}  // namespace scapegoat::lp
