#include "lp/simplex.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "lp/revised_simplex.hpp"
#include "obs/obs.hpp"
#include "robust/watchdog.hpp"

namespace scapegoat::lp {
namespace {

// Pivots between watchdog polls: frequent enough that an expired budget is
// noticed within microseconds of work, rare enough that the steady_clock
// read never shows up in profiles.
constexpr std::size_t kWatchdogStride = 64;

// How a model variable maps into standard-form columns.
struct VarMap {
  // x = shift + sign * col_value  (single column), or
  // x = col_plus - col_minus     (free variable split).
  std::size_t col = 0;
  std::size_t col_minus = 0;  // only used when `split`
  double shift = 0.0;
  double sign = 1.0;
  bool split = false;
};

// Dense standard-form tableau: min cᵀu s.t. T u = rhs, u ≥ 0.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& opt);

  Solution run();

 private:
  enum class StepResult { kPivoted, kOptimal, kUnbounded };

  StepResult step(bool bland);
  void pivot(std::size_t row, std::size_t col);
  // Rebuilds the reduced-cost row and objective from `costs`.
  void install_costs(const std::vector<double>& costs);
  // Runs pivots until optimal/unbounded/limit; returns final status w.r.t.
  // the currently installed costs.
  SolveStatus optimize();
  bool drive_out_artificials();
  std::vector<double> extract_model_solution() const;

  const Model& model_;
  const SimplexOptions& opt_;

  std::size_t num_cols_ = 0;       // structural + slack columns
  std::size_t first_artificial_ = 0;
  std::size_t total_cols_ = 0;     // including artificials
  std::vector<VarMap> var_map_;

  std::vector<std::vector<double>> rows_;  // m rows of length total_cols_
  std::vector<double> rhs_;                // length m, kept ≥ 0 by invariant
  std::vector<std::size_t> basis_;         // basis_[i] = column basic in row i
  std::vector<double> phase2_costs_;       // length total_cols_ (0 on artificials)

  std::vector<double> d_;   // reduced costs
  double obj_ = 0.0;        // current objective (minimization form)
  std::size_t iterations_ = 0;
  bool allow_artificial_entering_ = true;

  // Cooperative budgets: the solve's own wall watchdog plus the calling
  // trial's ambient deadline, polled every kWatchdogStride pivots.
  robust::Watchdog own_watchdog_;
  const robust::Watchdog* ambient_watchdog_ = nullptr;

  bool out_of_time() const {
    return own_watchdog_.expired() ||
           (ambient_watchdog_ != nullptr && ambient_watchdog_->expired());
  }
};

Tableau::Tableau(const Model& model, const SimplexOptions& opt)
    : model_(model),
      opt_(opt),
      own_watchdog_(robust::Budget{opt.max_wall_ms, 0}),
      ambient_watchdog_(robust::ScopedTrialDeadline::current()) {
  const std::size_t n = model.num_variables();

  // 1. Assign structural columns (with shifts / splits for bounds) and
  //    collect upper-bound rows.
  var_map_.resize(n);
  std::size_t col = 0;
  struct BoundRow {
    std::size_t var;
    double range;  // upper - lower
  };
  std::vector<BoundRow> bound_rows;
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    VarMap& m = var_map_[j];
    const bool lo_fin = std::isfinite(v.lower);
    const bool hi_fin = std::isfinite(v.upper);
    if (lo_fin) {
      m.col = col++;
      m.shift = v.lower;
      m.sign = 1.0;
      if (hi_fin) bound_rows.push_back({j, v.upper - v.lower});
    } else if (hi_fin) {
      // x = upper - u, u >= 0.
      m.col = col++;
      m.shift = v.upper;
      m.sign = -1.0;
    } else {
      m.split = true;
      m.col = col++;
      m.col_minus = col++;
    }
  }
  const std::size_t structural_cols = col;

  // 2. Build raw rows (structural part + rhs) from constraints and bound rows.
  struct RawRow {
    std::vector<double> coeffs;  // structural_cols wide
    RowType type;
    double rhs;
  };
  std::vector<RawRow> raw;
  raw.reserve(model.num_constraints() + bound_rows.size());
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const Constraint& c = model.constraint(i);
    RawRow r{std::vector<double>(structural_cols, 0.0), c.type, c.rhs};
    for (const Term& t : c.terms) {
      const VarMap& m = var_map_[t.var];
      if (m.split) {
        r.coeffs[m.col] += t.coeff;
        r.coeffs[m.col_minus] -= t.coeff;
      } else {
        r.coeffs[m.col] += t.coeff * m.sign;
        r.rhs -= t.coeff * m.shift;
      }
    }
    raw.push_back(std::move(r));
  }
  for (const BoundRow& b : bound_rows) {
    RawRow r{std::vector<double>(structural_cols, 0.0), RowType::kLessEqual,
             b.range};
    r.coeffs[var_map_[b.var].col] = 1.0;
    raw.push_back(std::move(r));
  }

  // 3. Normalize rhs ≥ 0, count slack and artificial columns.
  std::size_t num_slacks = 0, num_artificials = 0;
  for (RawRow& r : raw) {
    if (r.rhs < 0.0) {
      for (double& a : r.coeffs) a = -a;
      r.rhs = -r.rhs;
      if (r.type == RowType::kLessEqual)
        r.type = RowType::kGreaterEqual;
      else if (r.type == RowType::kGreaterEqual)
        r.type = RowType::kLessEqual;
    }
    switch (r.type) {
      case RowType::kLessEqual:
        ++num_slacks;  // slack enters the basis directly
        break;
      case RowType::kGreaterEqual:
        ++num_slacks;  // surplus
        ++num_artificials;
        break;
      case RowType::kEqual:
        ++num_artificials;
        break;
    }
  }

  num_cols_ = structural_cols + num_slacks;
  first_artificial_ = num_cols_;
  total_cols_ = num_cols_ + num_artificials;

  // 4. Assemble the dense tableau with identity basis.
  const std::size_t m = raw.size();
  rows_.assign(m, std::vector<double>(total_cols_, 0.0));
  rhs_.assign(m, 0.0);
  basis_.assign(m, 0);
  phase2_costs_.assign(total_cols_, 0.0);

  // Phase-2 costs: minimization form of the model objective on structural
  // columns. (Shifts contribute a constant handled at extraction time; we
  // report the objective by re-evaluating the model at the solution.)
  const double sense = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    const VarMap& mp = var_map_[j];
    if (mp.split) {
      phase2_costs_[mp.col] += sense * v.objective;
      phase2_costs_[mp.col_minus] -= sense * v.objective;
    } else {
      phase2_costs_[mp.col] += sense * v.objective * mp.sign;
    }
  }

  std::size_t slack_col = structural_cols;
  std::size_t art_col = first_artificial_;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t c = 0; c < structural_cols; ++c)
      rows_[i][c] = raw[i].coeffs[c];
    rhs_[i] = raw[i].rhs;
    switch (raw[i].type) {
      case RowType::kLessEqual:
        rows_[i][slack_col] = 1.0;
        basis_[i] = slack_col++;
        break;
      case RowType::kGreaterEqual:
        rows_[i][slack_col] = -1.0;
        ++slack_col;
        rows_[i][art_col] = 1.0;
        basis_[i] = art_col++;
        break;
      case RowType::kEqual:
        rows_[i][art_col] = 1.0;
        basis_[i] = art_col++;
        break;
    }
  }
  assert(slack_col == num_cols_);
  assert(art_col == total_cols_);
}

void Tableau::install_costs(const std::vector<double>& costs) {
  d_ = costs;
  obj_ = 0.0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double cb = costs[basis_[i]];
    if (cb == 0.0) continue;
    obj_ += cb * rhs_[i];
    for (std::size_t j = 0; j < total_cols_; ++j)
      d_[j] -= cb * rows_[i][j];
  }
}

void Tableau::pivot(std::size_t row, std::size_t col) {
  std::vector<double>& pr = rows_[row];
  const double piv = pr[col];
  assert(std::abs(piv) > 0.0);
  const double inv = 1.0 / piv;
  for (double& a : pr) a *= inv;
  rhs_[row] *= inv;
  pr[col] = 1.0;  // kill roundoff on the pivot itself

  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i == row) continue;
    const double f = rows_[i][col];
    if (f == 0.0) continue;
    std::vector<double>& ri = rows_[i];
    for (std::size_t j = 0; j < total_cols_; ++j) ri[j] -= f * pr[j];
    ri[col] = 0.0;
    rhs_[i] -= f * rhs_[row];
    if (rhs_[i] < 0.0 && rhs_[i] > -opt_.pivot_tol) rhs_[i] = 0.0;
  }
  const double fd = d_[col];
  if (fd != 0.0) {
    for (std::size_t j = 0; j < total_cols_; ++j) d_[j] -= fd * pr[j];
    d_[col] = 0.0;
    // Δobj = reduced cost × step length (rhs_[row] is already the
    // normalized ratio θ at this point).
    obj_ += fd * rhs_[row];
  }
  basis_[row] = col;
  ++iterations_;
}

Tableau::StepResult Tableau::step(bool bland) {
  // Entering column: negative reduced cost.
  std::size_t enter = total_cols_;
  const std::size_t limit =
      allow_artificial_entering_ ? total_cols_ : first_artificial_;
  if (bland) {
    for (std::size_t j = 0; j < limit; ++j) {
      if (d_[j] < -opt_.cost_tol) {
        enter = j;
        break;
      }
    }
  } else {
    double best = -opt_.cost_tol;
    for (std::size_t j = 0; j < limit; ++j) {
      if (d_[j] < best) {
        best = d_[j];
        enter = j;
      }
    }
  }
  if (enter == total_cols_) return StepResult::kOptimal;

  // Ratio test; Bland tie-break on the leaving basis index.
  std::size_t leave = rows_.size();
  double best_ratio = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double a = rows_[i][enter];
    if (a <= opt_.pivot_tol) continue;
    const double ratio = rhs_[i] / a;
    if (ratio < best_ratio - opt_.pivot_tol ||
        (ratio < best_ratio + opt_.pivot_tol &&
         (leave == rows_.size() || basis_[i] < basis_[leave]))) {
      best_ratio = ratio;
      leave = i;
    }
  }
  if (leave == rows_.size()) return StepResult::kUnbounded;
  pivot(leave, enter);
  return StepResult::kPivoted;
}

SolveStatus Tableau::optimize() {
  // Dantzig until the objective stalls, then Bland (guaranteed finite).
  std::size_t stall = 0;
  double last_obj = obj_;
  bool bland = false;
  while (iterations_ < opt_.max_iterations) {
    if (iterations_ % kWatchdogStride == 0 && out_of_time())
      return SolveStatus::kTimeLimit;
    switch (step(bland)) {
      case StepResult::kOptimal:
        return SolveStatus::kOptimal;
      case StepResult::kUnbounded:
        return SolveStatus::kUnbounded;
      case StepResult::kPivoted:
        break;
    }
    if (obj_ < last_obj - 1e-12) {
      last_obj = obj_;
      stall = 0;
    } else if (++stall > 200) {
      if (!bland) obs::count("lp.simplex.bland_switches");
      bland = true;
    }
  }
  return SolveStatus::kIterationLimit;
}

bool Tableau::drive_out_artificials() {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (basis_[i] < first_artificial_) continue;
    // Basic artificial at (numerically) zero level: pivot in any usable
    // non-artificial column. If none exists the row is redundant; zero it.
    std::size_t col = total_cols_;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (std::abs(rows_[i][j]) > 1e-7) {
        col = j;
        break;
      }
    }
    if (col != total_cols_) {
      pivot(i, col);
    } else {
      for (double& a : rows_[i]) a = 0.0;
      rhs_[i] = 0.0;
      rows_[i][basis_[i]] = 1.0;  // keep the (harmless) artificial basic
    }
  }
  return true;
}

std::vector<double> Tableau::extract_model_solution() const {
  std::vector<double> u(total_cols_, 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) u[basis_[i]] = rhs_[i];

  std::vector<double> x(model_.num_variables(), 0.0);
  for (std::size_t j = 0; j < model_.num_variables(); ++j) {
    const VarMap& m = var_map_[j];
    x[j] = m.split ? u[m.col] - u[m.col_minus]
                   : m.shift + m.sign * u[m.col];
  }
  return x;
}

Solution Tableau::run() {
  Solution sol;

  // Phase 1: minimize the sum of artificials.
  if (first_artificial_ < total_cols_) {
    std::vector<double> phase1(total_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < total_cols_; ++j)
      phase1[j] = 1.0;
    install_costs(phase1);
    const SolveStatus s1 = optimize();
    sol.iterations = iterations_;
    if (s1 == SolveStatus::kIterationLimit || s1 == SolveStatus::kTimeLimit) {
      sol.status = s1;
      // Certificate: the basis and (not yet feasible) basic point where the
      // pivot or wall budget ran out, so the caller gets state, not a void.
      sol.basis = basis_;
      sol.x = extract_model_solution();
      sol.objective = model_.objective_value(sol.x);
      return sol;
    }
    // Phase-1 LP is bounded below by 0, so kUnbounded cannot happen.
    if (obj_ > opt_.feas_tol) {
      sol.status = SolveStatus::kInfeasible;
      sol.basis = basis_;
      return sol;
    }
    drive_out_artificials();
    obs::count("lp.simplex.phase_transitions");
  }
  obs::count("lp.simplex.phase1_iterations", iterations_);
  const std::size_t phase1_iters = iterations_;

  // Phase 2.
  allow_artificial_entering_ = false;
  install_costs(phase2_costs_);
  const SolveStatus s2 = optimize();
  obs::count("lp.simplex.phase2_iterations", iterations_ - phase1_iters);
  sol.iterations = iterations_;
  sol.status = s2;
  sol.basis = basis_;
  if (s2 != SolveStatus::kOptimal) {
    if (s2 == SolveStatus::kIterationLimit || s2 == SolveStatus::kTimeLimit) {
      // Same certificate as phase 1, but the point is primal feasible here.
      sol.x = extract_model_solution();
      sol.objective = model_.objective_value(sol.x);
    }
    return sol;
  }

  sol.x = extract_model_solution();
  sol.objective = model_.objective_value(sol.x);
  return sol;
}

}  // namespace

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration_limit";
    case SolveStatus::kTimeLimit:
      return "time_limit";
  }
  return "unknown";
}

std::string to_string(LpBackend backend) {
  switch (backend) {
    case LpBackend::kAuto:
      return "auto";
    case LpBackend::kTableau:
      return "tableau";
    case LpBackend::kRevised:
      return "revised";
  }
  return "unknown";
}

std::optional<LpBackend> lp_backend_from_string(std::string_view s) {
  for (LpBackend b :
       {LpBackend::kAuto, LpBackend::kTableau, LpBackend::kRevised}) {
    if (to_string(b) == s) return b;
  }
  return std::nullopt;
}

namespace {

// Estimate of the dense tableau's footprint in cells: rows = constraints
// plus one bound row per doubly-bounded variable; columns = structurals plus
// up to a slack and an artificial per row.
std::size_t estimated_tableau_cells(const Model& model) {
  std::size_t bound_rows = 0;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (std::isfinite(v.lower) && std::isfinite(v.upper)) ++bound_rows;
  }
  const std::size_t rows = model.num_constraints() + bound_rows;
  const std::size_t cols = model.num_variables() + 2 * rows;
  return rows * cols;
}

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options) {
  if (options.backend == LpBackend::kRevised ||
      (options.backend == LpBackend::kAuto &&
       estimated_tableau_cells(model) >= kRevisedCellThreshold)) {
    return solve_revised(model, options);
  }
  obs::ScopedTimer timer("lp.simplex.solve_us");
  obs::ScopedSpan span("lp.simplex.solve");
  Tableau tableau(model, options);
  Solution sol = tableau.run();
  obs::count("lp.simplex.solves");
  obs::count("lp.simplex.pivots", sol.iterations);
  obs::count("lp.simplex.iterations", sol.iterations);
  switch (sol.status) {
    case SolveStatus::kOptimal:
      obs::count("lp.simplex.status.optimal");
      break;
    case SolveStatus::kInfeasible:
      obs::count("lp.simplex.status.infeasible");
      break;
    case SolveStatus::kUnbounded:
      obs::count("lp.simplex.status.unbounded");
      break;
    case SolveStatus::kIterationLimit:
      obs::count("lp.simplex.status.iteration_limit");
      break;
    case SolveStatus::kTimeLimit:
      obs::count("lp.simplex.status.time_limit");
      break;
  }
  span.attr("status", to_string(sol.status));
  span.attr("iterations", static_cast<std::uint64_t>(sol.iterations));
  return sol;
}

}  // namespace scapegoat::lp
