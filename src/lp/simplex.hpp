// Two-phase primal simplex over a dense tableau.
//
// Problem sizes in this library (attack LPs on ~100-node topologies) are a
// few hundred variables by a few hundred rows, which a dense tableau handles
// comfortably and — more importantly for a reproduction — transparently:
// every pivot is observable and the phase-1 infeasibility certificate is the
// exact quantity Theorems 1-2 reason about ("does a feasible manipulation
// vector exist?").
//
// Degeneracy is handled by switching from Dantzig to Bland's rule after a
// stall, which guarantees termination.
//
// lp::solve is the routing entry point: SimplexOptions::backend picks the
// dense tableau here or the factorized revised simplex
// (revised_simplex.hpp); kAuto switches to revised once the estimated
// tableau would exceed kRevisedCellThreshold cells.

#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "lp/model.hpp"

namespace scapegoat::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  // Cooperative wall-clock budget expired (options.max_wall_ms or the
  // ambient robust::ScopedTrialDeadline). Like kIterationLimit, the
  // Solution carries the exit basis and basic point as a certificate.
  kTimeLimit,
};

std::string to_string(SolveStatus status);

inline std::ostream& operator<<(std::ostream& os, SolveStatus status) {
  return os << to_string(status);
}

// Which solver lp::solve dispatches to. kAuto estimates the dense tableau
// footprint (rows including per-variable bound rows × columns including
// slacks/artificials) and switches to the revised simplex
// (revised_simplex.hpp) once it crosses kRevisedCellThreshold — small LPs
// keep the transparent tableau, large attack LPs get the factorized basis.
enum class LpBackend {
  kAuto,
  kTableau,
  kRevised,
};

std::string to_string(LpBackend backend);
std::optional<LpBackend> lp_backend_from_string(std::string_view s);

inline std::ostream& operator<<(std::ostream& os, LpBackend backend) {
  return os << to_string(backend);
}

// kAuto switchover point, in estimated tableau cells.
inline constexpr std::size_t kRevisedCellThreshold = std::size_t{1} << 18;

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;        // in the model's original sense
  std::vector<double> x;         // values of the model's variables
  std::size_t iterations = 0;    // total pivots over both phases
  // Tableau basis at exit (basis[i] = column basic in row i) — on
  // kIterationLimit this is the certificate of where the solver stopped:
  // together with x (the basic point, feasible only if phase 1 finished) a
  // caller can audit or warm-start instead of facing an empty result.
  std::vector<std::size_t> basis;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

struct SimplexOptions {
  std::size_t max_iterations = 50'000;
  double pivot_tol = 1e-9;     // entries below this can't be pivots
  double cost_tol = 1e-7;      // reduced-cost optimality tolerance
  double feas_tol = 1e-6;      // phase-1 objective below this ⇒ feasible
  // Per-solve wall-clock budget in ms; 0 = unlimited. Checked every
  // kWatchdogStride pivots alongside any ambient trial deadline
  // (robust::ScopedTrialDeadline), so a hung solve returns kTimeLimit with
  // its basis certificate instead of stalling a whole sweep. Wall budgets
  // are load-dependent: a solve that *hits* one is outside the bitwise
  // determinism contract (DESIGN.md §10).
  double max_wall_ms = 0.0;
  // Solver selection (see LpBackend above). Callers that must pin one
  // backend — differential tests, benchmarks — set kTableau/kRevised.
  LpBackend backend = LpBackend::kAuto;
};

Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace scapegoat::lp
