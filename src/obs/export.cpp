#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"  // json_escape

namespace scapegoat::obs {

namespace {

std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void pad_to(std::string& line, std::size_t column) {
  if (line.size() < column) line.append(column - line.size(), ' ');
}

}  // namespace

std::string to_table(const MetricsSnapshot& snapshot) {
  std::string out;
  std::size_t name_width = 4;
  for (const auto& c : snapshot.counters)
    name_width = std::max(name_width, c.name.size());
  for (const auto& g : snapshot.gauges)
    name_width = std::max(name_width, g.name.size());
  for (const auto& h : snapshot.histograms)
    name_width = std::max(name_width, h.name.size());
  const std::size_t col = name_width + 2;

  if (!snapshot.counters.empty()) {
    out += "counters\n";
    for (const auto& c : snapshot.counters) {
      std::string line = "  " + c.name;
      pad_to(line, col + 2);
      line += std::to_string(c.value);
      out += line + "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges (value / max)\n";
    for (const auto& g : snapshot.gauges) {
      std::string line = "  " + g.name;
      pad_to(line, col + 2);
      line += std::to_string(g.value) + " / " + std::to_string(g.max);
      out += line + "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms (count  mean  p50  p90  p99  max)\n";
    for (const auto& h : snapshot.histograms) {
      std::string line = "  " + h.name;
      pad_to(line, col + 2);
      line += std::to_string(h.count) + "  " + fmt(h.mean()) + "  " +
              fmt(h.quantile(0.5)) + "  " + fmt(h.quantile(0.9)) + "  " +
              fmt(h.quantile(0.99)) + "  " + fmt(h.max);
      out += line + "\n";
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(g.name) + "\":{\"value\":" +
           std::to_string(g.value) + ",\"max\":" + std::to_string(g.max) +
           '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(h.name) +
           "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + fmt(h.sum, 3) + ",\"mean\":" + fmt(h.mean(), 3) +
           ",\"p50\":" + fmt(h.quantile(0.5), 3) +
           ",\"p90\":" + fmt(h.quantile(0.9), 3) +
           ",\"p99\":" + fmt(h.quantile(0.99), 3) +
           ",\"max\":" + fmt(h.max, 3) + '}';
  }
  out += "}}";
  return out;
}

std::string to_csv(const MetricsSnapshot& snapshot) {
  std::string out = "type,name,count,value,mean,p50,p90,p99,max\n";
  for (const auto& c : snapshot.counters) {
    out += "counter," + c.name + ",," + std::to_string(c.value) + ",,,,,\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "gauge," + g.name + ",," + std::to_string(g.value) + ",,,,," +
           std::to_string(g.max) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "histogram," + h.name + ',' + std::to_string(h.count) + ",," +
           fmt(h.mean(), 3) + ',' + fmt(h.quantile(0.5), 3) + ',' +
           fmt(h.quantile(0.9), 3) + ',' + fmt(h.quantile(0.99), 3) + ',' +
           fmt(h.max, 3) + "\n";
  }
  return out;
}

}  // namespace scapegoat::obs
