// Snapshot exporters: pretty table for terminals, JSON for tooling, CSV for
// spreadsheets. All three render the same MetricsSnapshot, so `scapegoat_cli
// metrics --json` and the bench_observability report stay consistent with
// the human-readable table.

#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace scapegoat::obs {

// Column-aligned text: a counters block, a gauges block and a histograms
// block (count / mean / p50 / p90 / p99 / max per row).
std::string to_table(const MetricsSnapshot& snapshot);

// {"counters":{name:value,...},"gauges":{name:{"value":..,"max":..}},
//  "histograms":{name:{"count":..,"sum":..,"mean":..,"p50":..,...}}}
std::string to_json(const MetricsSnapshot& snapshot);

// One row per metric: type,name,count,value,mean,p50,p90,p99,max.
std::string to_csv(const MetricsSnapshot& snapshot);

}  // namespace scapegoat::obs
