#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scapegoat::obs {

int this_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::size_t Histogram::bucket_of(double value) {
  if (value < 1.0) return 0;
  const int e = std::ilogb(value);  // floor(log2(value)) for finite v ≥ 1
  const std::size_t b = static_cast<std::size_t>(e) + 1;
  return std::min(b, kBuckets - 1);
}

double Histogram::bucket_upper_edge(std::size_t b) {
  if (b + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(b));  // 2^b
}

double HistogramSample::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target && buckets[b] > 0) {
      return std::min(Histogram::bucket_upper_edge(b), max);
    }
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const CounterSample& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    out.counters.push_back({name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.gauges.push_back({name, g->value(), g->max_value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.buckets = h->buckets();
    out.histograms.push_back(std::move(s));
  }
  return out;  // std::map iteration order is already sorted by name
}

}  // namespace scapegoat::obs
