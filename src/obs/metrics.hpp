// Metrics primitives: monotonic counters, gauges and fixed-bucket latency
// histograms behind the observability layer (see DESIGN.md §9).
//
// Write paths are lock-free. Counters shard their value across
// cache-line-padded atomic cells indexed by a dense per-thread id, so
// concurrent `add` calls from pool workers never contend on one line;
// histograms keep one relaxed atomic per power-of-two bucket. Reads fold the
// shards in fixed shard order — and every stored quantity is an integer
// (histogram sums are kept in 1/256-unit fixed point) — so a snapshot of
// counts accumulated by a deterministic computation is bitwise identical at
// every thread count (integer addition commutes; see the 1/2/4/8-thread
// test in tests/test_obs_determinism.cpp).
//
// The registry maps names to metric objects under a mutex; the intended hot
// path is "accumulate locally, flush once per solve/trial", so the lookup
// cost is paid per flush, not per event. This library sits at the very
// bottom of the link graph (below util) and depends only on the standard
// library.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scapegoat::obs {

// Dense process-lifetime thread id (0, 1, 2, ... in first-use order). Used
// for counter shard selection and trace-event attribution.
int this_thread_id();

inline constexpr std::size_t kCounterShards = 16;

// Monotonic counter, sharded to keep concurrent writers off each other's
// cache lines. value() folds the shards in index order.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    cells_[static_cast<std::size_t>(this_thread_id()) % kCounterShards]
        .v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_;
};

// Point-in-time level (queue depth, wave size, ...) with a running maximum.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  // Raises the running maximum without touching the last-set value.
  void record_max(std::int64_t v) { raise_max(v); }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

// Fixed-bucket histogram over non-negative values (latencies in µs, residual
// norms in ms, iteration counts, ...). Bucket 0 covers [0, 1); bucket b ≥ 1
// covers [2^(b-1), 2^b); the last bucket absorbs everything above. The sum
// is kept in 1/256-unit fixed point so folds stay integer-exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void observe(double value) {
    if (!(value >= 0.0)) value = 0.0;  // negatives and NaN clamp to zero
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_fp_.fetch_add(to_fixed_point(value), std::memory_order_relaxed);
    raise(max_fp_, to_fixed_point(value));
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const {
    return static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) /
           256.0;
  }
  double max() const {
    return static_cast<double>(max_fp_.load(std::memory_order_relaxed)) /
           256.0;
  }
  std::array<std::uint64_t, kBuckets> buckets() const {
    std::array<std::uint64_t, kBuckets> out{};
    for (std::size_t b = 0; b < kBuckets; ++b)
      out[b] = buckets_[b].load(std::memory_order_relaxed);
    return out;
  }

  static std::size_t bucket_of(double value);
  // Exclusive upper edge of bucket `b` (1, 2, 4, ...; +inf for the last).
  static double bucket_upper_edge(std::size_t b);

 private:
  static std::uint64_t to_fixed_point(double v) {
    return static_cast<std::uint64_t>(v * 256.0 + 0.5);
  }
  static void raise(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_fp_{0};
  std::atomic<std::uint64_t> max_fp_{0};
};

// ----------------------------------------------------------- snapshots --

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  // Bucket-resolution quantile (q in [0, 1]): upper edge of the bucket
  // holding the q-th observation, clamped by the observed maximum.
  double quantile(double q) const;
};

// Metrics sorted by name — the deterministic read face of a registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Counter value by exact name; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// ------------------------------------------------------------ registry --

// Named metrics with stable addresses: once created, a Counter/Gauge/
// Histogram pointer stays valid for the registry's lifetime, so callers may
// cache references across calls. Creation and lookup take a mutex; the
// metric write paths do not.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Folds every metric; entries come back sorted by name.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace scapegoat::obs
