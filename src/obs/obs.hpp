// Observability entry points — the one header instrumented code includes.
//
// A process has at most one active MetricsRegistry and one active TraceSink,
// installed by `ScopedInstrumentation` (RAII: previous installation restored
// on destruction, so scopes nest). When nothing is installed every helper
// below is a relaxed atomic load plus an untaken branch — the "NullSink"
// configuration the hot paths are allowed to keep permanently (measured
// < 1% on bench_fig7; see EXPERIMENTS.md "Observability"). Instrumented code
// therefore never checks a build flag: it calls `obs::count(...)`,
// `obs::ScopedTimer t("x.y_us")`, `obs::ScopedSpan span("x.solve")`
// unconditionally.
//
// Conventions (DESIGN.md §9):
//   * metric names are dot-separated, lowest subsystem first
//     ("lp.simplex.iterations", "pool.task.run_us"),
//   * duration histograms end in `_us` and record microseconds,
//   * counters under "pool." are scheduling-dependent and excluded from the
//     cross-thread-count determinism contract; every other counter must fold
//     to the same value at any worker count.
//
// Installation is process-global and not synchronized against concurrent
// installs: construct/destroy ScopedInstrumentation from a single thread,
// outside parallel regions (the same discipline ThreadPool::
// set_global_threads already requires).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scapegoat::obs {

namespace detail {
inline std::atomic<MetricsRegistry*> g_metrics{nullptr};
inline std::atomic<TraceSink*> g_sink{nullptr};

inline std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

inline std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}
}  // namespace detail

// Active registry / sink; nullptr when instrumentation is off.
inline MetricsRegistry* metrics() {
  return detail::g_metrics.load(std::memory_order_acquire);
}
inline TraceSink* trace_sink() {
  return detail::g_sink.load(std::memory_order_acquire);
}
inline bool metrics_enabled() { return metrics() != nullptr; }
inline bool tracing() { return trace_sink() != nullptr; }

// Installs a registry (and optionally a sink) for the current scope.
class ScopedInstrumentation {
 public:
  explicit ScopedInstrumentation(MetricsRegistry& registry,
                                 TraceSink* sink = nullptr)
      : prev_metrics_(metrics()), prev_sink_(trace_sink()) {
    detail::g_metrics.store(&registry, std::memory_order_release);
    detail::g_sink.store(sink, std::memory_order_release);
  }
  ~ScopedInstrumentation() {
    detail::g_metrics.store(prev_metrics_, std::memory_order_release);
    detail::g_sink.store(prev_sink_, std::memory_order_release);
  }
  ScopedInstrumentation(const ScopedInstrumentation&) = delete;
  ScopedInstrumentation& operator=(const ScopedInstrumentation&) = delete;

 private:
  MetricsRegistry* prev_metrics_;
  TraceSink* prev_sink_;
};

// ------------------------------------------------------- cheap helpers --

inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = metrics()) m->counter(name).add(delta);
}

inline void observe(std::string_view name, double value) {
  if (MetricsRegistry* m = metrics()) m->histogram(name).observe(value);
}

inline void gauge_set(std::string_view name, std::int64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).set(value);
}

inline void gauge_max(std::string_view name, std::int64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).record_max(value);
}

// RAII timer recording elapsed microseconds into histogram `name`. The
// registry is captured at construction, so the timer stays valid across a
// ScopedInstrumentation boundary. `name` must outlive the timer (pass a
// string literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : registry_(metrics()), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records now and disarms; returns the elapsed µs (0 when disabled).
  double stop() {
    if (registry_ == nullptr) return 0.0;
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    registry_->histogram(name_).observe(us);
    registry_ = nullptr;
    return us;
  }

 private:
  MetricsRegistry* registry_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

// RAII trace span: captures the sink at construction, emits one TraceEvent
// on destruction. Inert (no allocation, no clock reads) when tracing is
// off. Attributes added while inert are dropped.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : sink_(trace_sink()) {
    if (sink_ == nullptr) return;
    event_.name = std::string(name);
    event_.thread_id = this_thread_id();
    event_.start_us = detail::now_us();
  }
  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    event_.duration_us = detail::now_us() - event_.start_us;
    sink_->write(event_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return sink_ != nullptr; }

  void attr(std::string_view key, std::string_view value) {
    if (sink_ == nullptr) return;
    event_.attrs.emplace_back(std::string(key), std::string(value));
  }
  void attr(std::string_view key, std::uint64_t value) {
    if (sink_ != nullptr) attr(key, std::to_string(value));
  }
  void attr(std::string_view key, double value) {
    if (sink_ != nullptr) attr(key, std::to_string(value));
  }

 private:
  TraceSink* sink_;
  TraceEvent event_;
};

}  // namespace scapegoat::obs
