#include "obs/trace.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>

namespace scapegoat::obs {

JsonlTraceSink::JsonlTraceSink(std::ostream& out)
    : out_(out), epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t JsonlTraceSink::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void JsonlTraceSink::write(const TraceEvent& event) {
  std::string line;
  line.reserve(96 + 32 * event.attrs.size());
  line += "{\"name\":\"";
  line += json_escape(event.name);
  line += "\",\"tid\":";
  line += std::to_string(event.thread_id);
  line += ",\"ts_us\":";
  line += std::to_string(event.start_us);
  line += ",\"dur_us\":";
  line += std::to_string(event.duration_us);
  line += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : event.attrs) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(key);
    line += "\":\"";
    line += json_escape(value);
    line += '"';
  }
  line += "}}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Minimal cursor-based scanner over the sink's own output format.
struct Scanner {
  std::string_view s;
  std::size_t pos = 0;

  bool eat(char c) {
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool eat(std::string_view lit) {
    if (s.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  // Parses a JSON string literal (opening quote already consumed by caller
  // convention: call with cursor ON the opening quote).
  bool string_literal(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) return false;
      const char esc = s[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code > 0xff) return false;  // sink only emits control bytes
          out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool integer(std::uint64_t& out) {
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      return false;
    out = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
      out = out * 10 + static_cast<std::uint64_t>(s[pos++] - '0');
    }
    return true;
  }
};

}  // namespace

std::optional<TraceEvent> parse_trace_line(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  Scanner sc{line};
  TraceEvent ev;
  std::uint64_t tid = 0;
  if (!sc.eat("{\"name\":")) return std::nullopt;
  if (!sc.string_literal(ev.name)) return std::nullopt;
  if (!sc.eat(",\"tid\":") || !sc.integer(tid)) return std::nullopt;
  ev.thread_id = static_cast<int>(tid);
  if (!sc.eat(",\"ts_us\":") || !sc.integer(ev.start_us)) return std::nullopt;
  if (!sc.eat(",\"dur_us\":") || !sc.integer(ev.duration_us))
    return std::nullopt;
  if (!sc.eat(",\"attrs\":{")) return std::nullopt;
  if (!sc.eat('}')) {
    for (;;) {
      std::string key, value;
      if (!sc.string_literal(key) || !sc.eat(':') ||
          !sc.string_literal(value)) {
        return std::nullopt;
      }
      ev.attrs.emplace_back(std::move(key), std::move(value));
      if (sc.eat('}')) break;
      if (!sc.eat(',')) return std::nullopt;
    }
  }
  if (!sc.eat('}')) return std::nullopt;
  return ev;
}

}  // namespace scapegoat::obs
