// Structured trace events: JSONL spans with a thread id, a label and
// key/value attributes.
//
// A `TraceSink` receives finished spans; `JsonlTraceSink` renders each one
// as a single JSON object per line —
//   {"name":"lp.simplex.solve","tid":3,"ts_us":1042,"dur_us":180,
//    "attrs":{"rows":"120","status":"optimal"}}
// — timestamps in microseconds since the sink's construction. Attribute
// values are stringified at record time and emitted as JSON strings, which
// keeps the writer allocation-light and makes the write → parse round trip
// exact (`parse_trace_line` below inverts the escaping; tested in
// tests/test_obs.cpp). `NullTraceSink` swallows everything — the "compiled
// out" configuration for code that holds a sink unconditionally.

#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scapegoat::obs {

struct TraceEvent {
  std::string name;
  int thread_id = 0;
  std::uint64_t start_us = 0;     // relative to the sink's epoch
  std::uint64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // Called from arbitrary threads; implementations must synchronize.
  virtual void write(const TraceEvent& event) = 0;
};

class NullTraceSink final : public TraceSink {
 public:
  void write(const TraceEvent&) override {}
};

// One JSON object per line on the wrapped stream. The stream must outlive
// the sink; writes are serialized by an internal mutex.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out);
  void write(const TraceEvent& event) override;

  // Microseconds elapsed since this sink was constructed.
  std::uint64_t now_us() const;

 private:
  std::ostream& out_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
};

// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
// control characters).
std::string json_escape(std::string_view s);

// Parses one line produced by JsonlTraceSink back into a TraceEvent;
// nullopt on malformed input. Understands exactly the subset the sink
// emits (string/integer fields plus a flat string-valued "attrs" object).
std::optional<TraceEvent> parse_trace_line(std::string_view line);

}  // namespace scapegoat::obs
