#include "robust/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "util/atomic_file.hpp"

namespace scapegoat::robust {

namespace {

constexpr const char* kManifestMagic = "scapegoat-checkpoint";
constexpr int kManifestVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

// JSON string escaping for the record fields we own. Mirrors the obs trace
// sink's subset (quotes, backslash, \n, \r, \t, \u00xx control bytes) so
// the two JSONL formats in the repo stay mutually readable.
std::string jesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Cursor-based scanner over exactly the lines encode_journal_line emits.
struct Scanner {
  std::string_view s;
  std::size_t pos = 0;

  bool eat(std::string_view lit) {
    if (s.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  bool string_literal(std::string& out) {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) return false;
      const char esc = s[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return false;
            }
          }
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool hex_field(std::uint64_t& out) {
    std::string text;
    if (!string_literal(text)) return false;
    const auto v = decode_u64_hex(text);
    if (!v) return false;
    out = *v;
    return true;
  }
};

// Parses the `<record>` part of a journal line (CRC already validated).
// Returns false on any structural mismatch.
bool parse_record(std::string_view rec, JournalContents& into) {
  Scanner sc{rec};
  std::string kind;
  if (!sc.eat("{\"k\":") || !sc.string_literal(kind)) return false;
  if (kind == "t") {
    TrialRecord r;
    if (!sc.eat(",\"f\":") || !sc.string_literal(r.family)) return false;
    if (!sc.eat(",\"i\":") || !sc.hex_field(r.index)) return false;
    if (!sc.eat(",\"s\":") || !sc.hex_field(r.seed)) return false;
    if (!sc.eat(",\"p\":") || !sc.string_literal(r.payload)) return false;
    if (!sc.eat("}") || sc.pos != rec.size()) return false;
    JournalContents::Key key{r.family, r.index};
    into.trials.insert_or_assign(std::move(key), std::move(r));
    return true;
  }
  if (kind == "q") {
    QuarantineRecord r;
    std::string code;
    std::uint64_t attempts = 0;
    if (!sc.eat(",\"f\":") || !sc.string_literal(r.family)) return false;
    if (!sc.eat(",\"i\":") || !sc.hex_field(r.index)) return false;
    if (!sc.eat(",\"s\":") || !sc.hex_field(r.seed)) return false;
    if (!sc.eat(",\"e\":") || !sc.string_literal(code)) return false;
    if (!sc.eat(",\"m\":") || !sc.string_literal(r.message)) return false;
    if (!sc.eat(",\"a\":") || !sc.hex_field(attempts)) return false;
    if (!sc.eat("}") || sc.pos != rec.size()) return false;
    const auto parsed = error_code_from_string(code);
    if (!parsed) return false;
    r.code = *parsed;
    r.attempts = static_cast<std::size_t>(attempts);
    JournalContents::Key key{r.family, r.index};
    into.quarantined.insert_or_assign(std::move(key), std::move(r));
    return true;
  }
  return false;
}

// Frames a serialized record into a full journal line (with trailing '\n').
std::string frame_line(const std::string& record) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc32(record));
  std::string line;
  line.reserve(record.size() + 24);
  line += "{\"c\":\"";
  line += crc_hex;
  line += "\",\"r\":";
  line += record;
  line += "}\n";
  return line;
}

// Validates one framed line; on success feeds the record into `into`.
bool accept_line(std::string_view line, JournalContents& into) {
  Scanner sc{line};
  std::string crc_text;
  if (!sc.eat("{\"c\":") || !sc.string_literal(crc_text)) return false;
  if (crc_text.size() != 8) return false;
  const auto crc = decode_u64_hex(crc_text);
  if (!crc) return false;
  if (!sc.eat(",\"r\":")) return false;
  if (line.empty() || line.back() != '}') return false;
  const std::string_view record = line.substr(sc.pos, line.size() - sc.pos - 1);
  if (crc32(record) != static_cast<std::uint32_t>(*crc)) return false;
  return parse_record(record, into);
}

std::string manifest_path(const std::string& journal_path) {
  return journal_path + ".manifest";
}

std::string manifest_text(const std::string& experiment,
                          std::uint64_t config_hash) {
  std::string out = kManifestMagic;
  out += ' ';
  out += std::to_string(kManifestVersion);
  out += "\nexperiment ";
  out += experiment;
  out += "\nconfig ";
  out += encode_u64_hex(config_hash);
  out += '\n';
  return out;
}

// True when the manifest at `path` names exactly this (experiment, hash).
bool manifest_matches(const std::string& path, const std::string& experiment,
                      std::uint64_t config_hash, std::string& why_not) {
  std::ifstream in(path);
  if (!in) {
    why_not = "no manifest";
    return false;
  }
  std::string magic, exp_kw, exp_name, cfg_kw, cfg_hex;
  int version = 0;
  if (!(in >> magic >> version >> exp_kw >> exp_name >> cfg_kw >> cfg_hex) ||
      magic != kManifestMagic || exp_kw != "experiment" || cfg_kw != "config") {
    why_not = "malformed manifest";
    return false;
  }
  if (version != kManifestVersion) {
    why_not = "manifest version " + std::to_string(version);
    return false;
  }
  if (exp_name != experiment) {
    why_not = "manifest is for experiment '" + exp_name + "'";
    return false;
  }
  const auto hash = decode_u64_hex(cfg_hex);
  if (!hash || *hash != config_hash) {
    why_not = "config hash mismatch (options or seed changed)";
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string encode_u64_hex(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::optional<std::uint64_t> decode_u64_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::string encode_double_bits(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return encode_u64_hex(bits);
}

std::optional<double> decode_double_bits(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  const auto bits = decode_u64_hex(hex);
  if (!bits) return std::nullopt;
  double value;
  std::memcpy(&value, &*bits, sizeof(value));
  return value;
}

ConfigHasher& ConfigHasher::mix(std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h_ ^= (v >> (8 * byte)) & 0xffu;
    h_ *= 0x100000001b3ull;
  }
  return *this;
}

ConfigHasher& ConfigHasher::mix(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(bits);
}

ConfigHasher& ConfigHasher::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= 0x100000001b3ull;
  }
  return *this;
}

std::string encode_journal_line(const TrialRecord& record) {
  std::string rec;
  rec.reserve(64 + record.family.size() + record.payload.size());
  rec += "{\"k\":\"t\",\"f\":\"";
  rec += jesc(record.family);
  rec += "\",\"i\":\"";
  rec += encode_u64_hex(record.index);
  rec += "\",\"s\":\"";
  rec += encode_u64_hex(record.seed);
  rec += "\",\"p\":\"";
  rec += jesc(record.payload);
  rec += "\"}";
  return frame_line(rec);
}

std::string encode_journal_line(const QuarantineRecord& record) {
  std::string rec;
  rec.reserve(96 + record.family.size() + record.message.size());
  rec += "{\"k\":\"q\",\"f\":\"";
  rec += jesc(record.family);
  rec += "\",\"i\":\"";
  rec += encode_u64_hex(record.index);
  rec += "\",\"s\":\"";
  rec += encode_u64_hex(record.seed);
  rec += "\",\"e\":\"";
  rec += jesc(to_string(record.code));
  rec += "\",\"m\":\"";
  rec += jesc(record.message);
  rec += "\",\"a\":\"";
  rec += encode_u64_hex(record.attempts);
  rec += "\"}";
  return frame_line(rec);
}

Expected<JournalContents> read_journal(const std::string& path) {
  JournalContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Missing journal = empty journal; only distinguish "cannot read" when
    // the file exists but open failed, which ifstream cannot tell apart
    // portably — callers treat both as a fresh start.
    return contents;
  }
  std::string line;
  std::uint64_t offset = 0;
  bool tail_torn = false;
  while (std::getline(in, line)) {
    // getline strips the '\n'; a final line without one is a torn write.
    const bool had_newline = !in.eof();
    const std::uint64_t line_bytes = line.size() + (had_newline ? 1 : 0);
    if (!had_newline || !accept_line(line, contents)) {
      ++contents.dropped_lines;
      tail_torn = true;
      offset += line_bytes;
      continue;
    }
    if (tail_torn) {
      // A valid line after a torn one means mid-file corruption, not a torn
      // tail. Keep accepting (records are keyed, order-independent) but the
      // valid prefix for append-truncation ends at the first bad line.
      offset += line_bytes;
      continue;
    }
    offset += line_bytes;
    contents.valid_bytes = offset;
  }
  return contents;
}

Expected<std::unique_ptr<CheckpointJournal>> CheckpointJournal::open(
    const std::string& path, const std::string& experiment,
    std::uint64_t config_hash, bool resume) {
  obs::ScopedSpan span("ckpt.open");
  span.attr("experiment", experiment);

  auto journal = std::unique_ptr<CheckpointJournal>(new CheckpointJournal());
  journal->path_ = path;

  bool fresh = true;
  if (resume) {
    std::string why_not;
    if (manifest_matches(manifest_path(path), experiment, config_hash,
                         why_not)) {
      auto loaded = read_journal(path);
      if (loaded.ok()) {
        journal->contents_ = std::move(*loaded);
        journal->info_.resumed = true;
        journal->info_.prior_trials = journal->contents_.trials.size();
        journal->info_.prior_quarantined =
            journal->contents_.quarantined.size();
        journal->info_.dropped_lines = journal->contents_.dropped_lines;
        fresh = false;
        // Truncate back to the longest valid prefix so appends never land
        // after a torn line.
        if (::truncate(path.c_str(),
                       static_cast<off_t>(journal->contents_.valid_bytes)) !=
            0) {
          return Error{ErrorCode::kIoError,
                       "cannot truncate journal " + path + ": " +
                           std::strerror(errno)};
        }
      } else {
        journal->info_.note = loaded.error_message();
      }
    } else {
      journal->info_.note = "fresh journal (" + why_not + ")";
    }
  }

  if (fresh) {
    journal->contents_ = JournalContents{};
    const Status manifest_write = write_file_atomic(
        manifest_path(path), manifest_text(experiment, config_hash));
    if (!manifest_write.ok()) return manifest_write.error();
    // O_TRUNC discards any stale journal from a different config.
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (fd < 0)
      return Error{ErrorCode::kIoError, "cannot create journal " + path +
                                            ": " + std::strerror(errno)};
    journal->fd_ = fd;
  } else {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
    if (fd < 0)
      return Error{ErrorCode::kIoError, "cannot append to journal " + path +
                                            ": " + std::strerror(errno)};
    journal->fd_ = fd;
  }

  span.attr("resumed", static_cast<std::uint64_t>(journal->info_.resumed));
  span.attr("prior_trials",
            static_cast<std::uint64_t>(journal->info_.prior_trials));
  span.attr("dropped_lines",
            static_cast<std::uint64_t>(journal->info_.dropped_lines));
  if (journal->info_.dropped_lines > 0)
    obs::count("ckpt.journal_lines_dropped", journal->info_.dropped_lines);
  return journal;
}

CheckpointJournal::~CheckpointJournal() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

const TrialRecord* CheckpointJournal::find(std::string_view family,
                                           std::uint64_t index) const {
  const auto it =
      contents_.trials.find(JournalContents::Key{std::string(family), index});
  return it == contents_.trials.end() ? nullptr : &it->second;
}

const QuarantineRecord* CheckpointJournal::find_quarantined(
    std::string_view family, std::uint64_t index) const {
  const auto it = contents_.quarantined.find(
      JournalContents::Key{std::string(family), index});
  return it == contents_.quarantined.end() ? nullptr : &it->second;
}

void CheckpointJournal::append(const TrialRecord& record) {
  const JournalContents::Key key{record.family, record.index};
  if (contents_.trials.count(key) || contents_.quarantined.count(key)) return;
  buffer_ += encode_journal_line(record);
  contents_.trials.emplace(key, record);
  obs::count("ckpt.trials_recorded");
}

void CheckpointJournal::append(const QuarantineRecord& record) {
  const JournalContents::Key key{record.family, record.index};
  if (contents_.trials.count(key) || contents_.quarantined.count(key)) return;
  buffer_ += encode_journal_line(record);
  contents_.quarantined.emplace(key, record);
}

void CheckpointJournal::flush() {
  if (fd_ < 0 || buffer_.empty()) return;
  obs::ScopedTimer timer("ckpt.flush_us");
  std::size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Journal write failure is not worth killing the sweep over: the run
      // stays correct, only resumability degrades. Count it and move on.
      obs::count("ckpt.write_errors");
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  buffer_.clear();
  ::fsync(fd_);
}

}  // namespace scapegoat::robust
