// Crash-safe experiment checkpointing: an append-only, CRC-framed JSONL
// journal plus an atomically-replaced manifest.
//
// Layout on disk for `--checkpoint sweep.ckpt`:
//   sweep.ckpt            the journal — one CRC-framed JSON line per record
//   sweep.ckpt.manifest   tiny header naming the experiment and the config
//                         hash, written via temp+fsync+rename (atomic_file)
//
// Each journal line is `{"c":"<crc32 hex8>","r":<record>}` where the CRC
// covers the exact serialized `<record>` text. Appends go straight to the
// journal (append-only files survive crashes up to a torn tail; the CRC
// frame makes the tear detectable), and the loader accepts the longest
// valid prefix, reporting how many bytes/lines it had to drop. Resume
// truncates the journal back to that valid prefix before appending.
//
// Records are keyed by (family, index): `family` namespaces the per-runner
// index spaces ("trial" for the main trial stream, "clean"/"perfect"/
// "imperfect" for Fig. 9's three streams) and `index` is the global trial
// index the runner derives its RNG seed from. The derived seed is stored
// and cross-checked on replay, so a journal can never silently feed trial
// 17's result to a run whose seeding scheme changed. Payloads are opaque
// strings owned by the runner; doubles inside them are serialized as
// 16-hex-digit bit patterns (encode_double_bits) so a replayed trial is
// bitwise identical to a recomputed one.
//
// Quarantine records share the journal: a trial that kept exceeding its
// watchdog budget or returning an Expected error is recorded with its error
// taxonomy code and excluded from folds with an explicit count — never a
// silent drop, and never recomputed on resume (a poisoned trial stays
// quarantined until the operator deletes the journal).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "robust/expected.hpp"
#include "robust/watchdog.hpp"

namespace scapegoat::robust {

// IEEE CRC-32 (reflected, 0xEDB88320), the frame checksum.
std::uint32_t crc32(std::string_view data);

// Exact double round-trip through text: 16 lowercase hex digits of the IEEE
// bit pattern. Used inside journal payloads; never lossy, locale-proof.
std::string encode_double_bits(double value);
std::optional<double> decode_double_bits(std::string_view hex);
std::string encode_u64_hex(std::uint64_t value);
std::optional<std::uint64_t> decode_u64_hex(std::string_view hex);

// FNV-1a accumulator for config hashes: every option field that affects
// results (seed included, threads/grain excluded — resume at a different
// worker count is explicitly supported) gets mixed in a fixed order.
class ConfigHasher {
 public:
  ConfigHasher& mix(std::uint64_t v);
  ConfigHasher& mix(double v);  // by bit pattern
  ConfigHasher& mix(std::string_view s);
  std::uint64_t hash() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

struct TrialRecord {
  std::string family;    // index namespace within the experiment
  std::uint64_t index = 0;
  std::uint64_t seed = 0;  // derived seed, cross-checked on replay
  std::string payload;     // runner-owned serialization of the trial output
};

struct QuarantineRecord {
  std::string family;
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  ErrorCode code = ErrorCode::kIterationLimit;
  std::string message;
  std::size_t attempts = 0;  // how many times the trial was tried
};

// Serialized journal lines (exposed for tests; append() uses these).
std::string encode_journal_line(const TrialRecord& record);
std::string encode_journal_line(const QuarantineRecord& record);

struct JournalContents {
  using Key = std::pair<std::string, std::uint64_t>;  // (family, index)
  std::map<Key, TrialRecord> trials;
  std::map<Key, QuarantineRecord> quarantined;
  std::size_t dropped_lines = 0;  // CRC/parse rejects (torn tail, corruption)
  std::uint64_t valid_bytes = 0;  // longest valid prefix of the journal
};

// Reads a journal file, accepting the longest valid prefix. Missing file is
// an empty journal, not an error; unreadable file is kIoError.
Expected<JournalContents> read_journal(const std::string& path);

// One checkpoint session: open → find/append per trial → flush per block.
// Not thread-safe by design — the experiment runners only touch it from the
// serial fold, never from worker threads.
class CheckpointJournal {
 public:
  struct OpenInfo {
    bool resumed = false;         // prior records were accepted
    std::size_t prior_trials = 0;
    std::size_t prior_quarantined = 0;
    std::size_t dropped_lines = 0;  // torn/corrupt tail lines discarded
    std::string note;               // human-readable reason on fresh start
  };

  // Opens the session. With `resume`, prior records are loaded when the
  // manifest matches (experiment, config_hash); a missing or mismatched
  // manifest, or a corrupt journal head, falls back to a fresh journal —
  // recorded in OpenInfo::note, never fatal. Without `resume` any existing
  // journal is discarded. kIoError only when the files cannot be written.
  static Expected<std::unique_ptr<CheckpointJournal>> open(
      const std::string& path, const std::string& experiment,
      std::uint64_t config_hash, bool resume);

  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  const OpenInfo& info() const { return info_; }

  // Replay lookups. find() returns nullptr when the trial must be computed.
  const TrialRecord* find(std::string_view family, std::uint64_t index) const;
  const QuarantineRecord* find_quarantined(std::string_view family,
                                           std::uint64_t index) const;

  // Appends a record (buffered; call flush() at block boundaries). Records
  // for a (family, index) already present are skipped — replay never
  // duplicates a line.
  void append(const TrialRecord& record);
  void append(const QuarantineRecord& record);

  // Flushes buffered lines to the OS and fsyncs the journal. The unit of
  // durability: a crash after flush() loses nothing, a crash mid-block
  // loses at most the block (recomputed on resume).
  void flush();

 private:
  CheckpointJournal() = default;

  std::string path_;
  JournalContents contents_;
  OpenInfo info_;
  int fd_ = -1;           // append-mode journal descriptor
  std::string buffer_;    // lines staged since the last flush
};

// Resilience knobs shared by all four experiment runners (wired from
// `--checkpoint FILE` / `--resume` / `--trial-budget-ms` in the drivers).
struct ResilienceOptions {
  std::string checkpoint_path;  // empty = checkpointing off
  bool resume = false;          // replay completed trials from the journal
  Budget trial_budget;          // per-trial watchdog budget (0 = unlimited)
  std::size_t trial_retries = 1;  // attempts before quarantine = 1 + retries
  // Stop (resumably) after computing this many new trials; 0 = no quota.
  // The kill/resume tests use it to stop at deterministic points; operators
  // can use it to slice a huge sweep into bounded sessions.
  std::size_t stop_after_new_trials = 0;
};

}  // namespace scapegoat::robust
