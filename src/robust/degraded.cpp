#include "robust/degraded.hpp"

#include <cmath>

#include "linalg/conditioning.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/qr.hpp"

namespace scapegoat::robust {

std::size_t DegradedMeasurement::num_measured() const {
  std::size_t n = 0;
  for (bool m : measured)
    if (m) ++n;
  return n;
}

double DegradedMeasurement::measured_fraction() const {
  return measured.empty()
             ? 0.0
             : static_cast<double>(num_measured()) / measured.size();
}

DegradedMeasurement DegradedMeasurement::all_measured(Vector y) {
  DegradedMeasurement m;
  m.measured.assign(y.size(), true);
  m.y = std::move(y);
  return m;
}

std::string to_string(SolveMethod method) {
  switch (method) {
    case SolveMethod::kFullRank:
      return "full_rank";
    case SolveMethod::kRegularizedFallback:
      return "regularized_fallback";
  }
  return "unknown";
}

std::optional<SolveMethod> solve_method_from_string(std::string_view s) {
  for (SolveMethod m :
       {SolveMethod::kFullRank, SolveMethod::kRegularizedFallback}) {
    if (to_string(m) == s) return m;
  }
  return std::nullopt;
}

namespace {

// Rows of (r, y) where the measurement actually exists.
struct ReducedSystem {
  Matrix r;
  Vector y;
};

ReducedSystem drop_missing_rows(const Matrix& r, const DegradedMeasurement& m) {
  ReducedSystem out;
  const std::size_t kept = m.num_measured();
  out.r = Matrix(kept, r.cols());
  out.y = Vector(kept);
  std::size_t row = 0;
  for (std::size_t i = 0; i < m.measured.size(); ++i) {
    if (!m.measured[i]) continue;
    for (std::size_t j = 0; j < r.cols(); ++j) out.r(row, j) = r(i, j);
    out.y[row] = m.y[i];
    ++row;
  }
  return out;
}

}  // namespace

Expected<DegradedEstimate> degraded_estimate(const Matrix& r,
                                             const DegradedMeasurement& m,
                                             const DegradedOptions& opt) {
  if (m.measured.size() != r.rows() || m.y.size() != r.rows()) {
    return Error{ErrorCode::kDimensionMismatch,
                 "measurement mask/vector must have one entry per path row"};
  }
  if (r.cols() == 0) {
    return Error{ErrorCode::kEmptyInput, "routing matrix has no links"};
  }
  const ReducedSystem sys = drop_missing_rows(r, m);
  if (sys.r.rows() == 0) {
    return Error{ErrorCode::kEmptyInput, "no measured paths survive"};
  }

  DegradedEstimate est;
  est.paths_used = sys.r.rows();
  est.rank = matrix_rank(sys.r);

  // Full-rank certification via the conditioning diagnostic: it succeeds
  // exactly when the reduced RᵀR is SPD, i.e. the drop left the link
  // metrics identifiable, and reports κ for observability either way.
  if (est.rank == sys.r.cols() && sys.r.rows() >= sys.r.cols()) {
    if (auto cond = estimate_condition(sys.r)) {
      auto x = least_squares(sys.r, sys.y, LeastSquaresMethod::kQr);
      if (x) {
        est.x = std::move(*x);
        est.method = SolveMethod::kFullRank;
        est.condition = cond->condition();
        return est;
      }
    }
  }

  // Rank-deficient (or numerically untrustworthy) drop: ridge fallback,
  // defined for any shape when λ > 0.
  const double lambda = opt.ridge_lambda > 0.0 ? opt.ridge_lambda : 1e-3;
  const Vector* prior =
      (opt.prior != nullptr && opt.prior->size() == sys.r.cols())
          ? opt.prior
          : nullptr;
  auto fallback = ridge_least_squares(sys.r, sys.y, lambda, prior);
  if (!fallback.ok()) return fallback.error();
  est.x = std::move(*fallback);
  est.method = SolveMethod::kRegularizedFallback;
  est.condition = 0.0;
  return est;
}

Expected<double> degraded_residual_norm1(const Matrix& r,
                                         const DegradedMeasurement& m,
                                         const Vector& x) {
  if (m.measured.size() != r.rows() || m.y.size() != r.rows()) {
    return Error{ErrorCode::kDimensionMismatch,
                 "measurement mask/vector must have one entry per path row"};
  }
  if (x.size() != r.cols()) {
    return Error{ErrorCode::kDimensionMismatch,
                 "estimate must have one entry per link column"};
  }
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    if (!m.measured[i]) continue;
    double predicted = 0.0;
    for (std::size_t j = 0; j < r.cols(); ++j) predicted += r(i, j) * x[j];
    acc += std::abs(m.y[i] - predicted);
    ++used;
  }
  if (used == 0) {
    return Error{ErrorCode::kEmptyInput, "no measured paths survive"};
  }
  return acc;
}

}  // namespace scapegoat::robust
