// Estimation from partially-measured path sets.
//
// When probes are lost, time out, or a monitor is down, some rows of the
// measurement vector y′ never materialize. This module makes that a
// first-class state: `DegradedMeasurement` carries the per-path measured
// mask, and `degraded_estimate` solves the tomography system on the rows
// that survive —
//   * full column rank after the drop  → ordinary QR least squares
//     (certified by linalg/conditioning, whose condition estimate is
//     reported for observability),
//   * rank deficient                   → Tikhonov fallback
//     (RᵀR + λI)⁻¹(Rᵀy + λ·prior), the minimum-norm-flavoured regularized
//     solve that stays defined on under-determined systems,
//   * nothing measured / shape errors  → a structured Error, never a crash.

#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "robust/expected.hpp"

namespace scapegoat::robust {

// A per-path measurement vector where entries may be missing. Entries of
// `y` with `measured[i] == false` are meaningless and must not be read.
struct DegradedMeasurement {
  Vector y;
  std::vector<bool> measured;

  std::size_t num_measured() const;
  double measured_fraction() const;
  bool complete() const { return num_measured() == measured.size(); }

  // A fully-measured vector (the lossless fast path).
  static DegradedMeasurement all_measured(Vector y);
};

enum class SolveMethod {
  kFullRank,             // QR on the surviving rows
  kRegularizedFallback,  // ridge solve after rank deficiency was detected
};

std::string to_string(SolveMethod method);
std::optional<SolveMethod> solve_method_from_string(std::string_view s);

inline std::ostream& operator<<(std::ostream& os, SolveMethod method) {
  return os << to_string(method);
}

struct DegradedOptions {
  double ridge_lambda = 1e-3;   // fallback regularization strength
  const Vector* prior = nullptr;  // fallback shrinks toward this (default 0)
};

struct DegradedEstimate {
  Vector x;
  SolveMethod method = SolveMethod::kFullRank;
  std::size_t paths_used = 0;  // rows that survived the drop
  std::size_t rank = 0;        // numerical rank of the reduced R
  double condition = 0.0;      // κ(reduced R); 0 when rank deficient
};

// Drops unmeasured rows from (r, m.y) and solves what remains. Errors:
//   kDimensionMismatch — m does not have one entry per row of r,
//   kEmptyInput        — no measured rows at all,
//   kIllConditioned    — even the regularized fallback failed to factor.
Expected<DegradedEstimate> degraded_estimate(const Matrix& r,
                                             const DegradedMeasurement& m,
                                             const DegradedOptions& opt = {});

// ‖(y − R x)|measured‖₁ — the detector statistic restricted to rows that
// were actually observed. Same error conditions as degraded_estimate.
Expected<double> degraded_residual_norm1(const Matrix& r,
                                         const DegradedMeasurement& m,
                                         const Vector& x);

}  // namespace scapegoat::robust
