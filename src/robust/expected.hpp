// Structured error taxonomy for degraded-input paths.
//
// The fault-tolerance layer replaces assert/crash paths with values of
// `Expected<T>`: either a result or an `Error{code, message}` that names
// what failed in terms a caller can branch on (rank deficiency, missing
// measurements, iteration limits, malformed input). The taxonomy is shared
// across layers — linalg solvers, the tomography estimator, the detector,
// the LP, recovery and the loaders all speak the same codes — so a chaos
// sweep can account for every trial without string matching.
//
// Header-only on purpose: linalg sits below the robust library in the link
// graph but still returns these types.

#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace scapegoat::robust {

enum class ErrorCode {
  kInvalidInput,       // argument outside the documented domain
  kEmptyInput,         // nothing to operate on (e.g. zero measured paths)
  kDimensionMismatch,  // shapes disagree (|y| ≠ |paths|, ...)
  kRankDeficient,      // reduced system does not identify the unknowns
  kIllConditioned,     // factorization failed to working precision
  kIterationLimit,     // iterative method hit its cap before converging
  kMissingData,        // required measurements never arrived
  kParseError,         // malformed persisted input
  kIoError,            // file/stream could not be read or written
};

inline std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidInput:
      return "invalid_input";
    case ErrorCode::kEmptyInput:
      return "empty_input";
    case ErrorCode::kDimensionMismatch:
      return "dimension_mismatch";
    case ErrorCode::kRankDeficient:
      return "rank_deficient";
    case ErrorCode::kIllConditioned:
      return "ill_conditioned";
    case ErrorCode::kIterationLimit:
      return "iteration_limit";
    case ErrorCode::kMissingData:
      return "missing_data";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kIoError:
      return "io_error";
  }
  return "unknown";
}

inline std::ostream& operator<<(std::ostream& os, ErrorCode code) {
  return os << to_string(code);
}

// Inverse of to_string(ErrorCode); nullopt for unrecognized text. Keeps
// persisted sweep reports round-trippable without string matching at the
// call sites.
inline std::optional<ErrorCode> error_code_from_string(std::string_view s) {
  for (ErrorCode code :
       {ErrorCode::kInvalidInput, ErrorCode::kEmptyInput,
        ErrorCode::kDimensionMismatch, ErrorCode::kRankDeficient,
        ErrorCode::kIllConditioned, ErrorCode::kIterationLimit,
        ErrorCode::kMissingData, ErrorCode::kParseError, ErrorCode::kIoError}) {
    if (to_string(code) == s) return code;
  }
  return std::nullopt;
}

struct Error {
  ErrorCode code = ErrorCode::kInvalidInput;
  std::string message;

  std::string to_string() const {
    return message.empty() ? robust::to_string(code)
                           : robust::to_string(code) + ": " + message;
  }
};

// Minimal expected/result type: holds either a T or an Error. `value()` and
// `error()` assert the matching state, so misuse fails loudly in debug while
// callers that branch on ok() never crash.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(implicit)
  Expected(Error error) : storage_(std::move(error)) {}  // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  T& value() {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }
  ErrorCode code() const { return error().code; }

  // The value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  // Uniform human-readable failure text: empty on success, otherwise
  // "code: message". Callers logging a failed Expected should use this
  // instead of reaching into error() (DESIGN.md §9, checked-call surface).
  std::string error_message() const {
    return ok() ? std::string{} : error().to_string();
  }

  // Monadic composition (mirrors C++23 std::expected). `map` transforms the
  // value and forwards the error; `and_then` chains another checked call.
  template <typename F>
  auto map(F&& f) const -> Expected<decltype(f(std::declval<const T&>()))> {
    if (!ok()) return error();
    return f(std::get<T>(storage_));
  }

  template <typename F>
  auto and_then(F&& f) const -> decltype(f(std::declval<const T&>())) {
    if (!ok()) return error();
    return f(std::get<T>(storage_));
  }

 private:
  std::variant<T, Error> storage_;
};

// Convenience for operations with no payload (e.g. validation passes).
struct Unit {};
using Status = Expected<Unit>;

inline Status ok_status() { return Status(Unit{}); }

}  // namespace scapegoat::robust
