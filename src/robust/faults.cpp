#include "robust/faults.hpp"

#include "util/random.hpp"

namespace scapegoat::robust {

namespace {

// Fault-kind namespaces, mirroring the experiment engine's stream salts: no
// two fault kinds ever share a hash stream, so e.g. the loss decision for
// probe (p, k) is independent of its duplicate decision.
constexpr std::uint64_t kLossSalt = 0x10551ull;
constexpr std::uint64_t kDuplicateSalt = 0xd0bb1eull;
constexpr std::uint64_t kReorderSalt = 0x2e02de2ull;
constexpr std::uint64_t kJitterSalt = 0xc10cc1ull;
constexpr std::uint64_t kLinkSalt = 0x11f41ull;
constexpr std::uint64_t kMonitorSalt = 0x303170ull;

}  // namespace

double FaultInjector::unit(std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  // Chain the splitmix64 finalizer with the accumulated state as the mixed
  // operand each round (derive_seed(k, s) = k ^ mix(s)), ending on a bare
  // mix so the last key diffuses into every bit. XORing pre-mixed keys
  // instead would be linear: two seeds differing in a low bit — or two
  // retry rounds — would flip the same constant pattern across all draws.
  std::uint64_t s = seed_ ^ salt;
  s = derive_seed(a, s);
  s = derive_seed(b, s);
  s = derive_seed(c, s);
  s = derive_seed(0, s);
  // Top 53 bits give a uniform double in [0, 1).
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

bool FaultInjector::probe_lost(std::size_t path, std::size_t probe,
                               std::uint64_t attempt) const {
  return spec_.probe_loss_rate > 0.0 &&
         unit(kLossSalt, path, probe, attempt) < spec_.probe_loss_rate;
}

bool FaultInjector::probe_duplicated(std::size_t path, std::size_t probe,
                                     std::uint64_t attempt) const {
  return spec_.duplicate_rate > 0.0 &&
         unit(kDuplicateSalt, path, probe, attempt) < spec_.duplicate_rate;
}

bool FaultInjector::probe_reordered(std::size_t path, std::size_t probe,
                                    std::uint64_t attempt) const {
  return spec_.reorder_rate > 0.0 &&
         unit(kReorderSalt, path, probe, attempt) < spec_.reorder_rate;
}

double FaultInjector::clock_jitter(std::size_t path, std::size_t probe,
                                   std::uint64_t attempt) const {
  if (spec_.clock_jitter_ms <= 0.0) return 0.0;
  // Map [0,1) to (-jitter, +jitter).
  return (2.0 * unit(kJitterSalt, path, probe, attempt) - 1.0) *
         spec_.clock_jitter_ms;
}

bool FaultInjector::link_failed(std::size_t link) const {
  return spec_.link_failure_rate > 0.0 &&
         unit(kLinkSalt, link, 0, 0) < spec_.link_failure_rate;
}

bool FaultInjector::monitor_down(std::size_t node) const {
  return spec_.monitor_outage_rate > 0.0 &&
         unit(kMonitorSalt, node, 0, 0) < spec_.monitor_outage_rate;
}

}  // namespace scapegoat::robust
