// Deterministic, seed-split fault schedules for the measurement plane.
//
// A `FaultInjector` answers "does fault F hit entity E?" as a pure function
// of (seed, fault-kind salt, entity keys) — no shared RNG stream, no
// mutation. That makes the schedule independent of query order, retry
// interleaving and thread count: the same (seed, trial) pair always yields
// the same failures, which is what lets the chaos harness demand bitwise
// identical results at 1/2/4/8 workers (the same discipline as the
// experiment engine's per-trial derive_seed streams).
//
// Fault kinds cover the measurement plane end to end:
//   * per-probe transit loss and (deadline-relative) timeouts,
//   * duplicated and reordered delivery at the receiving monitor,
//   * whole-run monitor outages and link failures,
//   * measurement-clock jitter on recorded delays.

#pragma once

#include <cstddef>
#include <cstdint>

namespace scapegoat::robust {

struct FaultSpec {
  double probe_loss_rate = 0.0;     // P(a probe vanishes in transit)
  double duplicate_rate = 0.0;      // P(a delivered probe arrives twice)
  double reorder_rate = 0.0;        // P(a probe is held past its successors)
  double reorder_extra_ms = 5.0;    // extra latency a reordered probe incurs
  double monitor_outage_rate = 0.0; // P(a monitor is down for the whole run)
  double link_failure_rate = 0.0;   // P(a link is down for the whole run)
  double clock_jitter_ms = 0.0;     // recorded delay ± U[0, this) clock error

  bool any() const {
    return probe_loss_rate > 0.0 || duplicate_rate > 0.0 ||
           reorder_rate > 0.0 || monitor_outage_rate > 0.0 ||
           link_failure_rate > 0.0 || clock_jitter_ms > 0.0;
  }
};

class FaultInjector {
 public:
  // Default-constructed injector never faults (spec all zeros).
  FaultInjector() = default;
  FaultInjector(FaultSpec spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}

  const FaultSpec& spec() const { return spec_; }

  // Per-probe decisions; `attempt` is the retry round, so re-sent probes
  // draw fresh (but still deterministic) fates.
  bool probe_lost(std::size_t path, std::size_t probe,
                  std::uint64_t attempt) const;
  bool probe_duplicated(std::size_t path, std::size_t probe,
                        std::uint64_t attempt) const;
  bool probe_reordered(std::size_t path, std::size_t probe,
                       std::uint64_t attempt) const;
  // Signed clock error in (-jitter, +jitter) ms applied to the recorded
  // delay (zero when the spec disables clock jitter).
  double clock_jitter(std::size_t path, std::size_t probe,
                      std::uint64_t attempt) const;

  // Whole-run outages (constant for a given injector).
  bool link_failed(std::size_t link) const;
  bool monitor_down(std::size_t node) const;

 private:
  // Uniform [0,1) that depends only on (seed, salt, keys).
  double unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
};

}  // namespace scapegoat::robust
