#include "robust/retry.hpp"

#include <algorithm>
#include <cmath>

namespace scapegoat::robust {

namespace {

// base · factor^exponent, saturating at `cap` instead of running off to
// inf/garbage for large attempt counts (factor^1000 overflows double range;
// the old code returned inf, which downstream accumulated into nonsense
// backoff_wait_ms totals).
double saturating_scale(double base, double factor, std::size_t exponent,
                        double cap) {
  if (base <= 0.0) return 0.0;
  const double scaled =
      base * std::pow(factor, static_cast<double>(exponent));
  if (!std::isfinite(scaled) || scaled > cap) return cap;
  return scaled;
}

}  // namespace

double RetryPolicy::deadline_for(std::size_t attempt) const {
  return saturating_scale(probe_deadline_ms, backoff_factor, attempt,
                          max_backoff_ms);
}

double RetryPolicy::backoff_before(std::size_t attempt) const {
  if (attempt == 0) return 0.0;
  return saturating_scale(backoff_base_ms, backoff_factor, attempt - 1,
                          max_backoff_ms);
}

double RetryPolicy::backoff_before(std::size_t attempt,
                                   double remaining_deadline_ms) const {
  const double wait = backoff_before(attempt);
  if (remaining_deadline_ms < 0.0) return wait;
  // Never schedule a wait longer than the time left: sleeping through the
  // deadline just converts "retry might succeed" into "deadline definitely
  // blown".
  return std::min(wait, remaining_deadline_ms);
}

double RetryPolicy::backoff_before(std::size_t attempt,
                                   double remaining_deadline_ms,
                                   double retry_after_hint_ms) const {
  double wait = backoff_before(attempt);
  if (retry_after_hint_ms > 0.0) {
    // The hint is a floor, not a replacement: our own backoff curve still
    // applies when it is the stricter of the two. The policy ceiling caps
    // even server hints — a server asking for an hour-long wait is treated
    // as "effectively unavailable" (retry_fits lets callers give up).
    wait = std::max(wait, std::min(retry_after_hint_ms, max_backoff_ms));
  }
  if (remaining_deadline_ms < 0.0) return wait;
  return std::min(wait, remaining_deadline_ms);
}

bool RetryPolicy::retry_fits(double remaining_deadline_ms,
                             double retry_after_hint_ms) const {
  if (remaining_deadline_ms < 0.0) return true;
  const double hint =
      retry_after_hint_ms > 0.0 ? std::min(retry_after_hint_ms, max_backoff_ms)
                                : 0.0;
  return hint <= remaining_deadline_ms;
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double upper = samples[mid];
  if (samples.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(samples.begin(), samples.begin() + mid);
  return 0.5 * (lower + upper);
}

}  // namespace scapegoat::robust
