#include "robust/retry.hpp"

#include <algorithm>
#include <cmath>

namespace scapegoat::robust {

double RetryPolicy::deadline_for(std::size_t attempt) const {
  if (probe_deadline_ms <= 0.0) return 0.0;
  return probe_deadline_ms * std::pow(backoff_factor,
                                      static_cast<double>(attempt));
}

double RetryPolicy::backoff_before(std::size_t attempt) const {
  if (attempt == 0 || backoff_base_ms <= 0.0) return 0.0;
  return backoff_base_ms * std::pow(backoff_factor,
                                    static_cast<double>(attempt - 1));
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double upper = samples[mid];
  if (samples.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(samples.begin(), samples.begin() + mid);
  return 0.5 * (lower + upper);
}

}  // namespace scapegoat::robust
