// Probing retry policy: how hard the measurement plane tries before a path
// degrades to *missing*.
//
// In a discrete-event simulation the observable effect of exponential
// backoff is the growing patience of each round: attempt k waits
// `deadline · factor^k` before declaring a probe timed out, and the nominal
// wall-clock spent backing off is reported for observability. Paths that
// never deliver a probe within the attempt budget are reported missing —
// never silently zero — so downstream layers can drop their rows instead of
// solving against fabricated measurements.

#pragma once

#include <cstddef>
#include <vector>

namespace scapegoat::robust {

struct RetryPolicy {
  std::size_t max_retries = 2;      // total attempts = 1 + max_retries
  double probe_deadline_ms = 0.0;   // 0 = no deadline; else per-probe, round 0
  double backoff_base_ms = 10.0;    // nominal wait before retry k ≥ 1
  double backoff_factor = 2.0;      // deadline and wait multiply per round
  double max_backoff_ms = 60'000.0; // saturation ceiling for both curves

  std::size_t attempts() const { return max_retries + 1; }

  // Per-probe deadline in force during `attempt` (0-based); 0 = none.
  // Saturates at max_backoff_ms — factor^attempt overflows double range
  // for large attempt counts, and inf deadlines are worse than a cap.
  double deadline_for(std::size_t attempt) const;

  // Nominal wait inserted before `attempt` (attempt ≥ 1; 0 for the first),
  // saturating at max_backoff_ms.
  double backoff_before(std::size_t attempt) const;

  // Same, additionally clamped to the caller's remaining deadline budget
  // (pass a negative value for "no overall deadline"): waiting longer than
  // the time left guarantees the deadline is blown.
  double backoff_before(std::size_t attempt,
                        double remaining_deadline_ms) const;

  // Same again, composed with a server-supplied "retry after" hint (the
  // streaming service's backpressure rejections carry one): the wait honours
  // the LARGER of the policy's own backoff and the hint — retrying before
  // the server said to is exactly the queue-hammering the hint exists to
  // prevent — saturating at max_backoff_ms and then clamped to the
  // remaining deadline. Hints ≤ 0 degrade to the plain two-arg form.
  double backoff_before(std::size_t attempt, double remaining_deadline_ms,
                        double retry_after_hint_ms) const;

  // Whether a retry scheduled under `retry_after_hint_ms` can still begin
  // inside the remaining deadline (negative = no deadline). When false the
  // caller should give up now instead of sleeping through its budget.
  bool retry_fits(double remaining_deadline_ms,
                  double retry_after_hint_ms) const;
};

// Median of the collected samples (empty → 0). Used for median-of-retries
// aggregation: robust to one attempt measuring through a transient fault.
double median(std::vector<double> samples);

}  // namespace scapegoat::robust
