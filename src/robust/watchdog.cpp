#include "robust/watchdog.hpp"

#include <csignal>
#include <limits>

#include "obs/obs.hpp"

namespace scapegoat::robust {

namespace {

thread_local const Watchdog* t_current_deadline = nullptr;

// sig_atomic_t + volatile is the only state a signal handler may touch.
volatile std::sig_atomic_t g_shutdown_flag = 0;

void shutdown_handler(int /*signum*/) { g_shutdown_flag = 1; }

}  // namespace

Watchdog::Watchdog(const Budget& budget) : budget_(budget) {
  armed_ = !budget.unlimited();
  if (armed_ && budget_.wall_ms > 0.0)
    start_ = std::chrono::steady_clock::now();
}

bool Watchdog::expired(std::size_t spent_iterations) const {
  if (!armed_) return false;
  bool hit = false;
  if (budget_.iterations != 0 && spent_iterations > budget_.iterations)
    hit = true;
  if (!hit && budget_.wall_ms > 0.0 && elapsed_ms() > budget_.wall_ms)
    hit = true;
  if (hit && !reported_) {
    reported_ = true;
    obs::count("watchdog.expirations");
  }
  return hit;
}

double Watchdog::elapsed_ms() const {
  if (!armed_ || budget_.wall_ms <= 0.0) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double Watchdog::remaining_ms() const {
  if (!armed_ || budget_.wall_ms <= 0.0)
    return std::numeric_limits<double>::infinity();
  const double left = budget_.wall_ms - elapsed_ms();
  return left > 0.0 ? left : 0.0;
}

ScopedTrialDeadline::ScopedTrialDeadline(const Watchdog* dog)
    : previous_(t_current_deadline) {
  t_current_deadline = (dog != nullptr && dog->armed()) ? dog : nullptr;
}

ScopedTrialDeadline::~ScopedTrialDeadline() {
  t_current_deadline = previous_;
}

const Watchdog* ScopedTrialDeadline::current() { return t_current_deadline; }

void install_graceful_shutdown() {
  std::signal(SIGINT, shutdown_handler);
  std::signal(SIGTERM, shutdown_handler);
}

bool shutdown_requested() { return g_shutdown_flag != 0; }

void request_shutdown() { g_shutdown_flag = 1; }

void reset_shutdown() { g_shutdown_flag = 0; }

}  // namespace scapegoat::robust
