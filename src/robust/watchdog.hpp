// Cooperative watchdog budgets and graceful-shutdown signalling.
//
// A `Budget` bounds one unit of work — wall-clock milliseconds and/or an
// iteration count, 0 meaning unlimited. A `Watchdog` is the armed form: it
// fixes the deadline at construction and long-running loops poll
// `expired()` at natural checkpoints (the simplex polls every
// kPollStride pivots). Nothing is preempted: expiry is observed, the loop
// returns whatever certificate it owns (lp::Solution keeps its basis), and
// the caller decides between retry and quarantine.
//
// `ScopedTrialDeadline` makes a watchdog ambient for the current thread so
// deep callees (the attack LPs inside an experiment trial) can honour the
// trial's budget without threading a parameter through every layer. The
// experiment runners arm one per trial attempt.
//
// Determinism note: wall-clock budgets are load-dependent, so any run that
// *fires* one is outside the bitwise cross-thread-count contract. The
// figure runners therefore default to unlimited budgets; budgets are an
// operator opt-in for production sweeps where a hung solve is worse than a
// quarantined trial (DESIGN.md §10).
//
// `install_graceful_shutdown()` registers SIGINT/SIGTERM handlers that only
// set a flag; runners poll `shutdown_requested()` between checkpoint blocks
// and return early with everything folded so far, leaving the journal
// resumable.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace scapegoat::robust {

struct Budget {
  double wall_ms = 0.0;        // 0 = unlimited
  std::size_t iterations = 0;  // 0 = unlimited; unit defined by the client

  bool unlimited() const { return wall_ms <= 0.0 && iterations == 0; }
};

class Watchdog {
 public:
  Watchdog() = default;  // disarmed: never expires
  explicit Watchdog(const Budget& budget);

  bool armed() const { return armed_; }

  // True once the wall budget is spent or `spent_iterations` exceeds the
  // iteration budget. Counts obs `watchdog.expirations` exactly once per
  // watchdog, on the first expired observation.
  bool expired(std::size_t spent_iterations = 0) const;

  double elapsed_ms() const;

  // Remaining wall budget; +inf when unlimited/disarmed, clamped at 0.
  double remaining_ms() const;

 private:
  Budget budget_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
  mutable bool reported_ = false;  // expiry counted once
};

// Installs `dog` as the calling thread's ambient deadline for the scope;
// restores the previous one on destruction (scopes nest). Pass nullptr to
// explicitly clear the ambient deadline for a scope.
class ScopedTrialDeadline {
 public:
  explicit ScopedTrialDeadline(const Watchdog* dog);
  ~ScopedTrialDeadline();
  ScopedTrialDeadline(const ScopedTrialDeadline&) = delete;
  ScopedTrialDeadline& operator=(const ScopedTrialDeadline&) = delete;

  // The innermost armed deadline of the calling thread, nullptr when none.
  static const Watchdog* current();

 private:
  const Watchdog* previous_;
};

// ---------------------------------------------------- graceful shutdown --

// Registers SIGINT/SIGTERM handlers that set an async-signal-safe flag.
// Idempotent; call once from main() before starting a checkpointed run.
void install_graceful_shutdown();

// True once SIGINT/SIGTERM arrived (or request_shutdown() was called).
bool shutdown_requested();

// Programmatic equivalent of the signals — used by tests and by drivers
// that want to stop a sweep after a quota.
void request_shutdown();

// Clears the flag (tests re-arm between cases; a driver may clear after a
// handled, fully-flushed stop).
void reset_shutdown();

}  // namespace scapegoat::robust
