#include "service/ingest_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/obs.hpp"

namespace scapegoat::service {

IngestQueue::IngestQueue(const IngestQueueOptions& opt) : opt_(opt) {
  assert(opt_.capacity > 0);
  if (opt_.high_water == 0 || opt_.high_water > opt_.capacity)
    opt_.high_water = opt_.capacity;
}

AdmitResult IngestQueue::offer(ProbeBatch&& batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return {Admission::kClosed, 0.0};
  const std::size_t depth = queue_.size();
  if (depth >= opt_.capacity) {
    // Hard limit. Candidates picked by the pure hash are shed (a replayable
    // SUBSET of the candidate set in this auto mode — see probe_batch.hpp);
    // everything else is backpressure at the maximum hint.
    if (opt_.shed.mode == ShedPolicy::Mode::kAuto &&
        is_shed_candidate(opt_.shed.seed, batch.batch_id,
                          opt_.shed.permille)) {
      obs::count("service.queue.shed");
      return {Admission::kShed, 0.0};
    }
    obs::count("service.queue.rejected");
    return {Admission::kRejected, opt_.retry_after_base_ms * 2.0};
  }
  if (depth >= opt_.high_water) {
    // Backpressure: the hint scales linearly from base at the high-water
    // mark to 2×base at capacity, so heavily loaded queues push retries
    // further out than lightly loaded ones.
    const double span = static_cast<double>(opt_.capacity - opt_.high_water);
    const double overshoot = static_cast<double>(depth - opt_.high_water);
    const double hint =
        opt_.retry_after_base_ms *
        (1.0 + (span <= 0.0 ? 1.0 : overshoot / span));
    obs::count("service.queue.rejected");
    return {Admission::kRejected, hint};
  }
  queue_.push_back(std::move(batch));
  max_depth_ = std::max(max_depth_, queue_.size());
  obs::gauge_max("service.queue.depth", static_cast<std::int64_t>(
                                            queue_.size()));
  lock.unlock();
  cv_.notify_one();
  return {Admission::kAdmitted, 0.0};
}

std::optional<ProbeBatch> IngestQueue::pop_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  ProbeBatch out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::optional<ProbeBatch> IngestQueue::pop_wait(
    const std::atomic<bool>& abort) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return closed_ || !queue_.empty() ||
           abort.load(std::memory_order_relaxed);
  });
  if (abort.load(std::memory_order_relaxed)) return std::nullopt;
  if (queue_.empty()) return std::nullopt;  // closed and drained
  ProbeBatch out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void IngestQueue::kick() { cv_.notify_all(); }

std::optional<ProbeBatch> IngestQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  ProbeBatch out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void IngestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t IngestQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_;
}

}  // namespace scapegoat::service
