// Bounded MPSC ingest queue with admission control (DESIGN.md §13).
//
// One queue per worker shard: many producers (monitor submission threads —
// in the benches, util/thread_pool workers) offer ProbeBatches, exactly one
// consumer (the shard) pops them. The queue enforces the service's overload
// ladder entirely under its own mutex, so the admission decision and the
// enqueue are atomic with respect to concurrent producers:
//
//   depth <  high_water   → kAdmitted
//   depth >= high_water   → kRejected with a retry-after hint that grows
//                           linearly with the overshoot (compose it with
//                           RetryPolicy::backoff_before's hint argument)
//   depth == capacity     → hard limit: under ShedPolicy::kAuto, shed
//                           candidates are dropped as kShed, everything
//                           else is kRejected — memory stays bounded by
//                           construction, never by luck
//
// Under ShedPolicy::kPinned the service sheds candidates before the queue
// is consulted at all (see supervisor.hpp), which is what makes the shed
// set replayable; the queue itself only ever applies the kAuto form.
//
// close() stops admissions (offers return kClosed) while letting the
// consumer drain what was already accepted: pop_wait returns the remaining
// batches, then nullopt — the graceful-drain contract.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "service/probe_batch.hpp"

namespace scapegoat::service {

struct IngestQueueOptions {
  std::size_t capacity = 1024;        // hard depth limit (bounded memory)
  std::size_t high_water = 768;       // backpressure threshold
  double retry_after_base_ms = 5.0;   // hint at depth == high_water
  ShedPolicy shed;                    // kAuto consults this at capacity
};

class IngestQueue {
 public:
  explicit IngestQueue(const IngestQueueOptions& opt);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  // Admission + enqueue, atomic under the queue lock. `batch` is consumed
  // only on kAdmitted.
  AdmitResult offer(ProbeBatch&& batch);

  // Blocks until a batch is available or the queue is closed and empty
  // (nullopt — the consumer's signal to finish up).
  std::optional<ProbeBatch> pop_wait();

  // As pop_wait, but also wakes (returning nullopt) once `abort` becomes
  // true — the supervisor's cooperative kill path for a shard that might be
  // blocked on an empty queue. Pair with kick() after setting the flag.
  std::optional<ProbeBatch> pop_wait(const std::atomic<bool>& abort);

  // Wakes any blocked consumer without changing queue state (so it can
  // re-check an external abort flag).
  void kick();

  // Non-blocking variant for supervisor-driven polling loops.
  std::optional<ProbeBatch> try_pop();

  // Stops admissions; wakes the consumer so it can drain and exit.
  void close();
  bool closed() const;

  std::size_t depth() const;
  // Highest depth ever observed — the bounded-memory witness the overload
  // soak asserts against capacity.
  std::size_t max_depth() const;
  const IngestQueueOptions& options() const { return opt_; }

 private:
  IngestQueueOptions opt_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ProbeBatch> queue_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace scapegoat::service
