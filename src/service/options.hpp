// Configuration and service-level state machine of the streaming
// probe-ingest engine (DESIGN.md §13).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/probe_batch.hpp"

namespace scapegoat::service {

// The supervisor's service-level state machine, exported through the
// `service.state` obs gauge (as the enum's integer value):
//
//   kHealthy   admissions flowing, all shards alive, queues under high water
//   kDegraded  backpressure active (some queue ≥ high water) or a shard is
//              being restarted — the service still accepts what fits
//   kShedding  some queue is at hard capacity (auto mode) or the shed
//              policy is pinned — deterministic load shedding in force
//   kDraining  stop requested (SIGTERM / drain()): admissions closed,
//              shards finishing the queued backlog, journals flushing
//   kStopped   drained and joined; terminal
enum class ServiceState {
  kHealthy,
  kDegraded,
  kShedding,
  kDraining,
  kStopped,
};

inline std::string to_string(ServiceState s) {
  switch (s) {
    case ServiceState::kHealthy:
      return "healthy";
    case ServiceState::kDegraded:
      return "degraded";
    case ServiceState::kShedding:
      return "shedding";
    case ServiceState::kDraining:
      return "draining";
    case ServiceState::kStopped:
      return "stopped";
  }
  return "unknown";
}

inline std::optional<ServiceState> service_state_from_string(
    std::string_view s) {
  for (ServiceState state :
       {ServiceState::kHealthy, ServiceState::kDegraded,
        ServiceState::kShedding, ServiceState::kDraining,
        ServiceState::kStopped}) {
    if (to_string(state) == s) return state;
  }
  return std::nullopt;
}

// Deterministic failure injection for the supervisor tests: a shard that is
// told to crash or stall on a specific batch id. `kNoBatch` disables a hook.
// The stall loop polls the shard's abort flag and the batch watchdog, so a
// stalled shard is recoverable both ways: with a per-batch budget the batch
// is quarantined and the shard moves on; without one the supervisor's
// wedge detector aborts and restarts the shard.
struct ShardFaultPlan {
  static constexpr std::uint64_t kNoBatch = ~0ull;
  std::uint64_t crash_on_batch = kNoBatch;  // throw mid-batch once
  std::uint64_t stall_on_batch = kNoBatch;  // busy-stall until abort/budget
};

struct ServiceOptions {
  // Sharding and queueing. Each shard owns the topologies with
  // `topology % shards == shard_index` and one bounded ingest queue.
  std::size_t shards = 1;
  std::size_t queue_capacity = 1024;  // hard per-queue bound
  std::size_t high_water = 768;       // backpressure threshold
  double retry_after_base_ms = 5.0;   // rejection hint at the high-water mark
  ShedPolicy shed;

  // Online Eq. 23 detection: sliding window of per-batch residual ‖y−Rx̂‖₁
  // values; every `stride` processed batches (once `window` have been seen)
  // the window's mean is thresholded against `alpha_ms` for the per-window
  // alarm. stride ≤ window; stride == window gives tumbling windows.
  std::size_t window = 8;
  std::size_t stride = 8;
  double alpha_ms = 200.0;

  // Per-batch watchdog budget (robust/watchdog); 0 = unlimited. A batch
  // that exceeds it is quarantined with an error-taxonomy code, never
  // silently dropped.
  double batch_budget_ms = 0.0;

  // Supervision cadence: health-check interval and the no-progress window
  // after which a mid-batch shard counts as wedged and is restarted.
  double supervise_interval_ms = 2.0;
  double wedge_timeout_ms = 250.0;
  std::size_t max_restarts_per_shard = 8;

  // Per-window journal (robust/checkpoint): empty disables journaling.
  // Shard k appends to `journal_path + ".shard" + k`; restart resumes from
  // the last journaled window. `resume` applies to the FIRST start — in-run
  // restarts always resume their own journal.
  std::string journal_path;
  bool resume = false;

  // Seed mixed into the journal config hash and the per-window record
  // seeds; the session/load-generator seed is derived from the same value
  // so one knob replays a whole run.
  std::uint64_t seed = 0;

  // Mid-stream measurement-path growth (absorbed via the incremental CSR
  // row append — see tomography/estimator try_append_path).
  GrowthPlan growth;

  // Test-only failure injection.
  ShardFaultPlan fault_plan;
};

}  // namespace scapegoat::service
