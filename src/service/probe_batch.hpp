// Wire types of the streaming probe-ingest service (DESIGN.md §13).
//
// A `ProbeBatch` is the unit monitors submit: one vector of end-to-end
// measurements for one topology's current path set, tagged with a globally
// unique batch id (the shedding key) and a per-topology sequence number (the
// windowing key). This header is deliberately types-plus-pure-functions only
// — the open-loop load generator (simnet/load_gen) and the service proper
// both include it without creating a link dependency between those layers.
//
// Shedding determinism contract: `is_shed_candidate` is a pure hash of
// (seed, batch_id) — the same splitmix64 finalizer the experiment engine
// uses for seed-splitting — so the candidate set for a given (seed,
// permille) is a replayable, thread-count- and shard-count-independent set,
// exactly like a robust/faults schedule. Under `ShedPolicy::Mode::kPinned`
// every candidate is shed at admission regardless of queue state, making the
// realized shed set equal to the candidate set bit for bit; under `kAuto`
// the predicate is only consulted once a queue is at its hard capacity, so
// the realized set is a timing-gated SUBSET of the candidate set (documented
// as outside the replay contract).

#pragma once

#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"

namespace scapegoat::service {

struct ProbeBatch {
  std::uint64_t batch_id = 0;  // globally unique; the shedding key
  std::uint32_t topology = 0;  // which topology stream this batch feeds
  std::uint64_t seq = 0;       // per-topology sequence number (in-order)
  Vector y;                    // per-path measurements, current path count
};

// Interleaved (round-robin over topologies) global batch id for the batch
// with per-topology sequence `seq` — shared by the load generator and any
// test that needs to predict shed fates.
inline std::uint64_t interleaved_batch_id(std::uint32_t topology,
                                          std::uint64_t seq,
                                          std::size_t num_topologies) {
  return seq * static_cast<std::uint64_t>(num_topologies) + topology;
}

// ------------------------------------------------------------- shedding --

struct ShedPolicy {
  enum class Mode {
    kOff,     // never shed; overload is pure backpressure
    kAuto,    // shed candidates only when a queue is at hard capacity
    kPinned,  // shed every candidate at admission (replayable shed set)
  };
  Mode mode = Mode::kAuto;
  std::uint64_t seed = 0;        // candidate-set seed (replay key)
  std::uint32_t permille = 125;  // candidate fraction, out of 1000
};

// Pure candidate predicate: depends only on (seed, batch_id, permille).
inline bool is_shed_candidate(std::uint64_t seed, std::uint64_t batch_id,
                              std::uint32_t permille) {
  if (permille == 0) return false;
  if (permille >= 1000) return true;
  std::uint64_t z = batch_id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z ^= seed;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z % 1000 < permille;
}

inline std::string to_string(ShedPolicy::Mode mode) {
  switch (mode) {
    case ShedPolicy::Mode::kOff:
      return "off";
    case ShedPolicy::Mode::kAuto:
      return "auto";
    case ShedPolicy::Mode::kPinned:
      return "pinned";
  }
  return "unknown";
}

// ------------------------------------------------------------ admission --

enum class Admission {
  kAdmitted,  // enqueued; will be processed or counted lost on a crash
  kRejected,  // backpressure: retry after `retry_after_ms`
  kShed,      // deterministically dropped; do not retry
  kClosed,    // service is draining/stopped; do not retry
};

struct AdmitResult {
  Admission outcome = Admission::kAdmitted;
  double retry_after_ms = 0.0;  // > 0 only for kRejected
};

inline std::string to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRejected:
      return "rejected";
    case Admission::kShed:
      return "shed";
    case Admission::kClosed:
      return "closed";
  }
  return "unknown";
}

// --------------------------------------------------------- path growth --

// Deterministic mid-stream path growth: every `every` batches a topology
// gains one more measurement path (a repeat of an existing route — a
// redundancy-adding row), up to `max_extra` of them. Both the load
// generator and the shard derive the grown path count from the same plan,
// so batch `seq`'s expected measurement width is a pure function.
struct GrowthPlan {
  std::size_t every = 0;      // 0 = growth off
  std::size_t max_extra = 4;  // cap on appended paths per topology
};

inline std::size_t grown_path_count(std::size_t base_paths,
                                    const GrowthPlan& plan,
                                    std::uint64_t seq) {
  if (plan.every == 0) return base_paths;
  const std::uint64_t steps = seq / plan.every;
  return base_paths +
         static_cast<std::size_t>(
             steps < plan.max_extra ? steps : plan.max_extra);
}

// Which existing path the k-th appended row repeats (k is 0-based among the
// extras): cycles through the base set.
inline std::size_t grown_path_source(std::size_t base_paths, std::size_t k) {
  return base_paths == 0 ? 0 : k % base_paths;
}

}  // namespace scapegoat::service
