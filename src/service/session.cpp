#include "service/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "robust/watchdog.hpp"
#include "util/random.hpp"

namespace scapegoat::service {

std::vector<Scenario> make_session_catalog(TopologyKind kind,
                                           std::size_t topologies,
                                           std::uint64_t scenario_seed) {
  std::vector<Scenario> catalog;
  catalog.reserve(topologies);
  for (std::size_t t = 0; t < topologies; ++t) {
    Rng rng(derive_seed(scenario_seed, t));
    // A draw can miss identifiability; the rng advances between attempts,
    // so retries explore new topologies while staying (seed, t)-pure.
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::optional<Scenario> scenario = make_scenario(kind, rng);
      if (scenario) {
        catalog.push_back(std::move(*scenario));
        break;
      }
    }
  }
  return catalog;
}

namespace {

struct ProducerResult {
  std::vector<std::uint64_t> shed_ids;
  std::uint64_t probes = 0;
};

void produce(std::size_t producer, std::size_t producers,
             const SessionWorkload& workload, const simnet::OpenLoopLoadGen& gen,
             ProbeIngestService& service, ProducerResult& result,
             std::atomic<bool>& interrupted) {
  struct Cursor {
    std::uint32_t topology;
    std::uint64_t next;
  };
  std::vector<Cursor> cursors;
  for (std::uint32_t t = static_cast<std::uint32_t>(producer);
       t < workload.topologies;
       t += static_cast<std::uint32_t>(producers)) {
    // At-least-once redelivery: a journal-restored service hands back the
    // ack cursor; everything before it would be deduped anyway.
    cursors.push_back({t, service.resume_seq(t)});
  }

  const std::uint64_t total = workload.load.batches_per_topology;
  for (;;) {
    bool any = false;
    // Seq-major round-robin over the owned topologies: per-topology FIFO,
    // interleaved batch ids arrive roughly in order.
    for (Cursor& c : cursors) {
      if (c.next >= total) continue;
      any = true;
      if (robust::shutdown_requested()) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      const std::uint64_t batch_id = interleaved_batch_id(
          c.topology, c.next, workload.topologies);
      result.probes += gen.make_batch(c.topology, c.next).y.size();
      std::size_t attempt = 0;
      for (;;) {
        AdmitResult admit =
            service.submit(gen.make_batch(c.topology, c.next));
        if (admit.outcome == Admission::kRejected && workload.closed_loop) {
          // Satellite-2 composition: the policy's own backoff curve floored
          // by the service's retry-after hint.
          const double wait_ms = workload.retry.backoff_before(
              ++attempt, /*remaining_deadline_ms=*/-1.0,
              admit.retry_after_ms);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(wait_ms));
          if (robust::shutdown_requested()) {
            interrupted.store(true, std::memory_order_relaxed);
            return;
          }
          continue;
        }
        if (admit.outcome == Admission::kShed)
          result.shed_ids.push_back(batch_id);
        if (admit.outcome == Admission::kClosed) return;  // draining: stop
        break;  // admitted, shed, or open-loop rejection: move on
      }
      ++c.next;
    }
    if (!any) return;
  }
}

}  // namespace

robust::Expected<SessionReport> run_service_session(
    const SessionWorkload& workload, const ServiceOptions& opt) {
  const std::vector<Scenario> catalog = make_session_catalog(
      workload.kind, workload.topologies, workload.scenario_seed);
  if (catalog.size() != workload.topologies)
    return robust::Error{robust::ErrorCode::kInvalidInput,
                         "could not draw an identifiable scenario for every "
                         "topology"};

  std::vector<const Scenario*> refs;
  std::vector<simnet::OpenLoopLoadGen::TopologyRef> gen_refs;
  for (const Scenario& s : catalog) {
    refs.push_back(&s);
    gen_refs.push_back({&s.estimator(), &s.x_true()});
  }

  ProbeIngestService service(refs, opt);
  robust::Status started = service.start();
  if (!started.ok()) return started.error();

  const simnet::OpenLoopLoadGen gen(std::move(gen_refs), workload.load);

  const std::size_t producers =
      std::max<std::size_t>(1, std::min(workload.producers,
                                        workload.topologies));
  std::vector<ProducerResult> results(producers);
  std::atomic<bool> interrupted{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p)
    threads.emplace_back([&, p] {
      produce(p, producers, workload, gen, service, results[p], interrupted);
    });
  for (std::thread& t : threads) t.join();

  service.drain();

  SessionReport report;
  report.stats = service.stats();
  report.final_state = service.state();
  report.interrupted = interrupted.load(std::memory_order_relaxed);
  for (const ProducerResult& r : results) {
    report.probes_offered += r.probes;
    report.shed_ids.insert(report.shed_ids.end(), r.shed_ids.begin(),
                           r.shed_ids.end());
  }
  std::sort(report.shed_ids.begin(), report.shed_ids.end());
  report.windows_by_topology.resize(workload.topologies);
  for (std::uint32_t t = 0; t < workload.topologies; ++t)
    report.windows_by_topology[t] = service.decisions(t);
  return report;
}

}  // namespace scapegoat::service
