// Session driver: scenarios + load generator + producers + service, wired
// together for the CLI `serve` command, the streaming bench and the tests
// (DESIGN.md §13).
//
// `run_service_session` builds `topologies` scenarios (seed-split from
// `scenario_seed`, like every experiment runner), starts a
// ProbeIngestService over them, fans the OpenLoopLoadGen batches out from
// `producers` submission threads, drains, and reports.
//
// Two producer disciplines:
//   * closed loop (default): each producer retries kRejected batches,
//     composing the service's retry-after hint with its RetryPolicy via
//     backoff_before(attempt, -1, hint) — the satellite-2 composition —
//     so every non-shed batch is eventually admitted and the window
//     decisions are complete and shard-count-independent,
//   * open loop: offer once and record the outcome — the overload shape;
//     backpressure/shedding show up in the accounting instead of in
//     retries (the bench's 2×-overload soak runs this).
//
// Producer p owns topologies t ≡ p (mod producers) and offers each
// topology's batches in seq order, so per-topology FIFO ordering holds by
// construction (the service's windows assume in-order arrival modulo
// redelivery). Each topology starts at service.resume_seq(t) — after a
// crash-restart that's the journal's ack cursor, giving at-least-once
// redelivery that the shard's dedup absorbs.

#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "robust/retry.hpp"
#include "service/supervisor.hpp"
#include "simnet/load_gen.hpp"

namespace scapegoat::service {

struct SessionWorkload {
  TopologyKind kind = TopologyKind::kWireline;
  std::size_t topologies = 2;
  std::uint64_t scenario_seed = 7;
  simnet::LoadGenOptions load;
  std::size_t producers = 1;
  bool closed_loop = true;
  robust::RetryPolicy retry;  // closed-loop backoff (hint-composed)
};

struct SessionReport {
  ServiceStats stats;
  ServiceState final_state = ServiceState::kStopped;
  bool interrupted = false;  // shutdown_requested() cut the offer loop short
  std::uint64_t probes_offered = 0;  // Σ measurement entries offered
  // Realized shed batch ids, sorted ascending — the replay witness the
  // bench compares across shard counts under a pinned policy.
  std::vector<std::uint64_t> shed_ids;
  // Per-topology emitted window decisions (journal-restored included).
  std::vector<std::vector<WindowDecision>> windows_by_topology;
};

// Builds the scenario catalog for a workload: topology t is drawn from
// Rng(derive_seed(scenario_seed, t)). Exposed so tests and the bench can
// construct the same catalog the session uses.
std::vector<Scenario> make_session_catalog(TopologyKind kind,
                                           std::size_t topologies,
                                           std::uint64_t scenario_seed);

// Runs one full session against a fresh service built from `opt`.
// kInvalidInput when no identifiable scenario could be drawn; journal
// errors propagate from ProbeIngestService::start.
robust::Expected<SessionReport> run_service_session(
    const SessionWorkload& workload, const ServiceOptions& opt);

}  // namespace scapegoat::service
