#include "service/shard.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "obs/obs.hpp"
#include "util/random.hpp"

namespace scapegoat::service {

namespace {

// Thrown when the supervisor's cooperative kill (request_abort) is honoured
// mid-batch or between batches; caught at the top of run() only.
struct ShardAbort {};

// Namespaced seed for topology-scoped journal record streams: windows and
// quarantines live in different index spaces, so each gets its own base.
std::uint64_t topology_stream_seed(std::uint64_t base, std::uint32_t topology,
                                   std::uint64_t tag) {
  return derive_seed(derive_seed(base, tag), topology);
}

constexpr std::uint64_t kWindowStreamTag = 0x77696e646f77ull;  // "window"
constexpr std::uint64_t kQuarantineStreamTag = 0x7175617261ull;  // "quara"

}  // namespace

std::string window_family(std::uint32_t topology) {
  return "w" + std::to_string(topology);
}

std::uint64_t window_record_seed(std::uint64_t base, std::uint32_t topology,
                                 std::uint64_t window_index) {
  return derive_seed(topology_stream_seed(base, topology, kWindowStreamTag),
                     window_index);
}

// ------------------------------------------------------- payload codec ---

std::string encode_window_payload(const WindowDecision& decision) {
  std::string out;
  out += "s=" + robust::encode_u64_hex(decision.next_seq);
  out += ";a=";
  out += decision.alarm ? '1' : '0';
  out += ";m=" + robust::encode_double_bits(decision.mean_residual_ms);
  out += ";r=";
  for (std::size_t i = 0; i < decision.residuals.size(); ++i) {
    if (i > 0) out += ',';
    out += robust::encode_double_bits(decision.residuals[i]);
  }
  return out;
}

std::optional<WindowDecision> decode_window_payload(
    std::uint32_t topology, std::uint64_t window_index,
    const std::string& payload) {
  std::string_view rest = payload;
  auto take = [&rest](std::string_view prefix) -> std::optional<std::string_view> {
    if (rest.substr(0, prefix.size()) != prefix) return std::nullopt;
    rest.remove_prefix(prefix.size());
    const std::size_t semi = rest.find(';');
    std::string_view field = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    return field;
  };

  WindowDecision d;
  d.topology = topology;
  d.window_index = window_index;

  const auto seq = take("s=");
  if (!seq) return std::nullopt;
  const auto seq_value = robust::decode_u64_hex(*seq);
  if (!seq_value) return std::nullopt;
  d.next_seq = *seq_value;

  const auto alarm = take("a=");
  if (!alarm || (*alarm != "0" && *alarm != "1")) return std::nullopt;
  d.alarm = *alarm == "1";

  const auto mean = take("m=");
  if (!mean) return std::nullopt;
  const auto mean_value = robust::decode_double_bits(*mean);
  if (!mean_value) return std::nullopt;
  d.mean_residual_ms = *mean_value;

  const auto residuals = take("r=");
  if (!residuals) return std::nullopt;
  std::string_view list = *residuals;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const auto value = robust::decode_double_bits(list.substr(0, comma));
    if (!value) return std::nullopt;
    d.residuals.push_back(*value);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  if (d.residuals.empty()) return std::nullopt;
  return d;
}

// --------------------------------------------------------------- shard ---

Shard::Shard(std::size_t index, IngestQueue& queue,
             const std::vector<const Scenario*>& catalog,
             const ServiceOptions& opt)
    : index_(index), queue_(queue), catalog_(catalog), opt_(opt) {
  if (!opt_.journal_path.empty())
    journal_path_ = opt_.journal_path + ".shard" + std::to_string(index_);
}

Shard::~Shard() {
  queue_.close();
  join();
}

robust::Status Shard::start() {
  join();  // idempotent; restart path joins the crashed worker first
  abort_.store(false, std::memory_order_relaxed);
  in_batch_.store(false, std::memory_order_relaxed);

  if (!journal_path_.empty()) {
    // Config-hash everything that shapes window decisions (threads and
    // queue sizing excluded — restart at a different capacity is fine).
    robust::ConfigHasher hasher;
    hasher.mix("service")
        .mix(opt_.seed)
        .mix(static_cast<std::uint64_t>(opt_.shards))
        .mix(static_cast<std::uint64_t>(opt_.window))
        .mix(static_cast<std::uint64_t>(opt_.stride))
        .mix(opt_.alpha_ms)
        .mix(static_cast<std::uint64_t>(opt_.growth.every))
        .mix(static_cast<std::uint64_t>(opt_.growth.max_extra))
        .mix(static_cast<std::uint64_t>(catalog_.size()));
    const bool resume = starts_ == 0 ? opt_.resume : true;
    auto opened = robust::CheckpointJournal::open(
        journal_path_, "service.shard" + std::to_string(index_),
        hasher.hash(), resume);
    if (!opened.ok()) return opened.error();
    journal_ = std::move(opened.value());
  }

  states_.clear();
  for (std::uint32_t t = 0; t < catalog_.size(); ++t) {
    if (t % opt_.shards != index_) continue;
    states_.emplace_back(t, catalog_[t]->estimator());
  }
  restore_states();

  ++starts_;
  phase_.store(Phase::kRunning, std::memory_order_release);
  thread_ = std::thread(&Shard::run, this);
  return robust::ok_status();
}

void Shard::restore_states() {
  if (!journal_) return;
  for (TopologyState& st : states_) {
    const std::string family = window_family(st.topology);
    for (std::uint64_t w = 0;; ++w) {
      const robust::TrialRecord* rec = journal_->find(family, w);
      if (rec == nullptr) break;
      // Cross-check the derived seed, exactly like the experiment runners:
      // a record from a differently-seeded run must not feed this one.
      if (rec->seed != window_record_seed(opt_.seed, st.topology, w)) break;
      auto decoded = decode_window_payload(st.topology, w, rec->payload);
      if (!decoded) break;
      st.decisions.push_back(std::move(*decoded));
    }
    if (st.decisions.empty()) continue;
    const WindowDecision& last = st.decisions.back();
    st.next_seq = last.next_seq;
    st.next_window = last.window_index + 1;
    st.residuals.assign(last.residuals.begin(), last.residuals.end());
    st.since_emit = 0;  // the restored window was just emitted
    obs::count("service.shard.windows_restored", st.decisions.size());
  }
}

void Shard::join() {
  if (thread_.joinable()) thread_.join();
}

Shard::TopologyState* Shard::state_for(std::uint32_t topology) {
  for (TopologyState& st : states_)
    if (st.topology == topology) return &st;
  return nullptr;
}

const Shard::TopologyState* Shard::state_for(std::uint32_t topology) const {
  for (const TopologyState& st : states_)
    if (st.topology == topology) return &st;
  return nullptr;
}

std::uint64_t Shard::resume_seq(std::uint32_t topology) const {
  const TopologyState* st = state_for(topology);
  return st == nullptr ? 0 : st->next_seq;
}

ShardCounters Shard::counters() const {
  ShardCounters c;
  c.processed = processed_.load(std::memory_order_relaxed);
  c.duplicates = duplicates_.load(std::memory_order_relaxed);
  c.malformed = malformed_.load(std::memory_order_relaxed);
  c.quarantined = quarantined_.load(std::memory_order_relaxed);
  c.windows = windows_.load(std::memory_order_relaxed);
  c.alarms = alarms_.load(std::memory_order_relaxed);
  return c;
}

const std::vector<WindowDecision>& Shard::decisions(
    std::uint32_t topology) const {
  static const std::vector<WindowDecision> kEmpty;
  const TopologyState* st = state_for(topology);
  return st == nullptr ? kEmpty : st->decisions;
}

void Shard::run() {
  try {
    while (true) {
      if (abort_.load(std::memory_order_relaxed)) throw ShardAbort{};
      std::optional<ProbeBatch> batch = queue_.pop_wait(abort_);
      if (abort_.load(std::memory_order_relaxed)) throw ShardAbort{};
      if (!batch) break;  // closed and drained: graceful exit
      in_batch_.store(true, std::memory_order_relaxed);
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
      TopologyState* st = state_for(batch->topology);
      if (st == nullptr) {
        // Mis-routed batch: counted, never silently dropped.
        malformed_.fetch_add(1, std::memory_order_relaxed);
        obs::count("service.batch.misrouted");
      } else {
        robust::Status status = process_batch(*st, *batch);
        if (!status.ok()) quarantine_batch(*st, *batch, status.error());
      }
      in_batch_.store(false, std::memory_order_relaxed);
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
    if (journal_) journal_->flush();
    phase_.store(Phase::kStopped, std::memory_order_release);
  } catch (const ShardAbort&) {
    obs::count("service.shard.aborted");
    phase_.store(Phase::kCrashed, std::memory_order_release);
  } catch (const std::exception&) {
    // Anything escaping the batch loop parks the shard for the supervisor;
    // state up to the last flushed window is safe in the journal.
    obs::count("service.shard.crashed");
    phase_.store(Phase::kCrashed, std::memory_order_release);
  }
}

robust::Status Shard::process_batch(TopologyState& st,
                                    const ProbeBatch& batch) {
  if (opt_.fault_plan.crash_on_batch == batch.batch_id && !crash_fired_) {
    crash_fired_ = true;  // once per Shard object, or restarts would loop
    throw std::runtime_error("injected shard crash");
  }
  if (batch.seq < st.next_seq) {
    // At-least-once redelivery (producer retries, post-restart replays) is
    // absorbed here: the window state already contains this batch.
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    obs::count("service.batch.duplicate");
    return robust::ok_status();
  }

  ensure_growth(st, batch.seq);
  if (batch.y.size() != st.estimator->num_paths()) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("service.batch.malformed");
    st.next_seq = batch.seq + 1;
    return robust::ok_status();
  }

  robust::Watchdog dog(robust::Budget{opt_.batch_budget_ms, 0});
  robust::ScopedTrialDeadline deadline(&dog);

  if (opt_.fault_plan.stall_on_batch == batch.batch_id) {
    // Injected wedge: recoverable through either supervision channel —
    // the batch budget (quarantine, shard lives) or the wedge detector's
    // abort (shard restarts from its journal).
    while (true) {
      if (abort_.load(std::memory_order_relaxed)) throw ShardAbort{};
      if (dog.armed() && dog.expired())
        return robust::Error{robust::ErrorCode::kIterationLimit,
                             "injected stall exceeded the batch budget"};
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  double residual_norm = 0.0;
  {
    obs::ScopedTimer timer("service.batch.solve_us");
    // Streaming hot path: x̂ via the family's streaming solve (least
    // squares: the cached pseudo-inverse, no per-batch factorization),
    // residual through the CSR product (bitwise equal to the dense one by
    // the §12 backend contract).
    const Vector x_hat = st.estimator->streaming_estimate(batch.y);
    const Vector r_hat = st.estimator->sparse_r() * x_hat;
    residual_norm = (batch.y - r_hat).norm1();
  }
  if (dog.armed() && dog.expired())
    return robust::Error{robust::ErrorCode::kIterationLimit,
                         "batch exceeded its watchdog budget"};

  st.residuals.push_back(residual_norm);
  if (st.residuals.size() > opt_.window) st.residuals.pop_front();
  st.next_seq = batch.seq + 1;
  ++st.since_emit;
  processed_.fetch_add(1, std::memory_order_relaxed);
  obs::observe("service.batch.residual_ms", residual_norm);

  if (st.residuals.size() == opt_.window && st.since_emit >= opt_.stride)
    emit_window(st);
  return robust::ok_status();
}

void Shard::ensure_growth(TopologyState& st, std::uint64_t seq) {
  const std::size_t want = grown_path_count(st.base_paths, opt_.growth, seq);
  while (st.estimator->num_paths() < want) {
    const std::size_t k = st.estimator->num_paths() - st.base_paths;
    // Copy: paths() is invalidated by the append below.
    const Path source =
        st.estimator->paths()[grown_path_source(st.base_paths, k)];
    if (!st.estimator->try_append_path(source).ok()) break;  // can't happen
    obs::count("service.paths.grown");
  }
}

void Shard::emit_window(TopologyState& st) {
  double sum = 0.0;
  for (double r : st.residuals) sum += r;

  WindowDecision d;
  d.topology = st.topology;
  d.window_index = st.next_window;
  d.next_seq = st.next_seq;
  d.mean_residual_ms = sum / static_cast<double>(st.residuals.size());
  d.alarm = d.mean_residual_ms > opt_.alpha_ms;  // Eq. 23, online form
  d.residuals.assign(st.residuals.begin(), st.residuals.end());

  if (journal_) {
    robust::TrialRecord rec;
    rec.family = window_family(st.topology);
    rec.index = d.window_index;
    rec.seed = window_record_seed(opt_.seed, st.topology, d.window_index);
    rec.payload = encode_window_payload(d);
    journal_->append(rec);
    journal_->flush();  // durability unit: one window decision
  }

  const bool alarm = d.alarm;
  st.decisions.push_back(std::move(d));
  ++st.next_window;
  st.since_emit = 0;
  windows_.fetch_add(1, std::memory_order_relaxed);
  obs::count("service.window.emitted");
  if (alarm) {
    alarms_.fetch_add(1, std::memory_order_relaxed);
    obs::count("service.window.alarm");
  }
}

void Shard::quarantine_batch(TopologyState& st, const ProbeBatch& batch,
                             const robust::Error& error) {
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  obs::count("service.batch.quarantined");
  if (journal_) {
    robust::QuarantineRecord rec;
    rec.family = "q" + std::to_string(st.topology);
    rec.index = batch.seq;
    rec.seed = derive_seed(
        topology_stream_seed(opt_.seed, st.topology, kQuarantineStreamTag),
        batch.seq);
    rec.code = error.code;
    rec.message = error.message;
    rec.attempts = 1;
    journal_->append(rec);
    journal_->flush();
  }
  // Accounted and skipped — the stream advances past the poisoned batch.
  st.next_seq = batch.seq + 1;
}

}  // namespace scapegoat::service
