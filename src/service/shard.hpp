// Worker shard of the probe-ingest service (DESIGN.md §13).
//
// A shard is the single consumer of one bounded IngestQueue. It owns the
// per-topology estimator state for every topology with
// `topology % shards == shard_index`, runs the Eq. 23 detector online over a
// sliding window of per-batch residuals, and journals every emitted window
// decision through robust/checkpoint so a crashed or wedged shard restarts
// exactly where its journal left off.
//
// Per batch (all inside the shard thread, no locks on the hot path):
//   1. dedup — `seq < next_seq` means the batch (or a retry of it) was
//      already absorbed; duplicates are counted and skipped, which makes
//      at-least-once redelivery after a restart idempotent,
//   2. growth — if the GrowthPlan says batch `seq` carries more paths than
//      the estimator currently has, the estimator absorbs duplicate routes
//      via Estimator::try_append_path (incremental CSR append),
//   3. solve — x̂ via Estimator::streaming_estimate (for least squares the
//      cached pseudo-inverse G·y: the streaming hot path never
//      re-factorizes), residual r = y − R·x̂ via the CSR product, ‖r‖₁
//      pushed into the topology's sliding window,
//   4. emit — once `window` residuals are buffered and `stride` new batches
//      arrived since the last emission, the window mean is thresholded
//      against alpha_ms and the WindowDecision is journaled + flushed.
//
// The journal payload carries the FULL window of residual bit patterns (not
// just the mean), so a restart restores the sliding window's overlap state
// bitwise and the post-restart decisions are identical to an uninterrupted
// run — the property the SIGKILL test pins.
//
// Failure envelope: a batch that exceeds the per-batch watchdog budget is
// quarantined (journaled with its error code, counted, skipped); any
// exception escaping the batch loop parks the shard in Phase::kCrashed for
// the supervisor to restart; a wedged batch (no heartbeat progress) is
// aborted cooperatively via request_abort() and likewise restarted.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "robust/checkpoint.hpp"
#include "service/ingest_queue.hpp"
#include "service/options.hpp"

namespace scapegoat::service {

// One emitted sliding-window detector decision.
struct WindowDecision {
  std::uint32_t topology = 0;
  std::uint64_t window_index = 0;  // per-topology, dense from 0
  std::uint64_t next_seq = 0;      // ack cursor after this window's batches
  double mean_residual_ms = 0.0;   // window mean of ‖y − R x̂‖₁
  bool alarm = false;              // mean > alpha_ms (Eq. 23 online)
  std::vector<double> residuals;   // the window contents, oldest first
};

// Journal payload codec for WindowDecision (doubles as 16-hex bit patterns;
// exposed for the restart tests).
std::string encode_window_payload(const WindowDecision& decision);
std::optional<WindowDecision> decode_window_payload(std::uint32_t topology,
                                                    std::uint64_t window_index,
                                                    const std::string& payload);

// Journal record family for topology `t`: per-topology index namespaces.
std::string window_family(std::uint32_t topology);
// Derived (and replay-cross-checked) seed of window record (t, w).
std::uint64_t window_record_seed(std::uint64_t base, std::uint32_t topology,
                                 std::uint64_t window_index);

// Monotonically increasing counters, readable while the shard runs.
struct ShardCounters {
  std::uint64_t processed = 0;    // batches absorbed into a window
  std::uint64_t duplicates = 0;   // seq < next_seq (redelivery) — idempotent
  std::uint64_t malformed = 0;    // wrong measurement width for seq
  std::uint64_t quarantined = 0;  // over-budget batches, journaled + skipped
  std::uint64_t windows = 0;      // decisions emitted (this process lifetime)
  std::uint64_t alarms = 0;       // decisions with alarm == true
};

class Shard {
 public:
  enum class Phase { kIdle, kRunning, kStopped, kCrashed };

  // `catalog` is the full topology list (indexed by topology id); the shard
  // filters to the ids it owns. Scenarios must outlive the shard.
  Shard(std::size_t index, IngestQueue& queue,
        const std::vector<const Scenario*>& catalog,
        const ServiceOptions& opt);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // (Re)builds per-topology state — from the journal when one is configured
  // — and spawns the worker thread. Also the restart entry point: the
  // supervisor calls start() again after a kCrashed shard is joined.
  // kIoError if the journal cannot be opened.
  robust::Status start();

  // Cooperative kill for wedged shards: the stall hooks and the batch loop
  // poll this flag; the shard parks in kCrashed for the supervisor.
  void request_abort() {
    abort_.store(true, std::memory_order_relaxed);
    queue_.kick();  // wake a consumer blocked on an empty queue
  }

  // Joins the worker thread if joinable (phase must have left kRunning or
  // the queue must be closed, or this blocks until then).
  void join();

  Phase phase() const { return phase_.load(std::memory_order_acquire); }

  // Progress witness for the wedge detector: bumped when a batch is picked
  // up and again when it completes. A shard is wedged iff it is mid-batch
  // (`in_batch()`) and the heartbeat has not moved for wedge_timeout_ms.
  std::uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }
  bool in_batch() const { return in_batch_.load(std::memory_order_relaxed); }

  // Ack cursor restored from the journal for `topology` (0 when fresh or
  // not owned) — where a redelivering producer should resume offering.
  std::uint64_t resume_seq(std::uint32_t topology) const;

  ShardCounters counters() const;

  // Emitted decisions for `topology`, journal-restored ones included.
  // Only safe to read after join() (the worker thread appends to it).
  const std::vector<WindowDecision>& decisions(std::uint32_t topology) const;

  std::size_t owned_topologies() const { return states_.size(); }
  std::size_t restarts() const { return starts_ == 0 ? 0 : starts_ - 1; }

 private:
  struct TopologyState {
    std::uint32_t topology = 0;
    // Shard-owned deep copy (any Estimator family); grows with the plan.
    std::unique_ptr<Estimator> estimator;
    std::size_t base_paths = 0;
    std::uint64_t next_seq = 0;  // dedup/ack cursor
    std::deque<double> residuals;
    std::size_t since_emit = 0;
    std::uint64_t next_window = 0;
    std::vector<WindowDecision> decisions;

    TopologyState(std::uint32_t t, const Estimator& est)
        : topology(t), estimator(est.clone()), base_paths(est.num_paths()) {}
  };

  void restore_states();
  TopologyState* state_for(std::uint32_t topology);
  const TopologyState* state_for(std::uint32_t topology) const;

  void run();
  // ok on absorbed/deduped/malformed batches; an Error means the batch must
  // be quarantined (over budget). Throws only for crash/abort.
  robust::Status process_batch(TopologyState& st, const ProbeBatch& batch);
  void ensure_growth(TopologyState& st, std::uint64_t seq);
  void emit_window(TopologyState& st);
  void quarantine_batch(TopologyState& st, const ProbeBatch& batch,
                        const robust::Error& error);

  std::size_t index_ = 0;
  IngestQueue& queue_;
  std::vector<const Scenario*> catalog_;
  ServiceOptions opt_;

  std::vector<TopologyState> states_;  // owned topologies, ascending id
  std::unique_ptr<robust::CheckpointJournal> journal_;
  std::string journal_path_;

  std::thread thread_;
  std::atomic<Phase> phase_{Phase::kIdle};
  std::atomic<bool> abort_{false};
  std::atomic<bool> in_batch_{false};
  std::atomic<std::uint64_t> heartbeat_{0};
  std::size_t starts_ = 0;
  bool crash_fired_ = false;  // injected crash fires once per Shard object

  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> alarms_{0};
};

}  // namespace scapegoat::service
