#include "service/supervisor.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"
#include "robust/watchdog.hpp"

namespace scapegoat::service {

ProbeIngestService::ProbeIngestService(
    const std::vector<const Scenario*>& catalog, const ServiceOptions& opt)
    : catalog_(catalog), opt_(opt) {
  if (opt_.shards == 0) opt_.shards = 1;
  if (opt_.stride == 0 || opt_.stride > opt_.window)
    opt_.stride = opt_.window;
}

ProbeIngestService::~ProbeIngestService() { drain(); }

robust::Status ProbeIngestService::start() {
  if (started_.load(std::memory_order_acquire)) return robust::ok_status();

  IngestQueueOptions qopt;
  qopt.capacity = opt_.queue_capacity;
  qopt.high_water = opt_.high_water;
  qopt.retry_after_base_ms = opt_.retry_after_base_ms;
  qopt.shed = opt_.shed;

  queues_.clear();
  shards_.clear();
  for (std::size_t k = 0; k < opt_.shards; ++k)
    queues_.push_back(std::make_unique<IngestQueue>(qopt));
  for (std::size_t k = 0; k < opt_.shards; ++k)
    shards_.push_back(
        std::make_unique<Shard>(k, *queues_[k], catalog_, opt_));

  for (auto& shard : shards_) {
    robust::Status status = shard->start();
    if (!status.ok()) return status;
  }

  const auto now = std::chrono::steady_clock::now();
  pulses_.clear();
  for (auto& shard : shards_) pulses_.push_back({shard->heartbeat(), now});
  restarts_used_.assign(shards_.size(), 0);

  draining_.store(false, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  publish_state(opt_.shed.mode == ShedPolicy::Mode::kPinned
                    ? ServiceState::kShedding
                    : ServiceState::kHealthy);
  supervisor_ = std::thread(&ProbeIngestService::supervise, this);
  return robust::ok_status();
}

AdmitResult ProbeIngestService::submit(ProbeBatch batch) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Pinned shedding decides FIRST — before drain state, before the queue —
  // from the pure (seed, batch_id) predicate. That ordering is the whole
  // replay guarantee: the realized shed set equals the candidate set no
  // matter how the run was sharded, loaded or interrupted.
  if (opt_.shed.mode == ShedPolicy::Mode::kPinned &&
      is_shed_candidate(opt_.shed.seed, batch.batch_id, opt_.shed.permille)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("service.shed.pinned");
    return {Admission::kShed, 0.0};
  }
  if (!started_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    closed_.fetch_add(1, std::memory_order_relaxed);
    return {Admission::kClosed, 0.0};
  }
  AdmitResult result =
      queues_[shard_of(batch.topology)]->offer(std::move(batch));
  switch (result.outcome) {
    case Admission::kAdmitted:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::kClosed:
      closed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return result;
}

void ProbeIngestService::supervise() {
  const auto interval = std::chrono::duration<double, std::milli>(
      opt_.supervise_interval_ms);
  while (!draining_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    if (robust::shutdown_requested()) {
      // SIGTERM/SIGINT: stop admissions now so shards start draining; the
      // owner's drain() (or our destructor) completes the join.
      publish_state(ServiceState::kDraining);
      for (auto& queue : queues_) queue->close();
      return;
    }
    if (draining_.load(std::memory_order_acquire)) return;

    const auto now = std::chrono::steady_clock::now();
    bool degraded = false;
    bool shedding = opt_.shed.mode == ShedPolicy::Mode::kPinned;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      Shard& shard = *shards_[k];
      const Shard::Phase phase = shard.phase();
      if (phase == Shard::Phase::kCrashed) {
        shard.join();
        if (restarts_used_[k] < opt_.max_restarts_per_shard) {
          ++restarts_used_[k];
          restarts_.fetch_add(1, std::memory_order_relaxed);
          obs::count("service.shard.restarts");
          // Resumes from the shard's own journal; a failed open (journal
          // volume gone) leaves the shard down and us degraded.
          if (!shard.start().ok()) obs::count("service.shard.restart_failed");
          pulses_[k] = {shard.heartbeat(), now};
        }
        degraded = true;  // permanently-down shards keep us degraded
      } else if (phase == Shard::Phase::kRunning && shard.in_batch()) {
        const std::uint64_t hb = shard.heartbeat();
        if (hb != pulses_[k].last_heartbeat) {
          pulses_[k] = {hb, now};
        } else if (std::chrono::duration<double, std::milli>(
                       now - pulses_[k].last_change)
                       .count() > opt_.wedge_timeout_ms) {
          // Mid-batch with no progress for the whole wedge window: abort
          // cooperatively; the crash path above restarts it next pass.
          obs::count("service.shard.wedged");
          shard.request_abort();
          pulses_[k].last_change = now;
        }
      } else {
        pulses_[k] = {shard.heartbeat(), now};
      }

      const std::size_t depth = queues_[k]->depth();
      if (depth >= queues_[k]->options().high_water) degraded = true;
      if (depth >= queues_[k]->options().capacity &&
          opt_.shed.mode == ShedPolicy::Mode::kAuto)
        shedding = true;
    }
    publish_state(shedding ? ServiceState::kShedding
                  : degraded ? ServiceState::kDegraded
                             : ServiceState::kHealthy);
  }
}

void ProbeIngestService::drain() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) {
    if (supervisor_.joinable()) supervisor_.join();
    return;
  }
  publish_state(ServiceState::kDraining);
  draining_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->close();
  if (supervisor_.joinable()) supervisor_.join();

  // Wind the shards down with the wedge detector still running: the
  // supervisor thread is gone, and a shard stalled mid-batch would
  // otherwise block this join forever.
  const auto interval = std::chrono::duration<double, std::milli>(
      opt_.supervise_interval_ms);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::uint64_t last_hb = shard.heartbeat();
    auto last_change = std::chrono::steady_clock::now();
    while (shard.phase() == Shard::Phase::kRunning) {
      std::this_thread::sleep_for(interval);
      const std::uint64_t hb = shard.heartbeat();
      const auto now = std::chrono::steady_clock::now();
      if (hb != last_hb || !shard.in_batch()) {
        last_hb = hb;
        last_change = now;
      } else if (std::chrono::duration<double, std::milli>(now - last_change)
                     .count() > opt_.wedge_timeout_ms) {
        obs::count("service.shard.wedged");
        shard.request_abort();
        last_change = now;
      }
    }
    shard.join();
  }

  // A shard that crashed mid-drain still has backlog in its closed queue;
  // restart it (within budget) so the drain finishes the queue too.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    while (shards_[k]->phase() == Shard::Phase::kCrashed &&
           restarts_used_[k] < opt_.max_restarts_per_shard) {
      ++restarts_used_[k];
      restarts_.fetch_add(1, std::memory_order_relaxed);
      obs::count("service.shard.restarts");
      if (!shards_[k]->start().ok()) break;
      shards_[k]->join();
    }
  }
  publish_state(ServiceState::kStopped);
}

bool ProbeIngestService::stopped() const {
  return state() == ServiceState::kStopped;
}

std::uint64_t ProbeIngestService::resume_seq(std::uint32_t topology) const {
  if (shards_.empty()) return 0;
  return shards_[shard_of(topology)]->resume_seq(topology);
}

const std::vector<WindowDecision>& ProbeIngestService::decisions(
    std::uint32_t topology) const {
  static const std::vector<WindowDecision> kEmpty;
  if (shards_.empty()) return kEmpty;
  return shards_[shard_of(topology)]->decisions(topology);
}

ServiceStats ProbeIngestService::stats() const {
  ServiceStats s;
  s.offered = offered_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const ShardCounters c = shard->counters();
    s.processed += c.processed;
    s.duplicates += c.duplicates;
    s.malformed += c.malformed;
    s.quarantined += c.quarantined;
    s.windows += c.windows;
    s.alarms += c.alarms;
  }
  for (const auto& queue : queues_)
    s.max_queue_depth = std::max(s.max_queue_depth, queue->max_depth());
  return s;
}

void ProbeIngestService::publish_state(ServiceState s) {
  state_.store(s, std::memory_order_release);
  obs::gauge_set("service.state", static_cast<std::int64_t>(s));
}

}  // namespace scapegoat::service
