// The probe-ingest service: shards, supervisor thread, state machine
// (DESIGN.md §13).
//
// `ProbeIngestService` owns N worker shards, each with its own bounded
// IngestQueue, plus one supervisor thread that:
//   * restarts crashed shards from their robust/checkpoint journals (up to
//     max_restarts_per_shard; beyond that the shard stays down and the
//     service reports it),
//   * detects wedged shards — mid-batch with a stale heartbeat for longer
//     than wedge_timeout_ms — and aborts them cooperatively so the restart
//     path applies,
//   * honours robust::shutdown_requested() (SIGTERM/SIGINT via
//     install_graceful_shutdown) by initiating a drain,
//   * derives the service state and exports it through the `service.state`
//     obs gauge.
//
// Admission (submit) is thread-safe and lock-free above the queue mutex:
// under ShedPolicy::kPinned the pure candidate predicate is consulted FIRST,
// before any queue or drain state, which is what makes the realized shed set
// equal to the candidate set — replayable at any shard count, thread count
// or load level. Everything else is the queue's admission ladder.
//
// drain() is the graceful-stop contract: admissions close (kClosed),
// shards finish the queued backlog, journals flush, threads join,
// state == kStopped. Every admitted batch is then accounted for:
//   admitted == processed + duplicates + malformed + quarantined
//             + lost_in_flight
// where lost_in_flight > 0 only if a shard crashed with batches popped but
// not yet journaled (re-offer from resume_seq() to recover those).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "robust/expected.hpp"
#include "service/ingest_queue.hpp"
#include "service/options.hpp"
#include "service/shard.hpp"

namespace scapegoat::service {

// Admission + processing totals, all monotone. Snapshot via stats().
struct ServiceStats {
  std::uint64_t offered = 0;    // submit() calls
  std::uint64_t admitted = 0;   // enqueued
  std::uint64_t rejected = 0;   // backpressured with a retry-after hint
  std::uint64_t shed = 0;       // deterministically dropped
  std::uint64_t closed = 0;     // refused because draining/stopped
  // Shard-side (summed over shards):
  std::uint64_t processed = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t malformed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t windows = 0;
  std::uint64_t alarms = 0;
  std::uint64_t restarts = 0;       // shard restarts performed
  std::size_t max_queue_depth = 0;  // max over shards (bounded-memory witness)

  // Batches popped by a shard that then crashed before their window was
  // journaled; 0 on a clean drain.
  std::uint64_t lost_in_flight() const {
    const std::uint64_t absorbed =
        processed + duplicates + malformed + quarantined;
    return admitted > absorbed ? admitted - absorbed : 0;
  }
};

class ProbeIngestService {
 public:
  // `catalog[t]` is topology t's scenario; must outlive the service.
  ProbeIngestService(const std::vector<const Scenario*>& catalog,
                     const ServiceOptions& opt);
  ~ProbeIngestService();

  ProbeIngestService(const ProbeIngestService&) = delete;
  ProbeIngestService& operator=(const ProbeIngestService&) = delete;

  // Starts shards and the supervisor thread. kIoError if a journal cannot
  // be opened.
  robust::Status start();

  // Thread-safe admission; see the header comment for the pinned-shed
  // ordering guarantee.
  AdmitResult submit(ProbeBatch batch);

  // Graceful stop: close admissions, drain queues, flush journals, join
  // everything. Idempotent; also runs from the destructor.
  void drain();

  // True once drain() completed (state == kStopped).
  bool stopped() const;

  ServiceState state() const {
    return state_.load(std::memory_order_acquire);
  }

  // Where a redelivering producer should resume topology t's stream after
  // a restart (the journal-restored ack cursor). Read before offering.
  std::uint64_t resume_seq(std::uint32_t topology) const;

  // Emitted window decisions for topology t (journal-restored included).
  // Stable only after drain().
  const std::vector<WindowDecision>& decisions(std::uint32_t topology) const;

  ServiceStats stats() const;

  std::size_t num_shards() const { return shards_.size(); }
  const ServiceOptions& options() const { return opt_; }

 private:
  std::size_t shard_of(std::uint32_t topology) const {
    return topology % shards_.size();
  }
  void supervise();
  void publish_state(ServiceState s);

  std::vector<const Scenario*> catalog_;
  ServiceOptions opt_;

  std::vector<std::unique_ptr<IngestQueue>> queues_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::size_t> restarts_used_;

  std::thread supervisor_;
  std::atomic<ServiceState> state_{ServiceState::kStopped};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  // Heartbeat bookkeeping for the wedge detector, supervisor thread only.
  struct Pulse {
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_change{};
  };
  std::vector<Pulse> pulses_;

  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> restarts_{0};
};

}  // namespace scapegoat::service
