// Discrete-event scheduler for the packet-level simulator.
//
// A minimal, deterministic event queue: events are (time, sequence) ordered,
// with the sequence number breaking ties in insertion order so simulations
// are reproducible regardless of heap internals. Event payloads are plain
// structs handled by the simulator's dispatch loop — no std::function
// indirection in the hot path.

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace scapegoat::simnet {

// What happens when an event fires. The simulator interprets the payload.
struct Event {
  double time_ms = 0.0;
  std::uint64_t sequence = 0;  // tie-break: FIFO among equal timestamps

  enum class Kind {
    kLinkDeparture,  // packet finishes serialization, starts propagation
    kNodeArrival,    // packet arrives at a node (possibly its destination)
    kSpawn,          // traffic source emits its next packet
    kBackground,     // cross-traffic packet occupies a link's FIFO slot
  };
  Kind kind = Kind::kNodeArrival;

  std::size_t packet = 0;  // index into the simulator's packet table
  std::size_t place = 0;   // node id or link id, depending on kind
};

class EventQueue {
 public:
  void push(Event e) {
    e.sequence = next_sequence_++;
    heap_.push(e);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  double next_time() const { return heap_.top().time_ms; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace scapegoat::simnet
