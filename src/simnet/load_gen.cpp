#include "simnet/load_gen.hpp"

#include <cassert>

#include "util/random.hpp"

namespace scapegoat::simnet {

OpenLoopLoadGen::OpenLoopLoadGen(std::vector<TopologyRef> topologies,
                                 const LoadGenOptions& opt)
    : opt_(opt) {
  clean_.reserve(topologies.size());
  base_paths_.reserve(topologies.size());
  for (const TopologyRef& ref : topologies) {
    assert(ref.estimator != nullptr && ref.x_true != nullptr);
    base_paths_.push_back(ref.estimator->num_paths());
    clean_.push_back(ref.estimator->r() * *ref.x_true);
  }
}

service::ProbeBatch OpenLoopLoadGen::make_batch(std::uint32_t topology,
                                                std::uint64_t seq) const {
  assert(topology < clean_.size());
  const Vector& y0 = clean_[topology];
  const std::size_t base = base_paths_[topology];
  const std::size_t width = service::grown_path_count(base, opt_.growth, seq);

  service::ProbeBatch batch;
  batch.topology = topology;
  batch.seq = seq;
  batch.batch_id = service::interleaved_batch_id(topology, seq, clean_.size());

  // Jitter stream owned by this batch alone — (seed, batch_id) pure.
  Rng rng(derive_seed(opt_.seed, batch.batch_id));
  batch.y = Vector(width);
  for (std::size_t i = 0; i < width; ++i) {
    // Grown paths repeat an existing route, so their clean measurement is
    // that route's y₀ entry — same rule the shard's estimator applies.
    const std::size_t source =
        i < base ? i : service::grown_path_source(base, i - base);
    batch.y[i] = y0[source] +
                 (opt_.noise_ms > 0.0 ? rng.uniform(0.0, opt_.noise_ms) : 0.0);
  }
  if (is_attack_batch(seq) && width > 0) {
    // One inflated path with every other path untouched is inconsistent
    // with ANY x (R has more rows than columns), so the window over these
    // batches trips the Eq. 23 threshold.
    batch.y[rng.index(width)] += opt_.attack_delay_ms;
  }
  return batch;
}

std::uint64_t OpenLoopLoadGen::total_probes() const {
  std::uint64_t probes = 0;
  for (std::size_t t = 0; t < clean_.size(); ++t) {
    for (std::uint64_t s = 0; s < opt_.batches_per_topology; ++s)
      probes += service::grown_path_count(base_paths_[t], opt_.growth, s);
  }
  return probes;
}

}  // namespace scapegoat::simnet
