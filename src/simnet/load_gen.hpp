// Deterministic open-loop load generator for the probe-ingest service
// (DESIGN.md §13).
//
// Synthesizes the ProbeBatch streams that monitors would emit: per topology,
// batch `seq` carries y = R·x_true plus per-path measurement jitter, with an
// optional periodic "attack" batch whose one inflated path makes the
// measurement inconsistent (R is non-square by construction, so the Eq. 23
// residual fires — the online analogue of the paper's detectability result).
//
// Every batch is a PURE function of (seed, topology, seq): the jitter Rng is
// Rng(derive_seed(seed, batch_id)), never a shared stream, so producers can
// generate batches from any thread, in any order, at any shard count, and an
// interrupted run can regenerate exactly the batches it needs to redeliver.
// Path growth follows the same GrowthPlan the service shards apply, so the
// generator's measurement width always matches the shard's estimator width.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "service/probe_batch.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat::simnet {

struct LoadGenOptions {
  std::uint64_t seed = 0;
  std::uint64_t batches_per_topology = 64;
  double noise_ms = 1.0;  // per-path jitter ~ U[0, noise_ms) (Remark 4)
  // Every `attack_every`-th batch of a topology (0 = never) carries an
  // inconsistent +attack_delay_ms on one path.
  std::uint64_t attack_every = 0;
  double attack_delay_ms = 500.0;
  service::GrowthPlan growth;  // must match the service's plan
};

class OpenLoopLoadGen {
 public:
  struct TopologyRef {
    const Estimator* estimator = nullptr;
    const Vector* x_true = nullptr;
  };

  OpenLoopLoadGen(std::vector<TopologyRef> topologies,
                  const LoadGenOptions& opt);

  std::size_t num_topologies() const { return clean_.size(); }
  const LoadGenOptions& options() const { return opt_; }

  // Batch (topology, seq) — pure, thread-safe, identical on every call.
  service::ProbeBatch make_batch(std::uint32_t topology,
                                 std::uint64_t seq) const;

  // True iff (topology, seq) is an attack batch under the options.
  bool is_attack_batch(std::uint64_t seq) const {
    return opt_.attack_every != 0 &&
           seq % opt_.attack_every == opt_.attack_every - 1;
  }

  // Total measurements (vector entries) across the whole configured run —
  // the "probes" unit the overload soak's ≥10⁶ floor is stated in.
  std::uint64_t total_probes() const;

 private:
  LoadGenOptions opt_;
  std::vector<std::size_t> base_paths_;
  std::vector<Vector> clean_;  // per-topology y₀ = R·x_true, base paths
};

}  // namespace scapegoat::simnet
