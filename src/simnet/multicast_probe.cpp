#include "simnet/multicast_probe.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <ostream>

#include "obs/obs.hpp"
#include "util/execution.hpp"
#include "util/random.hpp"

namespace scapegoat::simnet {

std::string to_string(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kUnicast:
      return "unicast";
    case ProbeMode::kMulticast:
      return "multicast";
  }
  return "?";
}

std::optional<ProbeMode> probe_mode_from_string(std::string_view s) {
  if (s == "unicast") return ProbeMode::kUnicast;
  if (s == "multicast") return ProbeMode::kMulticast;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, ProbeMode mode) {
  return os << to_string(mode);
}

namespace {

// Stream salts for the multicast schedule (disjoint from robust/faults.cpp
// so a shared master seed never couples the two planes).
constexpr std::uint64_t kMcLinkSalt = 0x3cca571111ull;  // (link, probe) pass
constexpr std::uint64_t kMcDropSalt = 0x62e7701e5ull;   // (rule, probe) coin

// Pure hash → uniform [0, 1): the faults.cpp chained-finalizer idiom, so
// the schedule depends only on (seed, salt, keys) — never on thread count
// or evaluation order.
double unit(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
            std::uint64_t b) {
  std::uint64_t s = seed ^ salt;
  s = derive_seed(a, s);
  s = derive_seed(b, s);
  s = derive_seed(0, s);
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

struct Accumulator {
  std::vector<std::size_t> reach_count;
  std::vector<std::size_t> leaf_reached;
  std::vector<std::size_t> outcome_counts;
};

}  // namespace

Vector MulticastProbeRun::leaf_loss_metrics(double floor) const {
  Vector y(leaf_reached.size());
  for (std::size_t i = 0; i < leaf_reached.size(); ++i) {
    const double pass =
        probes_sent == 0 ? 0.0
                         : static_cast<double>(leaf_reached[i]) /
                               static_cast<double>(probes_sent);
    y[i] = -std::log(std::max(pass, floor));
  }
  return y;
}

MulticastProbeRun run_multicast_probes(const MulticastTree& tree,
                                       const MulticastProbeOptions& opt) {
  assert(tree.valid());
  obs::ScopedSpan span("simnet.multicast.run");
  const std::size_t n = tree.num_nodes();
  const std::size_t leaves = tree.num_leaves();
  const bool histogram = leaves <= opt.histogram_max_leaves && leaves < 64;
  const MulticastAdversary* adv = opt.adversary;
  assert(!adv || !adv->exclusive ||
         static_cast<double>(adv->rules.size()) * adv->drop_rate <= 1.0 +
             1e-12);

  // One probe: top-down reachability (parents precede children), then the
  // leaf row feeds tomography's bottom-up γ accumulation.
  std::vector<std::size_t> leaf_index_of(n, 0);
  for (std::size_t i = 0; i < tree.leaves.size(); ++i)
    leaf_index_of[tree.leaves[i]] = i;
  const auto simulate_range = [&](std::size_t lo, std::size_t hi,
                                  Accumulator& acc) {
    std::vector<std::uint8_t> reached(n);
    std::vector<std::uint8_t> leaf_row(leaves);
    for (std::size_t p = lo; p < hi; ++p) {
      reached[0] = 1;
      // Shared exclusive coin: interval i of one uniform draw fires rule i.
      std::size_t exclusive_rule = static_cast<std::size_t>(-1);
      if (adv && adv->exclusive && adv->drop_rate > 0.0) {
        const double u = unit(opt.seed, kMcDropSalt, 0, p);
        const std::size_t slot =
            static_cast<std::size_t>(u / adv->drop_rate);
        if (slot < adv->rules.size()) exclusive_rule = slot;
      }
      for (std::size_t k = 1; k < n; ++k) {
        const MulticastTreeNode& node = tree.nodes[k];
        bool ok = reached[node.parent] != 0;
        if (ok && adv) {
          for (std::size_t r = 0; r < adv->rules.size(); ++r) {
            const GreyHoleRule& rule = adv->rules[r];
            if (rule.at != node.parent || rule.victim != k) continue;
            const bool fires =
                adv->exclusive
                    ? exclusive_rule == r
                    : adv->drop_rate > 0.0 &&
                          unit(opt.seed, kMcDropSalt, r + 1, p) <
                              adv->drop_rate;
            if (fires) {
              ok = false;
              break;
            }
          }
        }
        if (ok && !opt.link_delivery.empty()) {
          for (LinkId l : node.chain) {
            assert(l < opt.link_delivery.size());
            if (unit(opt.seed, kMcLinkSalt, l, p) >= opt.link_delivery[l]) {
              ok = false;
              break;
            }
          }
        }
        reached[k] = ok ? 1 : 0;
      }
      std::size_t outcome_bits = 0;
      for (std::size_t i = 0; i < leaves; ++i) {
        leaf_row[i] = reached[tree.leaves[i]];
        if (leaf_row[i]) {
          ++acc.leaf_reached[i];
          outcome_bits |= std::size_t{1} << i;
        }
      }
      accumulate_gamma_counts(tree, leaf_row, acc.reach_count);
      if (histogram) ++acc.outcome_counts[outcome_bits];
    }
  };

  const auto make_acc = [&] {
    Accumulator acc;
    acc.reach_count.assign(n, 0);
    acc.leaf_reached.assign(leaves, 0);
    acc.outcome_counts.assign(histogram ? (std::size_t{1} << leaves) : 0, 0);
    return acc;
  };

  Accumulator total = make_acc();
  if (opt.threads <= 1) {
    simulate_range(0, opt.probes, total);
  } else {
    // Fixed-size chunks keyed by probe index; per-chunk accumulators fold
    // in chunk order. The fates are pure hashes, so the partition cannot
    // change any count — the fold order is pinned anyway to keep the
    // contract auditable (test_multicast_probe diffs 1/2/4/8 workers).
    const std::size_t chunk = std::max<std::size_t>(
        1, (opt.probes + opt.threads - 1) / opt.threads);
    const std::size_t chunks = (opt.probes + chunk - 1) / chunk;
    std::vector<Accumulator> partial(chunks);
    ExecutionPolicy exec(opt.threads, /*grain=*/1, opt.seed);
    std::unique_ptr<ThreadPool> owned;
    ThreadPool& pool = acquire_pool(exec, owned);
    pool.parallel_for(0, chunks, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t c = lo; c < hi; ++c) {
        partial[c] = make_acc();
        simulate_range(c * chunk, std::min(opt.probes, (c + 1) * chunk),
                       partial[c]);
      }
    });
    for (const Accumulator& acc : partial) {
      for (std::size_t k = 0; k < n; ++k)
        total.reach_count[k] += acc.reach_count[k];
      for (std::size_t i = 0; i < leaves; ++i)
        total.leaf_reached[i] += acc.leaf_reached[i];
      for (std::size_t o = 0; o < total.outcome_counts.size(); ++o)
        total.outcome_counts[o] += acc.outcome_counts[o];
    }
  }

  MulticastProbeRun run;
  run.probes_sent = opt.probes;
  run.obs.probes = opt.probes;
  run.obs.reach_count = std::move(total.reach_count);
  run.leaf_reached = std::move(total.leaf_reached);
  run.outcome_counts = std::move(total.outcome_counts);
  obs::count("simnet.multicast.probes", opt.probes);
  return run;
}

}  // namespace scapegoat::simnet
