// Multicast probe mode for the measurement-plane simulator.
//
// A monitor at the root of a logical MulticastTree multicasts probes; every
// physical link passes each probe independently with its delivery
// probability, and a grey-hole adversary sitting at a tree node may drop
// the copy forwarded into a chosen child subtree — the selective-forwarding
// attack that frames the victim logical link (attack/loss_scapegoat.hpp).
//
// Determinism contract: every per-(link, probe) pass decision and every
// per-(rule, probe) adversary coin is a pure hash of (seed, salt, keys) —
// the same chained derive_seed construction as robust/faults.cpp — so the
// schedule is independent of evaluation order and thread count. The probe
// range is chunked across the pool and the integer OR-counts fold in chunk
// order; test_multicast_probe pins bitwise equality at 1/2/4/8 workers.
//
// ProbeMode names the measurement channel an experiment feeds its defender:
// kMulticast delivers the joint OR-counts (the correlation evidence the MLE
// residual needs), kUnicast only the per-leaf marginal pass rates — the
// loss-domain ablation's knob for "how much does correlation buy".

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "tomography/multicast_mle.hpp"

namespace scapegoat::simnet {

enum class ProbeMode { kUnicast, kMulticast };

std::string to_string(ProbeMode mode);
std::optional<ProbeMode> probe_mode_from_string(std::string_view s);
std::ostream& operator<<(std::ostream& os, ProbeMode mode);

// One grey-hole rule: the adversary at tree node `at` drops the probe copy
// forwarded into child subtree `victim` (a tree index with parent == at).
struct GreyHoleRule {
  std::size_t at = 0;
  std::size_t victim = 0;
};

struct MulticastAdversary {
  std::vector<GreyHoleRule> rules;
  double drop_rate = 0.0;  // per-probe firing probability of each rule
  // false: every rule draws its own independent per-probe coin — the drops
  //   mimic i.i.d. link loss and stay consistent with the tree model.
  // true: one coin per probe selects AT MOST one rule to fire (disjoint
  //   intervals of a shared uniform draw; requires rules·rate ≤ 1). The
  //   anti-correlation across sibling subtrees is what no per-link loss
  //   assignment can reproduce — the detectable framing variant.
  bool exclusive = false;
};

struct MulticastProbeOptions {
  std::size_t probes = 1000;
  std::uint64_t seed = 0;
  // Per-physical-link delivery probability, indexed by LinkId; empty means
  // every link delivers with probability 1.
  std::vector<double> link_delivery;
  const MulticastAdversary* adversary = nullptr;
  std::size_t threads = 0;  // 0/1 = serial; >1 = dedicated pool fan-out
  // Record the full 2^leaves outcome histogram up to this many leaves (the
  // brute-force oracle's input); larger trees skip it.
  std::size_t histogram_max_leaves = 12;
};

struct MulticastProbeRun {
  MulticastObservation obs;                // per-node OR counts
  std::vector<std::size_t> leaf_reached;   // per leaf (leaves order)
  std::vector<std::size_t> outcome_counts; // 2^leaves histogram, maybe empty
  std::size_t probes_sent = 0;

  // Empirical per-leaf loss metrics −log(max(γ̂_leaf, floor)), in tree leaf
  // order — the y the estimator interface consumes.
  Vector leaf_loss_metrics(double floor = 1e-9) const;
};

// Runs `opt.probes` multicast probes down the tree. The per-probe leaf
// reachability row feeds tomography's bottom-up accumulate_gamma_counts, so
// the observation is exactly the γ recursion's data pass.
MulticastProbeRun run_multicast_probes(const MulticastTree& tree,
                                       const MulticastProbeOptions& opt);

}  // namespace scapegoat::simnet
