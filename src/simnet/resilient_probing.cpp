#include "simnet/resilient_probing.hpp"

#include <algorithm>

namespace scapegoat::simnet {

robust::DegradedMeasurement probe_with_retries(
    Simulator& sim, const std::vector<Path>& paths, const ProbeOptions& base,
    const robust::FaultInjector& faults, const robust::RetryPolicy& policy,
    ResilientProbeStats* stats) {
  const std::size_t n = paths.size();
  std::vector<std::vector<double>> samples(n);
  ResilientProbeStats acc;
  std::vector<bool> missing_after_first(n, false);

  // Every round probes the full path set (per-round fault decisions are
  // keyed by path index, so subsetting would re-key them): already-measured
  // paths collect extra samples for the median, unmeasured ones get their
  // retry. Rounds stop as soon as every path has at least one sample.
  for (std::size_t attempt = 0; attempt < policy.attempts(); ++attempt) {
    ProbeOptions opt = base;
    opt.faults = &faults;
    opt.fault_attempt = attempt;
    opt.probe_deadline_ms = policy.deadline_for(attempt);
    acc.backoff_wait_ms += policy.backoff_before(attempt);

    const ProbeRun run = sim.run_probes(paths, opt);
    ++acc.attempts_used;
    for (std::size_t p = 0; p < n; ++p) {
      const PathMeasurement& m = run.per_path[p];
      acc.probes_sent += m.sent;
      acc.probes_timed_out += m.timed_out;
      acc.probes_lost += m.sent - m.delivered - m.timed_out;
      if (m.measured()) samples[p].push_back(m.mean_delay_ms());
    }
    if (attempt == 0) {
      for (std::size_t p = 0; p < n; ++p)
        missing_after_first[p] = samples[p].empty();
    }
    const bool all_measured = std::none_of(
        samples.begin(), samples.end(),
        [](const std::vector<double>& s) { return s.empty(); });
    if (all_measured) break;
  }

  robust::DegradedMeasurement out;
  out.y = Vector(n);
  out.measured.assign(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    if (samples[p].empty()) {
      ++acc.paths_missing;
      continue;
    }
    out.measured[p] = true;
    out.y[p] = robust::median(samples[p]);
    if (missing_after_first[p]) ++acc.paths_recovered;
  }
  if (stats != nullptr) *stats = acc;
  return out;
}

}  // namespace scapegoat::simnet
