// Retry-driven measurement on top of the packet simulator.
//
// `probe_with_retries` closes the loop the robustness layer needs: it runs
// probe rounds under a deterministic fault schedule, re-probing paths that
// have not yet produced a usable sample, with exponentially growing
// per-probe deadlines (the DES-observable form of backoff). Each round
// contributes one sample — that round's mean delivered delay — per path it
// measured, and the final per-path value is the median of its samples
// (median-of-retries: one round measured through a transient fault cannot
// drag the reported delay). Paths that never deliver a probe within the
// attempt budget come back *missing* in the DegradedMeasurement, never as a
// silent zero.

#pragma once

#include <vector>

#include "robust/degraded.hpp"
#include "robust/faults.hpp"
#include "robust/retry.hpp"
#include "simnet/simulator.hpp"

namespace scapegoat::simnet {

struct ResilientProbeStats {
  std::size_t attempts_used = 0;    // probe rounds actually run
  std::size_t probes_sent = 0;      // over all rounds
  std::size_t probes_lost = 0;      // vanished in transit (all rounds)
  std::size_t probes_timed_out = 0; // arrived past the round's deadline
  std::size_t paths_recovered = 0;  // missing after round 0, measured later
  std::size_t paths_missing = 0;    // still unmeasured after all rounds
  double backoff_wait_ms = 0.0;     // nominal wall-clock spent backing off
};

// Measures `paths` with up to `policy.attempts()` rounds. Fault decisions
// are salted by the round index, so the schedule stays a pure function of
// (injector seed, path, probe, round) — deterministic at any thread count.
robust::DegradedMeasurement probe_with_retries(
    Simulator& sim, const std::vector<Path>& paths, const ProbeOptions& base,
    const robust::FaultInjector& faults, const robust::RetryPolicy& policy,
    ResilientProbeStats* stats = nullptr);

}  // namespace scapegoat::simnet
