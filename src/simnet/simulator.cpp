#include "simnet/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scapegoat::simnet {

ManipulationAdversary::ManipulationAdversary(std::vector<NodeId> attackers,
                                             Vector per_path_delay)
    : m_(std::move(per_path_delay)) {
  NodeId max_node = 0;
  for (NodeId a : attackers) max_node = std::max(max_node, a);
  malicious_.assign(max_node + 1, false);
  for (NodeId a : attackers) malicious_[a] = true;
}

bool ManipulationAdversary::is_malicious(NodeId node) const {
  return node < malicious_.size() && malicious_[node];
}

double ManipulationAdversary::hold_ms(std::size_t path_index) const {
  return path_index < m_.size() ? m_[path_index] : 0.0;
}

DropAdversary::DropAdversary(std::vector<NodeId> attackers,
                             std::vector<double> drop_prob_per_path)
    : drop_prob_(std::move(drop_prob_per_path)) {
  NodeId max_node = 0;
  for (NodeId a : attackers) max_node = std::max(max_node, a);
  malicious_.assign(max_node + 1, false);
  for (NodeId a : attackers) malicious_[a] = true;
}

bool DropAdversary::is_malicious(NodeId node) const {
  return node < malicious_.size() && malicious_[node];
}

bool DropAdversary::drop(std::size_t path_index, Rng& rng) const {
  const double p =
      path_index < drop_prob_.size() ? drop_prob_[path_index] : 0.0;
  return p > 0.0 && rng.bernoulli(p);
}

Vector ProbeRun::mean_delays() const {
  Vector y(per_path.size());
  for (std::size_t i = 0; i < per_path.size(); ++i)
    y[i] = per_path[i].mean_delay_ms();
  return y;
}

Vector ProbeRun::loss_metrics() const {
  Vector y(per_path.size());
  for (std::size_t i = 0; i < per_path.size(); ++i) {
    const double ratio = per_path[i].delivery_ratio();
    // Clamp so a fully-dropped path yields a large finite metric instead of
    // infinity (keeps the linear solve well-defined).
    y[i] = -std::log(std::max(ratio, 1e-9));
  }
  return y;
}

std::size_t ProbeRun::missing_paths() const {
  std::size_t n = 0;
  for (const PathMeasurement& m : per_path)
    if (!m.measured()) ++n;
  return n;
}

Simulator::Simulator(const Graph& g, std::vector<LinkModel> links,
                     const Adversary& adversary, Rng& rng)
    : g_(g), links_(std::move(links)), adversary_(adversary), rng_(rng) {
  assert(links_.size() == g_.num_links());
}

ProbeRun Simulator::run_probes(const std::vector<Path>& paths,
                               const ProbeOptions& opt) {
  assert(opt.link_delivery_prob.empty() ||
         opt.link_delivery_prob.size() == g_.num_links());

  struct Packet {
    std::size_t path = 0;
    std::size_t hop = 0;  // next link index within the path
    std::size_t seq = 0;  // probe index within the path (fault keys)
    double sent_time = 0.0;
    bool attacked = false;  // adversary already acted on this packet
  };
  std::vector<Packet> packets;

  ProbeRun run;
  run.per_path.assign(paths.size(), PathMeasurement{});

  EventQueue queue;
  events_processed_ = 0;

  const robust::FaultInjector* faults = opt.faults;

  // Schedule all probe spawns. Paths whose endpoint monitor is down under
  // the fault schedule send nothing at all — the path degrades to missing.
  for (std::size_t p = 0; p < paths.size(); ++p) {
    assert(is_valid_simple_path(g_, paths[p]));
    if (faults != nullptr && (faults->monitor_down(paths[p].source()) ||
                              faults->monitor_down(paths[p].destination()))) {
      run.per_path[p].monitor_down = true;
      continue;
    }
    for (std::size_t k = 0; k < opt.probes_per_path; ++k) {
      Event e;
      e.kind = Event::Kind::kSpawn;
      e.time_ms = static_cast<double>(p) * opt.path_stagger_ms +
                  static_cast<double>(k) * opt.probe_spacing_ms;
      e.packet = packets.size();
      packets.push_back(Packet{p, 0, k, 0.0, false});
      queue.push(e);
    }
  }

  // Cross-traffic reservations: background packets that occupy a link's
  // FIFO for one service slot each (no routing — they exist to perturb
  // probe timing the way routine traffic does).
  for (LinkId l = 0; l < g_.num_links() && opt.background_packets_per_link > 0;
       ++l) {
    for (std::size_t k = 0; k < opt.background_packets_per_link; ++k) {
      Event e;
      e.kind = Event::Kind::kBackground;
      e.time_ms = rng_.uniform(0.0, opt.background_window_ms);
      e.place = l;
      queue.push(e);
    }
  }

  // FIFO state per link: when the transmitter frees up.
  std::vector<double> link_free(g_.num_links(), 0.0);

  auto start_transmission = [&](std::size_t packet_id, double now) {
    Packet& pkt = packets[packet_id];
    const Path& path = paths[pkt.path];
    const LinkId link = path.links[pkt.hop];
    const LinkModel& model = links_[link];

    // Injected link failure: a failed link delivers nothing all run.
    if (faults != nullptr && faults->link_failed(link)) return;

    // Loss channel.
    if (!opt.link_delivery_prob.empty() &&
        !rng_.bernoulli(opt.link_delivery_prob[link])) {
      return;  // packet vanishes on this link
    }

    const double departure = std::max(now, link_free[link]) + model.service_ms;
    link_free[link] = departure;
    double arrival = departure + model.propagation_ms;
    if (opt.jitter_ms > 0.0) arrival += rng_.uniform(0.0, opt.jitter_ms);

    Event e;
    e.kind = Event::Kind::kNodeArrival;
    e.time_ms = arrival;
    e.packet = packet_id;
    e.place = path.nodes[pkt.hop + 1];
    ++pkt.hop;
    queue.push(e);
  };

  while (!queue.empty()) {
    const Event e = queue.pop();
    ++events_processed_;
    if (e.kind == Event::Kind::kBackground) {
      const LinkId link = e.place;
      link_free[link] =
          std::max(e.time_ms, link_free[link]) + links_[link].service_ms;
      continue;
    }
    Packet& pkt = packets[e.packet];
    const Path& path = paths[pkt.path];

    switch (e.kind) {
      case Event::Kind::kSpawn: {
        pkt.sent_time = e.time_ms;
        ++run.per_path[pkt.path].sent;
        // Injected transit loss: the probe counts as sent but vanishes.
        if (faults != nullptr &&
            faults->probe_lost(pkt.path, pkt.seq, opt.fault_attempt)) {
          break;
        }
        start_transmission(e.packet, e.time_ms);
        break;
      }
      case Event::Kind::kNodeArrival: {
        const NodeId node = e.place;
        if (node == path.destination()) {
          PathMeasurement& m = run.per_path[pkt.path];
          double delay = e.time_ms - pkt.sent_time;
          if (faults != nullptr) {
            // Reordered delivery: the probe is held past its successors and
            // the monitor records the late arrival.
            if (faults->probe_reordered(pkt.path, pkt.seq,
                                        opt.fault_attempt)) {
              delay += faults->spec().reorder_extra_ms;
              ++m.reordered;
            }
            // Measurement-clock jitter on the recorded value only.
            delay = std::max(
                0.0, delay + faults->clock_jitter(pkt.path, pkt.seq,
                                                  opt.fault_attempt));
          }
          if (opt.probe_deadline_ms > 0.0 && delay > opt.probe_deadline_ms) {
            ++m.timed_out;  // arrived, but past the deadline: unusable
            break;
          }
          ++m.delivered;
          m.total_delay_ms += delay;
          // Duplicated delivery: the monitor dedups by probe sequence
          // number, so duplicates are observable but don't skew the mean.
          if (faults != nullptr &&
              faults->probe_duplicated(pkt.path, pkt.seq,
                                       opt.fault_attempt)) {
            ++m.duplicates;
          }
          break;
        }
        // Adversarial action at the first malicious hop.
        if (!pkt.attacked && adversary_.is_malicious(node)) {
          pkt.attacked = true;
          if (adversary_.drop(pkt.path, rng_)) break;  // packet discarded
          const double hold = adversary_.hold_ms(pkt.path);
          if (hold > 0.0) {
            // Re-schedule the arrival at release time rather than starting
            // the transmission with a future timestamp now — doing the
            // latter would reserve the link's FIFO ahead of simulation time
            // and block probes that arrive in between.
            Event release = e;
            release.time_ms = e.time_ms + hold;
            queue.push(release);
            break;
          }
        }
        start_transmission(e.packet, e.time_ms);
        break;
      }
      case Event::Kind::kLinkDeparture:
      case Event::Kind::kBackground:
        // Departures are folded into start_transmission's FIFO bookkeeping;
        // background events are handled before the packet lookup above.
        break;
    }
  }
  return run;
}

}  // namespace scapegoat::simnet
