// Packet-level discrete-event network simulator.
//
// The algebraic model (y′ = y + m) assumes the attacker can add exact
// per-path delays; this simulator grounds that in packet mechanics the way
// the paper's experiments describe them: probe packets traverse their
// measurement path hop by hop, each link contributes its propagation delay
// (the tomography link metric) plus FIFO serialization, malicious nodes
// hold or drop packets that visit them, and the monitors measure what
// actually arrives. `ProbeRun` aggregates per-path delay and delivery
// statistics that feed straight into the estimator.
//
// Scope decisions (documented, deliberate):
//   * probes are the only traffic; cross-traffic is modeled as optional
//     uniform per-link jitter rather than simulated flows (the paper folds
//     "routine traffic" into the random link metric the same way),
//   * a malicious node acts once per packet — at the first malicious hop —
//     holding it for the adversary's per-path delay or dropping it,
//   * links are bidirectional with a shared FIFO (one transmission at a
//     time), service time per packet is configurable and small relative to
//     propagation.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "robust/faults.hpp"
#include "simnet/event_queue.hpp"
#include "util/random.hpp"

namespace scapegoat::simnet {

struct LinkModel {
  double propagation_ms = 1.0;   // the tomography link metric
  double service_ms = 0.0;       // per-packet serialization (FIFO)
};

// Attacker behavior, consulted when a packet reaches a malicious node.
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual bool is_malicious(NodeId node) const = 0;

  // Extra hold applied to a probe of measurement path `path_index` at its
  // first malicious hop.
  virtual double hold_ms(std::size_t path_index) const = 0;

  // Whether to drop the probe instead (checked before holding).
  virtual bool drop(std::size_t path_index, Rng& rng) const = 0;
};

// No attackers at all.
class NullAdversary final : public Adversary {
 public:
  bool is_malicious(NodeId) const override { return false; }
  double hold_ms(std::size_t) const override { return 0.0; }
  bool drop(std::size_t, Rng&) const override { return false; }
};

// The paper's manipulation-vector semantics: attacker nodes delay probes of
// path i by m_i in total (applied at the first malicious hop). Constraint 1
// is inherent: paths without a malicious node are untouched.
class ManipulationAdversary final : public Adversary {
 public:
  ManipulationAdversary(std::vector<NodeId> attackers, Vector per_path_delay);

  bool is_malicious(NodeId node) const override;
  double hold_ms(std::size_t path_index) const override;
  bool drop(std::size_t, Rng&) const override { return false; }

 private:
  std::vector<bool> malicious_;
  Vector m_;
};

// Grey-hole attacker: drops probes of selected paths with a probability
// (used by the loss-metric experiments); cooperative elsewhere.
class DropAdversary final : public Adversary {
 public:
  DropAdversary(std::vector<NodeId> attackers,
                std::vector<double> drop_prob_per_path);

  bool is_malicious(NodeId node) const override;
  double hold_ms(std::size_t) const override { return 0.0; }
  bool drop(std::size_t path_index, Rng& rng) const override;

 private:
  std::vector<bool> malicious_;
  std::vector<double> drop_prob_;
};

struct ProbeOptions {
  std::size_t probes_per_path = 1;
  double probe_spacing_ms = 1.0;   // gap between probes of the same path
  double path_stagger_ms = 0.0;    // start-time offset between paths
  double jitter_ms = 0.0;          // uniform [0, jitter) extra per link hop
  // Per-link delivery probability (loss channel); empty = lossless.
  std::vector<double> link_delivery_prob;
  // Cross traffic: this many background packets per link, at uniform random
  // times in [0, background_window_ms), each occupying the link FIFO for
  // one service time. Only observable when LinkModel::service_ms > 0.
  std::size_t background_packets_per_link = 0;
  double background_window_ms = 100.0;
  // Optional deterministic fault schedule (robust/faults.hpp). Null means
  // fault-free; the RNG draw sequence is then identical to a build without
  // the fault layer, so pre-existing seeds reproduce bit-for-bit.
  const robust::FaultInjector* faults = nullptr;
  // Retry round this run belongs to: salts per-probe fault decisions so a
  // re-sent probe draws a fresh (still deterministic) fate.
  std::uint64_t fault_attempt = 0;
  // Per-probe deadline: a probe whose measured delay exceeds this counts as
  // timed out, not delivered. 0 disables the deadline.
  double probe_deadline_ms = 0.0;
};

struct PathMeasurement {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  double total_delay_ms = 0.0;  // over delivered probes
  // Degraded-delivery accounting (all zero in fault-free runs).
  std::size_t timed_out = 0;    // arrived past the probe deadline
  std::size_t duplicates = 0;   // extra copies the monitor deduplicated
  std::size_t reordered = 0;    // delivered behind a later-sent probe
  bool monitor_down = false;    // endpoint monitor was out; nothing sent

  double mean_delay_ms() const {
    return delivered == 0 ? 0.0 : total_delay_ms / delivered;
  }
  double delivery_ratio() const {
    return sent == 0 ? 0.0 : static_cast<double>(delivered) / sent;
  }
  // A path is measured only when at least one probe survived end to end.
  bool measured() const { return delivered > 0; }
};

struct ProbeRun {
  std::vector<PathMeasurement> per_path;

  // y′ vector of mean end-to-end delays (0 where nothing arrived).
  Vector mean_delays() const;
  // −log(delivery ratio) per path: the additive loss metric (§II-A).
  Vector loss_metrics() const;
  // Paths with no delivered probe (lost, timed out, or monitor down).
  std::size_t missing_paths() const;
};

class Simulator {
 public:
  // `links` must have one model per graph link (propagation = link metric).
  Simulator(const Graph& g, std::vector<LinkModel> links,
            const Adversary& adversary, Rng& rng);

  // Sends probes along each measurement path and collects statistics.
  ProbeRun run_probes(const std::vector<Path>& paths,
                      const ProbeOptions& opt);

  // Total simulated events in the last run (observability/testing).
  std::size_t events_processed() const { return events_processed_; }

 private:
  const Graph& g_;
  std::vector<LinkModel> links_;
  const Adversary& adversary_;
  Rng& rng_;
  std::size_t events_processed_ = 0;
};

}  // namespace scapegoat::simnet
