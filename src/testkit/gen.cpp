#include "testkit/gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "topology/generators.hpp"

namespace scapegoat::testkit {

Graph gen_connected_graph(Source& src, std::size_t min_nodes,
                          std::size_t max_nodes,
                          std::size_t max_extra_links) {
  const std::size_t n =
      min_nodes + static_cast<std::size_t>(src.choice(max_nodes - min_nodes));
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_link(v, src.index(v));
  const std::size_t extra =
      static_cast<std::size_t>(src.choice(max_extra_links));
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId u = src.index(n);
    const NodeId v = src.index(n);
    g.add_link(u, v);  // self-loops/duplicates rejected by Graph
  }
  return g;
}

Matrix gen_matrix(Source& src, std::size_t rows, std::size_t cols) {
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = src.grid(0.25, 16);
  return a;
}

Matrix gen_matrix_with_rank(Source& src, std::size_t rows, std::size_t cols,
                            std::size_t rank, double cond_decades) {
  rank = std::min({rank, rows, cols});
  // A = B·C with B (rows×rank) and C (rank×cols). The leading rank×rank
  // blocks are made strictly diagonally dominant, which certifies both
  // factors have rank `rank`, hence so does the product.
  Matrix b(rows, rank), c(rank, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < rank; ++j) b(i, j) = src.grid(0.125, 8);
  for (std::size_t i = 0; i < rank; ++i)
    for (std::size_t j = 0; j < cols; ++j) c(i, j) = src.grid(0.125, 8);
  for (std::size_t k = 0; k < rank; ++k) {
    double dom_b = 1.0, dom_c = 1.0;
    for (std::size_t j = 0; j < rank; ++j) dom_b += std::abs(b(k, j));
    for (std::size_t j = 0; j < cols; ++j) dom_c += std::abs(c(k, j));
    b(k, k) = dom_b;
    // Conditioning knob: grade the k-th "singular direction" down by up to
    // cond_decades decades.
    const double scale =
        rank > 1 ? std::pow(10.0, -cond_decades * static_cast<double>(k) /
                                      static_cast<double>(rank - 1))
                 : 1.0;
    c(k, k) = dom_c;
    for (std::size_t j = 0; j < cols; ++j) c(k, j) *= scale;
  }
  return b * c;
}

Matrix gen_routing_matrix(Source& src, std::size_t paths, std::size_t links) {
  Matrix r(paths, links);
  for (std::size_t i = 0; i < paths; ++i) {
    for (std::size_t j = 0; j < links; ++j)
      r(i, j) = src.maybe(0.35) ? 1.0 : 0.0;
    // A measurement path crosses at least one link.
    r(i, src.index(links)) = 1.0;
  }
  return r;
}

Matrix gen_full_rank_routing_matrix(Source& src, std::size_t links,
                                    std::size_t extra_paths) {
  Matrix r(links + extra_paths, links);
  for (std::size_t j = 0; j < links; ++j) r(j, j) = 1.0;
  for (std::size_t i = 0; i < extra_paths; ++i) {
    for (std::size_t j = 0; j < links; ++j)
      r(links + i, j) = src.maybe(0.35) ? 1.0 : 0.0;
    r(links + i, src.index(links)) = 1.0;  // no all-zero rows
  }
  return r;
}

Vector gen_vector(Source& src, std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = src.grid(0.25, 32);
  return v;
}

lp::Model gen_lp_model(Source& src, const LpModelLimits& limits) {
  const std::size_t nv = 1 + src.index(limits.max_vars);
  const std::size_t nc =
      static_cast<std::size_t>(src.choice(limits.max_constraints));
  lp::Model model(src.maybe(0.5) ? lp::Sense::kMinimize
                                 : lp::Sense::kMaximize);
  for (std::size_t j = 0; j < nv; ++j) {
    // Finite box on every variable keeps the feasible set a polytope — the
    // contract the vertex-enumeration oracle needs.
    const double lower = src.grid(0.5, 8);
    const double width = src.grid_nonneg(0.5, 12);
    model.add_variable(lower, lower + width,
                       src.grid(limits.coeff_step, limits.coeff_steps));
  }
  for (std::size_t i = 0; i < nc; ++i) {
    std::vector<lp::Term> terms;
    for (std::size_t j = 0; j < nv; ++j) {
      const double coeff = src.grid(limits.coeff_step, limits.coeff_steps);
      if (coeff != 0.0) terms.push_back({j, coeff});
    }
    const double rhs = src.grid(0.5, 20);
    lp::RowType type = lp::RowType::kLessEqual;
    switch (src.choice(2)) {
      case 1:
        type = lp::RowType::kGreaterEqual;
        break;
      case 2:
        type = lp::RowType::kEqual;
        break;
      default:
        break;
    }
    if (terms.empty()) continue;  // vacuous row: 0 ⋛ rhs tells us nothing
    model.add_constraint(std::move(terms), type, rhs);
  }
  return model;
}

Rng gen_rng(Source& src) {
  return Rng(src.choice(0xffffffffull));
}

std::optional<Scenario> gen_er_scenario(Source& src, std::size_t n, double p) {
  Rng rng = gen_rng(src);
  return Scenario::from_graph(erdos_renyi(n, p, rng), rng);
}

std::optional<Scenario> gen_scenario(Source& src, std::size_t min_nodes,
                                     std::size_t max_nodes) {
  Graph g = gen_connected_graph(src, min_nodes, max_nodes);
  Rng rng = gen_rng(src);
  return Scenario::from_graph(std::move(g), rng);
}

std::vector<NodeId> gen_attackers(Source& src, const Scenario& sc,
                                  std::size_t max_attackers) {
  const std::size_t n = sc.graph().num_nodes();
  const std::size_t k = 1 + src.index(std::min(max_attackers, n));
  const auto picks = src.distinct_indices(n, k);
  return std::vector<NodeId>(picks.begin(), picks.end());
}

LinkId gen_victim(Source& src, const Scenario& sc) {
  return src.index(sc.graph().num_links());
}

void gen_resample_metrics(Source& src, Scenario& sc) {
  Rng rng = gen_rng(src);
  sc.resample_metrics(rng);
}

MulticastTreeDraw gen_multicast_tree(Source& src, std::size_t max_leaves,
                                     std::size_t max_chain) {
  // Phase 1: describe the physical tree as an edge list over consecutive
  // node ids (0 = root), recursively splitting a leaf budget. Each logical
  // hop becomes a chain of 1..max_chain+1 physical edges; chains of relays
  // are what build_multicast_tree must collapse.
  struct Builder {
    Source& src;
    std::size_t max_chain;
    std::vector<std::pair<NodeId, NodeId>> edges;
    std::vector<NodeId> receivers;
    NodeId next = 1;

    // Attach one chain below `from`, then either terminate as a receiver
    // (budget 1) or split the remaining leaf budget over ≥ 2 children.
    void grow(NodeId from, std::size_t budget) {
      NodeId prev = from;
      const std::size_t relays = src.choice(max_chain);
      for (std::size_t i = 0; i < relays; ++i) {
        edges.emplace_back(prev, next);
        prev = next++;
      }
      const NodeId here = next++;
      edges.emplace_back(prev, here);
      if (budget == 1) {
        receivers.push_back(here);
        return;
      }
      const std::size_t max_kids = std::min<std::size_t>(budget, 4);
      const std::size_t kids = 2 + src.choice(max_kids - 2);
      std::size_t remaining = budget;
      for (std::size_t c = 0; c < kids; ++c) {
        const std::size_t reserved = kids - 1 - c;  // ≥1 leaf per sibling
        const std::size_t share =
            c + 1 == kids
                ? remaining
                : 1 + static_cast<std::size_t>(
                          src.choice(remaining - reserved - 1));
        remaining -= share;
        grow(here, share);
      }
    }
  };

  Builder b{src, max_chain, {}, {}, 1};
  const std::size_t leaves =
      2 + static_cast<std::size_t>(src.choice(max_leaves - 2));
  if (src.maybe(0.5) || leaves < 2) {
    // Shared-link shape: one chain off the root, then the split — choice 0
    // (maybe ↦ false) takes the other branch, so this is NOT the shrink
    // target; the root-split shape below is simpler.
    b.grow(0, leaves);
  } else {
    const std::size_t left = 1 + src.choice(leaves - 2);
    b.grow(0, left);
    b.grow(0, leaves - left);
  }

  // Phase 2: materialize the graph and let the PRODUCTION builder derive
  // the logical tree (receivers are exactly the physical leaves, so the
  // build cannot fail — asserted, not handled).
  MulticastTreeDraw draw{Graph(b.next), {}};
  for (const auto& [u, v] : b.edges) draw.graph.add_link(u, v);
  auto built = build_multicast_tree(draw.graph, 0, b.receivers);
  assert(built.ok());
  draw.tree = std::move(*built);
  return draw;
}

}  // namespace scapegoat::testkit
