// Domain generators: every random instance a property needs, derived purely
// from a Source's choice tape (so shrinking the tape shrinks the instance).
//
// Generators draw sizes before contents — deleting tape suffixes therefore
// drops whole substructures (variables, constraints, edges) and the minimal
// counterexample the shrinker reports is structurally minimal, not just
// numerically small.

#pragma once

#include <optional>
#include <vector>

#include "core/scenario.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "lp/model.hpp"
#include "testkit/source.hpp"
#include "tomography/multicast_mle.hpp"

namespace scapegoat::testkit {

// ---- graphs ---------------------------------------------------------------

// Connected graph with n ∈ [min_nodes, max_nodes]: random spanning tree
// (node v attaches to a choice of [0, v)) plus up to `max_extra_links`
// chords. Connected by construction — no rejection loop to de-correlate the
// tape from the instance.
Graph gen_connected_graph(Source& src, std::size_t min_nodes,
                          std::size_t max_nodes,
                          std::size_t max_extra_links = 24);

// ---- matrices -------------------------------------------------------------

// rows×cols matrix with entries on a 0.25-grid in [-4, 4].
Matrix gen_matrix(Source& src, std::size_t rows, std::size_t cols);

// Matrix with exact rank `rank` (≤ min(rows, cols)) built as a product of
// two diagonally-dominant factors, so the rank is guaranteed, not generic.
// `cond_decades` > 0 grades the factor diagonals across that many decades,
// pushing the condition number to ~10^cond_decades (ill-conditioning knob).
Matrix gen_matrix_with_rank(Source& src, std::size_t rows, std::size_t cols,
                            std::size_t rank, double cond_decades = 0.0);

// {0,1} routing-style matrix, no all-zero rows (every path crosses a link).
Matrix gen_routing_matrix(Source& src, std::size_t paths, std::size_t links);

// Full-column-rank {0,1} routing matrix: one direct-probe row per link (an
// identity block — the "measure every link individually" path set) followed
// by `extra_paths` random routing rows. rank == links by construction, so
// least-squares differential properties never hit the rank-refusal path.
Matrix gen_full_rank_routing_matrix(Source& src, std::size_t links,
                                    std::size_t extra_paths);

// Right-hand side / measurement vector on a 0.25-grid in [-8, 8].
Vector gen_vector(Source& src, std::size_t n);

// ---- LP models ------------------------------------------------------------

struct LpModelLimits {
  std::size_t max_vars = 6;
  std::size_t max_constraints = 6;
  double coeff_step = 0.5;     // constraint/objective coefficient grid
  std::uint64_t coeff_steps = 6;  // grid extent: ±coeff_steps·coeff_step
};

// Random LP with box-bounded variables (finite lower AND upper bound on
// every variable ⇒ the feasible set is a polytope, so the brute-force
// vertex-enumeration oracle is exact). Constraints mix ≤ / ≥ / =.
lp::Model gen_lp_model(Source& src, const LpModelLimits& limits = {});

// ---- scenarios and attacks ------------------------------------------------

// Erdős–Rényi scenario in the family the property suites historically used
// (Scenario::from_graph over G(n, p)); the graph resample loop and monitor
// placement draw from an Rng seeded off the tape. nullopt when placement
// can't reach identifiability for this draw.
std::optional<Scenario> gen_er_scenario(Source& src, std::size_t n, double p);

// Scenario on a testkit-generated connected graph (structural shrinking).
std::optional<Scenario> gen_scenario(Source& src, std::size_t min_nodes,
                                     std::size_t max_nodes);

// 1..max_attackers distinct nodes of the scenario's graph.
std::vector<NodeId> gen_attackers(Source& src, const Scenario& sc,
                                  std::size_t max_attackers);

// A link id of the scenario's graph.
LinkId gen_victim(Source& src, const Scenario& sc);

// Re-draws the scenario's ground-truth link metrics from the tape.
void gen_resample_metrics(Source& src, Scenario& sc);

// An Rng whose seed comes off the tape — for APIs that want an Rng&.
Rng gen_rng(Source& src);

// ---- multicast trees ------------------------------------------------------

struct MulticastTreeDraw {
  Graph graph;        // a physical tree (relay chains included)
  MulticastTree tree; // its logical collapse, rooted at node 0
};

// Random rooted multicast tree with 2..max_leaves leaves: recursive budget
// split (sizes before contents — dropping tape suffixes prunes whole
// subtrees), every logical link realized by a chain of 1..max_chain+1
// physical links, and an optional root chain so the classic shared-link
// two-leaf shape is reachable. The tree is produced by the production
// build_multicast_tree on the generated graph, so every draw satisfies
// MulticastTree::valid() by construction.
MulticastTreeDraw gen_multicast_tree(Source& src, std::size_t max_leaves = 5,
                                     std::size_t max_chain = 2);

}  // namespace scapegoat::testkit
