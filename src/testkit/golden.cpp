#include "testkit/golden.hpp"

#include <sstream>

#include "robust/checkpoint.hpp"

namespace scapegoat::testkit {
namespace {

void put(std::ostringstream& os, std::uint64_t v) { os << v << '|'; }
void put(std::ostringstream& os, double v) {
  os << robust::encode_double_bits(v) << '|';
}

}  // namespace

std::uint32_t fingerprint(const PresenceRatioSeries& series) {
  std::ostringstream os;
  os << "fig7|" << to_string(series.kind) << '|';
  put(os, series.total_trials);
  put(os, series.trials_quarantined);
  for (const PresenceRatioBin& bin : series.bins) {
    put(os, bin.ratio_low);
    put(os, bin.ratio_high);
    put(os, bin.trials);
    put(os, bin.successes);
  }
  return robust::crc32(os.str());
}

std::uint32_t fingerprint(const SingleAttackerResult& result) {
  std::ostringstream os;
  os << "fig8|" << to_string(result.kind) << '|';
  put(os, result.trials);
  put(os, result.max_damage_successes);
  put(os, result.obfuscation_successes);
  put(os, result.trials_quarantined);
  return robust::crc32(os.str());
}

std::uint32_t fingerprint(const DetectionSeries& series) {
  std::ostringstream os;
  os << "fig9|" << to_string(series.kind) << '|';
  put(os, series.clean_trials);
  put(os, series.false_alarms);
  put(os, series.trials_quarantined);
  for (const DetectionCell& cell : series.cells) {
    os << to_string(cell.strategy) << '|' << (cell.perfect_cut ? 1 : 0)
       << '|';
    put(os, cell.attacks);
    put(os, cell.detected);
  }
  return robust::crc32(os.str());
}

std::uint32_t fingerprint(const FaultSweepSeries& series) {
  std::ostringstream os;
  os << "faults|" << to_string(series.kind) << '|';
  put(os, series.total_trials);
  put(os, series.trials_quarantined);
  for (const FaultSweepCell& cell : series.cells) {
    put(os, cell.loss_rate);
    put(os, cell.trials);
    put(os, cell.full_rank);
    put(os, cell.fallback);
    put(os, cell.unsolvable);
    put(os, cell.paths_total);
    put(os, cell.paths_measured);
    put(os, cell.mean_abs_error_ms);
    put(os, cell.max_abs_error_ms);
    put(os, cell.alarms);
  }
  return robust::crc32(os.str());
}

}  // namespace scapegoat::testkit
