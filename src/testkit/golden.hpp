// Fold fingerprints for the Monte-Carlo figure runners.
//
// Each fingerprint serializes every result field that the figure printers
// report — integers in decimal, doubles as IEEE-754 bit patterns
// (robust::encode_double_bits) — and CRC-32s the text. Two series fingerprint
// equal iff they are bitwise the same fold, which is exactly the determinism
// contract (DESIGN.md §7/§10). The golden-figure regression test pins these
// values so a refactor cannot silently re-baseline Figs. 7-9 or the fault
// sweep.

#pragma once

#include <cstdint>

#include "core/experiment.hpp"
#include "core/fault_experiment.hpp"

namespace scapegoat::testkit {

std::uint32_t fingerprint(const PresenceRatioSeries& series);
std::uint32_t fingerprint(const SingleAttackerResult& result);
std::uint32_t fingerprint(const DetectionSeries& series);
std::uint32_t fingerprint(const FaultSweepSeries& series);

}  // namespace scapegoat::testkit
