#include "testkit/oracles.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace scapegoat::testkit {
namespace {

// Local dense Gaussian elimination with partial pivoting — deliberately not
// linalg::LuDecomposition, so the oracles share no solver code with the
// library under test. Returns false when singular to `pivot_tol`.
bool gauss_solve(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>& x, double pivot_tol = 1e-10) {
  const std::size_t n = a.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[piv][k])) piv = i;
    if (std::abs(a[piv][k]) < pivot_tol) return false;
    std::swap(a[piv], a[k]);
    std::swap(b[piv], b[k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i][k] / a[k][k];
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i][j] * x[j];
    x[i] = acc / a[i][i];
  }
  return true;
}

struct Hyperplane {
  std::vector<double> coeffs;  // length num_variables
  double rhs = 0.0;
};

}  // namespace

ReferenceLpResult solve_lp_by_vertex_enumeration(const lp::Model& model,
                                                 double tol) {
  const std::size_t n = model.num_variables();
  assert(n > 0);

  std::vector<Hyperplane> planes;
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const lp::Constraint& c = model.constraint(i);
    Hyperplane h{std::vector<double>(n, 0.0), c.rhs};
    for (const lp::Term& t : c.terms) h.coeffs[t.var] += t.coeff;
    planes.push_back(std::move(h));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const lp::Variable& v = model.variable(j);
    assert(std::isfinite(v.lower) && std::isfinite(v.upper) &&
           "vertex enumeration needs box-bounded variables");
    Hyperplane lo{std::vector<double>(n, 0.0), v.lower};
    lo.coeffs[j] = 1.0;
    planes.push_back(std::move(lo));
    Hyperplane hi{std::vector<double>(n, 0.0), v.upper};
    hi.coeffs[j] = 1.0;
    planes.push_back(std::move(hi));
  }

  ReferenceLpResult result;
  const bool maximize = model.sense() == lp::Sense::kMaximize;
  double best = maximize ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();

  // Enumerate every n-subset of the hyperplanes.
  std::vector<std::size_t> pick(n);
  for (std::size_t i = 0; i < n; ++i) pick[i] = i;
  const std::size_t m = planes.size();
  assert(m >= n);
  while (true) {
    std::vector<std::vector<double>> a(n);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = planes[pick[i]].coeffs;
      rhs[i] = planes[pick[i]].rhs;
    }
    std::vector<double> x;
    if (gauss_solve(std::move(a), std::move(rhs), x)) {
      ++result.vertices_checked;
      assert(result.vertices_checked < 1'000'000 &&
             "oracle instance too large — tighten the generator limits");
      if (model.max_violation(x) <= tol) {
        result.feasible = true;
        const double obj = model.objective_value(x);
        if ((maximize && obj > best) || (!maximize && obj < best)) {
          best = obj;
          result.objective = obj;
          result.x = std::move(x);
        }
      }
    }
    // Next combination in lexicographic order.
    std::size_t i = n;
    while (i-- > 0) {
      if (pick[i] + (n - i) < m) {
        ++pick[i];
        for (std::size_t j = i + 1; j < n; ++j) pick[j] = pick[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
  }
}

std::vector<double> ref_normal_equations(const Matrix& a, const Vector& b) {
  const std::size_t m = a.rows(), n = a.cols();
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < m; ++k) ata[i][j] += a(k, i) * a(k, j);
    for (std::size_t k = 0; k < m; ++k) atb[i] += a(k, i) * b[k];
  }
  std::vector<double> x;
  if (!gauss_solve(std::move(ata), std::move(atb), x)) return {};
  return x;
}

bool check_moore_penrose(const Matrix& a, const Matrix& g, double tol) {
  if (g.rows() != a.cols() || g.cols() != a.rows()) return false;
  const Matrix ag = a * g;
  const Matrix ga = g * a;
  const double scale =
      1.0 + a.max_abs() * g.max_abs() * static_cast<double>(a.rows());
  const auto close = [&](const Matrix& lhs, const Matrix& rhs) {
    return (lhs - rhs).max_abs() <= tol * scale;
  };
  return close(ag * a, a) && close(ga * g, g) && close(ag.transposed(), ag) &&
         close(ga.transposed(), ga);
}

bool ref_perfect_cut(const std::vector<Path>& paths,
                     const std::vector<NodeId>& attackers,
                     const std::vector<LinkId>& victims) {
  for (const Path& path : paths) {
    bool carries_victim = false;
    for (LinkId l : path.links)
      for (LinkId v : victims)
        if (l == v) carries_victim = true;
    if (!carries_victim) continue;
    bool carries_attacker = false;
    for (NodeId node : path.nodes)
      for (NodeId a : attackers)
        if (node == a) carries_attacker = true;
    if (!carries_attacker) return false;
  }
  return true;
}

double ref_eq23_residual(const Matrix& r, const Vector& x_hat,
                         const Vector& y) {
  double total = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < r.cols(); ++j) row += r(i, j) * x_hat[j];
    total += std::abs(y[i] - row);
  }
  return total;
}

std::vector<double> ref_two_leaf_mle(double gamma1, double gamma2,
                                     double gamma_or) {
  const double a_internal = gamma1 * gamma2 / (gamma1 + gamma2 - gamma_or);
  return {a_internal, gamma1 / a_internal, gamma2 / a_internal};
}

namespace {

// P(leaf outcome bitmask) under `link_success`, by summing over every
// pass/fail assignment to the non-root links. Deliberately O(2^(n−1)) and
// top-down-literal: node k is reached iff its parent is reached AND link k
// passed — no γ recursion anywhere near this code.
std::vector<double> multicast_outcome_distribution(const MulticastTree& tree,
                                                   const Vector& link_success) {
  const std::size_t n = tree.num_nodes();
  const std::size_t leaves = tree.num_leaves();
  assert(n >= 2 && n - 1 < 64);
  std::vector<double> prob(std::size_t{1} << leaves, 0.0);
  for (std::uint64_t assign = 0; assign < (std::uint64_t{1} << (n - 1));
       ++assign) {
    double p = 1.0;
    std::vector<bool> passed(n, true);
    for (std::size_t k = 1; k < n; ++k) {
      passed[k] = (assign >> (k - 1)) & 1;
      p *= passed[k] ? link_success[k] : 1.0 - link_success[k];
    }
    if (p == 0.0) continue;
    std::vector<bool> reached(n, false);
    reached[0] = true;
    for (std::size_t k = 1; k < n; ++k)
      reached[k] = reached[tree.nodes[k].parent] && passed[k];
    std::size_t outcome = 0;
    for (std::size_t i = 0; i < leaves; ++i)
      if (reached[tree.leaves[i]]) outcome |= std::size_t{1} << i;
    prob[outcome] += p;
  }
  return prob;
}

}  // namespace

double ref_multicast_outcome_loglik(
    const MulticastTree& tree, const Vector& link_success,
    const std::vector<std::size_t>& outcome_counts, std::size_t probes) {
  assert(outcome_counts.size() == std::size_t{1} << tree.num_leaves());
  const std::vector<double> prob =
      multicast_outcome_distribution(tree, link_success);
  double loglik = 0.0;
  std::size_t seen = 0;
  for (std::size_t o = 0; o < outcome_counts.size(); ++o) {
    if (outcome_counts[o] == 0) continue;
    seen += outcome_counts[o];
    if (prob[o] <= 0.0) return -std::numeric_limits<double>::infinity();
    loglik += static_cast<double>(outcome_counts[o]) * std::log(prob[o]);
  }
  assert(seen == probes);
  (void)probes;
  return loglik;
}

double ref_multicast_mle_grid(const MulticastTree& tree,
                              const std::vector<std::size_t>& outcome_counts,
                              std::size_t probes, std::size_t steps,
                              std::size_t max_links) {
  const std::size_t links = tree.num_nodes() - 1;
  assert(links <= max_links && "grid enumeration is exponential in links");
  (void)max_links;
  std::vector<std::size_t> idx(links, 0);
  Vector rates(tree.num_nodes());
  rates[0] = 1.0;
  double best = -std::numeric_limits<double>::infinity();
  for (;;) {
    for (std::size_t k = 0; k < links; ++k)
      rates[k + 1] = static_cast<double>(idx[k] + 1) /
                     static_cast<double>(steps);
    best = std::max(best, ref_multicast_outcome_loglik(tree, rates,
                                                       outcome_counts,
                                                       probes));
    std::size_t carry = 0;
    while (carry < links && ++idx[carry] == steps) idx[carry++] = 0;
    if (carry == links) break;
  }
  return best;
}

}  // namespace scapegoat::testkit
