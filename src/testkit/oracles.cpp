#include "testkit/oracles.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace scapegoat::testkit {
namespace {

// Local dense Gaussian elimination with partial pivoting — deliberately not
// linalg::LuDecomposition, so the oracles share no solver code with the
// library under test. Returns false when singular to `pivot_tol`.
bool gauss_solve(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>& x, double pivot_tol = 1e-10) {
  const std::size_t n = a.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[piv][k])) piv = i;
    if (std::abs(a[piv][k]) < pivot_tol) return false;
    std::swap(a[piv], a[k]);
    std::swap(b[piv], b[k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i][k] / a[k][k];
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i][j] * x[j];
    x[i] = acc / a[i][i];
  }
  return true;
}

struct Hyperplane {
  std::vector<double> coeffs;  // length num_variables
  double rhs = 0.0;
};

}  // namespace

ReferenceLpResult solve_lp_by_vertex_enumeration(const lp::Model& model,
                                                 double tol) {
  const std::size_t n = model.num_variables();
  assert(n > 0);

  std::vector<Hyperplane> planes;
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const lp::Constraint& c = model.constraint(i);
    Hyperplane h{std::vector<double>(n, 0.0), c.rhs};
    for (const lp::Term& t : c.terms) h.coeffs[t.var] += t.coeff;
    planes.push_back(std::move(h));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const lp::Variable& v = model.variable(j);
    assert(std::isfinite(v.lower) && std::isfinite(v.upper) &&
           "vertex enumeration needs box-bounded variables");
    Hyperplane lo{std::vector<double>(n, 0.0), v.lower};
    lo.coeffs[j] = 1.0;
    planes.push_back(std::move(lo));
    Hyperplane hi{std::vector<double>(n, 0.0), v.upper};
    hi.coeffs[j] = 1.0;
    planes.push_back(std::move(hi));
  }

  ReferenceLpResult result;
  const bool maximize = model.sense() == lp::Sense::kMaximize;
  double best = maximize ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();

  // Enumerate every n-subset of the hyperplanes.
  std::vector<std::size_t> pick(n);
  for (std::size_t i = 0; i < n; ++i) pick[i] = i;
  const std::size_t m = planes.size();
  assert(m >= n);
  while (true) {
    std::vector<std::vector<double>> a(n);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = planes[pick[i]].coeffs;
      rhs[i] = planes[pick[i]].rhs;
    }
    std::vector<double> x;
    if (gauss_solve(std::move(a), std::move(rhs), x)) {
      ++result.vertices_checked;
      assert(result.vertices_checked < 1'000'000 &&
             "oracle instance too large — tighten the generator limits");
      if (model.max_violation(x) <= tol) {
        result.feasible = true;
        const double obj = model.objective_value(x);
        if ((maximize && obj > best) || (!maximize && obj < best)) {
          best = obj;
          result.objective = obj;
          result.x = std::move(x);
        }
      }
    }
    // Next combination in lexicographic order.
    std::size_t i = n;
    while (i-- > 0) {
      if (pick[i] + (n - i) < m) {
        ++pick[i];
        for (std::size_t j = i + 1; j < n; ++j) pick[j] = pick[j - 1] + 1;
        break;
      }
      if (i == 0) return result;
    }
  }
}

std::vector<double> ref_normal_equations(const Matrix& a, const Vector& b) {
  const std::size_t m = a.rows(), n = a.cols();
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < m; ++k) ata[i][j] += a(k, i) * a(k, j);
    for (std::size_t k = 0; k < m; ++k) atb[i] += a(k, i) * b[k];
  }
  std::vector<double> x;
  if (!gauss_solve(std::move(ata), std::move(atb), x)) return {};
  return x;
}

bool check_moore_penrose(const Matrix& a, const Matrix& g, double tol) {
  if (g.rows() != a.cols() || g.cols() != a.rows()) return false;
  const Matrix ag = a * g;
  const Matrix ga = g * a;
  const double scale =
      1.0 + a.max_abs() * g.max_abs() * static_cast<double>(a.rows());
  const auto close = [&](const Matrix& lhs, const Matrix& rhs) {
    return (lhs - rhs).max_abs() <= tol * scale;
  };
  return close(ag * a, a) && close(ga * g, g) && close(ag.transposed(), ag) &&
         close(ga.transposed(), ga);
}

bool ref_perfect_cut(const std::vector<Path>& paths,
                     const std::vector<NodeId>& attackers,
                     const std::vector<LinkId>& victims) {
  for (const Path& path : paths) {
    bool carries_victim = false;
    for (LinkId l : path.links)
      for (LinkId v : victims)
        if (l == v) carries_victim = true;
    if (!carries_victim) continue;
    bool carries_attacker = false;
    for (NodeId node : path.nodes)
      for (NodeId a : attackers)
        if (node == a) carries_attacker = true;
    if (!carries_attacker) return false;
  }
  return true;
}

double ref_eq23_residual(const Matrix& r, const Vector& x_hat,
                         const Vector& y) {
  double total = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < r.cols(); ++j) row += r(i, j) * x_hat[j];
    total += std::abs(y[i] - row);
  }
  return total;
}

}  // namespace scapegoat::testkit
