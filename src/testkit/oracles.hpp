// Differential oracles: independent reference implementations that the
// production code paths are diffed against by the test_prop_* suites.
//
// Each oracle is deliberately written the *obvious* way (brute force,
// textbook formulas, literal loops over the paper's equations) with no code
// shared with the implementation under test — agreement is then evidence,
// not tautology.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "lp/model.hpp"
#include "tomography/multicast_mle.hpp"

namespace scapegoat::testkit {

// ---- LP: exhaustive basis/vertex enumeration ------------------------------
//
// For models whose variables all carry finite box bounds the feasible set is
// a polytope: if it is non-empty it has a vertex, and some vertex attains
// the optimum. The oracle enumerates every n-subset of the hyperplane set
// {constraint rows as equalities} ∪ {x_j = lower_j} ∪ {x_j = upper_j},
// solves the square system, keeps feasible solutions, and maximizes /
// minimizes the objective over them.

struct ReferenceLpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;            // an optimal vertex when feasible
  std::size_t vertices_checked = 0; // candidate systems solved
};

// `tol` is the feasibility slack used when accepting a vertex. Asserts that
// every variable has finite bounds and that the enumeration stays below an
// internal combination cap (generator limits guarantee both).
ReferenceLpResult solve_lp_by_vertex_enumeration(const lp::Model& model,
                                                 double tol = 1e-7);

// ---- linear algebra -------------------------------------------------------

// Textbook normal-equations least squares: forms AᵀA and Aᵀb element by
// element and solves with Gaussian elimination written out locally (no
// linalg::CholeskyDecomposition, no linalg::LuDecomposition). Empty result
// when the local elimination meets a non-positive pivot (rank deficiency).
std::vector<double> ref_normal_equations(const Matrix& a, const Vector& b);

// Checks the four Moore–Penrose axioms for a candidate pseudo-inverse g of
// a:  a·g·a = a,  g·a·g = g,  (a·g)ᵀ = a·g,  (g·a)ᵀ = g·a.
// `tol` is relative to the magnitudes involved.
bool check_moore_penrose(const Matrix& a, const Matrix& g, double tol = 1e-6);

// ---- attack: Theorem 1 cut condition, literally from the graph ------------

// Independent re-statement of the perfect-cut predicate: every measurement
// path that traverses a victim link also visits an attacker node. Written
// against Path's raw node/link vectors (no contains_* helpers) so it can
// disagree with attack/cut.cpp if either is wrong.
bool ref_perfect_cut(const std::vector<Path>& paths,
                     const std::vector<NodeId>& attackers,
                     const std::vector<LinkId>& victims);

// ---- detect: Eq. 23, literally --------------------------------------------

// ‖y − R·x̂‖₁ computed as the paper prints it: Σ_i |y_i − Σ_j R_ij x̂_j|.
double ref_eq23_residual(const Matrix& r, const Vector& x_hat,
                         const Vector& y);

// ---- multicast MLE: textbook closed form and brute-force likelihood -------

// The classic two-leaf MINC solution, straight from the Cáceres et al.
// derivation and nothing else: for root → internal → {leaf1, leaf2} with
// per-node OR rates γ₁, γ₂ and γ_or = P(leaf1 ∪ leaf2),
//   Â_internal = γ₁·γ₂ / (γ₁ + γ₂ − γ_or),
//   α̂_leaf_i  = γ_i / Â_internal.
// Returns {Â_internal, α̂_leaf1, α̂_leaf2}.
std::vector<double> ref_two_leaf_mle(double gamma1, double gamma2,
                                     double gamma_or);

// Exact log-likelihood of a full 2^leaves outcome histogram under per-node
// logical link success rates, by exhaustive enumeration of all 2^(n−1)
// pass/fail assignments to the non-root tree links (a probe reaches a node
// iff every ancestor link passed). −inf when an observed outcome has model
// probability 0. `link_success` is indexed by tree node (root ignored),
// `outcome_counts` by leaf bitmask in tree.leaves order.
double ref_multicast_outcome_loglik(
    const MulticastTree& tree, const Vector& link_success,
    const std::vector<std::size_t>& outcome_counts, std::size_t probes);

// Brute-force MLE on small trees (≤ `max_links` non-root nodes, asserted):
// maximizes ref_multicast_outcome_loglik over a uniform grid of `steps`
// success rates {1/steps, 2/steps, …, 1} per logical link and returns the
// best log-likelihood found. The recursive fit must score at least this
// well (up to grid resolution) or it is not the maximizer it claims to be.
double ref_multicast_mle_grid(const MulticastTree& tree,
                              const std::vector<std::size_t>& outcome_counts,
                              std::size_t probes, std::size_t steps = 9,
                              std::size_t max_links = 4);

}  // namespace scapegoat::testkit
