// Differential oracles: independent reference implementations that the
// production code paths are diffed against by the test_prop_* suites.
//
// Each oracle is deliberately written the *obvious* way (brute force,
// textbook formulas, literal loops over the paper's equations) with no code
// shared with the implementation under test — agreement is then evidence,
// not tautology.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "lp/model.hpp"

namespace scapegoat::testkit {

// ---- LP: exhaustive basis/vertex enumeration ------------------------------
//
// For models whose variables all carry finite box bounds the feasible set is
// a polytope: if it is non-empty it has a vertex, and some vertex attains
// the optimum. The oracle enumerates every n-subset of the hyperplane set
// {constraint rows as equalities} ∪ {x_j = lower_j} ∪ {x_j = upper_j},
// solves the square system, keeps feasible solutions, and maximizes /
// minimizes the objective over them.

struct ReferenceLpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;            // an optimal vertex when feasible
  std::size_t vertices_checked = 0; // candidate systems solved
};

// `tol` is the feasibility slack used when accepting a vertex. Asserts that
// every variable has finite bounds and that the enumeration stays below an
// internal combination cap (generator limits guarantee both).
ReferenceLpResult solve_lp_by_vertex_enumeration(const lp::Model& model,
                                                 double tol = 1e-7);

// ---- linear algebra -------------------------------------------------------

// Textbook normal-equations least squares: forms AᵀA and Aᵀb element by
// element and solves with Gaussian elimination written out locally (no
// linalg::CholeskyDecomposition, no linalg::LuDecomposition). Empty result
// when the local elimination meets a non-positive pivot (rank deficiency).
std::vector<double> ref_normal_equations(const Matrix& a, const Vector& b);

// Checks the four Moore–Penrose axioms for a candidate pseudo-inverse g of
// a:  a·g·a = a,  g·a·g = g,  (a·g)ᵀ = a·g,  (g·a)ᵀ = g·a.
// `tol` is relative to the magnitudes involved.
bool check_moore_penrose(const Matrix& a, const Matrix& g, double tol = 1e-6);

// ---- attack: Theorem 1 cut condition, literally from the graph ------------

// Independent re-statement of the perfect-cut predicate: every measurement
// path that traverses a victim link also visits an attacker node. Written
// against Path's raw node/link vectors (no contains_* helpers) so it can
// disagree with attack/cut.cpp if either is wrong.
bool ref_perfect_cut(const std::vector<Path>& paths,
                     const std::vector<NodeId>& attackers,
                     const std::vector<LinkId>& victims);

// ---- detect: Eq. 23, literally --------------------------------------------

// ‖y − R·x̂‖₁ computed as the paper prints it: Σ_i |y_i − Σ_j R_ij x̂_j|.
double ref_eq23_residual(const Matrix& r, const Vector& x_hat,
                         const Vector& y);

}  // namespace scapegoat::testkit
