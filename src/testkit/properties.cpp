#include "testkit/properties.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <sstream>

#include "attack/attack_lp.hpp"
#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "linalg/cgls.hpp"
#include "linalg/conditioning.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse_matrix.hpp"
#include "lp/simplex.hpp"
#include "simnet/multicast_probe.hpp"
#include "testkit/gen.hpp"
#include "testkit/oracles.hpp"
#include "tomography/multicast_mle.hpp"
#include "tomography/sparse_recovery.hpp"

namespace scapegoat::testkit {
namespace {

std::string describe_model(const lp::Model& model) {
  std::ostringstream os;
  os << model.num_variables() << " vars / " << model.num_constraints()
     << " constraints: " << lp::to_string(model);
  return os.str();
}

// ---- lp_simplex_matches_reference -----------------------------------------

bool prop_lp_simplex_matches_reference(Source& src) {
  const lp::Model model = gen_lp_model(src);
  const ReferenceLpResult ref = solve_lp_by_vertex_enumeration(model);
  const lp::Solution sol = lp::solve(model);

  if (!ref.feasible) {
    if (sol.status == lp::SolveStatus::kInfeasible) return true;
    // Status disagreement on a numerically borderline instance (feasibility
    // decided by < 1e-4 of slack) is indeterminate, not a bug.
    if (solve_lp_by_vertex_enumeration(model, 1e-4).feasible) return true;
    src.note("oracle: infeasible, simplex: " + lp::to_string(sol.status));
    src.note(describe_model(model));
    return false;
  }

  if (sol.status != lp::SolveStatus::kOptimal) {
    if (!solve_lp_by_vertex_enumeration(model, 1e-9).feasible) return true;
    src.note("oracle: feasible (obj " + std::to_string(ref.objective) +
             "), simplex: " + lp::to_string(sol.status));
    src.note(describe_model(model));
    return false;
  }
  if (model.max_violation(sol.x) > 1e-6) {
    src.note("simplex point violates the model by " +
             std::to_string(model.max_violation(sol.x)));
    src.note(describe_model(model));
    return false;
  }
  const double tol = 1e-6 * (1.0 + std::abs(ref.objective));
  if (std::abs(sol.objective - ref.objective) > tol) {
    src.note("objective mismatch: simplex " + std::to_string(sol.objective) +
             " vs reference " + std::to_string(ref.objective) + " over " +
             std::to_string(ref.vertices_checked) + " vertices");
    src.note(describe_model(model));
    return false;
  }
  return true;
}

// ---- lp_revised_simplex_matches_tableau -----------------------------------

bool prop_lp_revised_simplex_matches_tableau(Source& src) {
  const lp::Model model = gen_lp_model(src);
  lp::SimplexOptions tab_opt;
  tab_opt.backend = lp::LpBackend::kTableau;
  lp::SimplexOptions rev_opt;
  rev_opt.backend = lp::LpBackend::kRevised;
  const lp::Solution tab = lp::solve(model, tab_opt);
  const lp::Solution rev = lp::solve(model, rev_opt);

  if (tab.status != rev.status) {
    // Borderline feasibility (the loose and tight vertex oracles disagree)
    // is indeterminate, not a divergence — the same adjudication the
    // simplex-vs-reference property uses.
    const bool loose = solve_lp_by_vertex_enumeration(model, 1e-4).feasible;
    const bool tight = solve_lp_by_vertex_enumeration(model, 1e-9).feasible;
    if (loose != tight) return true;
    src.note("status: tableau " + lp::to_string(tab.status) + " vs revised " +
             lp::to_string(rev.status));
    src.note(describe_model(model));
    return false;
  }
  if (tab.status != lp::SolveStatus::kOptimal) return true;
  if (model.max_violation(rev.x) > 1e-6) {
    src.note("revised point violates the model by " +
             std::to_string(model.max_violation(rev.x)));
    src.note(describe_model(model));
    return false;
  }
  const double tol = 1e-6 * (1.0 + std::abs(tab.objective));
  if (std::abs(tab.objective - rev.objective) > tol) {
    src.note("objective mismatch: tableau " + std::to_string(tab.objective) +
             " vs revised " + std::to_string(rev.objective));
    src.note(describe_model(model));
    return false;
  }
  return true;
}

// ---- linalg properties ----------------------------------------------------

// ---- linalg_sparse_matches_dense_least_squares ----------------------------

bool prop_sparse_matches_dense_least_squares(Source& src) {
  const std::size_t links = 2 + src.index(8);
  const std::size_t extra = src.index(8);
  const Matrix a = gen_full_rank_routing_matrix(src, links, extra);
  const Vector b = gen_vector(src, a.rows());

  // CSR round-trip must be lossless on this draw…
  const SparseMatrix s = SparseMatrix::from_dense(a);
  if (!approx_equal(s, a, 0.0) || !approx_equal(s.to_dense(), a, 0.0)) {
    src.note("CSR round-trip lost entries on a " + s.to_string());
    return false;
  }
  // …and SpMV must honor the bitwise contract against the dense product.
  const Vector probe = gen_vector(src, links);
  const Vector dense_prod = a * probe;
  const Vector sparse_prod = s * probe;
  for (std::size_t i = 0; i < dense_prod.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(dense_prod[i]) !=
        std::bit_cast<std::uint64_t>(sparse_prod[i])) {
      std::ostringstream os;
      os << "SpMV not bitwise at row " << i << ": dense " << dense_prod[i]
         << " vs sparse " << sparse_prod[i] << " (" << s.to_string() << ")";
      src.note(os.str());
      return false;
    }
  }

  const auto x_qr = least_squares(a, b, LeastSquaresMethod::kQr);
  const CglsResult cg = cgls_solve(s, b);
  if (!x_qr.has_value() || !cg.converged) {
    src.note("solver refused a full-rank routing system: qr=" +
             std::to_string(x_qr.has_value()) +
             " cgls_converged=" + std::to_string(cg.converged) +
             " rel_resid=" + std::to_string(cg.relative_residual));
    return false;
  }
  // CGLS error scales with κ² (normal equations); the identity block keeps
  // κ modest, but scale the tolerance by the measured conditioning anyway.
  const auto cond = estimate_condition(a);
  const double kappa =
      cond.has_value() ? std::max(1.0, cond->condition()) : 1e3;
  double scale = 1.0;
  for (const double v : *x_qr) scale = std::max(scale, std::abs(v));
  const double tol = 1e-9 * kappa * kappa * scale;
  for (std::size_t j = 0; j < links; ++j) {
    if (std::abs((*x_qr)[j] - cg.x[j]) > tol) {
      std::ostringstream os;
      os << a.rows() << "x" << links << " kappa " << kappa << ": x[" << j
         << "] qr=" << (*x_qr)[j] << " cgls=" << cg.x[j] << " tol=" << tol;
      src.note(os.str());
      return false;
    }
  }
  // Both must fit the data equally well (optimal LS values coincide even
  // when the matrix is ill-conditioned enough to spread the iterates).
  const double fit_qr = (b - a * (*x_qr)).norm2();
  const double fit_cg = (b - s * cg.x).norm2();
  if (std::abs(fit_qr - fit_cg) > 1e-7 * (1.0 + fit_qr)) {
    src.note("LS optimum differs: qr fit " + std::to_string(fit_qr) +
             " vs cgls fit " + std::to_string(fit_cg));
    return false;
  }
  return true;
}

// ---- linalg_sparse_row_append_matches_rebuild ------------------------------

// Incremental CSR row append (the streaming-service growth path) must leave
// storage BITWISE identical to rebuilding the whole matrix from triplets:
// same row offsets, same column indices, same value bit patterns — across
// any split point between "constructed" and "appended" rows, with exact
// zeros dropped either way, and with SpMV still bitwise equal to dense.
bool prop_sparse_row_append_matches_rebuild(Source& src) {
  const std::size_t cols = 1 + src.index(10);
  const std::size_t rows = 1 + src.index(12);

  std::vector<Triplet> triplets;
  std::vector<std::vector<std::size_t>> row_cols(rows);
  std::vector<std::vector<double>> row_vals(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t entries = src.index(cols + 1);  // 0..cols per row
    for (std::size_t c : src.distinct_indices(cols, entries)) {
      // Exact zeros sometimes, to exercise the drop rule on both paths.
      const double v = src.maybe(0.15) ? 0.0 : src.grid(0.25, 40);
      row_cols[r].push_back(c);
      row_vals[r].push_back(v);
      triplets.push_back({r, c, v});
    }
  }
  const auto rebuilt = SparseMatrix::try_from_triplets(rows, cols, triplets);
  if (!rebuilt.ok()) {
    src.note("triplet rebuild refused a clean draw: " +
             rebuilt.error_message());
    return false;
  }

  // Grow from a split point: rows [0, split) via triplets, the rest
  // appended one by one (split == 0 grows from the empty matrix).
  const std::size_t split = src.index(rows + 1);
  std::vector<Triplet> head;
  for (const Triplet& t : triplets)
    if (t.row < split) head.push_back(t);
  auto grown_or = SparseMatrix::try_from_triplets(split, cols, head);
  if (!grown_or.ok()) {
    src.note("head rebuild refused: " + grown_or.error_message());
    return false;
  }
  SparseMatrix grown = grown_or.value();
  for (std::size_t r = split; r < rows; ++r) {
    const robust::Status appended =
        grown.try_append_row(row_cols[r], row_vals[r]);
    if (!appended.ok()) {
      src.note("append of row " + std::to_string(r) +
               " refused: " + appended.error_message());
      return false;
    }
  }

  // A duplicate-column append must be rejected and leave storage untouched.
  if (cols >= 2) {
    const std::size_t nnz_before = grown.nnz();
    if (grown.try_append_row({0, 0}, {1.0, 2.0}).ok()) {
      src.note("duplicate-column append was accepted");
      return false;
    }
    if (grown.rows() != rows || grown.nnz() != nnz_before) {
      src.note("rejected append mutated the matrix");
      return false;
    }
  }

  const SparseMatrix& reference = rebuilt.value();
  if (grown.rows() != reference.rows() || grown.nnz() != reference.nnz() ||
      grown.col_index() != reference.col_index()) {
    src.note("storage shape diverged: grown " + grown.to_string() +
             " vs rebuilt " + reference.to_string());
    return false;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (grown.row_begin(r) != reference.row_begin(r) ||
        grown.row_end(r) != reference.row_end(r)) {
      src.note("row_ptr diverged at row " + std::to_string(r));
      return false;
    }
  }
  for (std::size_t i = 0; i < grown.values().size(); ++i) {
    if (std::bit_cast<std::uint64_t>(grown.values()[i]) !=
        std::bit_cast<std::uint64_t>(reference.values()[i])) {
      src.note("value not bitwise at nnz index " + std::to_string(i));
      return false;
    }
  }

  // And the grown matrix still honors the §12 bitwise SpMV contract.
  const Vector probe = gen_vector(src, cols);
  const Vector dense_prod = reference.to_dense() * probe;
  const Vector sparse_prod = grown * probe;
  for (std::size_t i = 0; i < dense_prod.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(dense_prod[i]) !=
        std::bit_cast<std::uint64_t>(sparse_prod[i])) {
      src.note("SpMV on the grown matrix not bitwise at row " +
               std::to_string(i));
      return false;
    }
  }
  return true;
}

bool prop_qr_matches_normal_equations(Source& src) {
  const std::size_t cols = 1 + src.index(5);
  const std::size_t rows = cols + src.index(4);
  const double decades = src.grid_nonneg(1.0, 2);  // condition ≤ ~10²
  const Matrix a = gen_matrix_with_rank(src, rows, cols, cols, decades);
  const Vector b = gen_vector(src, rows);

  const auto x_qr = least_squares(a, b, LeastSquaresMethod::kQr);
  const auto x_ne = least_squares(a, b, LeastSquaresMethod::kNormalEquations);
  const std::vector<double> x_ref = ref_normal_equations(a, b);
  if (!x_qr.has_value() || !x_ne.has_value() || x_ref.empty()) {
    src.note("a full-column-rank solve refused: qr=" +
             std::to_string(x_qr.has_value()) +
             " ne=" + std::to_string(x_ne.has_value()) +
             " ref=" + std::to_string(!x_ref.empty()));
    return false;
  }
  // Normal equations square the conditioning; scale the agreement tolerance
  // by the generated condition decades.
  double scale = 1.0;
  for (const double v : x_ref) scale = std::max(scale, std::abs(v));
  const double tol = 1e-8 * std::pow(10.0, 2.0 * decades) * scale;
  for (std::size_t j = 0; j < cols; ++j) {
    const double d_ne = std::abs((*x_qr)[j] - (*x_ne)[j]);
    const double d_ref = std::abs((*x_qr)[j] - x_ref[j]);
    if (d_ne > tol || d_ref > tol) {
      std::ostringstream os;
      os << rows << "x" << cols << " cond decades " << decades << ": x[" << j
         << "] qr=" << (*x_qr)[j] << " ne=" << (*x_ne)[j]
         << " ref=" << x_ref[j] << " tol=" << tol;
      src.note(os.str());
      return false;
    }
  }
  return true;
}

bool prop_pinv_satisfies_moore_penrose(Source& src) {
  const std::size_t cols = 1 + src.index(4);
  const std::size_t rows = cols + src.index(4);
  const double decades = src.grid_nonneg(1.0, 2);
  const Matrix a = gen_matrix_with_rank(src, rows, cols, cols, decades);

  const Matrix g = pseudo_inverse(a);
  const double tol = 1e-8 * std::pow(10.0, 2.0 * decades);
  if (!check_moore_penrose(a, g, tol)) {
    std::ostringstream os;
    os << rows << "x" << cols << " cond decades " << decades
       << ": Moore-Penrose axioms violated beyond tol " << tol;
    src.note(os.str());
    return false;
  }
  const auto checked = try_pseudo_inverse(a);
  if (!checked.ok() || !approx_equal(g, *checked, 1e-12)) {
    src.note("try_pseudo_inverse disagrees with pseudo_inverse: " +
             checked.error_message());
    return false;
  }
  return true;
}

bool prop_rank_detects_deficiency(Source& src) {
  const std::size_t rows = 2 + src.index(5);
  const std::size_t cols = 2 + src.index(4);
  const std::size_t max_rank = std::min(rows, cols);
  const std::size_t rank = 1 + src.index(max_rank);
  const Matrix a = gen_matrix_with_rank(src, rows, cols, rank);
  const Vector b = gen_vector(src, rows);

  const std::size_t measured = matrix_rank(a);
  if (measured != rank) {
    src.note("constructed rank " + std::to_string(rank) +
             " but matrix_rank reports " + std::to_string(measured));
    return false;
  }
  RankTracker tracker(cols);
  for (std::size_t i = 0; i < rows; ++i) tracker.add(a.row(i));
  if (tracker.rank() != rank) {
    src.note("RankTracker reports " + std::to_string(tracker.rank()) +
             " for constructed rank " + std::to_string(rank));
    return false;
  }
  const auto solve = try_least_squares(a, b);
  if (rank < cols) {
    if (solve.ok() ||
        solve.code() != robust::ErrorCode::kRankDeficient) {
      src.note("rank-deficient solve was not refused as kRankDeficient");
      return false;
    }
    if (least_squares(a, b).has_value()) {
      src.note("least_squares accepted a rank-deficient system");
      return false;
    }
  } else if (!solve.ok()) {
    src.note("full-rank solve refused: " + solve.error_message());
    return false;
  }
  return true;
}

// ---- attack_feasibility_matches_cut_condition -----------------------------

bool prop_attack_feasibility_matches_cut_condition(Source& src) {
  auto sc = gen_er_scenario(src, 14 + src.index(8), 0.25);
  if (!sc.has_value()) return true;  // unidentifiable draw: vacuous
  const auto& paths = sc->estimator().paths();

  // Differential check of the cut predicate itself on an arbitrary draw.
  const std::vector<NodeId> rand_attackers = gen_attackers(src, *sc, 4);
  const std::vector<LinkId> rand_victims{gen_victim(src, *sc)};
  if (is_perfect_cut(paths, rand_attackers, rand_victims) !=
      ref_perfect_cut(paths, rand_attackers, rand_victims)) {
    src.note("is_perfect_cut disagrees with the literal graph evaluation");
    return false;
  }

  // Theorem 1 construction: victim with non-monitor endpoints, attackers =
  // the endpoints' full outside neighborhood — a perfect cut by design.
  const std::size_t offset = src.index(sc->graph().num_links());
  for (std::size_t step = 0; step < sc->graph().num_links(); ++step) {
    const LinkId victim = (offset + step) % sc->graph().num_links();
    const Link& l = sc->graph().link(victim);
    if (sc->is_monitor(l.u) || sc->is_monitor(l.v)) continue;
    std::vector<NodeId> attackers;
    for (const Adjacent& a : sc->graph().neighbors(l.u))
      if (a.neighbor != l.v) attackers.push_back(a.neighbor);
    for (const Adjacent& a : sc->graph().neighbors(l.v))
      if (a.neighbor != l.u &&
          std::find(attackers.begin(), attackers.end(), a.neighbor) ==
              attackers.end())
        attackers.push_back(a.neighbor);
    if (attackers.empty()) continue;

    if (!ref_perfect_cut(paths, attackers, {victim})) {
      src.note("neighborhood construction is not a perfect cut (victim " +
               std::to_string(victim) + ")");
      return false;
    }
    AttackContext ctx = sc->context(attackers);
    const AttackResult r =
        chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    if (!r.success) {
      src.note("Theorem 1 violated: perfect cut but consistent LP " +
               lp::to_string(r.status) + " (victim " + std::to_string(victim) +
               ", " + std::to_string(attackers.size()) + " attackers)");
      return false;
    }
    const double residual =
        detect_scapegoating(sc->estimator(), r.y_observed).residual_norm1;
    if (residual >= 1.0) {
      src.note("Theorem 3 violated: consistent attack left residual " +
               std::to_string(residual));
      return false;
    }
    return true;  // one constructed victim per case
  }
  return true;  // no interior link in this draw: vacuous
}

// ---- detector_residual_matches_eq23 ---------------------------------------

bool prop_detector_residual_matches_eq23(Source& src) {
  auto sc = gen_er_scenario(src, 12 + src.index(6), 0.3);
  if (!sc.has_value()) return true;
  const Estimator& est = sc->estimator();

  Vector y = sc->clean_measurements();
  const std::size_t tampered = src.index(y.size() + 1);
  for (std::size_t i = 0; i < tampered; ++i)
    y[src.index(y.size())] += src.grid_nonneg(50.0, 24);  // up to 1200 ms

  const DetectionOutcome out = detect_scapegoating(est, y);
  const double ref = ref_eq23_residual(est.r(), est.estimate(y), y);
  if (std::abs(out.residual_norm1 - ref) > 1e-6 * (1.0 + ref)) {
    src.note("detector residual " + std::to_string(out.residual_norm1) +
             " vs literal Eq. 23 " + std::to_string(ref));
    return false;
  }
  const DetectorOptions defaults;
  if (std::abs(ref - defaults.alpha) > 1e-6 &&
      out.detected != (ref > defaults.alpha)) {
    src.note("detected flag inconsistent with residual " +
             std::to_string(ref) + " vs alpha " +
             std::to_string(defaults.alpha));
    return false;
  }
  return true;
}

// ---- tomography_sparse_matches_least_squares ------------------------------

// Differential oracle for the sparse-recovery family on identifiable
// systems: with R full column rank and exactly consistent measurements,
// Rx = y has the unique nonnegative solution x, so the equality-mode ℓ1
// LP must return the SAME point least squares does — elementwise, with the
// planted anomaly support recovered exactly, no relaxation, and zero
// excess residual statistic.
bool prop_sparse_recovery_matches_least_squares(Source& src) {
  auto sc = gen_er_scenario(src, 12 + src.index(6), 0.3);
  if (!sc.has_value()) return true;  // unidentifiable draw: vacuous
  const Estimator& ls = sc->estimator();
  const std::size_t n = ls.num_links();

  // Plant a k-sparse anomaly (well inside the abnormal band) over the true
  // metrics — the compressive-sensing ground-truth model.
  const std::size_t k = 1 + src.index(std::min<std::size_t>(n, 4));
  Vector x = sc->x_true();
  std::vector<std::size_t> planted = src.distinct_indices(n, k);
  std::sort(planted.begin(), planted.end());
  for (const std::size_t l : planted) x[l] += 300.0 + src.grid_nonneg(100.0, 9);
  const Vector y = ls.r() * x;

  SparseRecoveryOptions so;
  so.prior = sc->x_true();
  const SparseRecoveryEstimator sparse(sc->graph(), ls.paths(), so);
  const auto rec = sparse.recover(y);
  if (!rec.ok()) {
    src.note("equality recovery refused consistent measurements: " +
             rec.error_message());
    return false;
  }
  if (rec->relaxed) {
    src.note("relaxation fired on exactly consistent measurements (eps " +
             std::to_string(rec->epsilon_used) + ")");
    return false;
  }
  const Vector x_ls = ls.estimate(y);
  double scale = 1.0;
  for (const double v : x_ls) scale = std::max(scale, std::abs(v));
  for (std::size_t j = 0; j < n; ++j) {
    if (rec->x[j] < -1e-9) {
      src.note("recovered metric went negative at link " + std::to_string(j));
      return false;
    }
    if (std::abs(rec->x[j] - x_ls[j]) > 1e-6 * scale) {
      std::ostringstream os;
      os << "x[" << j << "] sparse=" << rec->x[j] << " vs ls=" << x_ls[j]
         << " on a " << ls.num_paths() << "x" << n << " system (k=" << k
         << ")";
      src.note(os.str());
      return false;
    }
  }
  const std::vector<LinkId> want(planted.begin(), planted.end());
  if (rec->support != want) {
    src.note("support missed the planted anomaly set (got " +
             std::to_string(rec->support.size()) + " links, planted " +
             std::to_string(want.size()) + ")");
    return false;
  }
  if (sparse.residual_statistic(y) > 1e-6 * (1.0 + y.norm1())) {
    src.note("nonzero excess statistic on consistent measurements: " +
             std::to_string(sparse.residual_statistic(y)));
    return false;
  }
  return true;
}

// ---- tomography_mle_matches_closed_form -----------------------------------

// Three independent checks of the gamma-recursion MLE on one generated
// tree:
//   1. exact interpolation — on model-implied γ's the fit must reproduce
//      the generating logical rates (closed form and fixed point alike);
//   2. the textbook two-leaf closed form on every binary internal node
//      whose children are both leaves, against the fit's reach estimate;
//   3. brute force — on trees with ≤ 4 logical links, the fit's exhaustive
//      outcome log-likelihood must match the best grid-search rate vector
//      (the recursive solution is the maximizer, or it is wrong).
// Clamped fits (infeasible empirical γ's — negative sampled correlation)
// leave the interior of the parameter space, where the recursion's output
// is a boundary point, not the interior MLE; 2 and 3 are skipped there.
bool prop_mle_matches_closed_form(Source& src) {
  const MulticastTreeDraw draw = gen_multicast_tree(src, 5, 2);
  const MulticastTree& tree = draw.tree;
  const std::size_t n = tree.num_nodes();
  const std::size_t num_links = draw.graph.num_links();

  // Ground truth: per-physical-link delivery on a 0.05 grid in [0.6, 1];
  // logical rates are the chain products.
  std::vector<double> delivery(num_links);
  for (double& d : delivery) d = 1.0 - src.grid_nonneg(0.05, 8);
  Vector alpha(n);
  alpha[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    alpha[k] = 1.0;
    for (const LinkId l : tree.nodes[k].chain) alpha[k] *= delivery[l];
  }

  // 1) Exact-gamma interpolation.
  const auto exact =
      solve_multicast_mle(num_links, tree, model_gammas(tree, alpha));
  if (!exact.ok()) {
    src.note("exact-gamma solve refused: " + exact.error_message());
    return false;
  }
  if (!exact->converged || exact->residual > 1e-9) {
    src.note("exact gammas left residual " + std::to_string(exact->residual) +
             " (converged=" + std::to_string(exact->converged) + ")");
    return false;
  }
  for (std::size_t k = 1; k < n; ++k) {
    if (std::abs(exact->link_success[k] - alpha[k]) > 1e-7) {
      std::ostringstream os;
      os << "node " << k << ": recovered " << exact->link_success[k]
         << " vs true " << alpha[k] << " on " << n << " nodes";
      src.note(os.str());
      return false;
    }
  }

  // 2+3) Finite-probe run through the simulator.
  simnet::MulticastProbeOptions popt;
  popt.probes = 256 + 64 * static_cast<std::size_t>(src.choice(8));
  popt.seed = src.choice(0xffffffffull);
  popt.link_delivery = delivery;
  const simnet::MulticastProbeRun run =
      simnet::run_multicast_probes(tree, popt);

  const auto fit = solve_multicast_mle(num_links, tree, run.obs);
  if (!fit.ok()) {
    // A dead leaf is the one legitimate refusal on a finite run.
    if (fit.code() == robust::ErrorCode::kMissingData) return true;
    src.note("finite-run solve refused: " + fit.error_message());
    return false;
  }
  if (fit->clamped > 0) return true;  // boundary fit: interior checks vacuous

  // Two-leaf closed form — hidden internal nodes only: the root's reach is
  // pinned at 1 (probes originate there), so the Cáceres Â formula does not
  // apply to a root-split shape.
  for (std::size_t k = 1; k < n; ++k) {
    const auto& node = tree.nodes[k];
    if (node.children.size() != 2 ||
        !tree.nodes[node.children[0]].is_leaf() ||
        !tree.nodes[node.children[1]].is_leaf())
      continue;
    const std::vector<double> ref =
        ref_two_leaf_mle(run.obs.gamma(node.children[0]),
                         run.obs.gamma(node.children[1]), run.obs.gamma(k));
    if (std::abs(fit->node_reach[k] - ref[0]) >
        1e-9 * std::max(1.0, std::abs(ref[0]))) {
      std::ostringstream os;
      os << "two-leaf node " << k << ": fit reach " << fit->node_reach[k]
         << " vs textbook " << ref[0];
      src.note(os.str());
      return false;
    }
  }

  if (n - 1 <= 4 && !run.outcome_counts.empty()) {
    const double fit_ll = ref_multicast_outcome_loglik(
        tree, fit->link_success, run.outcome_counts, run.probes_sent);
    if (std::isfinite(fit_ll)) {
      const double best = ref_multicast_mle_grid(tree, run.outcome_counts,
                                                 run.probes_sent);
      // Grid resolution bounds how much the grid can win by near the
      // optimum: the likelihood is smooth in the interior, so a true
      // maximizer can trail the best grid point only marginally.
      const double slack =
          1e-3 * static_cast<double>(run.probes_sent) / 9.0 + 1e-6;
      if (fit_ll < best - slack) {
        std::ostringstream os;
        os << "recursive fit loglik " << fit_ll << " < grid best " << best
           << " − " << slack << " on " << n - 1 << " links, "
           << run.probes_sent << " probes";
        src.note(os.str());
        return false;
      }
    }
  }
  return true;
}

// ---- checkpoint_resume_equivalence ----------------------------------------

std::string unique_checkpoint_path() {
  static std::atomic<unsigned> counter{0};
  std::ostringstream os;
  os << (std::filesystem::temp_directory_path() / "scapegoat_prop_ckpt_")
            .string()
     << ::getpid() << "_" << counter.fetch_add(1) << ".ckpt";
  return os.str();
}

bool same_series(const PresenceRatioSeries& a, const PresenceRatioSeries& b,
                 Source& src) {
  if (a.total_trials != b.total_trials || a.bins.size() != b.bins.size()) {
    src.note("series shape differs after resume");
    return false;
  }
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    if (a.bins[i].trials != b.bins[i].trials ||
        a.bins[i].successes != b.bins[i].successes) {
      src.note("bin " + std::to_string(i) + " differs after resume: " +
               std::to_string(b.bins[i].successes) + "/" +
               std::to_string(b.bins[i].trials) + " vs " +
               std::to_string(a.bins[i].successes) + "/" +
               std::to_string(a.bins[i].trials));
      return false;
    }
  }
  return true;
}

bool prop_checkpoint_resume_equivalence(Source& src) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 4 + src.index(5);
  opt.seed = src.choice(0xffffull);
  opt.threads = 1 + src.index(2);
  const std::size_t stop_after = 1 + src.index(opt.trials_per_topology - 1);

  const PresenceRatioSeries full =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  const std::string path = unique_checkpoint_path();
  opt.resilience.checkpoint_path = path;
  opt.resilience.stop_after_new_trials = stop_after;
  const PresenceRatioSeries partial =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  opt.resilience.resume = true;
  opt.resilience.stop_after_new_trials = 0;
  const PresenceRatioSeries resumed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".manifest", ec);

  if (partial.total_trials < full.total_trials && !partial.interrupted) {
    src.note("stopped run not marked interrupted at quota " +
             std::to_string(stop_after));
    return false;
  }
  if (resumed.trials_replayed == 0) {
    src.note("resume replayed no trials despite a journaled prefix");
    return false;
  }
  return same_series(full, resumed, src);
}

}  // namespace

const std::map<std::string, NamedProperty>& property_registry() {
  static const std::map<std::string, NamedProperty> registry = {
      {"lp_simplex_matches_reference",
       {prop_lp_simplex_matches_reference, 200, 1}},
      {"lp_revised_simplex_matches_tableau",
       {prop_lp_revised_simplex_matches_tableau, 200, 1}},
      {"linalg_sparse_matches_dense_least_squares",
       {prop_sparse_matches_dense_least_squares, 200, 1}},
      {"linalg_sparse_row_append_matches_rebuild",
       {prop_sparse_row_append_matches_rebuild, 200, 1}},
      {"linalg_qr_matches_normal_equations",
       {prop_qr_matches_normal_equations, 200, 1}},
      {"linalg_pinv_satisfies_moore_penrose",
       {prop_pinv_satisfies_moore_penrose, 200, 1}},
      {"linalg_rank_detects_deficiency",
       {prop_rank_detects_deficiency, 200, 1}},
      {"attack_feasibility_matches_cut_condition",
       {prop_attack_feasibility_matches_cut_condition, 40, 5}},
      {"detector_residual_matches_eq23",
       {prop_detector_residual_matches_eq23, 60, 4}},
      {"tomography_sparse_matches_least_squares",
       {prop_sparse_recovery_matches_least_squares, 60, 4}},
      {"tomography_mle_matches_closed_form",
       {prop_mle_matches_closed_form, 100, 3}},
      {"checkpoint_resume_equivalence",
       {prop_checkpoint_resume_equivalence, 8, 25}},
  };
  return registry;
}

PropertyOutcome check_registry_property(const std::string& name) {
  const auto it = property_registry().find(name);
  if (it == property_registry().end()) {
    PropertyOutcome out;
    out.name = name;
    out.passed = false;
    out.notes.push_back("unknown property name");
    return out;
  }
  PropertyConfig cfg = PropertyConfig::from_env(it->second.default_iters);
  if (cfg.env_iterations) cfg = cfg.scaled(it->second.iters_divisor);
  return check_property(name, it->second.property, cfg);
}

}  // namespace scapegoat::testkit
