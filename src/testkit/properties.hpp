// The paper's differential properties as named, registry-exposed functions.
//
// Each property generates an instance from a Source and diffs a production
// code path against an independent oracle (oracles.hpp) or a stated theorem:
//
//   lp_simplex_matches_reference       two-phase simplex vs brute-force
//                                      vertex enumeration (small boxed LPs)
//   linalg_qr_matches_normal_equations QR least-squares vs the literal Eq. 2
//                                      normal-equations path vs a textbook
//                                      Gaussian-elimination reference
//   linalg_pinv_satisfies_moore_penrose  R⁺ vs the four Moore–Penrose axioms
//   linalg_rank_detects_deficiency     pivoted-QR rank vs constructed rank;
//                                      rank-deficient solves must refuse
//   attack_feasibility_matches_cut_condition  Theorem 1: perfect cut (checked
//                                      directly on the graph) ⇒ consistent
//                                      chosen-victim LP feasible ⇒ invisible
//                                      to Eq. 23 (Theorem 3)
//   detector_residual_matches_eq23     detect_scapegoating vs the literal
//                                      Σ|y − Rx̂| evaluation
//   tomography_sparse_matches_least_squares  equality-mode ℓ1 recovery vs
//                                      least squares on identifiable systems
//                                      with a planted k-sparse anomaly (the
//                                      feasible set is the singleton R⁺y, so
//                                      the families must coincide exactly)
//   checkpoint_resume_equivalence      save / interrupt / resume of a
//                                      generated experiment config folds to
//                                      the exact uninterrupted result
//
// The registry maps names to properties so corpus seed files
// (tests/corpus/*.seed) can be replayed generically by test_prop_corpus.

#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "testkit/runner.hpp"

namespace scapegoat::testkit {

struct NamedProperty {
  Property property;
  // CI iteration default when SCAPEGOAT_PROP_ITERS is unset; env budgets are
  // divided by `iters_divisor` for expensive properties so a raised nightly
  // budget scales every suite proportionally.
  std::size_t default_iters = 200;
  std::size_t iters_divisor = 1;
};

// Name → property. Stable names: corpus seed files reference them.
const std::map<std::string, NamedProperty>& property_registry();

// Convenience: run a registry property under its per-property env config.
PropertyOutcome check_registry_property(const std::string& name);

}  // namespace scapegoat::testkit
