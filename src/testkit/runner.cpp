#include "testkit/runner.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "testkit/shrink.hpp"
#include "util/random.hpp"

namespace scapegoat::testkit {
namespace {

std::optional<std::uint64_t> parse_u64(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  // Base 0: accepts decimal and the 0x-prefixed hex the runner prints.
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (errno != 0 || end == text || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::string join_tape(const std::vector<std::uint64_t>& tape) {
  std::ostringstream os;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (i != 0) os << ',';
    os << tape[i];
  }
  return os.str();
}

bool run_case(const Property& property, Source& src) {
  try {
    return property(src);
  } catch (...) {
    // A throwing property is a failing property; the tape still identifies
    // the instance that triggered it.
    return false;
  }
}

}  // namespace

PropertyConfig PropertyConfig::from_env(std::size_t default_iterations) {
  PropertyConfig cfg;
  cfg.iterations = default_iterations;
  if (const auto iters = parse_u64(std::getenv("SCAPEGOAT_PROP_ITERS"))) {
    cfg.iterations = static_cast<std::size_t>(*iters);
    cfg.env_iterations = true;
  }
  cfg.replay_seed = parse_u64(std::getenv("SCAPEGOAT_PROP_SEED"));
  if (const char* dir = std::getenv("SCAPEGOAT_PROP_CORPUS"))
    cfg.corpus_out_dir = dir;
  return cfg;
}

PropertyConfig PropertyConfig::scaled(std::size_t divisor) const {
  PropertyConfig cfg = *this;
  if (divisor > 1 && cfg.iterations > 0)
    cfg.iterations = std::max<std::size_t>(1, cfg.iterations / divisor);
  return cfg;
}

std::string PropertyOutcome::report() const {
  std::ostringstream os;
  os << "property '" << name << "' ";
  if (skipped) {
    os << "skipped (SCAPEGOAT_PROP_ITERS=0)";
    return os.str();
  }
  if (passed) {
    os << "passed " << iterations << " cases";
    return os.str();
  }
  os << "FAILED (seed " << hex(failing_seed) << ", tape "
     << original_tape.size() << " -> " << shrunk_tape.size() << " choices)\n";
  os << "  shrunk tape: [" << join_tape(shrunk_tape) << "]\n";
  for (const std::string& n : notes) os << "  note: " << n << "\n";
  if (!seed_file.empty()) os << "  journaled: " << seed_file << "\n";
  os << "  replay: SCAPEGOAT_PROP_SEED=" << hex(failing_seed)
     << " (reruns this exact case)";
  return os.str();
}

PropertyOutcome check_property(std::string_view name, const Property& property,
                               const PropertyConfig& config) {
  PropertyOutcome out;
  out.name = std::string(name);
  if (config.iterations == 0 && !config.replay_seed.has_value()) {
    out.skipped = true;
    return out;
  }

  const std::size_t iterations =
      config.replay_seed.has_value() ? 1 : config.iterations;
  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = config.replay_seed.has_value()
                                   ? *config.replay_seed
                                   : derive_seed(config.base_seed, i);
    Source src(seed);
    const bool ok = run_case(property, src);
    ++out.iterations;
    if (ok) continue;

    out.passed = false;
    out.failing_seed = seed;
    out.original_tape = src.tape();

    // Shrink: a candidate tape survives iff its replay still fails.
    const auto still_fails = [&](const std::vector<std::uint64_t>& tape) {
      Source replay(tape);
      return !run_case(property, replay);
    };
    out.shrunk_tape =
        shrink_tape(out.original_tape, still_fails, config.max_shrink_evals);

    // Replay the minimal counterexample once more to collect its notes.
    Source final_replay(out.shrunk_tape);
    run_case(property, final_replay);
    out.notes = final_replay.notes();

    // Journal the failure for the corpus (best effort — a read-only cwd
    // must not turn a red property into a crash).
    SeedFile sf;
    sf.property = out.name;
    sf.seed = seed;
    sf.tape = out.shrunk_tape;
    sf.notes = out.notes;
    const std::string dir =
        config.corpus_out_dir.empty() ? "." : config.corpus_out_dir;
    const std::string path = dir + "/" + out.name + ".seed";
    std::ofstream f(path);
    if (f && (f << encode_seed_file(sf)) && f.flush()) out.seed_file = path;
    return out;
  }
  return out;
}

std::string encode_seed_file(const SeedFile& sf) {
  std::ostringstream os;
  os << "# scapegoat property regression seed — replay with\n"
     << "#   SCAPEGOAT_PROP_SEED=" << hex(sf.seed) << " <suite binary>\n"
     << "property " << sf.property << "\n"
     << "seed " << hex(sf.seed) << "\n";
  if (!sf.tape.empty()) os << "tape " << join_tape(sf.tape) << "\n";
  for (const std::string& n : sf.notes) os << "note " << n << "\n";
  return os.str();
}

std::optional<SeedFile> parse_seed_file(const std::string& text) {
  SeedFile sf;
  bool have_seed = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (key == "property") {
      sf.property = value;
    } else if (key == "seed") {
      const auto v = parse_u64(value.c_str());
      if (!v.has_value()) return std::nullopt;
      sf.seed = *v;
      have_seed = true;
    } else if (key == "tape") {
      std::istringstream ts(value);
      std::string tok;
      while (std::getline(ts, tok, ',')) {
        const auto v = parse_u64(tok.c_str());
        if (!v.has_value()) return std::nullopt;
        sf.tape.push_back(*v);
      }
    } else if (key == "note") {
      sf.notes.push_back(value);
    } else {
      return std::nullopt;  // unknown key: refuse to half-parse
    }
  }
  if (sf.property.empty() || !have_seed) return std::nullopt;
  return sf;
}

std::optional<SeedFile> load_seed_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_seed_file(buf.str());
}

}  // namespace scapegoat::testkit
