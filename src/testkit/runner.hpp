// Property runner: iteration loop, env knobs, shrinking, seed journaling.
//
// A Property is any callable `bool(Source&)` that returns true when the
// invariant holds for the instance it generated from the Source. The runner
//   1. runs `iterations` independent cases, seeding case i with
//      derive_seed(base_seed, i) so every case is replayable in isolation;
//   2. on the first failure, re-runs the case in replay mode and shrinks its
//      choice tape (shrink.hpp) to a minimal counterexample;
//   3. journals the failure to a corpus seed file (`<property>.seed`) that
//      replays bit-for-bit via SCAPEGOAT_PROP_SEED.
//
// Env knobs (read by PropertyConfig::from_env):
//   SCAPEGOAT_PROP_ITERS   iteration budget; 0 = skip the property cleanly
//                          (sanitizer runs); unset = per-property default.
//   SCAPEGOAT_PROP_SEED    run exactly ONE case with this Source seed —
//                          the replay knob for journaled/corpus seeds.
//   SCAPEGOAT_PROP_CORPUS  directory for failure journals (default: cwd).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "testkit/source.hpp"

namespace scapegoat::testkit {

using Property = std::function<bool(Source&)>;

struct PropertyConfig {
  std::size_t iterations = 200;    // CI default; nightly raises via env
  std::uint64_t base_seed = 0x5ca9e90a7ull;
  // Set when SCAPEGOAT_PROP_SEED is present: run one case, Source seeded
  // with exactly this value (no derive_seed indirection).
  std::optional<std::uint64_t> replay_seed;
  std::size_t max_shrink_evals = 4000;
  std::string corpus_out_dir;      // "" = current directory
  bool env_iterations = false;     // iterations came from SCAPEGOAT_PROP_ITERS

  // Reads the env knobs on top of `default_iterations`.
  static PropertyConfig from_env(std::size_t default_iterations = 200);

  // Copy with the iteration budget divided by `divisor` (min 1) — for
  // expensive properties (checkpoint resume, whole-scenario generation)
  // that should still scale with a raised nightly budget.
  PropertyConfig scaled(std::size_t divisor) const;
};

struct PropertyOutcome {
  std::string name;
  bool passed = true;
  bool skipped = false;            // SCAPEGOAT_PROP_ITERS=0
  std::size_t iterations = 0;      // cases actually run
  std::uint64_t failing_seed = 0;  // Source seed of the failing case
  std::vector<std::uint64_t> original_tape;
  std::vector<std::uint64_t> shrunk_tape;
  std::vector<std::string> notes;  // Source::note()s from the shrunk replay
  std::string seed_file;           // journal path, if one was written

  // Human-readable failure report with the replay command line.
  std::string report() const;
};

// Runs `property` under `config`. Never throws for property failures; a
// property that itself throws is treated as a failure of that case.
PropertyOutcome check_property(std::string_view name, const Property& property,
                               const PropertyConfig& config =
                                   PropertyConfig::from_env());

// ---- corpus seed files ----------------------------------------------------
//
// Format (line-oriented, '#' comments):
//   property <registry name>
//   seed 0x<hex>
//   tape 3,0,17,...        (optional: shrunk counterexample tape)
//   note <free text>       (optional, repeatable)

struct SeedFile {
  std::string property;
  std::uint64_t seed = 0;
  std::vector<std::uint64_t> tape;
  std::vector<std::string> notes;
};

std::string encode_seed_file(const SeedFile& sf);
std::optional<SeedFile> parse_seed_file(const std::string& text);
std::optional<SeedFile> load_seed_file(const std::string& path);

}  // namespace scapegoat::testkit
