#include "testkit/shrink.hpp"

#include <algorithm>

namespace scapegoat::testkit {
namespace {

struct Budget {
  std::size_t remaining;
  ShrinkStats* stats;

  bool spend() {
    if (remaining == 0) return false;
    --remaining;
    if (stats != nullptr) ++stats->evaluations;
    return true;
  }
};

bool accept(std::vector<std::uint64_t>& best,
            const std::vector<std::uint64_t>& candidate,
            const TapePredicate& still_fails, Budget& budget,
            ShrinkStats* stats) {
  if (!budget.spend()) return false;
  if (!still_fails(candidate)) return false;
  best = candidate;
  if (stats != nullptr) ++stats->improvements;
  return true;
}

// Pass 1: delete spans, window halving from |tape| down to 1.
bool delete_chunks(std::vector<std::uint64_t>& best,
                   const TapePredicate& still_fails, Budget& budget,
                   ShrinkStats* stats) {
  bool improved = false;
  for (std::size_t window = best.size(); window >= 1; window /= 2) {
    std::size_t start = 0;
    while (start < best.size() && budget.remaining > 0) {
      const std::size_t len = std::min(window, best.size() - start);
      std::vector<std::uint64_t> candidate(best.begin(), best.begin() + start);
      candidate.insert(candidate.end(), best.begin() + start + len,
                       best.end());
      if (accept(best, candidate, still_fails, budget, stats)) {
        improved = true;  // same start now names the next span
      } else {
        start += window;
      }
    }
    if (window == 1) break;
  }
  return improved;
}

// Pass 2: overwrite spans with zeros (keeps length, simplifies structure).
bool zero_chunks(std::vector<std::uint64_t>& best,
                 const TapePredicate& still_fails, Budget& budget,
                 ShrinkStats* stats) {
  bool improved = false;
  for (std::size_t window = best.size(); window >= 1; window /= 2) {
    for (std::size_t start = 0;
         start < best.size() && budget.remaining > 0; start += window) {
      const std::size_t len = std::min(window, best.size() - start);
      bool already_zero = true;
      for (std::size_t i = start; i < start + len; ++i)
        if (best[i] != 0) already_zero = false;
      if (already_zero) continue;
      std::vector<std::uint64_t> candidate = best;
      std::fill(candidate.begin() + start, candidate.begin() + start + len, 0);
      if (accept(best, candidate, still_fails, budget, stats)) improved = true;
    }
    if (window == 1) break;
  }
  return improved;
}

// Pass 3: per-scalar binary descent toward 0.
bool lower_scalars(std::vector<std::uint64_t>& best,
                   const TapePredicate& still_fails, Budget& budget,
                   ShrinkStats* stats) {
  bool improved = false;
  for (std::size_t i = 0; i < best.size() && budget.remaining > 0; ++i) {
    if (best[i] == 0) continue;
    // Try 0 outright, then close the gap from below: keep the largest known
    // failing value's floor via bisection on [lo+1, value).
    {
      std::vector<std::uint64_t> candidate = best;
      candidate[i] = 0;
      if (accept(best, candidate, still_fails, budget, stats)) {
        improved = true;
        continue;
      }
    }
    std::uint64_t lo = 0;             // known NOT to fail (as best[i])
    std::uint64_t hi = best[i];       // known to fail
    while (hi - lo > 1 && budget.remaining > 0) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      std::vector<std::uint64_t> candidate = best;
      candidate[i] = mid;
      if (accept(best, candidate, still_fails, budget, stats)) {
        hi = mid;
        improved = true;
      } else {
        lo = mid;
      }
    }
  }
  return improved;
}

}  // namespace

std::vector<std::uint64_t> shrink_tape(std::vector<std::uint64_t> tape,
                                       const TapePredicate& still_fails,
                                       std::size_t max_evals,
                                       ShrinkStats* stats) {
  Budget budget{max_evals, stats};
  bool improved = true;
  while (improved && budget.remaining > 0) {
    improved = false;
    if (delete_chunks(tape, still_fails, budget, stats)) improved = true;
    if (zero_chunks(tape, still_fails, budget, stats)) improved = true;
    if (lower_scalars(tape, still_fails, budget, stats)) improved = true;
  }
  // Trailing zeros decode identically to an exhausted tape — drop them so
  // the reported counterexample is canonical.
  while (!tape.empty() && tape.back() == 0) tape.pop_back();
  return tape;
}

}  // namespace scapegoat::testkit
