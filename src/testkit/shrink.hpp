// Integer-shrinking combinators over choice tapes.
//
// A failing property run is captured as its choice tape (source.hpp). The
// shrinker minimizes that tape under the ordering "shorter is simpler;
// equal length, lexicographically smaller is simpler" while preserving the
// failure, by composing three classic passes until a fixpoint:
//   1. chunk deletion  — drop spans of choices (halving window sizes), which
//      removes whole generated substructures (a constraint, an edge, a term);
//   2. chunk zeroing   — overwrite spans with 0, the simplest answer;
//   3. scalar descent  — per element, try 0 then binary-search down.
// Every candidate is validated by re-running the property in replay mode, so
// the result is always a genuine counterexample.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace scapegoat::testkit {

// Returns true iff replaying `tape` still FAILS the property.
using TapePredicate = std::function<bool(const std::vector<std::uint64_t>&)>;

struct ShrinkStats {
  std::size_t evaluations = 0;  // predicate calls spent
  std::size_t improvements = 0; // accepted simplifications
};

// Minimizes `tape` under `still_fails`, spending at most `max_evals`
// predicate evaluations. `tape` must satisfy the predicate on entry.
std::vector<std::uint64_t> shrink_tape(std::vector<std::uint64_t> tape,
                                       const TapePredicate& still_fails,
                                       std::size_t max_evals,
                                       ShrinkStats* stats = nullptr);

}  // namespace scapegoat::testkit
