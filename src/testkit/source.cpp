#include "testkit/source.hpp"

#include <algorithm>

namespace scapegoat::testkit {

Source::Source(std::uint64_t seed) : engine_(seed) {}

Source::Source(std::vector<std::uint64_t> tape)
    : replaying_(true), tape_(std::move(tape)) {}

std::uint64_t Source::choice(std::uint64_t bound) {
  if (replaying_) {
    ++cursor_;
    if (cursor_ > tape_.size()) {
      exhausted_ = true;
      return 0;
    }
    return std::min(tape_[cursor_ - 1], bound);
  }
  const std::uint64_t v =
      std::uniform_int_distribution<std::uint64_t>(0, bound)(engine_);
  tape_.push_back(v);
  ++cursor_;
  return v;
}

std::size_t Source::index(std::size_t n) {
  return static_cast<std::size_t>(choice(n == 0 ? 0 : n - 1));
}

double Source::grid(double step, std::uint64_t max_steps) {
  // Zig-zag decode: 0, +1, -1, +2, -2, ... so smaller choices mean smaller
  // magnitudes and the shrinker's drive-to-zero pass lands on 0.0 exactly.
  const std::uint64_t c = choice(2 * max_steps);
  if (c == 0) return 0.0;
  const double magnitude = static_cast<double>((c + 1) / 2) * step;
  return (c % 2 == 1) ? magnitude : -magnitude;
}

double Source::grid_nonneg(double step, std::uint64_t max_steps) {
  return static_cast<double>(choice(max_steps)) * step;
}

bool Source::maybe(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // choice 0 ↦ false keeps the all-zero tape on the "nothing happens" branch.
  return static_cast<double>(choice(1023)) >= 1024.0 * (1.0 - p);
}

std::vector<std::size_t> Source::distinct_indices(std::size_t n,
                                                  std::size_t k) {
  k = std::min(k, n);
  // Fisher–Yates over a virtual [0, n): pick from the shrinking remainder so
  // each element costs exactly one tape entry regardless of collisions.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace scapegoat::testkit
