// Choice-tape entropy source — the foundation of the property testkit.
//
// Every testkit generator draws from a Source instead of touching an engine
// directly. In recording mode the Source answers each `choice(bound)` with a
// fresh pseudo-random draw and logs it on an integer tape; in replay mode it
// answers from a previously recorded (possibly shrunk) tape. Because a
// generated value — a graph, a routing matrix, a whole LP model — is a pure
// function of its choice tape, minimizing the tape minimizes the
// counterexample (shrink.hpp), and re-seeding the Source replays a failure
// bit-for-bit (the SCAPEGOAT_PROP_SEED contract in runner.hpp).
//
// Conventions that make shrinking meaningful:
//   * choice(bound) is uniform on [0, bound] and 0 is always the *simplest*
//     answer (fewest nodes, zero coefficient, first index, ...).
//   * replay clamps out-of-range tape values to the bound and answers 0 once
//     the tape is exhausted, so every tape decodes to a valid instance.

#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace scapegoat::testkit {

class Source {
 public:
  // Recording mode: draws come from an engine seeded with `seed`.
  explicit Source(std::uint64_t seed);

  // Replay mode: draws come from `tape` (clamped; 0 after exhaustion).
  explicit Source(std::vector<std::uint64_t> tape);

  // Uniform integer in [0, bound], recorded on (or read from) the tape.
  std::uint64_t choice(std::uint64_t bound);

  // Index into a non-empty collection of size n: choice(n - 1).
  std::size_t index(std::size_t n);

  // Signed zig-zag grid value: step * {0, +1, -1, +2, -2, ...} up to
  // ±max_steps·step. choice 0 ↦ 0.0, so magnitudes shrink toward zero.
  double grid(double step, std::uint64_t max_steps);

  // Non-negative grid value in {0, step, ..., max_steps·step}.
  double grid_nonneg(double step, std::uint64_t max_steps);

  // Bernoulli(p) on a 1/1024 grid; choice 0 ↦ false.
  bool maybe(double p);

  // k distinct indices from [0, n), in generation order.
  std::vector<std::size_t> distinct_indices(std::size_t n, std::size_t k);

  // Diagnostic annotations attached to a failure report by the runner.
  void note(std::string text) { notes_.push_back(std::move(text)); }
  const std::vector<std::string>& notes() const { return notes_; }

  const std::vector<std::uint64_t>& tape() const { return tape_; }
  std::size_t choices_made() const { return cursor_; }
  bool replaying() const { return replaying_; }
  // True iff a replay ran off the end of its tape (answers defaulted to 0).
  bool exhausted() const { return exhausted_; }

 private:
  bool replaying_ = false;
  bool exhausted_ = false;
  std::size_t cursor_ = 0;           // replay read position
  std::mt19937_64 engine_;           // recording mode only
  std::vector<std::uint64_t> tape_;  // recorded or replayed choices
  std::vector<std::string> notes_;
};

}  // namespace scapegoat::testkit
