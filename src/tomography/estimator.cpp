#include "tomography/estimator.hpp"

#include <cassert>
#include <string>

#include "linalg/cgls.hpp"
#include "linalg/qr.hpp"
#include "obs/obs.hpp"

namespace scapegoat {

TomographyEstimator::TomographyEstimator(const Graph& g,
                                         std::vector<Path> paths,
                                         LeastSquaresMethod method,
                                         BackendPolicy backend)
    : Estimator(g, std::move(paths), backend), method_(method) {}

bool TomographyEstimator::solve_iteratively() const {
  const SparseMatrix& rs = sparse_r();
  return backend().use_iterative_solver(rs.rows(), rs.cols(), rs.nnz());
}

Vector TomographyEstimator::estimate(const Vector& y) const {
  assert(ok());
  assert(y.size() == num_paths());
  if (solve_iteratively()) {
    CglsResult cg = cgls_solve(sparse_r(), y);
    if (cg.converged) {
      obs::count("tomography.estimate.sparse");
      return cg.x;
    }
    // Rare: stalled CGLS (extreme conditioning). QR is always available.
    obs::count("tomography.estimate.cgls_fallback");
  }
  obs::count("tomography.estimate.dense");
  auto x = least_squares(r(), y, method_);
  assert(x.has_value());  // guaranteed by ok()
  return *x;
}

robust::Expected<Vector> TomographyEstimator::try_estimate(
    const Vector& y) const {
  if (y.size() != num_paths()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(y.size()) + " measurements for " +
                             std::to_string(num_paths()) + " paths"};
  }
  if (!ok()) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "path set does not identify the link metrics"};
  }
  if (solve_iteratively()) {
    CglsResult cg = cgls_solve(sparse_r(), y);
    if (cg.converged) {
      obs::count("tomography.estimate.sparse");
      return cg.x;
    }
    obs::count("tomography.estimate.cgls_fallback");
  }
  obs::count("tomography.estimate.dense");
  return try_least_squares(r(), y, method_);
}

Vector TomographyEstimator::streaming_estimate(const Vector& y) const {
  return pseudo_inverse() * y;
}

std::unique_ptr<Estimator> TomographyEstimator::clone() const {
  return std::make_unique<TomographyEstimator>(*this);
}

}  // namespace scapegoat
