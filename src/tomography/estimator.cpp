#include "tomography/estimator.hpp"

#include <cassert>
#include <string>

#include "linalg/cgls.hpp"
#include "linalg/qr.hpp"
#include "obs/obs.hpp"
#include "tomography/routing_matrix.hpp"

namespace scapegoat {

TomographyEstimator::TomographyEstimator(const Graph& g,
                                         std::vector<Path> paths,
                                         LeastSquaresMethod method,
                                         BackendPolicy backend)
    : paths_(std::move(paths)),
      r_(routing_matrix(g, paths_)),
      rs_(sparse_routing_matrix(g, paths_)),
      method_(method),
      backend_(backend) {
  ok_ = is_identifiable(r_);
}

robust::Status TomographyEstimator::try_append_path(const Path& path) {
  std::vector<std::size_t> cols(path.links.begin(), path.links.end());
  std::vector<double> ones(cols.size(), 1.0);
  if (robust::Status st = rs_.try_append_row(cols, ones); !st.ok()) {
    return st;
  }
  // Dense mirror: one-row extension by copy (the CSR side is the storage
  // that matters at scale; to_dense(rs_) == r_ stays exact).
  Matrix grown(r_.rows() + 1, r_.cols());
  for (std::size_t i = 0; i < r_.rows(); ++i)
    for (std::size_t j = 0; j < r_.cols(); ++j) grown(i, j) = r_(i, j);
  for (LinkId l : path.links) grown(r_.rows(), l) = 1.0;
  r_ = std::move(grown);
  paths_.push_back(path);
  pinv_.reset();  // G = R⁺ changed shape; recomputed on next use
  return robust::ok_status();
}

bool TomographyEstimator::solve_iteratively() const {
  return backend_.use_iterative_solver(rs_.rows(), rs_.cols(), rs_.nnz());
}

Vector TomographyEstimator::estimate(const Vector& y) const {
  assert(ok_);
  assert(y.size() == paths_.size());
  if (solve_iteratively()) {
    CglsResult cg = cgls_solve(rs_, y);
    if (cg.converged) {
      obs::count("tomography.estimate.sparse");
      return cg.x;
    }
    // Rare: stalled CGLS (extreme conditioning). QR is always available.
    obs::count("tomography.estimate.cgls_fallback");
  }
  obs::count("tomography.estimate.dense");
  auto x = least_squares(r_, y, method_);
  assert(x.has_value());  // guaranteed by ok_
  return *x;
}

robust::Expected<Vector> TomographyEstimator::try_estimate(
    const Vector& y) const {
  if (y.size() != paths_.size()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(y.size()) + " measurements for " +
                             std::to_string(paths_.size()) + " paths"};
  }
  if (!ok_) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "path set does not identify the link metrics"};
  }
  if (solve_iteratively()) {
    CglsResult cg = cgls_solve(rs_, y);
    if (cg.converged) {
      obs::count("tomography.estimate.sparse");
      return cg.x;
    }
    obs::count("tomography.estimate.cgls_fallback");
  }
  obs::count("tomography.estimate.dense");
  return try_least_squares(r_, y, method_);
}

const Matrix& TomographyEstimator::pseudo_inverse() const {
  assert(ok_);
  if (!pinv_) pinv_ = scapegoat::pseudo_inverse(r_);
  return *pinv_;
}

Vector TomographyEstimator::residual(const Vector& y) const {
  const Vector xhat = estimate(y);
  if (backend_.use_sparse_products(rs_.rows(), rs_.cols(), rs_.nnz())) {
    obs::count("tomography.residual.sparse");
    return y - rs_ * xhat;  // bitwise == dense product (sparse_matrix.hpp)
  }
  obs::count("tomography.residual.dense");
  return y - r_ * xhat;
}

std::vector<LinkState> TomographyEstimator::classify(
    const Vector& y, const StateThresholds& t) const {
  return classify_all(estimate(y), t);
}

}  // namespace scapegoat
