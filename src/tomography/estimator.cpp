#include "tomography/estimator.hpp"

#include <cassert>
#include <string>

#include "linalg/qr.hpp"
#include "tomography/routing_matrix.hpp"

namespace scapegoat {

TomographyEstimator::TomographyEstimator(const Graph& g,
                                         std::vector<Path> paths,
                                         LeastSquaresMethod method)
    : paths_(std::move(paths)),
      r_(routing_matrix(g, paths_)),
      method_(method) {
  ok_ = is_identifiable(r_);
}

Vector TomographyEstimator::estimate(const Vector& y) const {
  assert(ok_);
  assert(y.size() == paths_.size());
  auto x = least_squares(r_, y, method_);
  assert(x.has_value());  // guaranteed by ok_
  return *x;
}

robust::Expected<Vector> TomographyEstimator::try_estimate(
    const Vector& y) const {
  if (y.size() != paths_.size()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(y.size()) + " measurements for " +
                             std::to_string(paths_.size()) + " paths"};
  }
  if (!ok_) {
    return robust::Error{robust::ErrorCode::kRankDeficient,
                         "path set does not identify the link metrics"};
  }
  return try_least_squares(r_, y, method_);
}

const Matrix& TomographyEstimator::pseudo_inverse() const {
  assert(ok_);
  if (!pinv_) pinv_ = scapegoat::pseudo_inverse(r_);
  return *pinv_;
}

Vector TomographyEstimator::residual(const Vector& y) const {
  return y - r_ * estimate(y);
}

std::vector<LinkState> TomographyEstimator::classify(
    const Vector& y, const StateThresholds& t) const {
  return classify_all(estimate(y), t);
}

}  // namespace scapegoat
