// The network tomography estimator — Eq. 2 of the paper.
//
// Owns the routing matrix for a fixed path set and exposes:
//   * estimate(y)        — x̂ = (RᵀR)⁻¹Rᵀ y (computed via QR),
//   * pseudo_inverse()   — G = R⁺, cached; the attack LPs are linear in G,
//   * residual(y)        — y − R x̂(y), the quantity the detector thresholds.
// Construction fails (ok() == false) when R lacks full column rank, i.e.
// the link metrics are not identifiable from the chosen paths.
//
// Backend routing (DESIGN.md §12): R is held both dense and in CSR form.
// Products (R·x̂ in residual) resolve through BackendPolicy at call time and
// are bitwise-identical either way; the least-squares solve itself switches
// to iterative CGLS only when the policy's solver threshold says so (or a
// ScopedBackendOverride forces it), falling back to dense QR if CGLS fails
// to converge. Identifiability is always established densely — CGLS cannot
// detect rank deficiency.

#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/backend.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "robust/expected.hpp"
#include "tomography/link_state.hpp"

namespace scapegoat {

class TomographyEstimator {
 public:
  TomographyEstimator(const Graph& g, std::vector<Path> paths,
                      LeastSquaresMethod method = LeastSquaresMethod::kQr,
                      BackendPolicy backend = {});

  // False iff the path set does not identify all link metrics.
  bool ok() const { return ok_; }

  std::size_t num_paths() const { return paths_.size(); }
  std::size_t num_links() const { return r_.cols(); }
  const std::vector<Path>& paths() const { return paths_; }
  const Matrix& r() const { return r_; }
  const SparseMatrix& sparse_r() const { return rs_; }
  const BackendPolicy& backend() const { return backend_; }

  // Absorbs one more measurement path as a new row of R — the streaming
  // shape, where monitors announce additional (possibly repeated, i.e.
  // redundancy-adding) probe routes mid-run. The CSR form grows via the
  // incremental SparseMatrix::try_append_row (no from-scratch triplet
  // rebuild); the dense mirror is extended by a row copy and the cached
  // pseudo-inverse is invalidated (recomputed lazily on next use). A row
  // append can never lose column rank, so ok() is preserved. kInvalidInput
  // when the path's links don't fit R's width or repeat a link.
  robust::Status try_append_path(const Path& path);

  // x̂ from end-to-end measurements y (requires ok()).
  Vector estimate(const Vector& y) const;

  // Checked estimate: kRankDeficient when the path set is not identifiable
  // (ok() == false), kDimensionMismatch when |y| ≠ |paths|. Never asserts —
  // the entry point for measurements that may be degraded or hostile.
  robust::Expected<Vector> try_estimate(const Vector& y) const;

  // Cached Moore-Penrose pseudo-inverse G = R⁺ (requires ok()).
  const Matrix& pseudo_inverse() const;

  // y − R·estimate(y): zero (to numerical precision) iff y is consistent
  // with the linear model.
  Vector residual(const Vector& y) const;

  // Convenience: estimate then classify per Definition 1.
  std::vector<LinkState> classify(const Vector& y,
                                  const StateThresholds& t) const;

 private:
  // Resolved per call; true when the solver should go through CGLS.
  bool solve_iteratively() const;

  std::vector<Path> paths_;
  Matrix r_;
  SparseMatrix rs_;  // same R in CSR form (to_dense(rs_) == r_ exactly)
  LeastSquaresMethod method_;
  BackendPolicy backend_;
  bool ok_ = false;
  mutable std::optional<Matrix> pinv_;  // lazily computed
};

}  // namespace scapegoat
