// The least-squares tomography estimator — Eq. 2 of the paper, and the
// EstimatorKind::kLeastSquares implementation of the Estimator interface
// (estimator_interface.hpp, which owns the routing matrix, backend routing,
// pseudo-inverse cache and path appends shared by every family):
//   * estimate(y)        — x̂ = (RᵀR)⁻¹Rᵀ y (computed via QR),
//   * pseudo_inverse()   — G = R⁺, cached; the attack LPs are linear in G,
//   * residual(y)        — y − R x̂(y), the quantity the detector thresholds.
// Construction fails (ok() == false) when R lacks full column rank, i.e.
// the link metrics are not identifiable from the chosen paths.
//
// Backend routing (DESIGN.md §12): R is held both dense and in CSR form.
// Products (R·x̂ in residual) resolve through BackendPolicy at call time and
// are bitwise-identical either way; the least-squares solve itself switches
// to iterative CGLS only when the policy's solver threshold says so (or a
// ScopedBackendOverride forces it), falling back to dense QR if CGLS fails
// to converge. Identifiability is always established densely — CGLS cannot
// detect rank deficiency.

#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/backend.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "robust/expected.hpp"
#include "tomography/estimator_interface.hpp"
#include "tomography/link_state.hpp"

namespace scapegoat {

class TomographyEstimator : public Estimator {
 public:
  TomographyEstimator(const Graph& g, std::vector<Path> paths,
                      LeastSquaresMethod method = LeastSquaresMethod::kQr,
                      BackendPolicy backend = {});

  EstimatorKind method() const override {
    return EstimatorKind::kLeastSquares;
  }

  // Which least-squares kernel estimate() uses when the backend policy does
  // not force CGLS.
  LeastSquaresMethod solver() const { return method_; }

  // x̂ from end-to-end measurements y (requires ok()).
  Vector estimate(const Vector& y) const override;

  // Checked estimate: kRankDeficient when the path set is not identifiable
  // (ok() == false), kDimensionMismatch when |y| ≠ |paths|. Never asserts —
  // the entry point for measurements that may be degraded or hostile.
  robust::Expected<Vector> try_estimate(const Vector& y) const override;

  // Streaming fast path: x̂ = G·y through the cached pseudo-inverse — no
  // per-batch factorization (the property the service shards rely on).
  Vector streaming_estimate(const Vector& y) const override;

  std::unique_ptr<Estimator> clone() const override;

 private:
  // Resolved per call; true when the solver should go through CGLS.
  bool solve_iteratively() const;

  LeastSquaresMethod method_;
};

}  // namespace scapegoat
