#include "tomography/estimator_interface.hpp"

#include <cassert>
#include <ostream>

#include "linalg/qr.hpp"
#include "obs/obs.hpp"
#include "tomography/estimator.hpp"
#include "tomography/multicast_mle.hpp"
#include "tomography/routing_matrix.hpp"
#include "tomography/sparse_recovery.hpp"

namespace scapegoat {

std::string to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kLeastSquares:
      return "least_squares";
    case EstimatorKind::kSparseRecovery:
      return "sparse_recovery";
    case EstimatorKind::kMulticastMle:
      return "multicast_mle";
  }
  return "unknown";
}

std::optional<EstimatorKind> estimator_kind_from_string(std::string_view s) {
  if (s == "least_squares") return EstimatorKind::kLeastSquares;
  if (s == "sparse_recovery") return EstimatorKind::kSparseRecovery;
  if (s == "multicast_mle") return EstimatorKind::kMulticastMle;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, EstimatorKind kind) {
  return os << to_string(kind);
}

Estimator::Estimator(const Graph& g, std::vector<Path> paths,
                     BackendPolicy backend)
    : paths_(std::move(paths)),
      r_(routing_matrix(g, paths_)),
      rs_(sparse_routing_matrix(g, paths_)),
      backend_(backend) {
  ok_ = is_identifiable(r_);
}

robust::Status Estimator::try_append_path(const Path& path) {
  std::vector<std::size_t> cols(path.links.begin(), path.links.end());
  std::vector<double> ones(cols.size(), 1.0);
  if (robust::Status st = rs_.try_append_row(cols, ones); !st.ok()) {
    return st;
  }
  // Dense mirror: one-row extension by copy (the CSR side is the storage
  // that matters at scale; to_dense(rs_) == r_ stays exact).
  Matrix grown(r_.rows() + 1, r_.cols());
  for (std::size_t i = 0; i < r_.rows(); ++i)
    for (std::size_t j = 0; j < r_.cols(); ++j) grown(i, j) = r_(i, j);
  for (LinkId l : path.links) grown(r_.rows(), l) = 1.0;
  r_ = std::move(grown);
  paths_.push_back(path);
  pinv_.reset();  // G = R⁺ changed shape; recomputed on next use
  return robust::ok_status();
}

const Matrix& Estimator::pseudo_inverse() const {
  assert(ok_);
  if (!pinv_) pinv_ = scapegoat::pseudo_inverse(r_);
  return *pinv_;
}

Vector Estimator::residual(const Vector& y) const {
  const Vector xhat = estimate(y);
  if (backend_.use_sparse_products(rs_.rows(), rs_.cols(), rs_.nnz())) {
    obs::count("tomography.residual.sparse");
    return y - rs_ * xhat;  // bitwise == dense product (sparse_matrix.hpp)
  }
  obs::count("tomography.residual.dense");
  return y - r_ * xhat;
}

std::vector<LinkState> Estimator::classify(const Vector& y,
                                           const StateThresholds& t) const {
  return classify_all(estimate(y), t);
}

std::unique_ptr<Estimator> make_estimator(EstimatorKind kind, const Graph& g,
                                          std::vector<Path> paths,
                                          const EstimatorOptions& options) {
  switch (kind) {
    case EstimatorKind::kLeastSquares:
      return std::make_unique<TomographyEstimator>(
          g, std::move(paths), options.least_squares, options.backend);
    case EstimatorKind::kSparseRecovery: {
      SparseRecoveryOptions sparse;
      sparse.constraint = options.sparse_epsilon_ms > 0.0
                              ? SparseConstraint::kInfBall
                              : SparseConstraint::kEquality;
      sparse.epsilon_ms = options.sparse_epsilon_ms;
      sparse.prior = options.sparse_prior;
      sparse.lp_options = options.lp_options;
      return std::make_unique<SparseRecoveryEstimator>(g, std::move(paths),
                                                       std::move(sparse),
                                                       options.backend);
    }
    case EstimatorKind::kMulticastMle: {
      MulticastMleOptions mle;
      mle.min_rate = options.mle_min_rate;
      mle.max_fixed_point_iters = options.mle_fixed_point_iters;
      return std::make_unique<MulticastMleEstimator>(g, std::move(paths),
                                                     mle, options.backend);
    }
  }
  return nullptr;
}

}  // namespace scapegoat
