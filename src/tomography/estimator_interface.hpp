// The estimator interface every downstream consumer (attack LPs, the Eq. 23
// detector, the experiment drivers, the streaming service shards) compiles
// against. Concrete families:
//
//   * EstimatorKind::kLeastSquares   — TomographyEstimator (estimator.hpp),
//     x̂ = R⁺y via QR/CGLS; the paper's Eq. 2 defender.
//   * EstimatorKind::kSparseRecovery — SparseRecoveryEstimator
//     (sparse_recovery.hpp), min ‖x − x_prior‖₁ s.t. ‖Rx − y‖∞ ≤ ε, x ⪰ 0
//     as a bounded-variable LP; the FRANTIC-style compressive-sensing
//     defender.
//   * EstimatorKind::kMulticastMle — MulticastMleEstimator
//     (multicast_mle.hpp), the Cáceres et al. gamma-recursion MLE on rooted
//     multicast trees; the loss-domain defender. Tree-native on root→leaf
//     path sets, pseudo-inverse delegation otherwise.
//
// The base class owns everything that is a property of the path set rather
// than of the solve strategy: the routing matrix (dense + CSR mirror),
// backend routing policy, identifiability, the lazily-cached pseudo-inverse
// and the incremental path append. Virtuals cover the solve itself plus two
// hooks the families genuinely differ on:
//
//   * streaming_estimate — the service shard's per-batch solve. Least
//     squares caches G = R⁺ and never re-factorizes; sparse recovery has no
//     factorization to cache and re-solves its LP.
//   * residual_statistic — the scalar the Eq. 23 detector thresholds
//     against α. Least squares uses ‖y − Rx̂‖₁ verbatim; sparse recovery
//     subtracts its own per-path noise allowance ε first (the discrepancy
//     its measurement model cannot explain), otherwise the ℓ1 fit parked at
//     the ε-ball boundary would read as a permanent pseudo-inconsistency.
//
// clone() exists because Scenario and the service shards copy estimators
// into worker-private state.

#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/backend.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "lp/simplex.hpp"
#include "robust/expected.hpp"
#include "tomography/link_state.hpp"

namespace scapegoat {

enum class EstimatorKind {
  kLeastSquares,
  kSparseRecovery,
  kMulticastMle,
};

std::string to_string(EstimatorKind kind);
std::optional<EstimatorKind> estimator_kind_from_string(std::string_view s);
std::ostream& operator<<(std::ostream& os, EstimatorKind kind);

class Estimator {
 public:
  virtual ~Estimator() = default;

  // Which family this estimator belongs to.
  virtual EstimatorKind method() const = 0;

  // x̂ from end-to-end measurements y. Preconditions are family-specific
  // (least squares requires ok(); sparse recovery works on any R).
  virtual Vector estimate(const Vector& y) const = 0;

  // Checked estimate with the structured error taxonomy — the entry point
  // for measurements that may be degraded or hostile.
  virtual robust::Expected<Vector> try_estimate(const Vector& y) const = 0;

  // Deep copy preserving all cached state (Scenario / shard copies).
  virtual std::unique_ptr<Estimator> clone() const = 0;

  // The per-batch streaming solve (service shards). Defaults to
  // estimate(y); least squares overrides with the cached-G fast path.
  virtual Vector streaming_estimate(const Vector& y) const {
    return estimate(y);
  }

  // The Eq. 23 inconsistency statistic thresholded against α. Defaults to
  // ‖y − R·estimate(y)‖₁ (Eq. 23 verbatim).
  virtual double residual_statistic(const Vector& y) const {
    return residual(y).norm1();
  }

  // False iff the path set does not identify all link metrics. Least
  // squares refuses to estimate when false; sparse recovery still works
  // (that is the m < n compressive-sensing regime) — for it this is
  // informational only.
  bool ok() const { return ok_; }

  std::size_t num_paths() const { return paths_.size(); }
  std::size_t num_links() const { return r_.cols(); }
  const std::vector<Path>& paths() const { return paths_; }
  const Matrix& r() const { return r_; }
  const SparseMatrix& sparse_r() const { return rs_; }
  const BackendPolicy& backend() const { return backend_; }

  // Absorbs one more measurement path as a new row of R — the streaming
  // shape, where monitors announce additional (possibly repeated, i.e.
  // redundancy-adding) probe routes mid-run. The CSR form grows via the
  // incremental SparseMatrix::try_append_row (no from-scratch triplet
  // rebuild); the dense mirror is extended by a row copy and the cached
  // pseudo-inverse is invalidated (recomputed lazily on next use). A row
  // append can never lose column rank, so ok() is preserved. kInvalidInput
  // when the path's links don't fit R's width or repeat a link.
  robust::Status try_append_path(const Path& path);

  // Cached Moore-Penrose pseudo-inverse G = R⁺ (requires ok()). A property
  // of R alone, so it lives here: the attack LPs are linear in G whichever
  // family the defender runs.
  const Matrix& pseudo_inverse() const;

  // y − R·estimate(y): zero (to numerical precision) iff y is consistent
  // with the linear model as this family fits it. Routed dense/CSR by the
  // backend policy; the two products are bitwise identical.
  Vector residual(const Vector& y) const;

  // Convenience: estimate then classify per Definition 1.
  std::vector<LinkState> classify(const Vector& y,
                                  const StateThresholds& t) const;

 protected:
  Estimator(const Graph& g, std::vector<Path> paths, BackendPolicy backend);
  Estimator(const Estimator&) = default;
  Estimator& operator=(const Estimator&) = default;
  Estimator(Estimator&&) = default;
  Estimator& operator=(Estimator&&) = default;

 private:
  std::vector<Path> paths_;
  Matrix r_;
  SparseMatrix rs_;  // same R in CSR form (to_dense(rs_) == r_ exactly)
  BackendPolicy backend_;
  bool ok_ = false;
  mutable std::optional<Matrix> pinv_;  // lazily computed
};

// Factory configuration. Only the fields relevant to the requested kind are
// consulted; the sparse-recovery knobs map onto SparseRecoveryOptions
// (sparse_recovery.hpp) which carries the full set.
struct EstimatorOptions {
  LeastSquaresMethod least_squares = LeastSquaresMethod::kQr;
  BackendPolicy backend;
  // Sparse recovery: per-path ∞-ball noise allowance; 0 demands exact
  // consistency (the equality-constrained LP).
  double sparse_epsilon_ms = 0.0;
  // Sparse recovery: x_prior of the ℓ1 objective; empty means zeros (the
  // "anomalies over a silent baseline" model).
  Vector sparse_prior;
  // Sparse recovery: LP solver options for every recovery solve.
  lp::SimplexOptions lp_options;
  // Multicast MLE: clamp floor for fitted per-link success rates and the
  // iteration cap of the degree > 2 fixed-point solve (the full knob set
  // lives in MulticastMleOptions, multicast_mle.hpp).
  double mle_min_rate = 1e-6;
  std::size_t mle_fixed_point_iters = 1000;
};

std::unique_ptr<Estimator> make_estimator(EstimatorKind kind, const Graph& g,
                                          std::vector<Path> paths,
                                          const EstimatorOptions& options = {});

}  // namespace scapegoat
