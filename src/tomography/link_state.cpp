#include "tomography/link_state.hpp"

#include <cassert>

namespace scapegoat {

std::string to_string(LinkState s) {
  switch (s) {
    case LinkState::kNormal:
      return "normal";
    case LinkState::kUncertain:
      return "uncertain";
    case LinkState::kAbnormal:
      return "abnormal";
  }
  return "?";
}

LinkState classify(double metric, const StateThresholds& t) {
  assert(t.valid());
  if (metric < t.lower) return LinkState::kNormal;
  if (metric > t.upper) return LinkState::kAbnormal;
  return LinkState::kUncertain;
}

std::vector<LinkState> classify_all(const Vector& metrics,
                                    const StateThresholds& t) {
  std::vector<LinkState> out;
  out.reserve(metrics.size());
  for (double m : metrics) out.push_back(classify(m, t));
  return out;
}

std::vector<std::size_t> links_in_state(const std::vector<LinkState>& states,
                                        LinkState s) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < states.size(); ++i)
    if (states[i] == s) out.push_back(i);
  return out;
}

}  // namespace scapegoat
