// Link-state classification — Definition 1 of the paper.
//
// A link with metric x is `normal` when x < b_l, `abnormal` when x > b_u,
// and `uncertain` in between. The paper's experiments use delay with
// b_l = 100 ms and b_u = 800 ms (§V-A); the two-state variant is b_l == b_u.

#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace scapegoat {

enum class LinkState { kNormal, kUncertain, kAbnormal };

std::string to_string(LinkState s);

struct StateThresholds {
  double lower = 100.0;  // b_l: below ⇒ normal
  double upper = 800.0;  // b_u: above ⇒ abnormal

  bool valid() const { return lower <= upper; }
};

LinkState classify(double metric, const StateThresholds& t);

// Classifies a whole estimated metric vector.
std::vector<LinkState> classify_all(const Vector& metrics,
                                    const StateThresholds& t);

// Link ids in a given state.
std::vector<std::size_t> links_in_state(const std::vector<LinkState>& states,
                                        LinkState s);

}  // namespace scapegoat
