#include "tomography/loss_metric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scapegoat {

double loss_metric_from_delivery(double delivery_prob) {
  return -std::log(std::clamp(delivery_prob, 1e-9, 1.0));
}

double delivery_from_loss_metric(double metric) {
  assert(metric >= 0.0);
  return std::exp(-metric);
}

Vector loss_metrics_from_delivery(const std::vector<double>& delivery_probs) {
  Vector out(delivery_probs.size());
  for (std::size_t i = 0; i < delivery_probs.size(); ++i)
    out[i] = loss_metric_from_delivery(delivery_probs[i]);
  return out;
}

std::vector<double> delivery_from_loss_metrics(const Vector& metrics) {
  std::vector<double> out(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i)
    out[i] = delivery_from_loss_metric(metrics[i]);
  return out;
}

StateThresholds loss_thresholds(double normal_delivery,
                                double abnormal_delivery) {
  assert(normal_delivery > abnormal_delivery);
  StateThresholds t;
  t.lower = loss_metric_from_delivery(normal_delivery);
  t.upper = loss_metric_from_delivery(abnormal_delivery);
  return t;
}

}  // namespace scapegoat
