// Loss-rate tomography support.
//
// §II-A: "packet delivery or loss ratios are also additive in the
// logarithmic form". With per-link delivery probability p_l, a path's
// delivery ratio is Π p_l, so x_l = −log p_l is an additive link metric and
// the whole linear pipeline (Eq. 1/2, attacks, detection) applies
// unchanged. These helpers convert between the probability and metric
// domains and provide sensible state thresholds in the loss domain.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "tomography/link_state.hpp"

namespace scapegoat {

// x = −log(p); p clamped away from 0 so the metric stays finite.
double loss_metric_from_delivery(double delivery_prob);

// p = exp(−x).
double delivery_from_loss_metric(double metric);

// Componentwise conversions.
Vector loss_metrics_from_delivery(const std::vector<double>& delivery_probs);
std::vector<double> delivery_from_loss_metrics(const Vector& metrics);

// Definition-1 thresholds in the loss domain: a link is normal when it
// delivers at least `normal_delivery` (e.g. 0.99) and abnormal when it
// delivers less than `abnormal_delivery` (e.g. 0.90). Note the inversion:
// lower delivery ⇒ higher metric.
StateThresholds loss_thresholds(double normal_delivery = 0.99,
                                double abnormal_delivery = 0.90);

}  // namespace scapegoat
