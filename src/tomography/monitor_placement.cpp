#include "tomography/monitor_placement.hpp"

#include <algorithm>
#include <cassert>

namespace scapegoat {

MonitorPlacementResult place_monitors(const Graph& g,
                                      const MonitorPlacementOptions& opt,
                                      Rng& rng) {
  assert(g.num_nodes() >= 2 && g.num_links() >= 1);
  MonitorPlacementResult result;

  std::vector<bool> is_monitor(g.num_nodes(), false);
  // Structural necessity: interior nodes of degree ≤ 2 must be monitors. A
  // degree-1 node's stub link lies on no monitor-to-monitor path otherwise;
  // a degree-2 node's two links are traversed together by every simple path
  // through it, so their metrics can only be separated if some measurement
  // path *ends* there — i.e. the node is a monitor. (This is the interior
  // low-degree obstruction from the identifiability literature the paper
  // cites as [16].)
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) <= 2) is_monitor[v] = true;

  // Random seed monitors beyond the structural set.
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (!is_monitor[v]) candidates.push_back(v);
  rng.shuffle(candidates);
  std::size_t next_candidate = 0;
  for (; next_candidate < opt.initial_monitors &&
         next_candidate < candidates.size();
       ++next_candidate)
    is_monitor[candidates[next_candidate]] = true;

  auto monitor_list = [&] {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (is_monitor[v]) out.push_back(v);
    return out;
  };

  // Grow monitors until identifiable. The selector is incremental: rank and
  // accepted paths persist across growth steps, so each iteration only pays
  // for the marginal sampling. Termination: once every node is a monitor,
  // pass 1 measures each link as a one-hop path, which yields an identity
  // block inside R — full rank by construction.
  IncrementalPathSelector selector(g, opt.path_options);
  std::vector<NodeId> monitors = monitor_list();
  while (true) {
    if (monitors.size() >= 2) {
      selector.sample(monitors, rng);
      if (selector.identifiable()) break;
    }
    bool grew = false;
    for (std::size_t i = 0; i < opt.growth_step; ++i) {
      if (next_candidate < candidates.size()) {
        is_monitor[candidates[next_candidate++]] = true;
        grew = true;
      }
    }
    if (!grew) break;  // all nodes are monitors; last sample() decides
    monitors = monitor_list();
  }

  if (selector.identifiable()) {
    selector.add_redundant(monitors, rng);
  }
  result.monitors = std::move(monitors);
  result.rank = selector.rank();
  result.identifiable = selector.identifiable();
  result.paths = selector.take_paths();
  return result;
}

}  // namespace scapegoat
