// Monitor placement.
//
// The paper selects monitors "according to a random selection algorithm
// based on the minimum monitor placement rule in [16]" — i.e. a randomized
// placement whose post-condition is identifiability. We reproduce the
// post-condition directly:
//   1. every interior node of degree ≤ 2 must be a monitor (a stub link
//      lies on no monitor-to-monitor simple path otherwise, and a degree-2
//      node's links are only ever traversed together unless a path ends at
//      the node — the structural necessity from [16]),
//   2. start from a random seed set, run path selection, and while the
//      routing matrix is rank-deficient promote additional random
//      non-monitors; in the limit all nodes are monitors and adjacent-pair
//      one-hop paths make R the identity-padded full-rank matrix, so the
//      loop always terminates with an identifiable system.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tomography/path_selection.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct MonitorPlacementOptions {
  std::size_t initial_monitors = 4;  // random seed monitors (beyond the
                                     // structurally required degree-≤2 set)
  std::size_t growth_step = 4;       // monitors added per failed attempt
  PathSelectionOptions path_options;
};

struct MonitorPlacementResult {
  std::vector<NodeId> monitors;
  std::vector<Path> paths;
  std::size_t rank = 0;
  bool identifiable = false;
};

// Places monitors and selects measurement paths until the link metrics are
// identifiable. Requires a connected graph with ≥ 2 nodes and ≥ 1 link.
MonitorPlacementResult place_monitors(const Graph& g,
                                      const MonitorPlacementOptions& opt,
                                      Rng& rng);

}  // namespace scapegoat
