#include "tomography/multicast_mle.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace scapegoat {

namespace {

using robust::Error;
using robust::ErrorCode;

constexpr double kGammaSlack = 1e-12;  // fp slop tolerated outside [0, 1]

// Union-of-paths intermediate: the uncollapsed physical tree.
struct UnionNode {
  std::vector<std::pair<NodeId, LinkId>> children;  // insertion order
  bool receiver = false;
};

// Collapses pass-through relays of the physical union tree into logical
// chains. `receivers` fixes the leaf measurement order.
robust::Expected<MulticastTree> collapse_union(
    const std::map<NodeId, UnionNode>& un, NodeId root,
    const std::vector<NodeId>& receivers) {
  MulticastTree tree;
  MulticastTreeNode root_node;
  root_node.graph_node = root;
  tree.nodes.push_back(std::move(root_node));

  // DFS in child insertion order; explicit stack keeps deep chains safe.
  // Parents are appended before children, preserving top-down index order.
  struct Frame {
    NodeId at;               // first physical node of the pending chain
    LinkId via;              // link parent_graph_node → at
    std::size_t parent;      // logical parent index
  };
  std::vector<Frame> stack;
  const UnionNode& ur = un.at(root);
  for (auto it = ur.children.rbegin(); it != ur.children.rend(); ++it)
    stack.push_back({it->first, it->second, 0});

  std::map<NodeId, std::size_t> logical_of;  // receiver → tree index
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    MulticastTreeNode node;
    node.parent = f.parent;
    node.chain.push_back(f.via);
    node.chain_nodes.push_back(f.at);
    NodeId cur = f.at;
    while (true) {
      const UnionNode& u = un.at(cur);
      if (u.receiver) {
        if (!u.children.empty())
          return Error{ErrorCode::kInvalidInput,
                       "receiver " + std::to_string(cur) +
                           " lies on another receiver's path"};
        break;
      }
      if (u.children.empty())
        return Error{ErrorCode::kInvalidInput,
                     "dangling relay " + std::to_string(cur)};
      if (u.children.size() > 1) break;  // branch point: chain ends here
      cur = u.children[0].first;
      node.chain.push_back(u.children[0].second);
      node.chain_nodes.push_back(cur);
    }
    node.graph_node = cur;
    const std::size_t idx = tree.nodes.size();
    tree.nodes[f.parent].children.push_back(idx);
    const UnionNode& u = un.at(cur);
    if (u.receiver) logical_of[cur] = idx;
    for (auto it = u.children.rbegin(); it != u.children.rend(); ++it)
      stack.push_back({it->first, it->second, idx});
    tree.nodes.push_back(std::move(node));
  }

  for (NodeId r : receivers) {
    auto it = logical_of.find(r);
    if (it == logical_of.end())
      return Error{ErrorCode::kInvalidInput,
                   "receiver " + std::to_string(r) + " not a tree leaf"};
    tree.leaves.push_back(it->second);
  }
  assert(tree.valid());
  return tree;
}

}  // namespace

// ---- MulticastTree --------------------------------------------------------

std::vector<Path> MulticastTree::leaf_paths() const {
  std::vector<Path> paths;
  paths.reserve(leaves.size());
  for (std::size_t leaf : leaves) {
    // Collect the logical chain top-down by walking up and reversing.
    std::vector<std::size_t> up;
    for (std::size_t k = leaf; k != 0; k = nodes[k].parent) up.push_back(k);
    Path p;
    p.nodes.push_back(nodes[0].graph_node);
    for (auto it = up.rbegin(); it != up.rend(); ++it) {
      const MulticastTreeNode& n = nodes[*it];
      p.links.insert(p.links.end(), n.chain.begin(), n.chain.end());
      p.nodes.insert(p.nodes.end(), n.chain_nodes.begin(),
                     n.chain_nodes.end());
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

bool MulticastTree::valid() const {
  if (nodes.empty()) return false;
  if (nodes[0].parent != MulticastTreeNode::kNoParent) return false;
  if (!nodes[0].chain.empty() || !nodes[0].chain_nodes.empty()) return false;
  std::size_t leaf_count = 0;
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const MulticastTreeNode& n = nodes[k];
    if (k > 0) {
      if (n.parent >= k) return false;  // top-down order
      if (n.chain.empty() || n.chain.size() != n.chain_nodes.size())
        return false;
      if (n.chain_nodes.back() != n.graph_node) return false;
      const auto& siblings = nodes[n.parent].children;
      if (std::find(siblings.begin(), siblings.end(), k) == siblings.end())
        return false;
      // Collapse invariant: every non-root internal node is a branch point
      // (single-child relays fold into chains, so A_k stays identifiable).
      if (n.children.size() == 1) return false;
    }
    for (std::size_t c : n.children)
      if (c >= nodes.size() || nodes[c].parent != k) return false;
    if (n.is_leaf()) ++leaf_count;
  }
  if (leaf_count != leaves.size()) return false;
  for (std::size_t leaf : leaves)
    if (leaf >= nodes.size() || !nodes[leaf].is_leaf()) return false;
  return true;
}

robust::Expected<MulticastTree> build_multicast_tree(
    const Graph& g, NodeId root, const std::vector<NodeId>& receivers) {
  if (root >= g.num_nodes())
    return Error{ErrorCode::kInvalidInput, "root not in graph"};
  if (receivers.empty())
    return Error{ErrorCode::kEmptyInput, "no receivers"};
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId r : receivers) {
    if (r >= g.num_nodes())
      return Error{ErrorCode::kInvalidInput, "receiver not in graph"};
    if (r == root)
      return Error{ErrorCode::kInvalidInput, "receiver equals root"};
    if (seen[r])
      return Error{ErrorCode::kInvalidInput,
                   "duplicate receiver " + std::to_string(r)};
    seen[r] = true;
  }

  // BFS parent pointers from the root (first-found shortest paths).
  constexpr NodeId kUnvisited = static_cast<NodeId>(-1);
  std::vector<NodeId> parent(g.num_nodes(), kUnvisited);
  std::vector<LinkId> via(g.num_nodes(), 0);
  std::vector<NodeId> queue{root};
  parent[root] = root;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const Adjacent& a : g.neighbors(u)) {
      if (parent[a.neighbor] != kUnvisited) continue;
      parent[a.neighbor] = u;
      via[a.neighbor] = a.link;
      queue.push_back(a.neighbor);
    }
  }

  std::map<NodeId, UnionNode> un;
  un[root];  // ensure the root exists even if a walk-up stops early
  for (NodeId r : receivers) {
    if (parent[r] == kUnvisited)
      return Error{ErrorCode::kInvalidInput,
                   "receiver " + std::to_string(r) + " unreachable"};
    // Walk up to the root, adding edges until we hit the existing union.
    NodeId cur = r;
    while (cur != root) {
      const NodeId p = parent[cur];
      UnionNode& up = un[p];
      const bool known =
          std::any_of(up.children.begin(), up.children.end(),
                      [&](const auto& c) { return c.first == cur; });
      un[cur];
      if (known) break;
      up.children.push_back({cur, via[cur]});
      cur = p;
    }
    un[r].receiver = true;
  }
  return collapse_union(un, root, receivers);
}

robust::Expected<MulticastTree> multicast_tree_from_paths(
    const Graph& g, const std::vector<Path>& paths) {
  if (paths.empty()) return Error{ErrorCode::kEmptyInput, "no paths"};
  for (const Path& p : paths) {
    if (p.empty() || p.nodes.size() != p.links.size() + 1)
      return Error{ErrorCode::kInvalidInput, "degenerate path"};
    if (!is_valid_simple_path(g, p))
      return Error{ErrorCode::kInvalidInput, "path not simple in graph"};
  }
  const NodeId root = paths[0].source();
  std::map<NodeId, UnionNode> un;
  un[root];
  std::map<NodeId, NodeId> parent_of;  // tree-property check
  std::vector<NodeId> receivers;
  for (const Path& p : paths) {
    if (p.source() != root)
      return Error{ErrorCode::kInvalidInput, "paths disagree on the root"};
    NodeId cur = root;
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const NodeId next = p.nodes[i + 1];
      auto it = parent_of.find(next);
      if (it != parent_of.end()) {
        if (it->second != cur || next == root)
          return Error{ErrorCode::kInvalidInput,
                       "paths do not form a tree (node " +
                           std::to_string(next) + " has two parents)"};
      } else {
        parent_of[next] = cur;
        un[cur].children.push_back({next, p.links[i]});
        un[next];
      }
      cur = next;
    }
    if (un[cur].receiver)
      return Error{ErrorCode::kInvalidInput,
                   "duplicate leaf " + std::to_string(cur)};
    un[cur].receiver = true;
    receivers.push_back(cur);
  }
  return collapse_union(un, root, receivers);
}

// ---- gamma passes ---------------------------------------------------------

void accumulate_gamma_counts(const MulticastTree& tree,
                             const std::vector<std::uint8_t>& leaf_received,
                             std::vector<std::size_t>& reach_count) {
  assert(leaf_received.size() == tree.num_leaves());
  assert(reach_count.size() == tree.num_nodes());
  std::vector<std::uint8_t> any(tree.num_nodes(), 0);
  for (std::size_t i = 0; i < tree.leaves.size(); ++i)
    any[tree.leaves[i]] = leaf_received[i];
  // Children carry larger indices, so one reverse sweep is the bottom-up OR.
  for (std::size_t k = tree.num_nodes(); k-- > 0;) {
    for (std::size_t c : tree.nodes[k].children) any[k] |= any[c];
    reach_count[k] += any[k];
  }
}

Vector compute_gamma(const MulticastTree& tree,
                     const std::vector<std::vector<std::uint8_t>>& outcomes) {
  std::vector<std::size_t> counts(tree.num_nodes(), 0);
  for (const auto& row : outcomes) accumulate_gamma_counts(tree, row, counts);
  Vector gamma(tree.num_nodes());
  if (outcomes.empty()) return gamma;
  for (std::size_t k = 0; k < counts.size(); ++k)
    gamma[k] = static_cast<double>(counts[k]) /
               static_cast<double>(outcomes.size());
  return gamma;
}

Vector independence_gammas(const MulticastTree& tree,
                           const Vector& leaf_pass) {
  assert(leaf_pass.size() == tree.num_leaves());
  // comp[k] = Π_{leaves under k} (1 − pass_r); one reverse sweep.
  Vector comp(tree.num_nodes(), 1.0);
  for (std::size_t i = 0; i < tree.leaves.size(); ++i)
    comp[tree.leaves[i]] = 1.0 - leaf_pass[i];
  Vector gamma(tree.num_nodes());
  for (std::size_t k = tree.num_nodes(); k-- > 0;) {
    for (std::size_t c : tree.nodes[k].children) comp[k] *= comp[c];
    gamma[k] = 1.0 - comp[k];
  }
  return gamma;
}

Vector model_gammas(const MulticastTree& tree, const Vector& link_success) {
  assert(link_success.size() == tree.num_nodes());
  Vector reach(tree.num_nodes(), 1.0);  // A_k, forward sweep
  for (std::size_t k = 1; k < tree.num_nodes(); ++k)
    reach[k] = reach[tree.nodes[k].parent] * link_success[k];
  Vector q(tree.num_nodes(), 1.0);  // P(∪ leaves | reached k), reverse sweep
  for (std::size_t k = tree.num_nodes(); k-- > 0;) {
    if (tree.nodes[k].is_leaf()) continue;
    double comp = 1.0;
    for (std::size_t c : tree.nodes[k].children)
      comp *= 1.0 - link_success[c] * q[c];
    q[k] = 1.0 - comp;
  }
  Vector gamma(tree.num_nodes());
  for (std::size_t k = 0; k < tree.num_nodes(); ++k)
    gamma[k] = reach[k] * q[k];
  return gamma;
}

// ---- the MLE --------------------------------------------------------------

namespace {

// Solves 1 − γ_k/A = Π_c (1 − γ_c/A) for an internal node. Binary nodes use
// the closed form; higher degrees iterate the Cáceres fixed point
// A ← γ_k / (1 − Π_c(1 − γ_c/A)) from A₀ = 1 (geometric convergence; the
// unclamped iterate may pass 1 — infeasible fits are the detector's signal,
// so the clamp happens in the caller, after the ratio α = A_k/A_parent).
double fit_internal_reach(const std::vector<double>& child_gammas,
                          double gamma_k, const MulticastMleOptions& opt,
                          std::size_t* fixed_point_nodes, bool* converged) {
  constexpr double kTiny = 1e-15;
  constexpr double kHuge = 1e6;
  if (child_gammas.size() == 2) {
    const double denom = child_gammas[0] + child_gammas[1] - gamma_k;
    if (denom <= kTiny) return kHuge;  // degenerate: no finite interior fit
    return child_gammas[0] * child_gammas[1] / denom;
  }
  ++*fixed_point_nodes;
  const double max_child =
      *std::max_element(child_gammas.begin(), child_gammas.end());
  double a = 1.0;
  for (std::size_t it = 0; it < opt.max_fixed_point_iters; ++it) {
    double comp = 1.0;
    for (double gc : child_gammas) comp *= 1.0 - gc / a;
    const double denom = 1.0 - comp;
    if (denom <= kTiny) return kHuge;
    double next = gamma_k / denom;
    // Keep the iterate above every child OR rate: A < max γ_c flips factor
    // signs and the recursion leaves its basin.
    next = std::min(std::max(next, max_child * (1.0 + 1e-12)), kHuge);
    if (std::abs(next - a) <= opt.fixed_point_tol * std::max(1.0, a))
      return next;
    a = next;
  }
  *converged = false;
  return a;
}

}  // namespace

robust::Expected<MulticastMleResult> solve_multicast_mle(
    std::size_t num_physical_links, const MulticastTree& tree,
    const Vector& gammas, const MulticastMleOptions& opt) {
  obs::ScopedSpan span("tomography.mle.solve");
  if (!tree.valid())
    return Error{ErrorCode::kInvalidInput, "invalid multicast tree"};
  if (gammas.size() != tree.num_nodes())
    return Error{ErrorCode::kDimensionMismatch,
                 "expected one gamma per tree node"};
  for (std::size_t k = 0; k < gammas.size(); ++k) {
    const double gm = gammas[k];
    if (!(gm >= -kGammaSlack && gm <= 1.0 + kGammaSlack))
      return Error{ErrorCode::kInvalidInput,
                   "gamma outside [0, 1] at node " + std::to_string(k)};
  }
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    if (gammas[tree.leaves[i]] <= 0.0)
      return Error{ErrorCode::kMissingData,
                   "leaf " + std::to_string(i) +
                       " received no probes: its link loss metric is not "
                       "finite"};
  }

  const std::size_t n = tree.num_nodes();
  MulticastMleResult out;
  out.node_reach = Vector(n, 1.0);
  out.link_success = Vector(n, 1.0);
  out.x = Vector(num_physical_links, 0.0);

  // Raw per-node reach fits Ã_k (independent per node; root pinned at 1).
  Vector raw(n, 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    const MulticastTreeNode& node = tree.nodes[k];
    const double gk = std::min(std::max(gammas[k], 0.0), 1.0);
    if (k == 0) continue;  // root: probes always injected
    if (node.is_leaf()) {
      raw[k] = gk;
      continue;
    }
    std::vector<double> child_gammas;
    child_gammas.reserve(node.children.size());
    for (std::size_t c : node.children)
      child_gammas.push_back(std::min(std::max(gammas[c], 0.0), 1.0));
    raw[k] = fit_internal_reach(child_gammas, gk, opt,
                                &out.fixed_point_nodes, &out.converged);
  }

  // Top-down: α̂_k = Ã_k / Ã_parent, clamped into [min_rate, 1]; the
  // normalized reach Â re-accumulates from the clamped rates so the model
  // forward pass (and the residual) sees a feasible parameterization.
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t p = tree.nodes[k].parent;
    const double denom = std::max(raw[p], opt.min_rate);
    double alpha = raw[k] / denom;
    if (alpha > 1.0 || alpha < opt.min_rate) {
      ++out.clamped;
      alpha = std::min(std::max(alpha, opt.min_rate), 1.0);
    }
    out.link_success[k] = alpha;
    out.node_reach[k] = out.node_reach[p] * alpha;
    const double loss = -std::log(alpha);
    const auto& chain = tree.nodes[k].chain;
    for (LinkId l : chain) {
      assert(l < num_physical_links);
      out.x[l] = loss / static_cast<double>(chain.size());
    }
  }

  const Vector model = model_gammas(tree, out.link_success);
  for (std::size_t k = 0; k < n; ++k)
    out.residual += std::abs(gammas[k] - model[k]);
  obs::observe("tomography.mle.residual", out.residual);
  if (out.clamped > 0) obs::count("tomography.mle.clamped_fits");
  return out;
}

robust::Expected<MulticastMleResult> solve_multicast_mle(
    std::size_t num_physical_links, const MulticastTree& tree,
    const MulticastObservation& obs, const MulticastMleOptions& opt) {
  if (obs.probes == 0)
    return Error{ErrorCode::kEmptyInput, "observation carries no probes"};
  if (obs.reach_count.size() != tree.num_nodes())
    return Error{ErrorCode::kDimensionMismatch,
                 "expected one reach count per tree node"};
  Vector gammas(tree.num_nodes());
  for (std::size_t k = 0; k < gammas.size(); ++k) {
    if (obs.reach_count[k] > obs.probes)
      return Error{ErrorCode::kInvalidInput,
                   "reach count exceeds probe total at node " +
                       std::to_string(k)};
    gammas[k] = obs.gamma(k);
  }
  return solve_multicast_mle(num_physical_links, tree, gammas, opt);
}

// ---- estimator family -----------------------------------------------------

MulticastMleEstimator::MulticastMleEstimator(const Graph& g,
                                             const MulticastTree& tree,
                                             MulticastMleOptions options,
                                             BackendPolicy backend)
    : Estimator(g, tree.leaf_paths(), backend),
      options_(options),
      tree_(tree) {
  assert(tree_->valid());
}

MulticastMleEstimator::MulticastMleEstimator(const Graph& g,
                                             std::vector<Path> paths,
                                             MulticastMleOptions options,
                                             BackendPolicy backend)
    : Estimator(g, std::move(paths), backend), options_(options) {
  auto derived = multicast_tree_from_paths(g, this->paths());
  if (derived.ok()) {
    tree_ = std::move(*derived);
  } else {
    obs::count("tomography.mle.non_tree_paths");
  }
}

robust::Expected<MulticastMleResult> MulticastMleEstimator::solve(
    const MulticastObservation& obs) const {
  if (!tree_)
    return Error{ErrorCode::kInvalidInput,
                 "estimator has no multicast tree (non-tree path set)"};
  return solve_multicast_mle(num_links(), *tree_, obs, options_);
}

robust::Expected<MulticastMleResult> MulticastMleEstimator::solve_for(
    const Vector& y) const {
  assert(tree_);
  if (y.size() != tree_->num_leaves())
    return Error{ErrorCode::kDimensionMismatch,
                 "expected one loss metric per tree leaf"};
  for (double yi : y)
    if (std::isnan(yi) || yi < -1e-9)
      return Error{ErrorCode::kInvalidInput,
                   "loss metrics must be finite and nonnegative"};
  if (observation_ && observation_->reach_count.size() == tree_->num_nodes())
    return solve(*observation_);
  Vector pass(y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    pass[i] = std::min(std::exp(-std::max(y[i], 0.0)), 1.0);
  for (std::size_t i = 0; i < pass.size(); ++i)
    if (pass[i] <= 0.0)
      return Error{ErrorCode::kMissingData,
                   "leaf " + std::to_string(i) +
                       " reports zero pass rate: its link loss metric is "
                       "not finite"};
  return solve_multicast_mle(num_links(), *tree_,
                             independence_gammas(*tree_, pass), options_);
}

namespace {

// Degenerate-input completion shared by estimate()/residual_statistic():
// floor the per-leaf marginals at pass_floor and fit the independence
// completion — the only defensible total answer when the typed path errors.
MulticastMleResult floored_fit(std::size_t num_physical_links,
                               const MulticastTree& tree, const Vector& y,
                               const MulticastMleOptions& opt) {
  obs::count("tomography.mle.estimate_floored");
  Vector pass(tree.num_leaves(), opt.pass_floor);
  for (std::size_t i = 0; i < pass.size() && i < y.size(); ++i) {
    const double yi = y[i];
    if (!std::isnan(yi) && yi >= 0.0)
      pass[i] = std::max(std::min(std::exp(-yi), 1.0), opt.pass_floor);
  }
  auto floored = solve_multicast_mle(num_physical_links, tree,
                                     independence_gammas(tree, pass), opt);
  if (!floored.ok()) {
    assert(false && "floored multicast fit cannot fail");
    MulticastMleResult zero;
    zero.x = Vector(num_physical_links, 0.0);
    return zero;
  }
  return std::move(*floored);
}

}  // namespace

Vector MulticastMleEstimator::estimate(const Vector& y) const {
  if (!tree_) {
    // Documented fallback: without a tree the family degrades to the linear
    // solve (identifiable mesh path sets) — never a crash.
    if (ok() && y.size() == num_paths()) return pseudo_inverse() * y;
    obs::count("tomography.mle.estimate_unsupported");
    return Vector(num_links(), 0.0);
  }
  auto result = solve_for(y);
  if (result.ok()) return std::move(result->x);
  return floored_fit(num_links(), *tree_, y, options_).x;
}

robust::Expected<Vector> MulticastMleEstimator::try_estimate(
    const Vector& y) const {
  if (!tree_) {
    if (ok() && y.size() == num_paths()) return pseudo_inverse() * y;
    if (y.size() != num_paths())
      return Error{ErrorCode::kDimensionMismatch,
                   "expected one measurement per path"};
    return Error{ErrorCode::kInvalidInput,
                 "path set is neither a multicast tree nor identifiable"};
  }
  auto result = solve_for(y);
  if (!result.ok()) return result.error();
  return std::move(result->x);
}

double MulticastMleEstimator::residual_statistic(const Vector& y) const {
  if (!tree_) return residual(y).norm1();
  auto result = solve_for(y);
  if (result.ok()) return result->residual;
  // Degenerate runs carry no usable joint statistics; mirror estimate()'s
  // floored completion so the detector still sees a total statistic.
  return floored_fit(num_links(), *tree_, y, options_).residual;
}

std::unique_ptr<Estimator> MulticastMleEstimator::clone() const {
  return std::make_unique<MulticastMleEstimator>(*this);
}

}  // namespace scapegoat
