// Multicast tree loss tomography — the Cáceres et al. gamma-recursion MLE
// as the third estimator family (EstimatorKind::kMulticastMle).
//
// Measurement model (MINC): a monitor at the tree root multicasts probes;
// every logical link k (tree node k's link from its parent) passes a probe
// independently with success rate α_k. The per-probe observable is the leaf
// reachability vector, and the sufficient statistics are the per-node OR
// counts γ̂_k = P̂(at least one leaf below k received the probe).
//
// The MLE runs in two passes:
//   * bottom-up `compute_gamma` — OR-accumulate leaf outcomes into γ̂_k,
//   * top-down solve — for every internal node k with children C, the reach
//     probability A_k = P(probe reaches k) solves
//         1 − γ̂_k / A  =  Π_{c∈C} (1 − γ̂_c / A),
//     in closed form A = γ̂_l·γ̂_r / (γ̂_l + γ̂_r − γ̂_k) for binary k, and by
//     the iterative fixed point A ← γ̂_k / (1 − Π_c(1 − γ̂_c/A)) for degree
//     > 2; leaves take A = γ̂, the root pins A = 1 (probes always injected).
//     Link rates follow as α̂_k = A_k / A_parent, clamped into
//     [min_rate, 1] (clamps are counted — they are the infeasibility signal
//     the loss-domain detector keys on).
//
// Chains of pass-through relays are collapsed into one logical link (only
// the product of their rates is identifiable); the estimator splits the
// logical loss metric −log α̂ uniformly across the chain's physical links —
// the canonical tie-break, mirroring how the delay-domain estimator leaves
// unidentifiable splits to the pseudo-inverse.
//
// Eq. 23 analogue for loss: after the fit, forward-simulate the tree model
// with the fitted rates and compare the model-implied γ at every node
// (leaves included — the per-leaf model-implied pass rates) against the
// empirical γ̂:  residual = Σ_k |γ̂_k − γ_model(k)|, in probability units.
// For honest i.i.d. link loss the statistic vanishes as probes grow; a
// grey-hole that drops copies anti-correlated across sibling subtrees
// forces a reach probability > 1 in the fit, the clamp breaks the exact
// interpolation, and the statistic stays bounded away from zero — the
// detectability separation DESIGN.md §15 records. The statistic needs the
// joint OR counts: ingest() attaches a MulticastObservation; without one,
// internal γ's are synthesized from per-leaf marginals under independence
// (the best completion y alone admits) and the statistic is blind, the
// loss-domain restatement of Theorem 3's "no redundancy, no detection".

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "robust/expected.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat {

// ---- logical multicast tree ----------------------------------------------

struct MulticastTreeNode {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::size_t parent = kNoParent;    // tree index; kNoParent for the root
  std::vector<std::size_t> children; // tree indices, all > this node's index
  NodeId graph_node = 0;             // the physical node this maps onto
  // Physical realisation of the logical link parent→this: the traversed
  // links and the node sequence after the parent's graph_node (collapsed
  // relay chain; empty for the root).
  std::vector<LinkId> chain;
  std::vector<NodeId> chain_nodes;   // ends with graph_node

  bool is_leaf() const { return children.empty(); }
};

// Rooted logical tree; nodes[0] is the root and parents always precede
// children (top-down index order), so one forward / one reverse sweep
// covers every top-down / bottom-up recursion.
struct MulticastTree {
  std::vector<MulticastTreeNode> nodes;
  std::vector<std::size_t> leaves;  // tree indices, fixed measurement order

  std::size_t num_nodes() const { return nodes.size(); }
  std::size_t num_leaves() const { return leaves.size(); }

  // Physical root→leaf paths in `leaves` order — the estimator base's path
  // set, so routing-matrix rows align with leaf measurement indices.
  std::vector<Path> leaf_paths() const;

  // Structural sanity: parent/child symmetry, top-down order, chains
  // non-empty off the root, leaves == childless nodes.
  bool valid() const;
};

// Shortest-path (BFS) tree from `root` to the receivers, with pass-through
// relays collapsed into logical chains. Leaf order follows `receivers`.
// kEmptyInput: no receivers. kInvalidInput: duplicate receivers, receiver
// == root, unreachable receiver, or a receiver that sits on another
// receiver's path (a leaf must be a leaf).
robust::Expected<MulticastTree> build_multicast_tree(
    const Graph& g, NodeId root, const std::vector<NodeId>& receivers);

// Reconstructs the logical tree from a root→leaf path set (shared source,
// consistent prefixes, one leaf per path, in path order). kInvalidInput
// when the set is not a multicast tree.
robust::Expected<MulticastTree> multicast_tree_from_paths(
    const Graph& g, const std::vector<Path>& paths);

// ---- observations ---------------------------------------------------------

// Sufficient statistics of a multicast run: reach_count[k] counts probes
// for which at least one leaf below tree node k received the probe.
struct MulticastObservation {
  std::size_t probes = 0;
  std::vector<std::size_t> reach_count;  // indexed by tree node

  double gamma(std::size_t node) const {
    return probes == 0 ? 0.0
                       : static_cast<double>(reach_count[node]) /
                             static_cast<double>(probes);
  }
};

// One probe's bottom-up OR accumulation (the data pass of the γ recursion).
// `leaf_received` is indexed in tree.leaves order.
void accumulate_gamma_counts(const MulticastTree& tree,
                             const std::vector<std::uint8_t>& leaf_received,
                             std::vector<std::size_t>& reach_count);

// γ̂ per tree node from raw per-probe leaf outcome rows.
Vector compute_gamma(const MulticastTree& tree,
                     const std::vector<std::vector<std::uint8_t>>& outcomes);

// Internal γ synthesis from per-leaf pass rates alone, assuming leaf
// receptions are independent: γ_k = 1 − Π_{leaves r under k} (1 − pass_r).
// The completion estimate(y) uses when no joint observation is attached.
Vector independence_gammas(const MulticastTree& tree, const Vector& leaf_pass);

// Model-implied γ at every node under per-link success rates:
// γ(k) = A_k·q_k with A_root = 1, A_k = A_parent·α_k, q_leaf = 1 and
// q_k = 1 − Π_{c∈children} (1 − α_c·q_c). Shared by the residual statistic
// and by tests that build exact (infinite-probe) instances.
Vector model_gammas(const MulticastTree& tree, const Vector& link_success);

// ---- the MLE --------------------------------------------------------------

struct MulticastMleOptions {
  double min_rate = 1e-6;        // clamp floor for fitted success rates
  std::size_t max_fixed_point_iters = 1000;  // degree > 2 solver cap
  double fixed_point_tol = 1e-12;
  double pass_floor = 1e-9;      // leaf pass-rate floor in metric conversions
};

struct MulticastMleResult {
  Vector node_reach;     // Â_k per tree node (root = 1)
  Vector link_success;   // α̂_k per tree node (root = 1.0 placeholder)
  Vector x;              // per-physical-link loss metric −log α̂, chain-split
  double residual = 0.0; // Σ_k |γ̂_k − γ_model(k)|, probability units
  std::size_t clamped = 0;            // fits clamped into [min_rate, 1]
  std::size_t fixed_point_nodes = 0;  // internal nodes solved iteratively
  bool converged = true;              // every fixed point met tol in budget
};

// The gamma-recursion MLE on per-node γ̂. Errors:
//   kDimensionMismatch  gammas.size() != tree.num_nodes()
//   kInvalidInput       tree invalid, or γ outside [0, 1]
//   kMissingData        a leaf with γ̂ = 0 (zero-probe / dead leaf: its link
//                       rate has no finite loss metric — the typed error the
//                       degraded path demands instead of NaN link rates)
robust::Expected<MulticastMleResult> solve_multicast_mle(
    std::size_t num_physical_links, const MulticastTree& tree,
    const Vector& gammas, const MulticastMleOptions& opt = {});

// Convenience over an observation. Additionally kEmptyInput when
// obs.probes == 0, kInvalidInput when a count exceeds the probe total.
robust::Expected<MulticastMleResult> solve_multicast_mle(
    std::size_t num_physical_links, const MulticastTree& tree,
    const MulticastObservation& obs, const MulticastMleOptions& opt = {});

// ---- the estimator family -------------------------------------------------

class MulticastMleEstimator final : public Estimator {
 public:
  // Tree-native construction: the base path set is tree.leaf_paths(), so
  // y is the per-leaf loss-metric vector in leaf order.
  MulticastMleEstimator(const Graph& g, const MulticastTree& tree,
                        MulticastMleOptions options = {},
                        BackendPolicy backend = {});

  // Factory-shape construction from an arbitrary path set. When the paths
  // form a rooted multicast tree the estimator is tree-native; otherwise it
  // keeps the base identifiability verdict and estimate() degrades to the
  // linear pseudo-inverse solve, so Scenario / service plumbing that feeds
  // unicast mesh paths stays total (documented fallback, not an error).
  MulticastMleEstimator(const Graph& g, std::vector<Path> paths,
                        MulticastMleOptions options = {},
                        BackendPolicy backend = {});

  EstimatorKind method() const override {
    return EstimatorKind::kMulticastMle;
  }

  bool has_tree() const { return tree_.has_value(); }
  const MulticastTree& tree() const { return *tree_; }
  const MulticastMleOptions& options() const { return options_; }

  // Attaches the joint OR counts of a multicast run. estimate() and
  // residual_statistic() use them whenever the attached observation matches
  // y's leaf count; clear_observation() reverts to the marginals-only
  // independence completion.
  void ingest(const MulticastObservation& obs) { observation_ = obs; }
  void clear_observation() { observation_.reset(); }
  const std::optional<MulticastObservation>& observation() const {
    return observation_;
  }

  // The full MLE on explicit joint statistics.
  robust::Expected<MulticastMleResult> solve(
      const MulticastObservation& obs) const;

  // y = per-leaf loss metrics (−log pass) in tree.leaves order. Total:
  // degenerate leaves are floored at pass_floor (use try_estimate for the
  // typed taxonomy). Non-tree path sets: pseudo-inverse delegation.
  Vector estimate(const Vector& y) const override;
  robust::Expected<Vector> try_estimate(const Vector& y) const override;

  // The loss-domain Eq. 23 statistic (header comment), probability units —
  // detector α must be chosen on that scale (DetectorOptions carries
  // whatever the caller passes). Non-tree path sets: base ‖y − Rx̂‖₁.
  double residual_statistic(const Vector& y) const override;

  std::unique_ptr<Estimator> clone() const override;

 private:
  robust::Expected<MulticastMleResult> solve_for(const Vector& y) const;

  MulticastMleOptions options_;
  std::optional<MulticastTree> tree_;
  std::optional<MulticastObservation> observation_;
};

}  // namespace scapegoat
