#include "tomography/path_selection.hpp"

#include <algorithm>
#include <cassert>

#include "graph/paths.hpp"
#include "graph/shortest_path.hpp"

namespace scapegoat {

namespace {

Vector incidence_row(const Path& p, std::size_t num_links) {
  Vector row(num_links);
  for (LinkId l : p.links) row[l] = 1.0;
  return row;
}

}  // namespace

IncrementalPathSelector::IncrementalPathSelector(const Graph& g,
                                                 PathSelectionOptions opt)
    : g_(g), opt_(opt), tracker_(g.num_links()) {}

bool IncrementalPathSelector::try_accept(Path p, bool need_rank_gain) {
  if (p.empty()) return false;
  std::vector<LinkId> key = p.links;
  std::sort(key.begin(), key.end());
  if (seen_.contains(key)) return false;
  const Vector row = incidence_row(p, g_.num_links());
  if (need_rank_gain) {
    if (!tracker_.add(row)) return false;
  } else {
    tracker_.add(row);  // keep the tracker exact either way
  }
  seen_.insert(std::move(key));
  paths_.push_back(std::move(p));
  return true;
}

void IncrementalPathSelector::sample(const std::vector<NodeId>& monitors,
                                     Rng& rng) {
  assert(monitors.size() >= 2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < monitors.size(); ++i)
    for (std::size_t j = i + 1; j < monitors.size(); ++j)
      pairs.emplace_back(std::min(monitors[i], monitors[j]),
                         std::max(monitors[i], monitors[j]));
  rng.shuffle(pairs);

  // Pass 1: hop-shortest path once per (new) pair — covers every link on a
  // monitor-pair geodesic, including the one-hop paths between adjacent
  // monitors that guarantee eventual identifiability.
  for (const auto& pair : pairs) {
    if (tracker_.full()) return;
    if (!bfs_done_.insert(pair).second) continue;
    if (auto p = shortest_path(g_, pair.first, pair.second))
      try_accept(std::move(*p), true);
  }

  // Pass 2: waypoint sampling, round-robin over pairs so no pair starves
  // the budget. Bail out once sampling stops producing rank gains — with an
  // unidentifiable monitor set no amount of sampling helps, and the caller
  // (monitor growth) reacts faster this way.
  std::size_t unproductive = 0;
  const std::size_t patience = 2 * pairs.size() + 200;
  for (std::size_t round = 0; round < opt_.samples_per_pair && !tracker_.full();
       ++round) {
    for (const auto& [s, t] : pairs) {
      if (tracker_.full() || unproductive > patience) break;
      Path p = sample_waypoint_path(g_, s, t, opt_.max_path_length, rng);
      if (try_accept(std::move(p), true)) {
        unproductive = 0;
      } else {
        ++unproductive;
      }
    }
    if (unproductive > patience) break;
  }
}

void IncrementalPathSelector::add_redundant(
    const std::vector<NodeId>& monitors, Rng& rng) {
  assert(monitors.size() >= 2);
  std::size_t added = 0, stale = 0;
  while (added < opt_.redundant_paths &&
         stale < 50 * (opt_.redundant_paths + 1)) {
    const NodeId s = monitors[rng.index(monitors.size())];
    const NodeId t = monitors[rng.index(monitors.size())];
    if (s == t) continue;
    Path p = sample_waypoint_path(g_, s, t, opt_.max_path_length, rng);
    if (try_accept(std::move(p), false)) {
      ++added;
      stale = 0;
    } else {
      ++stale;
    }
  }
}

PathSelectionResult select_paths(const Graph& g,
                                 const std::vector<NodeId>& monitors,
                                 const PathSelectionOptions& opt, Rng& rng) {
  IncrementalPathSelector selector(g, opt);
  selector.sample(monitors, rng);
  selector.add_redundant(monitors, rng);
  PathSelectionResult result;
  result.rank = selector.rank();
  result.identifiable = selector.identifiable();
  result.paths = selector.take_paths();
  return result;
}

}  // namespace scapegoat
