// Measurement-path selection under controllable routing.
//
// Monitors may route probes over any simple path between two distinct
// monitors (§II-A). The selector greedily accepts candidate paths whose
// {0,1} incidence rows increase rank(R), stopping at rank |L|
// (identifiability), then appends `redundant_paths` additional distinct
// paths so R is strictly tall — Theorem 3 makes a square R undetectable, so
// a deployment that wants the Eq. 23 detector must over-determine the
// system. Candidates come from (a) hop-shortest paths per monitor pair and
// (b) waypoint-sampled paths (two BFS legs through a random intermediate
// node), which reach link compositions shortest paths never expose at
// O(V + E) per draw.
//
// `IncrementalPathSelector` keeps the accepted paths and the rank basis
// alive across monitor-set changes, so the monitor-growth loop never pays
// for re-discovering rank it already has; `select_paths` is the one-shot
// convenience wrapper.

#pragma once

#include <set>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/least_squares.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct PathSelectionOptions {
  std::size_t max_path_length = 12;    // hop cap on sampled paths
  std::size_t samples_per_pair = 30;   // waypoint draws per monitor pair
  std::size_t redundant_paths = 0;     // extra paths beyond rank |L|
};

struct PathSelectionResult {
  std::vector<Path> paths;
  std::size_t rank = 0;      // rank of the resulting routing matrix
  bool identifiable = false; // rank == |L|
};

class IncrementalPathSelector {
 public:
  IncrementalPathSelector(const Graph& g, PathSelectionOptions opt);

  // Samples candidate paths between the given monitors and accepts the
  // rank-increasing ones. Call again after enlarging the monitor set; all
  // previously accepted paths and the rank basis are retained.
  void sample(const std::vector<NodeId>& monitors, Rng& rng);

  // Adds up to opt.redundant_paths extra distinct (rank-neutral) paths.
  void add_redundant(const std::vector<NodeId>& monitors, Rng& rng);

  std::size_t rank() const { return tracker_.rank(); }
  bool identifiable() const { return tracker_.full(); }
  const std::vector<Path>& paths() const { return paths_; }
  std::vector<Path> take_paths() { return std::move(paths_); }

 private:
  bool try_accept(Path p, bool need_rank_gain);

  const Graph& g_;
  PathSelectionOptions opt_;
  RankTracker tracker_;
  std::vector<Path> paths_;
  std::set<std::vector<LinkId>> seen_;           // dedup on sorted link sets
  std::set<std::pair<NodeId, NodeId>> bfs_done_; // pairs already pass-1'd
};

// One-shot selection among `monitors` (at least 2 required).
PathSelectionResult select_paths(const Graph& g,
                                 const std::vector<NodeId>& monitors,
                                 const PathSelectionOptions& opt, Rng& rng);

}  // namespace scapegoat
