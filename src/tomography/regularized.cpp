#include "tomography/regularized.hpp"

#include <cassert>

namespace scapegoat {

namespace {

Matrix normal_matrix(const Matrix& rt, double lambda) {
  Matrix m = rt * rt.transposed();  // RᵀR, since rt = Rᵀ
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += lambda;
  return m;
}

}  // namespace

RegularizedEstimator::RegularizedEstimator(const Matrix& r, double lambda,
                                           Vector prior)
    : rt_(r.transposed()),
      lambda_(lambda),
      prior_(std::move(prior)),
      chol_(normal_matrix(rt_, lambda)) {
  assert(lambda >= 0.0);
  assert(prior_.size() == r.cols());
  ok_ = chol_.ok();
}

Vector RegularizedEstimator::estimate(const Vector& y) const {
  assert(ok_);
  assert(y.size() == rt_.cols());
  Vector rhs = rt_ * y;
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] += lambda_ * prior_[i];
  return chol_.solve(rhs);
}

}  // namespace scapegoat
