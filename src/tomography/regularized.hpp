// Tikhonov-regularized tomography — a defense-side estimator variant.
//
// Operators usually have a prior (historical per-link baselines). The
// regularized estimate
//     x̂ = argmin ‖R x − y‖₂² + λ ‖x − prior‖₂²
//       = (RᵀR + λI)⁻¹ (Rᵀ y + λ · prior)
// shrinks toward that prior, which blunts scapegoating: the attacker must
// inject more manipulation to drag a victim's estimate across b_u, and the
// cost grows with λ. The flip side is bias — even honest estimates move
// toward the prior — so λ trades attack resistance against fidelity
// (quantified by bench_ablation_regularization).
//
// λ > 0 also makes the normal matrix SPD regardless of rank(R), so this
// estimator works on under-determined systems where Eq. 2 does not.

#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace scapegoat {

class RegularizedEstimator {
 public:
  // `prior` must have one entry per link (column of r); lambda ≥ 0, with
  // lambda == 0 requiring full column rank (plain least squares).
  RegularizedEstimator(const Matrix& r, double lambda, Vector prior);

  bool ok() const { return ok_; }
  double lambda() const { return lambda_; }

  Vector estimate(const Vector& y) const;

 private:
  Matrix rt_;       // Rᵀ cached
  double lambda_;
  Vector prior_;
  CholeskyDecomposition chol_;  // of RᵀR + λI
  bool ok_ = false;
};

}  // namespace scapegoat
