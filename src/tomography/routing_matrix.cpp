#include "tomography/routing_matrix.hpp"

#include <cassert>

#include "linalg/qr.hpp"

namespace scapegoat {

Matrix routing_matrix(const Graph& g, const std::vector<Path>& paths) {
  Matrix r(paths.size(), g.num_links());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    assert(is_valid_simple_path(g, paths[i]));
    for (LinkId l : paths[i].links) r(i, l) = 1.0;
  }
  return r;
}

SparseMatrix sparse_routing_matrix(const Graph& g,
                                   const std::vector<Path>& paths) {
  std::vector<Triplet> entries;
  std::size_t total = 0;
  for (const Path& p : paths) total += p.links.size();
  entries.reserve(total);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    assert(is_valid_simple_path(g, paths[i]));
    for (LinkId l : paths[i].links) entries.push_back({i, l, 1.0});
  }
  // A simple path visits each link at most once, so duplicate rejection in
  // from_triplets doubles as a path-validity assertion.
  return SparseMatrix::from_triplets(paths.size(), g.num_links(), entries);
}

Vector path_metrics(const std::vector<Path>& paths, const Vector& x) {
  Vector y(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double acc = 0.0;
    for (LinkId l : paths[i].links) {
      assert(l < x.size());
      acc += x[l];
    }
    y[i] = acc;
  }
  return y;
}

bool is_identifiable(const Matrix& r) {
  return r.cols() > 0 && matrix_rank(r) == r.cols();
}

std::vector<std::size_t> paths_through_nodes(const std::vector<Path>& paths,
                                             const std::vector<NodeId>& nodes) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < paths.size(); ++i)
    if (paths[i].contains_any_node(nodes)) out.push_back(i);
  return out;
}

std::vector<std::size_t> paths_through_links(const std::vector<Path>& paths,
                                             const std::vector<LinkId>& links) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (LinkId l : links) {
      if (paths[i].contains_link(l)) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace scapegoat
