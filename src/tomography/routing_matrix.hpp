// Routing (measurement) matrix construction — Eq. 1 of the paper.
//
// R is |P|×|L| with R(i,j) = 1 iff link j lies on measurement path i; the
// end-to-end measurement model is y = R x for additive link metrics x.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace scapegoat {

// Builds R from the path set. Every path must be a valid simple path of `g`.
Matrix routing_matrix(const Graph& g, const std::vector<Path>& paths);

// Same R in CSR form, built directly from the path incidence lists — never
// materializes the dense |P|×|L| array. to_dense() of the result equals
// routing_matrix(g, paths) exactly.
SparseMatrix sparse_routing_matrix(const Graph& g,
                                   const std::vector<Path>& paths);

// y = R x without materializing R (x indexed by LinkId).
Vector path_metrics(const std::vector<Path>& paths, const Vector& x);

// rank(R) == |L|: the precondition for Eq. 2's unique inverse.
bool is_identifiable(const Matrix& r);

// Indices of paths that traverse at least one node from `nodes` — the paths
// an attacker controlling `nodes` can manipulate (Constraint 1's support).
std::vector<std::size_t> paths_through_nodes(const std::vector<Path>& paths,
                                             const std::vector<NodeId>& nodes);

// Indices of paths that traverse at least one link from `links`.
std::vector<std::size_t> paths_through_links(const std::vector<Path>& paths,
                                             const std::vector<LinkId>& links);

}  // namespace scapegoat
