#include "tomography/secure_placement.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "graph/paths.hpp"
#include "graph/shortest_path.hpp"

namespace scapegoat {

std::vector<double> node_presence_ratios(const Graph& g,
                                         const std::vector<Path>& paths) {
  std::vector<double> counts(g.num_nodes(), 0.0);
  for (const Path& p : paths)
    for (NodeId v : p.nodes) counts[v] += 1.0;
  if (!paths.empty()) {
    const double n = static_cast<double>(paths.size());
    for (double& c : counts) c /= n;
  }
  return counts;
}

double max_presence_ratio(const Graph& g, const std::vector<Path>& paths) {
  const auto ratios = node_presence_ratios(g, paths);
  double best = 0.0;
  for (double r : ratios) best = std::max(best, r);
  return best;
}

namespace {

// Incremental node-coverage counters for evaluating candidate paths.
struct Exposure {
  std::vector<std::size_t> counts;
  std::size_t num_paths = 0;

  explicit Exposure(std::size_t nodes) : counts(nodes, 0) {}

  void add(const Path& p) {
    for (NodeId v : p.nodes) ++counts[v];
    ++num_paths;
  }

  // Max node count if `p` were added (the minimization objective; the
  // denominator is the same for all candidates at a given step, so raw
  // counts order identically to ratios).
  std::size_t max_count_with(const Path& p) const {
    std::size_t best = *std::max_element(counts.begin(), counts.end());
    for (NodeId v : p.nodes) best = std::max(best, counts[v] + 1);
    return best;
  }
};

}  // namespace

PathSelectionResult secure_select_paths(const Graph& g,
                                        const std::vector<NodeId>& monitors,
                                        const SecureSelectionOptions& opt,
                                        Rng& rng) {
  assert(monitors.size() >= 2);
  PathSelectionResult result;
  RankTracker tracker(g.num_links());
  Exposure exposure(g.num_nodes());
  std::set<std::vector<LinkId>> seen;

  auto key_of = [](const Path& p) {
    std::vector<LinkId> key = p.links;
    std::sort(key.begin(), key.end());
    return key;
  };
  auto accept = [&](Path p) {
    tracker.add(Vector{[&] {
      std::vector<double> row(g.num_links(), 0.0);
      for (LinkId l : p.links) row[l] = 1.0;
      return row;
    }()});
    exposure.add(p);
    seen.insert(key_of(p));
    result.paths.push_back(std::move(p));
  };

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < monitors.size(); ++i)
    for (std::size_t j = i + 1; j < monitors.size(); ++j)
      pairs.emplace_back(monitors[i], monitors[j]);
  rng.shuffle(pairs);

  // Rank phase: at each step, gather up to `candidates_per_step`
  // rank-gaining candidates and accept the one minimizing the resulting
  // maximum node exposure.
  std::size_t stall = 0;
  const std::size_t patience = 2 * pairs.size() + 200;
  while (!tracker.full() && stall <= patience) {
    std::vector<Path> candidates;
    for (std::size_t attempt = 0;
         attempt < 4 * opt.candidates_per_step &&
         candidates.size() < opt.candidates_per_step && stall <= patience;
         ++attempt) {
      const auto& [s, t] = pairs[rng.index(pairs.size())];
      Path p = rng.bernoulli(0.25)
                   ? shortest_path(g, s, t).value_or(Path{})
                   : sample_waypoint_path(g, s, t, opt.base.max_path_length,
                                          rng);
      if (p.empty() || seen.contains(key_of(p))) {
        ++stall;
        continue;
      }
      std::vector<double> row(g.num_links(), 0.0);
      for (LinkId l : p.links) row[l] = 1.0;
      if (!tracker.is_independent(Vector{std::move(row)})) {
        ++stall;
        continue;
      }
      candidates.push_back(std::move(p));
    }
    if (candidates.empty()) continue;
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      if (exposure.max_count_with(candidates[c]) <
          exposure.max_count_with(candidates[best]))
        best = c;
    }
    accept(std::move(candidates[best]));
    stall = 0;
  }

  // Redundancy phase: same exposure-aware choice among rank-neutral paths.
  std::size_t added = 0;
  stall = 0;
  while (added < opt.base.redundant_paths &&
         stall < 50 * (opt.base.redundant_paths + 1)) {
    std::vector<Path> candidates;
    for (std::size_t attempt = 0;
         attempt < 2 * opt.candidates_per_step &&
         candidates.size() < opt.candidates_per_step;
         ++attempt) {
      const auto& [s, t] = pairs[rng.index(pairs.size())];
      Path p = sample_waypoint_path(g, s, t, opt.base.max_path_length, rng);
      if (!p.empty() && !seen.contains(key_of(p)))
        candidates.push_back(std::move(p));
    }
    if (candidates.empty()) {
      ++stall;
      continue;
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      if (exposure.max_count_with(candidates[c]) <
          exposure.max_count_with(candidates[best]))
        best = c;
    }
    accept(std::move(candidates[best]));
    ++added;
    stall = 0;
  }

  result.rank = tracker.rank();
  result.identifiable = tracker.full();
  return result;
}

}  // namespace scapegoat
