// Security-aware measurement design — the paper's §VI proposal made
// concrete.
//
// §VI observes that scapegoating gets easier as a compromised node's
// *presence ratio* (the fraction of measurement paths it sits on) grows,
// and suggests monitor/path selection should "first ensure identifiability
// under network tomography, then make sure that each node's presence ratio
// on measurement paths is minimized, assuming that the node becomes
// compromised". This module implements that:
//
//   * node_presence_ratios: per-node exposure metric over a path set,
//   * secure_select_paths: rank-greedy selection like select_paths, but
//     among the candidate paths that would gain rank it accepts the one
//     minimizing the resulting maximum node-presence ratio (and picks
//     redundant paths the same way).
//
// The ablation bench (bench_ablation_security) shows the effect: for the
// same topology and identifiability, security-aware selection lowers both
// single-node exposure and single-attacker scapegoating success.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tomography/path_selection.hpp"
#include "util/random.hpp"

namespace scapegoat {

// For each node, the fraction of `paths` that traverse it (monitors count
// as traversal: a compromised monitor can manipulate its own probes).
std::vector<double> node_presence_ratios(const Graph& g,
                                         const std::vector<Path>& paths);

// Max presence ratio over interior (non-endpoint) membership — the quantity
// §VI proposes to minimize.
double max_presence_ratio(const Graph& g, const std::vector<Path>& paths);

struct SecureSelectionOptions {
  PathSelectionOptions base;           // length cap, budgets, redundancy
  std::size_t candidates_per_step = 8; // rank-gaining draws compared per step
};

// Security-aware variant of select_paths over a fixed monitor set.
PathSelectionResult secure_select_paths(const Graph& g,
                                        const std::vector<NodeId>& monitors,
                                        const SecureSelectionOptions& opt,
                                        Rng& rng);

}  // namespace scapegoat
