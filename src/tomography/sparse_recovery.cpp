#include "tomography/sparse_recovery.hpp"

#include <cassert>
#include <cmath>
#include <ostream>
#include <string>
#include <utility>

#include "lp/model.hpp"
#include "obs/obs.hpp"

namespace scapegoat {

std::string to_string(SparseConstraint c) {
  switch (c) {
    case SparseConstraint::kEquality:
      return "equality";
    case SparseConstraint::kInfBall:
      return "inf_ball";
  }
  return "unknown";
}

std::optional<SparseConstraint> sparse_constraint_from_string(
    std::string_view s) {
  if (s == "equality") return SparseConstraint::kEquality;
  if (s == "inf_ball") return SparseConstraint::kInfBall;
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, SparseConstraint c) {
  return os << to_string(c);
}

namespace {

// Adds the split variables of x = prior + u⁺ − u⁻ to `model`:
// u⁺ⱼ = variable j ∈ [0, ∞), u⁻ⱼ = variable n+j ∈ [0, priorⱼ] — the box on
// u⁻ is what keeps x ⪰ 0 without any extra rows.
void add_split_variables(lp::Model& model, const Vector& prior,
                         double objective) {
  for (std::size_t j = 0; j < prior.size(); ++j)
    model.add_variable(0.0, lp::kInfinity, objective);
  for (std::size_t j = 0; j < prior.size(); ++j)
    model.add_variable(0.0, std::max(0.0, prior[j]), objective);
}

// Row terms of (R(u⁺ − u⁻))ᵢ for path i — R's entries on a path are all 1.
std::vector<lp::Term> path_row(const Path& path, std::size_t num_links) {
  std::vector<lp::Term> terms;
  terms.reserve(path.links.size() * 2);
  for (LinkId l : path.links) terms.push_back({l, 1.0});
  for (LinkId l : path.links) terms.push_back({num_links + l, -1.0});
  return terms;
}

}  // namespace

SparseRecoveryEstimator::SparseRecoveryEstimator(const Graph& g,
                                                 std::vector<Path> paths,
                                                 SparseRecoveryOptions options,
                                                 BackendPolicy backend)
    : Estimator(g, std::move(paths), backend), options_(std::move(options)) {
  prior_ = options_.prior.empty() ? Vector(num_links()) : options_.prior;
}

robust::Expected<SparseRecoveryResult> SparseRecoveryEstimator::recover(
    const Vector& y) const {
  if (y.size() != num_paths()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         std::to_string(y.size()) + " measurements for " +
                             std::to_string(num_paths()) + " paths"};
  }
  if (prior_.size() != num_links()) {
    return robust::Error{robust::ErrorCode::kDimensionMismatch,
                         "prior has " + std::to_string(prior_.size()) +
                             " entries for " + std::to_string(num_links()) +
                             " links"};
  }

  obs::ScopedTimer timer("tomography.sparse.recover_us");
  obs::count("tomography.sparse.recoveries");

  const std::size_t n = num_links();
  // b = y − R·prior: the anomaly measurements the LP explains.
  const Vector b = y - r() * prior_;

  SparseRecoveryResult result;

  // One ℓ1 solve at ball radius eps (eps == 0 emits equality rows).
  auto solve_l1 = [&](double eps) {
    lp::Model model(lp::Sense::kMinimize);
    add_split_variables(model, prior_, 1.0);
    for (std::size_t i = 0; i < num_paths(); ++i) {
      std::vector<lp::Term> terms = path_row(paths()[i], n);
      if (terms.empty()) continue;  // zero row constrains nothing when b≈0
      if (eps == 0.0) {
        model.add_constraint(std::move(terms), lp::RowType::kEqual, b[i]);
      } else {
        model.add_constraint(terms, lp::RowType::kGreaterEqual, b[i] - eps);
        model.add_constraint(std::move(terms), lp::RowType::kLessEqual,
                             b[i] + eps);
      }
    }
    lp::Solution sol = lp::solve(model, options_.lp_options);
    result.lp_iterations += sol.iterations;
    return sol;
  };

  double eps = options_.constraint == SparseConstraint::kInfBall
                   ? std::max(0.0, options_.epsilon_ms)
                   : 0.0;
  lp::Solution sol = solve_l1(eps);

  if (sol.status == lp::SolveStatus::kInfeasible && options_.auto_relax) {
    // Chebyshev auxiliary LP: the minimal ε* making the ball non-empty.
    // Always feasible (u = 0, t = max|bᵢ|), so only solver budgets can
    // stop it.
    lp::Model cheb(lp::Sense::kMinimize);
    add_split_variables(cheb, prior_, 0.0);
    const std::size_t t_var = cheb.add_variable(0.0, lp::kInfinity, 1.0);
    for (std::size_t i = 0; i < num_paths(); ++i) {
      std::vector<lp::Term> terms = path_row(paths()[i], n);
      if (terms.empty()) continue;
      terms.push_back({t_var, -1.0});
      cheb.add_constraint(terms, lp::RowType::kLessEqual, b[i]);
      terms.back().coeff = 1.0;
      cheb.add_constraint(std::move(terms), lp::RowType::kGreaterEqual, b[i]);
    }
    lp::Solution aux = lp::solve(cheb, options_.lp_options);
    result.lp_iterations += aux.iterations;
    if (aux.optimal()) {
      obs::count("tomography.sparse.relaxed");
      result.relaxed = true;
      // Absolute + relative slack keeps the re-solve strictly feasible in
      // floating point.
      eps = std::max(eps, aux.objective * (1.0 + 1e-9) +
                              std::max(options_.relax_slack_ms, 1e-9));
      sol = solve_l1(eps);
    }
  }

  result.status = sol.status;
  result.epsilon_used = eps;
  if (!sol.optimal()) {
    obs::count("tomography.sparse.failed");
    if (sol.status == lp::SolveStatus::kInfeasible) {
      return robust::Error{
          robust::ErrorCode::kInvalidInput,
          "no nonnegative sparse explanation within epsilon = " +
              std::to_string(eps)};
    }
    return robust::Error{robust::ErrorCode::kIterationLimit,
                         "recovery LP stopped: " + lp::to_string(sol.status)};
  }

  result.objective = sol.objective;
  result.x = Vector(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.x[j] = prior_[j] + sol.x[j] - sol.x[n + j];
    if (std::abs(result.x[j] - prior_[j]) > options_.support_tol_ms)
      result.support.push_back(j);
  }
  obs::observe("tomography.sparse.support_size",
               static_cast<double>(result.support.size()));
  return result;
}

Vector SparseRecoveryEstimator::estimate(const Vector& y) const {
  auto rec = recover(y);
  if (!rec.ok()) {
    // Unreachable with auto_relax on and a correctly-sized y; the prior is
    // the only defensible total answer otherwise.
    assert(false && "sparse recovery failed; returning the prior");
    obs::count("tomography.sparse.estimate_failed");
    return prior_;
  }
  return std::move(rec->x);
}

robust::Expected<Vector> SparseRecoveryEstimator::try_estimate(
    const Vector& y) const {
  auto rec = recover(y);
  if (!rec.ok()) return rec.error();
  return std::move(rec->x);
}

double SparseRecoveryEstimator::residual_statistic(const Vector& y) const {
  const Vector res = residual(y);
  const double eps = options_.constraint == SparseConstraint::kInfBall
                         ? std::max(0.0, options_.epsilon_ms)
                         : 0.0;
  double excess = 0.0;
  for (double ri : res) {
    const double over = std::abs(ri) - eps;
    if (over > 0.0) excess += over;
  }
  return excess;
}

std::unique_ptr<Estimator> SparseRecoveryEstimator::clone() const {
  return std::make_unique<SparseRecoveryEstimator>(*this);
}

}  // namespace scapegoat
