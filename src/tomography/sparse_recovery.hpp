// Compressive-sensing tomography — the EstimatorKind::kSparseRecovery
// family (FRANTIC, arXiv:1312.0825; expander-graph delay estimation,
// arXiv:1106.0941).
//
// Model: link delays are a k-sparse anomaly over a known prior,
// x = x_prior + Δ with few nonzero Δ. Recovery is the ℓ1 relaxation
//
//   min ‖x − x_prior‖₁   s.t.   Rx = y,            x ⪰ 0   (kEquality)
//   min ‖x − x_prior‖₁   s.t.   ‖Rx − y‖∞ ≤ ε,     x ⪰ 0   (kInfBall)
//
// solved as a bounded-variable LP through lp::solve: the split
// x = x_prior + u⁺ − u⁻ with u⁺ ∈ [0, ∞), u⁻ ∈ [0, x_priorⱼ] makes the
// objective Σ(u⁺ + u⁻) linear and enforces x ⪰ 0 purely through variable
// boxes — exactly the shape the revised simplex handles without slack rows.
// Unlike least squares this needs no identifiability: with m < n paths the
// LP still returns the ℓ1-sparsest nonnegative explanation, which is the
// whole point of the compressive-sensing regime.
//
// When no feasible x exists at the configured ε (hostile measurements — the
// scapegoating setting — or ε chosen below the noise floor) and auto_relax
// is on, a Chebyshev auxiliary LP (min t s.t. ‖Rx − y‖∞ ≤ t, x ⪰ 0) finds
// the minimal feasible ε*, recovery re-solves at ε* + slack, and the result
// carries relaxed = true with the realized ε — so estimate() stays total
// while the relaxation remains visible to the detector:
//
// Eq. 23 compatibility: residual(y) = y − R·estimate(y) as everywhere, but
// residual_statistic subtracts the defender's own noise allowance,
// Σᵢ max(0, |rᵢ| − ε). Within-ball discrepancies are "explained noise" (the
// ℓ1 objective deliberately parks rows at the ball boundary, so raw ‖r‖₁
// carries a floor of up to m·ε even on honest data); anything beyond ε per
// path is an inconsistency the sparsity model cannot absorb and counts
// toward the α threshold in full.

#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "lp/simplex.hpp"
#include "robust/expected.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat {

// Which consistency constraint the recovery LP enforces.
enum class SparseConstraint {
  kEquality,  // Rx = y exactly
  kInfBall,   // ‖Rx − y‖∞ ≤ ε
};

std::string to_string(SparseConstraint c);
std::optional<SparseConstraint> sparse_constraint_from_string(
    std::string_view s);
std::ostream& operator<<(std::ostream& os, SparseConstraint c);

struct SparseRecoveryOptions {
  SparseConstraint constraint = SparseConstraint::kEquality;
  double epsilon_ms = 0.0;  // ball radius for kInfBall (per-path, ms)
  // ℓ1 anchor x_prior; empty means zeros. Must match num_links otherwise.
  Vector prior;
  // |x − prior| above this counts as recovered support.
  double support_tol_ms = 1e-6;
  // On an infeasible LP, find the minimal feasible ε* via the Chebyshev
  // auxiliary LP and re-solve at ε* + relax_slack_ms.
  bool auto_relax = true;
  double relax_slack_ms = 1e-7;
  lp::SimplexOptions lp_options;
};

struct SparseRecoveryResult {
  Vector x;                      // recovered link metrics (⪰ 0)
  std::vector<LinkId> support;   // links with |x − prior| > support_tol
  double objective = 0.0;        // realized ‖x − prior‖₁ per the LP
  double epsilon_used = 0.0;     // ball radius of the accepted solve
  bool relaxed = false;          // true iff the Chebyshev fallback fired
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  std::size_t lp_iterations = 0;  // simplex iterations, all solves summed
};

class SparseRecoveryEstimator : public Estimator {
 public:
  SparseRecoveryEstimator(const Graph& g, std::vector<Path> paths,
                          SparseRecoveryOptions options = {},
                          BackendPolicy backend = {});

  EstimatorKind method() const override {
    return EstimatorKind::kSparseRecovery;
  }

  const SparseRecoveryOptions& options() const { return options_; }
  // The materialized prior (zeros when options().prior was empty).
  const Vector& prior() const { return prior_; }

  // Full recovery diagnostics: the estimate plus support set, realized ε,
  // relaxation flag and LP telemetry. kDimensionMismatch on a wrong-width
  // y or prior; kInvalidInput when the LP is infeasible and auto_relax is
  // off; kIterationLimit when the simplex hits its budget.
  robust::Expected<SparseRecoveryResult> recover(const Vector& y) const;

  // recover(y).x. With auto_relax (the default) this is total for any
  // correctly-sized y; on a failed recovery it falls back to the prior
  // (asserting in debug builds).
  Vector estimate(const Vector& y) const override;

  robust::Expected<Vector> try_estimate(const Vector& y) const override;

  // Σᵢ max(0, |rᵢ| − ε): the inconsistency the sparsity model cannot
  // explain (see file comment).
  double residual_statistic(const Vector& y) const override;

  std::unique_ptr<Estimator> clone() const override;

 private:
  SparseRecoveryOptions options_;
  Vector prior_;  // options_.prior resolved to full width
};

}  // namespace scapegoat
