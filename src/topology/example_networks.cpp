#include "topology/example_networks.hpp"

#include <cassert>

namespace scapegoat {

namespace {

// Builds a Path from a node sequence by looking up each hop's link.
Path path_from_nodes(const Graph& g, std::vector<NodeId> nodes) {
  Path p;
  p.nodes = std::move(nodes);
  for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
    const auto link = g.find_link(p.nodes[i], p.nodes[i + 1]);
    assert(link.has_value());
    p.links.push_back(*link);
  }
  return p;
}

}  // namespace

ExampleNetwork fig1_network() {
  ExampleNetwork net;
  Graph& g = net.graph;
  for (int i = 0; i < 7; ++i) g.add_node();
  net.m1 = 0;
  net.m2 = 1;
  net.m3 = 2;
  net.a = 3;
  net.b = 4;
  net.c = 5;
  net.d = 6;
  net.monitors = {net.m1, net.m2, net.m3};
  net.attackers = {net.b, net.c};

  // Links added in paper order so paper link k has LinkId k-1.
  g.add_link(net.m1, net.a);  // 1
  g.add_link(net.a, net.b);   // 2
  g.add_link(net.b, net.m2);  // 3
  g.add_link(net.a, net.c);   // 4
  g.add_link(net.b, net.d);   // 5
  g.add_link(net.b, net.c);   // 6
  g.add_link(net.c, net.d);   // 7
  g.add_link(net.c, net.m3);  // 8
  g.add_link(net.m3, net.d);  // 9
  g.add_link(net.d, net.m2);  // 10
  assert(g.num_links() == 10);

  const NodeId m1 = net.m1, m2 = net.m2, m3 = net.m3;
  const NodeId a = net.a, b = net.b, c = net.c, d = net.d;
  const std::vector<std::vector<NodeId>> sequences = {
      {m1, a, b, m2},        // 1
      {m1, a, b, d, m2},     // 2
      {m1, a, c, d, m2},     // 3  = links {1,4,7,10}   (stated in the paper)
      {m1, a, c, b, m2},     // 4
      {m3, c, d, b, m2},     // 5  = links {8,7,5,3}    (stated in the paper)
      {m3, d, b, m2},        // 6
      {m3, c, d, m2},        // 7
      {m3, c, b, m2},        // 8
      {m3, c, b, d, m2},     // 9
      {m3, d, c, b, m2},     // 10
      {m3, c, a, b, m2},     // 11
      {m1, a, c, m3},        // 12
      {m1, a, b, c, m3},     // 13
      {m1, a, b, d, m3},     // 14
      {m1, a, c, d, m3},     // 15
      {m1, a, b, c, d, m3},  // 16
      {m3, d, m2},           // 17 = links {9,10}       (stated in the paper)
      {m3, d, c, a, b, m2},  // 18
      {m3, c, a, b, d, m2},  // 19
      {m1, a, b, c, d, m2},  // 20
      {m1, a, c, d, b, m2},  // 21
      {m1, a, c, m3, d, m2}, // 22
      {m1, a, b, d, c, m3},  // 23
  };
  for (const auto& seq : sequences)
    net.paths.push_back(path_from_nodes(g, seq));
  assert(net.paths.size() == 23);
  return net;
}

CutExample fig3_perfect_cut() {
  CutExample ex;
  Graph& g = ex.graph;
  // 0:M1 1:M2 2:M3 3:A1 4:A2 5:C 6:D
  for (int i = 0; i < 7; ++i) g.add_node();
  ex.monitors = {0, 1, 2};
  ex.attackers = {3, 4};
  g.add_link(0, 3);                    // M1-A1
  g.add_link(3, 5);                    // A1-C
  ex.victim_link = *g.add_link(5, 6);  // C-D
  g.add_link(6, 4);                    // D-A2
  g.add_link(4, 1);                    // A2-M2
  g.add_link(6, 2);                    // D-M3
  return ex;
}

CutExample fig3_imperfect_cut() {
  CutExample ex;
  Graph& g = ex.graph;
  // 0:M1 1:M2 2:M3 3:M4 4:A1 5:A2 6:B 7:C 8:D
  for (int i = 0; i < 9; ++i) g.add_node();
  ex.monitors = {0, 1, 2, 3};
  ex.attackers = {4, 5};
  g.add_link(0, 4);                    // M1-A1
  g.add_link(4, 7);                    // A1-C
  g.add_link(0, 6);                    // M1-B
  g.add_link(6, 7);                    // B-C
  ex.victim_link = *g.add_link(7, 8);  // C-D
  g.add_link(8, 5);                    // D-A2
  g.add_link(5, 1);                    // A2-M2
  g.add_link(8, 2);                    // D-M3
  g.add_link(8, 3);                    // D-M4: M1→B→C→D→M4 avoids A1 and A2
  return ex;
}

}  // namespace scapegoat
