// The paper's running example (Fig. 1): 7 nodes, 10 links, 23 measurement
// paths, monitors M1/M2/M3, malicious nodes B and C.
//
// The figure itself is not reproduced in the paper text, so the topology is
// reconstructed from every constraint the text states:
//   * path 3  = links {1,4,7,10}: M1 → A → C → D → M2,
//   * path 5  = links {8,7,5,3} (a path B is merely *cooperative* on),
//   * path 17 = links {9,10} (contains neither B nor C),
//   * B and C are incident to exactly links 2-8,
//   * every measurement path containing link 1 passes through B or C
//     ({B,C} perfectly cut link 1), and 13 of the 23 paths contain link 1.
// The resulting unique-up-to-relabeling topology:
//   links (paper 1-based): 1:M1-A 2:A-B 3:B-M2 4:A-C 5:B-D
//                          6:B-C 7:C-D 8:C-M3 9:M3-D 10:D-M2
// Note: the text's claim that the link-1 paths are "1-5, 12-16, 21-23"
// conflicts with its own description of path 5 as a non-link-1 path; we keep
// the explicit path compositions (3, 5, 17) and the count of 13 link-1
// paths (our indices 1-4, 12-16 and 20-23).

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

struct ExampleNetwork {
  Graph graph;
  std::vector<NodeId> monitors;    // {M1, M2, M3}
  std::vector<NodeId> attackers;   // {B, C}
  std::vector<Path> paths;         // the 23 measurement paths, 0-indexed

  // Node ids for readability in tests/examples.
  NodeId m1, m2, m3, a, b, c, d;
};

// Builds the Fig. 1 network with its 23 measurement paths.
ExampleNetwork fig1_network();

// Fig. 3's two didactic 6-node topologies: attackers A1, A2 around the
// victim link C-D, with monitors M1..M4. In the perfect-cut variant every
// monitor-to-monitor path through C-D passes an attacker; the imperfect
// variant adds a bypass path M1 → B → C → D → M4 that avoids both.
struct CutExample {
  Graph graph;
  std::vector<NodeId> monitors;
  std::vector<NodeId> attackers;
  LinkId victim_link;
};
CutExample fig3_perfect_cut();
CutExample fig3_imperfect_cut();

}  // namespace scapegoat
