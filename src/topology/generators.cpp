#include "topology/generators.hpp"

#include <cassert>

#include "graph/traversal.hpp"

namespace scapegoat {

Graph erdos_renyi(std::size_t n, double p, Rng& rng, bool require_connected,
                  std::size_t max_attempts) {
  assert(n > 0);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (rng.bernoulli(p)) g.add_link(u, v);
    if (!require_connected || is_connected(g)) return g;
  }
  // Fall back to a guaranteed-connected instance: sample once more and add a
  // random spanning chain over the components.
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_link(u, v);
  Components comps = connected_components(g);
  while (comps.count > 1) {
    // Connect a random representative of component 0 to one of component 1.
    NodeId a = 0, b = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (comps.component[v] == 0) a = v;
      if (comps.component[v] == 1) b = v;
    }
    g.add_link(a, b);
    comps = connected_components(g);
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  assert(rows > 0 && cols > 0);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_link(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_link(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph ring(std::size_t n) {
  assert(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_link(v, (v + 1) % n);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_link(u, v);
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m_edges, Rng& rng) {
  assert(m_edges >= 1 && n > m_edges);
  Graph g(n);
  // Seed clique over the first m_edges + 1 nodes.
  const std::size_t seed = m_edges + 1;
  for (NodeId u = 0; u < seed; ++u)
    for (NodeId v = u + 1; v < seed; ++v) g.add_link(u, v);

  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<NodeId> endpoints;
  for (const Link& l : g.links()) {
    endpoints.push_back(l.u);
    endpoints.push_back(l.v);
  }

  for (NodeId v = seed; v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m_edges) {
      const NodeId candidate = endpoints[rng.index(endpoints.size())];
      bool fresh = candidate != v;
      for (NodeId t : targets) fresh = fresh && t != candidate;
      if (fresh) targets.push_back(candidate);
    }
    for (NodeId t : targets) {
      if (g.add_link(v, t)) {
        endpoints.push_back(v);
        endpoints.push_back(t);
      }
    }
  }
  return g;
}

}  // namespace scapegoat
