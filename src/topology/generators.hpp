// General-purpose random/regular topology generators used by tests and
// sensitivity experiments (the paper's two evaluation topologies live in
// isp.hpp and geometric.hpp).

#pragma once

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace scapegoat {

// Erdős–Rényi G(n, p). If `require_connected`, resamples (new edges, same
// n/p) until connected — callers should pick p comfortably above the
// connectivity threshold ln(n)/n.
Graph erdos_renyi(std::size_t n, double p, Rng& rng,
                  bool require_connected = true, std::size_t max_attempts = 100);

// rows×cols grid (4-neighborhood).
Graph grid(std::size_t rows, std::size_t cols);

// Cycle over n ≥ 3 nodes.
Graph ring(std::size_t n);

Graph complete(std::size_t n);

// Barabási–Albert preferential attachment: starts from a clique of
// `m_edges + 1` nodes, each new node attaches to `m_edges` distinct existing
// nodes chosen proportionally to degree. Produces the heavy-tailed hub
// structure typical of AS-level maps.
Graph barabasi_albert(std::size_t n, std::size_t m_edges, Rng& rng);

}  // namespace scapegoat
