#include "topology/geometric.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "graph/traversal.hpp"

namespace scapegoat {

GeometricGraph random_geometric(const GeometricParams& params, Rng& rng) {
  assert(params.num_nodes > 0 && params.density > 0.0);
  GeometricGraph out;
  out.side = std::sqrt(static_cast<double>(params.num_nodes) / params.density);
  out.radius = std::sqrt(params.mean_degree / (std::numbers::pi * params.density));

  for (std::size_t attempt = 0;; ++attempt) {
    out.graph = Graph(params.num_nodes);
    out.x.assign(params.num_nodes, 0.0);
    out.y.assign(params.num_nodes, 0.0);
    for (std::size_t i = 0; i < params.num_nodes; ++i) {
      out.x[i] = rng.uniform(0.0, out.side);
      out.y[i] = rng.uniform(0.0, out.side);
    }
    const double r2 = out.radius * out.radius;
    for (NodeId u = 0; u < params.num_nodes; ++u) {
      for (NodeId v = u + 1; v < params.num_nodes; ++v) {
        const double dx = out.x[u] - out.x[v];
        const double dy = out.y[u] - out.y[v];
        if (dx * dx + dy * dy <= r2) out.graph.add_link(u, v);
      }
    }
    if (!params.require_connected || is_connected(out.graph)) return out;
    if (attempt + 1 >= params.max_attempts) {
      // Density too low to connect by luck: keep the largest draw and stitch
      // components together with shortest bridging links so downstream code
      // always gets a usable connected topology.
      Components comps = connected_components(out.graph);
      while (comps.count > 1) {
        double best = std::numeric_limits<double>::infinity();
        NodeId ba = 0, bb = 0;
        for (NodeId a = 0; a < params.num_nodes; ++a) {
          for (NodeId b = a + 1; b < params.num_nodes; ++b) {
            if (comps.component[a] == comps.component[b]) continue;
            const double dx = out.x[a] - out.x[b];
            const double dy = out.y[a] - out.y[b];
            const double d2 = dx * dx + dy * dy;
            if (d2 < best) {
              best = d2;
              ba = a;
              bb = b;
            }
          }
        }
        out.graph.add_link(ba, bb);
        comps = connected_components(out.graph);
      }
      return out;
    }
  }
}

}  // namespace scapegoat
