// Random geometric graphs — the paper's wireless evaluation topology (§V-C):
// n = 100 nodes dropped uniformly on the square [0, sqrt(n/λ)]² with node
// density λ = 5, connected when within radio range. The range is chosen so
// the expected degree matches the paper's "each node has 5 neighbors on
// average": with density λ and radius r the expected degree is λ·π·r², so
// r = sqrt(k̄ / (π λ)).

#pragma once

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct GeometricParams {
  std::size_t num_nodes = 100;
  double density = 5.0;      // λ: nodes per unit area
  double mean_degree = 5.0;  // target average number of neighbors
  bool require_connected = true;
  std::size_t max_attempts = 200;
};

struct GeometricGraph {
  Graph graph;
  std::vector<double> x, y;  // node positions
  double side = 0.0;         // region edge length sqrt(n/λ)
  double radius = 0.0;       // connection radius
};

// Generates an RGG; if `require_connected`, redraws positions until the
// graph is connected (the paper's "extended network generation mode").
GeometricGraph random_geometric(const GeometricParams& params, Rng& rng);

}  // namespace scapegoat
