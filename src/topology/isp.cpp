#include "topology/isp.hpp"

#include <cassert>

#include "graph/traversal.hpp"
#include "topology/generators.hpp"

namespace scapegoat {

Graph isp_topology(const IspParams& params, Rng& rng) {
  assert(params.num_backbone >= 3);
  Graph backbone =
      barabasi_albert(params.num_backbone, params.backbone_attach, rng);

  Graph g(params.num_backbone + params.num_access);
  for (const Link& l : backbone.links()) g.add_link(l.u, l.v);

  // Extra backbone mesh links (Rocketfuel backbones are denser than a pure
  // preferential-attachment tree-ish core).
  std::size_t added = 0, guard = 0;
  while (added < params.extra_mesh_links && guard++ < 1000) {
    const NodeId u = rng.index(params.num_backbone);
    const NodeId v = rng.index(params.num_backbone);
    if (u != v && g.add_link(u, v)) ++added;
  }

  // Access routers: single- or dual-homed into the backbone. Dual-homed
  // routers are what make access links identifiable (and attackable) —
  // a degree-1 router's link can only ever be measured from that router.
  for (std::size_t i = 0; i < params.num_access; ++i) {
    const NodeId router = params.num_backbone + i;
    const NodeId up1 = rng.index(params.num_backbone);
    g.add_link(router, up1);
    if (rng.bernoulli(params.dual_home_prob)) {
      for (int tries = 0; tries < 10; ++tries) {
        const NodeId up2 = rng.index(params.num_backbone);
        if (up2 != up1 && g.add_link(router, up2)) break;
      }
    }
  }
  assert(is_connected(g));
  return g;
}

Graph as1221_like(std::uint64_t seed) {
  Rng rng(seed);
  return isp_topology(IspParams{}, rng);
}

}  // namespace scapegoat
