// Synthetic ISP (wireline) topologies — the substitution for the Rocketfuel
// AS1221 dataset (see DESIGN.md §4).
//
// Rocketfuel maps of ISP backbones (the paper uses Telstra's AS1221) are
// sparse graphs with a two-level structure: a meshy backbone of hub routers
// plus PoP/access routers hanging off one or two backbone nodes, giving a
// heavy-tailed degree distribution. This generator reproduces that shape:
//   * backbone: preferential-attachment graph over `num_backbone` routers
//     with extra random mesh links,
//   * access: `num_access` routers, each attached to 1-2 backbone routers
//     (dual-homing probability `dual_home_prob`).
// A deterministic `as1221_like()` preset (~100 routers, ~150 links) stands
// in for the dataset in the Fig. 7/8 experiments; rocketfuel.hpp can load a
// real .cch file instead when one is available.

#pragma once

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace scapegoat {

struct IspParams {
  std::size_t num_backbone = 24;
  std::size_t backbone_attach = 2;   // pref-attachment links per backbone node
  std::size_t extra_mesh_links = 8;  // additional random backbone-backbone links
  std::size_t num_access = 80;
  double dual_home_prob = 0.35;      // access router gets a second uplink
};

// Generates a connected ISP-like topology. Backbone routers occupy node ids
// [0, num_backbone); access routers the rest.
Graph isp_topology(const IspParams& params, Rng& rng);

// Deterministic AS1221-style preset used by the paper-figure experiments.
Graph as1221_like(std::uint64_t seed = 1221);

}  // namespace scapegoat
