#include "topology/rocketfuel.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace scapegoat {

namespace {

// Maps raw router uids to dense NodeIds, growing the graph as needed.
class IdMapper {
 public:
  explicit IdMapper(LoadedTopology& topo) : topo_(topo) {}

  NodeId get(long uid) {
    auto [it, inserted] = map_.try_emplace(uid, topo_.graph.num_nodes());
    if (inserted) {
      topo_.graph.add_node();
      topo_.original_ids.push_back(uid);
    }
    return it->second;
  }

 private:
  LoadedTopology& topo_;
  std::unordered_map<long, NodeId> map_;
};

// Diagnostics stay bounded on pathological inputs: every skip is counted,
// but only the first few carry a line-numbered message.
constexpr std::size_t kMaxWarnings = 20;

void skip_line(LoadedTopology& topo, std::size_t line_no,
               const std::string& why) {
  ++topo.skipped_lines;
  if (topo.warnings.size() < kMaxWarnings) {
    topo.warnings.push_back("line " + std::to_string(line_no) + ": " + why);
  }
}

}  // namespace

std::optional<LoadedTopology> load_edge_list(std::istream& in) {
  LoadedTopology topo;
  IdMapper ids(topo);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    long u, v;
    if (!(ls >> u)) continue;  // blank / comment-only line
    if (!(ls >> v)) {
      // Truncated pair (common failure: a cut-off download) — skip the
      // line, keep the rest of the file.
      skip_line(topo, line_no, "expected 'u v' pair, got one id");
      continue;
    }
    long extra;
    if (ls >> extra) {
      skip_line(topo, line_no, "more than two ids on a line");
      continue;
    }
    // Sequence the id lookups: argument evaluation order is unspecified and
    // node numbering should follow first appearance in the file.
    const NodeId nu = ids.get(u);
    const NodeId nv = ids.get(v);
    topo.graph.add_link(nu, nv);
  }
  if (topo.graph.num_nodes() == 0) return std::nullopt;
  return topo;
}

std::optional<LoadedTopology> load_rocketfuel_cch(std::istream& in) {
  LoadedTopology topo;
  IdMapper ids(topo);
  std::string line;
  std::size_t line_no = 0;
  bool found_edges = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    long uid;
    if (!(ls >> uid)) continue;
    if (uid < 0) continue;  // external-address lines start with "-euid"
    const NodeId u = ids.get(uid);

    // Scan the remaining tokens for internal neighbor refs "<nuid>".
    std::string token;
    bool after_arrow = false;
    while (ls >> token) {
      if (token == "->") {
        after_arrow = true;
        continue;
      }
      if (!after_arrow) continue;
      if (token.size() >= 3 && token.front() == '<' && token.back() == '>') {
        try {
          const long nuid = std::stol(token.substr(1, token.size() - 2));
          if (nuid >= 0) {
            topo.graph.add_link(u, ids.get(nuid));
            found_edges = true;
          }
        } catch (const std::exception&) {
          // "<garbage>" — drop the unreadable ref, keep the line's others.
          skip_line(topo, line_no, "unreadable neighbor ref " + token);
        }
      }
      // "{-euid}" external refs and "=name"/"rn" trailers are skipped.
    }
  }
  if (!found_edges) return std::nullopt;
  return topo;
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# " << g.num_nodes() << " nodes, " << g.num_links() << " links\n";
  for (const Link& l : g.links()) out << l.u << ' ' << l.v << '\n';
}

std::optional<LoadedTopology> load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_edge_list(in);
}

std::optional<LoadedTopology> load_rocketfuel_cch_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_rocketfuel_cch(in);
}

}  // namespace scapegoat
