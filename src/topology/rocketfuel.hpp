// Rocketfuel topology loaders.
//
// Two formats are accepted so a real dataset can replace the synthetic
// AS1221 substitute without code changes:
//   * simple edge lists: one "u v" pair of integer router ids per line,
//     '#' comments allowed;
//   * Rocketfuel router-level .cch maps: lines of the form
//       uid @loc [+] [bb] (num_neigh) [&ext] -> <nuid> <nuid> ... {-euid} =name rn
//     We keep internal "<id>" neighbor references, ignore external "{-id}"
//     ones, and compact router uids to dense NodeIds.

#pragma once

#include <istream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace scapegoat {

struct LoadedTopology {
  Graph graph;
  // Original router uid for each NodeId.
  std::vector<long> original_ids;
  // Skip-with-diagnostic accounting: malformed or truncated lines do not
  // abort the load, they are counted here with line-numbered messages (the
  // messages are capped; `skipped_lines` is always the true total).
  std::vector<std::string> warnings;
  std::size_t skipped_lines = 0;
};

// Parses an edge list. Malformed lines are skipped with a diagnostic;
// returns nullopt only when nothing usable was found in the stream.
std::optional<LoadedTopology> load_edge_list(std::istream& in);

// Parses the Rocketfuel .cch router-level format. Unknown tokens are
// skipped; a line contributes edges only if it starts with a router uid and
// contains "-> <id> ..." neighbor references. Garbled neighbor refs are
// skipped with a diagnostic. Returns nullopt if no edges were found.
std::optional<LoadedTopology> load_rocketfuel_cch(std::istream& in);

// Convenience wrappers over files. nullopt if the file can't be opened or
// parsed.
std::optional<LoadedTopology> load_edge_list_file(const std::string& path);
std::optional<LoadedTopology> load_rocketfuel_cch_file(const std::string& path);

// Writes the "u v" edge-list format load_edge_list reads back (round-trip
// safe; node ids are the dense NodeIds).
void write_edge_list(std::ostream& out, const Graph& g);

}  // namespace scapegoat
