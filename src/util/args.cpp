#include "util/args.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace scapegoat {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      if (!command_) {
        command_ = token;
      } else {
        errors_.push_back("unexpected positional argument: " + token);
      }
      continue;
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      flags_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // "--flag value" when the next token isn't a flag; bare "--flag" else.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[token] = argv[++i];
    } else {
      flags_[token] = "";
    }
  }
}

bool ArgParser::has(const std::string& flag) const {
  return flags_.contains(flag);
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) {
  consumed_[flag] = true;
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

long ArgParser::get_int(const std::string& flag, long fallback) {
  consumed_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + flag + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  if (errno == ERANGE) {
    errors_.push_back("--" + flag + " value out of range: '" + it->second +
                      "'");
    return fallback;
  }
  return v;
}

double ArgParser::get_double(const std::string& flag, double fallback) {
  consumed_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + flag + " expects a number, got '" + it->second +
                      "'");
    return fallback;
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    errors_.push_back("--" + flag + " value out of range: '" + it->second +
                      "'");
    return fallback;
  }
  return v;
}

std::vector<long> ArgParser::get_int_list(const std::string& flag) {
  consumed_[flag] = true;
  std::vector<long> out;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return out;
  std::istringstream stream(it->second);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(piece.c_str(), &end, 10);
    if (end == piece.c_str() || *end != '\0' || errno == ERANGE) {
      errors_.push_back("--" + flag + " expects integers, got '" + piece +
                        "'");
      return out;
    }
    out.push_back(v);
  }
  return out;
}

std::size_t ArgParser::get_threads(const std::string& flag) {
  const std::size_t errors_before = errors_.size();
  const long v = get_int(flag, -1);
  if (!has(flag)) return 0;  // absent = auto
  if (errors_.size() > errors_before) return 0;  // get_int already complained
  if (v <= 0) {
    // An explicit 0 (or negative) worker count is a mistake, not "auto":
    // the caller typed a value and the pool cannot run on zero workers.
    errors_.push_back("--" + flag + " expects a positive thread count, got '" +
                      get_string(flag) + "'");
    return 0;
  }
  return static_cast<std::size_t>(v);
}

void ArgParser::apply_execution(ExecutionPolicy& exec) {
  ThreadPool::set_global_threads(get_threads());
  exec.grain = static_cast<std::size_t>(
      get_int("grain", static_cast<long>(exec.grain)));
  exec.seed = static_cast<std::uint64_t>(
      get_int("seed", static_cast<long>(exec.seed)));
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_)
    if (!consumed_.contains(name)) out.push_back(name);
  return out;
}

}  // namespace scapegoat
