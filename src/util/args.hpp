// Minimal command-line flag parser for the CLI tool and benches.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, and one
// positional command word. Unknown flags are collected as errors so tools
// can fail fast with a usage message.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/execution.hpp"

namespace scapegoat {

class ArgParser {
 public:
  // argv-style input; argv[0] is skipped.
  ArgParser(int argc, const char* const* argv);

  // First non-flag token ("attack", "fig7", ...), if any.
  const std::optional<std::string>& command() const { return command_; }

  bool has(const std::string& flag) const;

  // Typed getters; return `fallback` when the flag is absent. Parse errors
  // are recorded in errors().
  std::string get_string(const std::string& flag,
                         const std::string& fallback = "");
  long get_int(const std::string& flag, long fallback = 0);
  double get_double(const std::string& flag, double fallback = 0.0);
  bool get_bool(const std::string& flag) {
    consumed_[flag] = true;
    return has(flag);
  }

  // Comma-separated integer list, e.g. --attackers 3,17,42.
  std::vector<long> get_int_list(const std::string& flag);

  // Standard `--threads N` flag shared by the benches and the CLI: absent
  // means "auto" (hardware concurrency, returned as 0); an explicit zero,
  // negative or malformed value is recorded as an error. Feed the result to
  // ThreadPool::set_global_threads or an experiment options struct.
  std::size_t get_threads(const std::string& flag = "threads");

  // The one call a bench/CLI main makes to honour the shared execution
  // flags: sizes the process-global pool from `--threads` (absent = auto)
  // and overrides `exec.grain` / `exec.seed` when `--grain` / `--seed` are
  // given. `exec.threads` is left at 0 so the runner uses the global pool —
  // exactly the pre-PR-3 behaviour of the per-bench flag handling this
  // replaces. Works on any options struct deriving ExecutionPolicy.
  void apply_execution(ExecutionPolicy& exec);

  const std::vector<std::string>& errors() const { return errors_; }

  // Flags that were provided but never queried (likely typos); call after
  // all get_* calls.
  std::vector<std::string> unused() const;

 private:
  std::optional<std::string> command_;
  std::map<std::string, std::string> flags_;  // name → raw value ("" = bare)
  std::map<std::string, bool> consumed_;
  mutable std::vector<std::string> errors_;
};

}  // namespace scapegoat
