#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace scapegoat {

namespace {

robust::Error io_error(const std::string& what) {
  return robust::Error{robust::ErrorCode::kIoError, what};
}

}  // namespace

robust::Status write_file_atomic(const std::string& path,
                                 std::string_view contents) {
  // Sibling temp name: same directory ⇒ same filesystem ⇒ rename(2) is
  // atomic. The pid suffix keeps concurrent writers from clobbering each
  // other's temp files (last rename wins on the destination, which is the
  // documented semantics for concurrent atomic writers).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return io_error("cannot create temp file " + tmp + ": " +
                    std::strerror(errno));

  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return io_error("short write to " + tmp + ": " + err);
    }
    off += static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename publishes the name, otherwise a
  // crash can leave a correctly-named empty file — exactly the torn state
  // this helper exists to rule out.
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error("fsync of " + tmp + " failed: " + err);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return io_error("close of " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return io_error("rename " + tmp + " -> " + path + " failed: " + err);
  }
  return robust::ok_status();
}

bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace scapegoat
