// Crash-safe file replacement: write a sibling temp file, flush it to disk,
// then rename over the destination. A reader (or a restarted process) sees
// either the old contents or the complete new contents — never a truncated
// half-write. Used by the checkpoint manifest, scenario persistence and the
// metrics/bench report writers; the only writer allowed to append in place
// is the checkpoint journal itself, whose CRC framing makes a torn tail
// detectable instead (robust/checkpoint.hpp).

#pragma once

#include <string>
#include <string_view>

#include "robust/expected.hpp"

namespace scapegoat {

// Writes `contents` to `path` atomically (temp file + fsync + rename).
// The temp file lives beside the destination so the rename stays on one
// filesystem. On failure the destination is untouched and the temp file is
// removed best-effort.
robust::Status write_file_atomic(const std::string& path,
                                 std::string_view contents);

// fsync(2) wrapper for streams we append to in place (the journal): forces
// buffered bytes of the open file descriptor-less FILE*/ofstream world by
// reopening — not possible portably — so instead this syncs by path using
// a read-only descriptor. Returns false when the file cannot be opened or
// synced; callers treat that as "durability not guaranteed", not an error.
bool fsync_path(const std::string& path);

}  // namespace scapegoat
