// ExecutionPolicy — the shared {threads, grain, seed} trio every
// Monte-Carlo runner needs.
//
// Before PR 3 each experiment options struct re-declared these three fields
// with its own comments and defaults; now they all inherit this base, so
// `opt.threads` / `opt.grain` / `opt.seed` keep working unchanged on every
// existing struct while generic code (ArgParser::apply_execution,
// acquire_pool, the bench harnesses) can take any of them as an
// `ExecutionPolicy&`. Derived structs set their experiment-specific
// defaults in their default constructor (see core/experiment.hpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/thread_pool.hpp"

namespace scapegoat {

struct ExecutionPolicy {
  std::size_t threads = 0;   // 0 = process-global pool; n = dedicated pool
  std::size_t grain = 8;     // work items per worker chunk
  std::uint64_t seed = 0;    // master seed; trials derive private streams

  ExecutionPolicy() = default;
  ExecutionPolicy(std::size_t threads_, std::size_t grain_,
                  std::uint64_t seed_)
      : threads(threads_), grain(grain_), seed(seed_) {}

  // The policy sub-object — handy when a derived options struct needs to
  // copy just the execution trio to another runner's options.
  ExecutionPolicy& execution() { return *this; }
  const ExecutionPolicy& execution() const { return *this; }
};

// Resolves the policy to a pool: threads == 0 shares the process-global
// pool, anything else materializes a dedicated pool in `owned` that lives
// until the caller drops it (used by the scaling bench and the determinism
// tests to pin exact worker counts). Replaces the pick_pool helpers that
// experiment.cpp and fault_experiment.cpp each had privately.
inline ThreadPool& acquire_pool(const ExecutionPolicy& exec,
                                std::unique_ptr<ThreadPool>& owned) {
  if (exec.threads == 0) return ThreadPool::global();
  owned = std::make_unique<ThreadPool>(exec.threads);
  return *owned;
}

}  // namespace scapegoat
