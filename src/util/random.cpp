#include "util/random.hpp"

#include <algorithm>
#include <numeric>

namespace scapegoat {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (k >= n) return all;
  // Partial Fisher-Yates: only the first k positions need to be randomized.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j =
        std::uniform_int_distribution<std::size_t>(i, n - 1)(engine_);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace scapegoat
