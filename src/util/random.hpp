// Deterministic RNG wrapper used by every stochastic component.
//
// All experiments in the library take an explicit `Rng&` (or a seed) so that
// every figure/table reproduction is bit-reproducible. We wrap std::mt19937_64
// rather than exposing it directly so call sites get the small set of
// distributions the paper needs (uniform reals for link delays, uniform ints
// for node/link selection, shuffles, Bernoulli for random placement) without
// re-deriving distribution parameters everywhere.

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace scapegoat {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca9e90a7u) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Seed-splitting for parallel Monte-Carlo: the seed for stream `index` under
// `base` is base ⊕ mix(index), where mix is the splitmix64 finalizer. Every
// trial owns Rng(derive_seed(base, trial_index)), so its draws depend only
// on (base, trial_index) — never on scheduling order or thread count — and
// adjacent indices still land in well-separated engine states.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = index + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return base ^ (z ^ (z >> 31));
}

}  // namespace scapegoat
