#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace scapegoat {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double ratio(std::size_t hits, std::size_t trials) {
  return trials == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(trials);
}

double wilson_halfwidth(std::size_t hits, std::size_t trials) {
  if (trials == 0) return 0.0;
  const double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(hits) / n;
  return z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) /
         (1.0 + z * z / n);
}

}  // namespace scapegoat
