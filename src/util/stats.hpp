// Small summary-statistics helpers for experiment reporting.

#pragma once

#include <cstddef>
#include <vector>

namespace scapegoat {

// Running/summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

// Computes a Summary; an empty sample yields an all-zero Summary.
Summary summarize(const std::vector<double>& xs);

// p in [0, 1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

// Ratio of `hits` to `trials`; 0 when trials == 0.
double ratio(std::size_t hits, std::size_t trials);

// Wilson score interval half-width for a binomial proportion at ~95%
// confidence. Used to report error bars on success/detection probabilities.
double wilson_halfwidth(std::size_t hits, std::size_t trials);

}  // namespace scapegoat
