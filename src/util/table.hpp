// ASCII table / CSV writers used by the bench harness so every figure
// reproduction prints the same row/series structure the paper reports.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scapegoat {

// Column-aligned text table. Usage:
//   Table t({"link", "delay_ms", "state"});
//   t.add_row({"1", "912.3", "abnormal"});
//   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scapegoat
