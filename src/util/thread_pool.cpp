#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>

#include "obs/obs.hpp"

namespace scapegoat {

namespace {

// Set while a thread is executing inside ThreadPool::worker_loop; used to
// run nested parallel_for calls inline instead of deadlocking on the queue.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!stopping_ && "submit on a stopping pool");
    queue_.push_back(std::move(task));
    // "pool." metrics are scheduling-dependent — outside the determinism
    // contract (see obs/obs.hpp).
    obs::gauge_max("pool.queue_depth_max",
                   static_cast<std::int64_t>(queue_.size()));
  }
  obs::count("pool.tasks_enqueued");
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-destroy: only exit once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      obs::ScopedTimer timer("pool.task.run_us");
      task();
    }
    obs::count("pool.tasks_run");
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (size() <= 1 || chunks <= 1 || on_worker_thread()) {
    obs::count("pool.parallel_for.inline_runs");
    body(begin, end);
    return;
  }
  obs::count("pool.parallel_for.calls");
  obs::count("pool.parallel_for.chunks", chunks);

  // Shared chunk cursor: workers and the caller race to claim chunk indices.
  // Which thread runs a chunk is nondeterministic; the chunk boundaries —
  // and therefore the work each body call sees — are not.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<ForState>();

  auto run_chunks = [state, begin, end, grain, chunks, &body] {
    for (;;) {
      const std::size_t c = state->next.fetch_add(1);
      if (c >= chunks) return;
      if (!state->failed.load()) {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(end, lo + grain);
        try {
          body(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true);
        }
      }
      const std::size_t finished = state->done.fetch_add(1) + 1;
      if (finished == chunks) {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        state->done_cv.notify_all();
      }
    }
  };

  // One helper task per worker beyond the caller, capped by the chunk count.
  const std::size_t helpers = std::min(size(), chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) enqueue(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done_cv.wait(lock,
                      [&] { return state->done.load() == chunks; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::parallel_for_each(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t)>& body) {
  parallel_for(begin, end, grain, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
std::size_t g_global_threads = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool)
    g_global_pool = std::make_unique<ThreadPool>(g_global_threads);
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_threads = threads;
  g_global_pool.reset();  // drains; recreated lazily at the new size
}

std::size_t ThreadPool::global_threads() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool) return g_global_pool->size();
  return g_global_threads == 0
             ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : g_global_threads;
}

}  // namespace scapegoat
