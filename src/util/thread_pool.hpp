// Fixed-size worker thread pool with task futures and a grain-controlled
// parallel_for — the substrate behind the parallel Monte-Carlo experiment
// engine (core/experiment) and the blocked linalg kernels (linalg/matrix,
// linalg/qr).
//
// Design rules that keep every caller bit-reproducible:
//   * parallel_for hands each index range to exactly one task, so any
//     computation whose chunks are independent produces the same bits at any
//     thread count. Chunk boundaries depend only on the grain, never on the
//     number of workers.
//   * Workers never nest: a parallel_for issued from inside a pool worker
//     runs inline on that worker (serially), which both avoids deadlock and
//     keeps per-trial work on a single deterministic thread.
//   * The calling thread participates in parallel_for (caller-runs), so a
//     1-worker pool degrades to plain serial execution with no handoff.
//
// Destruction drains the queue: tasks already submitted run to completion
// before the workers join. Exceptions thrown by a task are captured and
// rethrown from the future (submit) or from parallel_for's caller.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace scapegoat {

class ThreadPool {
 public:
  // `threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  // Queue a task; the future reports its result or rethrows its exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> out = task->get_future();
    enqueue([task] { (*task)(); });
    return out;
  }

  // Split [begin, end) into chunks of at most `grain` indices and run
  // `body(chunk_begin, chunk_end)` across the pool, caller included. Chunk
  // boundaries are a pure function of (begin, end, grain) — results of
  // chunk-independent bodies do not depend on the worker count. Rethrows the
  // first task exception after all chunks finish. Runs inline (serially)
  // when the pool has one worker, the range fits in one chunk, or the caller
  // is itself a pool worker.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Convenience: per-index body.
  void parallel_for_each(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t)>& body);

  // ------------------------------------------------------------- global --
  // Process-wide pool used by the linalg kernels and any caller that does
  // not thread an explicit pool through. Created lazily with the configured
  // thread count (default: hardware concurrency).

  static ThreadPool& global();

  // Replace the global pool with one of `threads` workers (0 = hardware).
  // Call from a single thread, before or between parallel regions — the old
  // pool drains first.
  static void set_global_threads(std::size_t threads);

  // Worker count the global pool has (or would be created with).
  static std::size_t global_threads();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace scapegoat
